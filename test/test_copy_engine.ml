(* Copy-engine tests: page stealing and clustered COW resolution must
   be invisible to programs (byte-identical with a naive eager-copy
   oracle, toggles on or off), fork/exit generations must not accrete
   shadow-chain depth, the terminate-path collapse must fire when a
   backing object's last sibling exits, and the object cache must
   evict in LRU order at its cap. *)

open Mach
module Vm_page = Mach_vm.Vm_page
module Page_queues = Mach_vm.Page_queues
module Dlist = Mach_util.Dlist

let check = Alcotest.check
let page = 4096

(* ---- harnesses -------------------------------------------------------- *)

(* Bare kctx for object-level tests (no tasks, no scheduler). *)
let make_kctx ?(frames = 64) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let ctx = Context.create eng net in
  let mem = Phys_mem.create ~frames ~page_size:page in
  let kctx = Kctx.create eng ctx ~host:0 ~params:Machine.uniprocessor ~mem () in
  Mach_vm.Pager_client.install kctx;
  kctx

let add_page kctx obj ~offset tagchar =
  let frame = Option.get (Phys_mem.alloc kctx.Kctx.mem) in
  let p = Vm_page.insert kctx obj ~offset ~frame ~busy:false ~absent:false in
  Phys_mem.fill kctx.Kctx.mem frame tagchar;
  Page_queues.activate kctx.Kctx.queues p;
  p

let frame_tag kctx (p : Vm_types.page) = Bytes.get (Phys_mem.data kctx.Kctx.mem p.Vm_types.frame) 0

(* Full system with the copy-engine toggles set; runs [f sys task] on a
   fresh task's thread and returns its result. *)
let with_system ?(steal = true) ?(cluster = true) f =
  let sys = Kernel.create_system () in
  let kctx = Kernel.kctx sys.Kernel.kernel in
  kctx.Kctx.enable_cow_steal <- steal;
  kctx.Kctx.enable_cow_cluster <- cluster;
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"main" () in
      ignore (Thread.spawn task ~name:"main.t" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "system run did not complete"

(* Run [f] to completion on a fresh thread of [child]. *)
let in_child child name f =
  let finished = Ivar.create () in
  ignore
    (Thread.spawn child ~name (fun () ->
         f ();
         Ivar.fill finished ()));
  Ivar.read finished

(* Max shadow-chain depth under any of the task's direct entries. *)
let chain_depth_of task =
  List.fold_left
    (fun acc e ->
      match e.Vm_map.backing with
      | Vm_map.Direct d -> max acc (Vm_object.chain_depth d.Vm_map.d_obj)
      | Vm_map.Shared _ -> acc)
    0
    (Vm_map.entries (Task.map task))

(* Generational churn: fork a child, let it dirty a quarter of the
   region, exit it, then have the parent write a few spread pages —
   the e11 "lazy" pattern that exercises stealing and both collapse
   triggers. Returns the parent's chain depth observed after each
   generation. *)
let churn sys task ~pages ~gens =
  let kernel = sys.Kernel.kernel in
  let addr = Syscalls.vm_allocate task ~size:(pages * page) ~anywhere:true () in
  let w t a =
    match Syscalls.touch t ~addr:a ~write:true () with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "write fault failed"
  in
  for i = 0 to pages - 1 do
    w task (addr + (i * page))
  done;
  let depths = ref [] in
  for g = 1 to gens do
    let child = Task.create kernel ~parent:task ~name:(Printf.sprintf "gen%d" g) () in
    in_child child (Printf.sprintf "gen%d.main" g) (fun () ->
        for i = 0 to (pages / 4) - 1 do
          w child (addr + (i * page))
        done);
    Task.terminate child;
    for i = 0 to 3 do
      w task (addr + (i * pages / 4 * page))
    done;
    depths := chain_depth_of task :: !depths
  done;
  Syscalls.vm_deallocate task ~addr ~size:(pages * page);
  List.rev !depths

(* ---- chain depth stays bounded over fork/exit generations ------------- *)

let test_chain_depth_bounded () =
  let depths, stats =
    with_system (fun sys task ->
        let depths = churn sys task ~pages:16 ~gens:8 in
        (depths, Kernel.stats sys.Kernel.kernel))
  in
  check Alcotest.int "eight generations observed" 8 (List.length depths);
  List.iteri
    (fun i d ->
      if d > 2 then Alcotest.failf "generation %d left chain depth %d (bound 2)" (i + 1) d)
    depths;
  Alcotest.(check bool) "collapses fired every generation" true
    (stats.Vm_types.s_collapses >= 8);
  Alcotest.(check bool) "walked depth also bounded" true
    (stats.Vm_types.s_chain_depth_peak <= 2)

(* ---- the toggles gate the mechanisms ---------------------------------- *)

let test_steal_and_cluster_toggles () =
  let run ~steal ~cluster =
    with_system ~steal ~cluster (fun sys task ->
        ignore (churn sys task ~pages:16 ~gens:4);
        Kernel.stats sys.Kernel.kernel)
  in
  let on = run ~steal:true ~cluster:true in
  Alcotest.(check bool) "stealing happens when enabled" true (on.Vm_types.s_cow_steals > 0);
  Alcotest.(check bool) "clustering happens when enabled" true (on.Vm_types.s_cow_batched > 0);
  let off = run ~steal:false ~cluster:false in
  check Alcotest.int "no steals when disabled" 0 off.Vm_types.s_cow_steals;
  check Alcotest.int "no batched pages when disabled" 0 off.Vm_types.s_cow_batched

(* ---- terminate-path collapse ------------------------------------------ *)

(* Two shadows share a backing object; when one shadow exits and drops
   the backing to a single reference, the collapse must fire from the
   surviving shadow (deallocate/terminate path, not a write fault). *)
let test_terminate_path_collapse () =
  let kctx = make_kctx () in
  let b = Vm_object.create_anonymous kctx ~size:page in
  ignore (add_page kctx b ~offset:0 'x');
  let s1 = Vm_object.create_shadow kctx ~backs:b ~offset:0 ~size:page in
  let s2 = Vm_object.create_shadow kctx ~backs:b ~offset:0 ~size:page in
  (* Drop the creator's reference: b is now held only by its shadows. *)
  Vm_object.deallocate kctx b;
  check Alcotest.int "no collapse while both shadows live" 0
    kctx.Kctx.stats.Vm_types.s_collapses;
  check Alcotest.int "s1 still chained" 1 (Vm_object.chain_depth s1);
  (* s2 exits: its terminate drops b to one reference held by s1, and
     the collapse fires from the survivor. *)
  Vm_object.deallocate kctx s2;
  check Alcotest.int "collapse fired at sibling exit" 1 kctx.Kctx.stats.Vm_types.s_collapses;
  check Alcotest.int "survivor flattened" 0 (Vm_object.chain_depth s1);
  Alcotest.(check bool) "backing gone" false b.Vm_types.obj_alive;
  match Vm_object.lookup_chain s1 ~offset:0 with
  | Some (p, owner, 0) ->
    Alcotest.(check bool) "page now owned by survivor" true (owner == s1);
    check Alcotest.char "data preserved" 'x' (frame_tag kctx p)
  | Some _ | None -> Alcotest.fail "backing page did not move to the survivor"

(* ---- LRU object cache ------------------------------------------------- *)

let test_object_cache_lru () =
  let kctx = make_kctx () in
  kctx.Kctx.object_cache_cap <- 2;
  let mk tag =
    let port = Port.create kctx.Kctx.ctx ~home:0 () in
    let o = Vm_object.create_external kctx ~memory_object:port ~size:page in
    o.Vm_types.can_persist <- true;
    ignore (add_page kctx o ~offset:0 tag);
    (port, o)
  in
  let _p1, o1 = mk 'a' in
  let p2, o2 = mk 'b' in
  let _p3, o3 = mk 'c' in
  Engine.spawn kctx.Kctx.engine (fun () ->
      Vm_object.deallocate kctx o1;
      Vm_object.deallocate kctx o2;
      Vm_object.deallocate kctx o3);
  Engine.run kctx.Kctx.engine;
  (* Cap 2: caching o3 evicted the coldest entry (o1), terminating it. *)
  check Alcotest.int "one eviction" 1 kctx.Kctx.stats.Vm_types.s_object_cache_evictions;
  Alcotest.(check bool) "coldest object terminated" false o1.Vm_types.obj_alive;
  Alcotest.(check bool) "o1 off the list" false (Vm_object.cache_is_member kctx o1);
  Alcotest.(check bool) "o2 cached" true (Vm_object.cache_is_member kctx o2);
  Alcotest.(check bool) "o3 cached" true (Vm_object.cache_is_member kctx o3);
  check Alcotest.int "cache holds exactly the cap" 2 (Dlist.length kctx.Kctx.cached_objects);
  (* Revival pulls the object out of the list without an eviction. *)
  let again = Vm_object.create_external kctx ~memory_object:p2 ~size:page in
  Alcotest.(check bool) "revived same object" true (again == o2);
  Alcotest.(check bool) "revived object left the list" false
    (Vm_object.cache_is_member kctx o2);
  check Alcotest.int "no extra eviction on revival" 1
    kctx.Kctx.stats.Vm_types.s_object_cache_evictions;
  check Alcotest.int "one cached object remains" 1 (Dlist.length kctx.Kctx.cached_objects)

(* ---- qcheck: the copy engine is invisible to programs ----------------- *)

(* Random fork/write/send interleavings against a naive eager-copy
   oracle (each actor conceptually owns a private copy of the region;
   an OOL send snapshots the sender's bytes at send time). The same
   schedule runs with stealing and clustering toggled on and off —
   every combination must match the oracle, hence each other. *)

type op = Write | Send | Churn

let run_scenario ~steal ~cluster (nchildren, ops) =
  with_system ~steal ~cluster (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let verdict = ref true in
      let addr = Syscalls.vm_allocate task ~size:(8 * page) ~anywhere:true () in
      let wr t a v =
        match Syscalls.write_bytes t ~addr:a (Bytes.make 1 (Char.chr v)) () with
        | Ok () -> ()
        | Error _ -> verdict := false
      in
      for pg = 0 to 7 do
        wr task (addr + (pg * page)) 1
      done;
      let children =
        List.init nchildren (fun i ->
            Task.create kernel ~parent:task ~name:(Printf.sprintf "c%d" i) ())
      in
      let tasks = Array.of_list (task :: children) in
      let model = Array.init (nchildren + 1) (fun _ -> Array.make 8 1) in
      let receiver = Task.create kernel ~name:"rx" () in
      let recv_svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let recv_port = Port_space.lookup_exn (Task.space receiver) recv_svc in
      List.iter
        (fun (actor, kind, pg, v) ->
          let actor = actor mod (nchildren + 1) in
          let t = tasks.(actor) in
          match kind with
          | Write ->
            wr t (addr + (pg * page)) v;
            model.(actor).(pg) <- v
          | Churn ->
            (* A transient grandchild dirties a few pages and exits; its
               writes die with it, but the exit exercises the
               terminate-path collapse and later steals. *)
            let c = Task.create kernel ~parent:t ~name:"churn" () in
            in_child c "churn.main" (fun () ->
                for q = pg to min 7 (pg + 3) do
                  wr c (addr + (q * page)) v
                done);
            Task.terminate c
          | Send ->
            (* Snapshot semantics: the receiver must see the sender's
               bytes as of the send, even though the sender overwrites
               a page before the message is consumed. *)
            let snap = Array.copy model.(actor) in
            (match
               Syscalls.msg_send t
                 (Message.make ~dest:recv_port
                    [ Syscalls.ool_region t ~addr ~size:(8 * page) ])
             with
            | Ok () -> ()
            | Error _ -> verdict := false);
            wr t (addr + (pg * page)) v;
            model.(actor).(pg) <- v;
            in_child receiver "rx.main" (fun () ->
                match Syscalls.msg_receive receiver ~from:(`Port recv_svc) () with
                | Ok msg ->
                  List.iter
                    (fun (raddr, sz) ->
                      for q = 0 to (sz / page) - 1 do
                        (match
                           Syscalls.read_bytes receiver ~addr:(raddr + (q * page)) ~len:1 ()
                         with
                        | Ok b -> if Bytes.get_uint8 b 0 <> snap.(q) then verdict := false
                        | Error _ -> verdict := false)
                      done;
                      Syscalls.vm_deallocate receiver ~addr:raddr ~size:sz)
                    (Syscalls.map_ool receiver msg)
                | Error _ -> verdict := false))
        ops;
      (* Every task ends with exactly its oracle contents. *)
      Array.iteri
        (fun actor t ->
          for pg = 0 to 7 do
            match Syscalls.read_bytes t ~addr:(addr + (pg * page)) ~len:1 () with
            | Ok b -> if Bytes.get_uint8 b 0 <> model.(actor).(pg) then verdict := false
            | Error _ -> verdict := false
          done)
        tasks;
      !verdict)

let copy_engine_prop =
  let open QCheck2 in
  let gen =
    Gen.(
      pair (int_range 1 3)
        (list_size (int_range 1 16)
           (tup4 (int_range 0 3) (* actor *)
              (int_range 0 9) (* op selector *)
              (int_range 0 7) (* page *)
              (int_range 2 255) (* value *))))
  in
  Test.make ~name:"copy engine matches eager-copy oracle (steal/cluster on and off)" ~count:10
    gen
    (fun (nchildren, raw_ops) ->
      let ops =
        List.map
          (fun (a, k, pg, v) ->
            let kind = if k <= 5 then Write else if k <= 7 then Send else Churn in
            (a, kind, pg, v))
          raw_ops
      in
      List.for_all
        (fun (steal, cluster) -> run_scenario ~steal ~cluster (nchildren, ops))
        [ (true, true); (true, false); (false, true); (false, false) ])

let () =
  Alcotest.run "copy_engine"
    [
      ( "copy-engine",
        [
          Alcotest.test_case "chain depth bounded over generations" `Quick
            test_chain_depth_bounded;
          Alcotest.test_case "steal/cluster toggles gate the stats" `Quick
            test_steal_and_cluster_toggles;
          Alcotest.test_case "terminate-path collapse" `Quick test_terminate_path_collapse;
          Alcotest.test_case "object cache LRU eviction" `Quick test_object_cache_lru;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest copy_engine_prop ]);
    ]
