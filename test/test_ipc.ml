(* Tests for ports, port spaces, messages, and the Table 3-1/3-2
   transport. *)

module Engine = Mach_sim.Engine
module Net = Mach_hw.Net
module Machine = Mach_hw.Machine
module Context = Mach_ipc.Context
module Port = Mach_ipc.Port
module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport

let check = Alcotest.check

let make_ctx () =
  let eng = Engine.create () in
  let net = Net.create eng ~latency_us:100.0 ~us_per_byte:1.0 () in
  let ctx = Context.create eng net in
  (eng, net, ctx)

let node ?(host = 0) () =
  {
    Transport.node_host = host;
    node_params = Machine.uniprocessor;
    node_page_size = 4096;
    node_stats = Transport.fresh_ipc_stats ();
    node_sched = None;
    node_handoff_enabled = true;
    node_trace = None;
  }

let data s = Message.Data (Bytes.of_string s)

let in_sim eng f =
  let result = ref None in
  Engine.spawn eng ~name:"test-body" (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "test body blocked forever"

(* ---- ports ---------------------------------------------------------------- *)

let test_port_identity () =
  let _, _, ctx = make_ctx () in
  let a = Port.create ctx ~home:0 () in
  let b = Port.create ctx ~home:0 () in
  Alcotest.(check bool) "distinct ids" true (Port.id a <> Port.id b);
  Alcotest.(check bool) "equal self" true (Port.equal a a);
  Alcotest.(check bool) "not equal other" false (Port.equal a b)

let test_port_death_hooks () =
  let _, _, ctx = make_ctx () in
  let p = Port.create ctx ~home:0 () in
  let fired = ref [] in
  let h1 = Port.on_death p (fun () -> fired := 1 :: !fired) in
  let _h2 = Port.on_death p (fun () -> fired := 2 :: !fired) in
  Port.cancel_on_death p h1;
  Port.destroy p;
  check Alcotest.(list int) "only live hook" [ 2 ] !fired;
  Alcotest.(check bool) "dead" false (Port.alive p);
  (* Hook on dead port fires immediately. *)
  let fired_now = ref false in
  ignore (Port.on_death p (fun () -> fired_now := true));
  Alcotest.(check bool) "immediate" true !fired_now;
  (* Idempotent destroy. *)
  Port.destroy p

let test_port_backlog_accessors () =
  let _, _, ctx = make_ctx () in
  let p = Port.create ctx ~home:0 ~backlog:5 () in
  check Alcotest.int "backlog" 5 (Port.backlog p);
  Port.set_backlog p 9;
  check Alcotest.int "updated" 9 (Port.backlog p)

(* ---- message accessors ----------------------------------------------------- *)

let test_message_accounting () =
  let _, _, ctx = make_ctx () in
  let dest = Port.create ctx ~home:0 () in
  let cap = Port.create ctx ~home:0 () in
  let msg =
    Message.make ~dest
      [
        data "12345";
        Message.Caps [ { Message.cap_port = cap; cap_right = Message.Send_right } ];
        Message.Ool { Message.ool_data = Bytes.create 100; transfer = Message.Copy_transfer };
        Message.Ool { Message.ool_data = Bytes.create 200; transfer = Message.Map_transfer };
        Message.Ool_region { Message.src_task = 1; src_addr = 0; region_size = 300 };
      ]
  in
  check Alcotest.int "inline = data + copy-ool" 105 (Message.inline_bytes msg);
  check Alcotest.int "mapped = map-ool + region" 500 (Message.mapped_bytes msg);
  check Alcotest.int "total" 605 (Message.total_bytes msg);
  check Alcotest.int "caps" 1 (List.length (Message.caps msg));
  check Alcotest.string "data_exn" "12345" (Bytes.to_string (Message.data_exn msg));
  check Alcotest.int "ool payloads" 2 (List.length (Message.ool_payloads msg));
  check Alcotest.int "ool regions" 1 (List.length (Message.ool_regions msg))

(* ---- port space ------------------------------------------------------------- *)

let test_space_allocate_lookup () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  Alcotest.(check bool) "receive right" true (Port_space.has_receive sp n);
  Alcotest.(check bool) "send right" true (Port_space.has_send sp n);
  let p = Port_space.lookup_exn sp n in
  check Alcotest.(option int) "name_of" (Some n) (Port_space.name_of sp p)

let test_space_rights_coalesce () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let p = Port.create ctx ~home:0 () in
  let n1 = Port_space.insert sp p Message.Send_right in
  let n2 = Port_space.insert sp p Message.Send_right in
  check Alcotest.int "same name" n1 n2;
  Alcotest.(check bool) "no receive yet" false (Port_space.has_receive sp n1);
  let n3 = Port_space.insert sp p Message.Receive_right in
  check Alcotest.int "still same name" n1 n3;
  Alcotest.(check bool) "receive now" true (Port_space.has_receive sp n1)

let test_space_deallocate_receive_destroys () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  let p = Port_space.lookup_exn sp n in
  Port_space.deallocate sp n;
  Alcotest.(check bool) "port destroyed" false (Port.alive p);
  check Alcotest.(option Alcotest.reject) "name gone"
    None
    (Option.map (fun _ -> assert false) (Port_space.lookup sp n))

let test_space_death_notification () =
  let eng, _, ctx = make_ctx () in
  let holder = Port_space.create ctx ~home:0 in
  let owner = Port_space.create ctx ~home:0 in
  let n_owner = Port_space.allocate owner () in
  let p = Port_space.lookup_exn owner n_owner in
  let n_holder = Port_space.insert holder p Message.Send_right in
  in_sim eng (fun () ->
      (* Owner drops the receive right: the holder must be notified. *)
      Port_space.deallocate owner n_owner;
      match Port_space.next_notification holder ~timeout:1000.0 () with
      | Some (Port_space.Port_deleted n) -> check Alcotest.int "right name" n_holder n
      | None -> Alcotest.fail "expected death notification")

let test_space_enable_disable () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n1 = Port_space.allocate sp () in
  let n2 = Port_space.allocate sp () in
  Port_space.enable sp n1;
  Port_space.enable sp n2;
  check Alcotest.(list int) "both enabled" [ n1; n2 ] (Port_space.enabled sp);
  Port_space.disable sp n1;
  check Alcotest.(list int) "one left" [ n2 ] (Port_space.enabled sp)

let test_space_enable_requires_receive () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let p = Port.create ctx ~home:0 () in
  let n = Port_space.insert sp p Message.Send_right in
  Alcotest.check_raises "no receive right" (Invalid_argument "Port_space.enable: no receive right")
    (fun () -> Port_space.enable sp n)

let test_space_messages_waiting () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n1 = Port_space.allocate sp () in
  let n2 = Port_space.allocate sp () in
  let n3 = Port_space.allocate sp () in
  Port_space.enable sp n1;
  Port_space.enable sp n2;
  (* n3 deliberately not enabled. *)
  let p2 = Port_space.lookup_exn sp n2 in
  let p3 = Port_space.lookup_exn sp n3 in
  in_sim eng (fun () ->
      ignore (Transport.send (node ()) (Message.make ~dest:p2 [ data "a" ]));
      ignore (Transport.send (node ()) (Message.make ~dest:p3 [ data "b" ]));
      (* port_messages: enabled ports with queued messages only. *)
      check Alcotest.(list int) "only enabled, queued ports" [ n2 ]
        (Port_space.messages_waiting sp))

let test_space_status () =
  let _, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp ~backlog:7 () in
  match Port_space.status sp n with
  | Some st ->
    check Alcotest.int "queued" 0 st.Port_space.st_queued;
    check Alcotest.int "backlog" 7 st.Port_space.st_backlog;
    Alcotest.(check bool) "receive" true st.Port_space.st_has_receive
  | None -> Alcotest.fail "status missing"

(* ---- transport --------------------------------------------------------------- *)

let test_send_receive_roundtrip () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p [ data "ping" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
      match Transport.receive (node ()) sp ~from:(`Port n) () with
      | Ok msg -> check Alcotest.string "payload" "ping" (Bytes.to_string (Message.data_exn msg))
      | Error _ -> Alcotest.fail "receive failed")

let test_send_to_dead_port () =
  let eng, _, ctx = make_ctx () in
  let p = Port.create ctx ~home:0 () in
  Port.destroy p;
  in_sim eng (fun () ->
      match Transport.send (node ()) (Message.make ~dest:p [ data "x" ]) with
      | Error Transport.Send_invalid_port -> ()
      | Ok () | Error _ -> Alcotest.fail "expected invalid port")

let test_send_timeout_on_full_queue () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp ~backlog:1 () in
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p [ data "1" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first send");
      match Transport.send (node ()) ~timeout:50.0 (Message.make ~dest:p [ data "2" ]) with
      | Error Transport.Send_timed_out -> ()
      | Ok () | Error _ -> Alcotest.fail "expected timeout")

let test_receive_timeout () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  in_sim eng (fun () ->
      match Transport.receive (node ()) sp ~from:(`Port n) ~timeout:40.0 () with
      | Error Transport.Recv_timed_out -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected timeout")

let test_receive_requires_receive_right () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let p = Port.create ctx ~home:0 () in
  let n = Port_space.insert sp p Message.Send_right in
  in_sim eng (fun () ->
      match Transport.receive (node ()) sp ~from:(`Port n) () with
      | Error Transport.Recv_invalid_port -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected invalid port")

let test_receive_any_from_enabled_set () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n1 = Port_space.allocate sp () in
  let n2 = Port_space.allocate sp () in
  Port_space.enable sp n1;
  Port_space.enable sp n2;
  let p2 = Port_space.lookup_exn sp n2 in
  in_sim eng (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p2 [ data "via-2" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send");
      match Transport.receive (node ()) sp ~from:`Any () with
      | Ok msg -> check Alcotest.string "right message" "via-2" (Bytes.to_string (Message.data_exn msg))
      | Error _ -> Alcotest.fail "receive-any failed")

let test_receive_any_blocks_until_arrival () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  Port_space.enable sp n;
  let p = Port_space.lookup_exn sp n in
  let got_at = ref 0.0 in
  Engine.spawn eng ~name:"receiver" (fun () ->
      match Transport.receive (node ()) sp ~from:`Any () with
      | Ok _ -> got_at := Engine.now eng
      | Error _ -> ());
  Engine.spawn eng ~name:"sender" (fun () ->
      Engine.sleep 500.0;
      ignore (Transport.send (node ()) (Message.make ~dest:p [ data "late" ])));
  Engine.run eng;
  Alcotest.(check bool) "woken after send" true (!got_at >= 500.0)

let test_caps_inserted_on_receive () =
  let eng, _, ctx = make_ctx () in
  let sender_sp = Port_space.create ctx ~home:0 in
  let recv_sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate recv_sp () in
  let dest = Port_space.lookup_exn recv_sp n in
  let gift_name = Port_space.allocate sender_sp () in
  let gift = Port_space.lookup_exn sender_sp gift_name in
  in_sim eng (fun () ->
      (match
         Transport.send (node ())
           (Message.make ~dest
              [ Message.Caps [ { Message.cap_port = gift; cap_right = Message.Send_right } ] ])
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send");
      match Transport.receive (node ()) recv_sp ~from:(`Port n) () with
      | Ok _ ->
        (* The receiver's space now holds a send right on the gift. *)
        (match Port_space.name_of recv_sp gift with
        | Some gname -> Alcotest.(check bool) "send right" true (Port_space.has_send recv_sp gname)
        | None -> Alcotest.fail "cap not inserted")
      | Error _ -> Alcotest.fail "receive")

let test_rpc () =
  let eng, _, ctx = make_ctx () in
  let client_sp = Port_space.create ctx ~home:0 in
  let server_sp = Port_space.create ctx ~home:0 in
  let svc_n = Port_space.allocate server_sp () in
  let svc = Port_space.lookup_exn server_sp svc_n in
  let reply_n = Port_space.allocate client_sp () in
  let reply = Port_space.lookup_exn client_sp reply_n in
  Engine.spawn eng ~name:"server" (fun () ->
      match Transport.receive (node ()) server_sp ~from:(`Port svc_n) () with
      | Ok msg ->
        let r = Option.get msg.Message.header.reply in
        ignore (Transport.send (node ()) (Message.make ~dest:r [ data "pong" ]))
      | Error _ -> ());
  in_sim eng (fun () ->
      match Transport.rpc (node ()) client_sp (Message.make ~reply ~dest:svc [ data "ping" ]) () with
      | Ok resp -> check Alcotest.string "reply" "pong" (Bytes.to_string (Message.data_exn resp))
      | Error _ -> Alcotest.fail "rpc failed")

let test_cross_host_latency () =
  let eng, _, ctx = make_ctx () in
  let remote_sp = Port_space.create ctx ~home:1 in
  let n = Port_space.allocate remote_sp () in
  let p = Port_space.lookup_exn remote_sp n in
  let sent_at = ref 0.0 and got_at = ref 0.0 in
  Engine.spawn eng ~name:"remote-receiver" (fun () ->
      match Transport.receive (node ~host:1 ()) remote_sp ~from:(`Port n) () with
      | Ok _ -> got_at := Engine.now eng
      | Error _ -> ());
  Engine.spawn eng ~name:"local-sender" (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p [ data "wire" ]) with
      | Ok () -> sent_at := Engine.now eng
      | Error _ -> ()));
  Engine.run eng;
  (* The net was created with 100us latency + 1us/byte. *)
  Alcotest.(check bool) "network delay applied" true (!got_at -. !sent_at >= 100.0)

let test_send_cost_scales_with_mode () =
  let n = node () in
  let _, _, ctx = make_ctx () in
  let dest = Port.create ctx ~home:0 () in
  let big = Bytes.create 65536 in
  let copy_msg =
    Message.make ~dest [ Message.Ool { Message.ool_data = big; transfer = Message.Copy_transfer } ]
  in
  let map_msg =
    Message.make ~dest [ Message.Ool { Message.ool_data = big; transfer = Message.Map_transfer } ]
  in
  let c = Transport.send_cost_us n copy_msg in
  let m = Transport.send_cost_us n map_msg in
  Alcotest.(check bool) "copy much dearer than map" true (c > 3.0 *. m)

let test_receiver_woken_by_port_death () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  let outcome = ref `Pending in
  Engine.spawn eng ~name:"blocked-receiver" (fun () ->
      match Transport.receive (node ()) sp ~from:(`Port n) () with
      | Ok _ -> outcome := `Got_message
      | Error Transport.Recv_invalid_port -> outcome := `Port_died
      | Error _ -> outcome := `Other);
  Engine.spawn eng ~name:"killer" (fun () ->
      Engine.sleep 100.0;
      Port_space.deallocate sp n);
  Engine.run eng;
  (match !outcome with
  | `Port_died -> ()
  | `Pending -> Alcotest.fail "receiver still blocked after port death"
  | `Got_message | `Other -> Alcotest.fail "wrong outcome");
  check Alcotest.int "no leaked blocked threads" 0 (Engine.live eng)

let test_blocked_sender_woken_by_port_death () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp ~backlog:1 () in
  let p = Port_space.lookup_exn sp n in
  let outcome = ref `Pending in
  Engine.spawn eng ~name:"blocked-sender" (fun () ->
      ignore (Transport.send (node ()) (Message.make ~dest:p [ data "1" ]));
      match Transport.send (node ()) (Message.make ~dest:p [ data "2" ]) with
      | Ok () -> outcome := `Sent
      | Error Transport.Send_invalid_port -> outcome := `Port_died
      | Error _ -> outcome := `Other);
  Engine.spawn eng ~name:"killer" (fun () ->
      Engine.sleep 100.0;
      Port_space.deallocate sp n);
  Engine.run eng;
  match !outcome with
  | `Port_died -> ()
  | `Pending -> Alcotest.fail "sender still blocked after port death"
  | `Sent | `Other -> Alcotest.fail "wrong outcome"

(* ---- ready-port FIFO (O(1) receive-any) ----------------------------------- *)

let test_receive_any_arrival_order () =
  (* receive-any must drain ports in message-arrival order, not name
     order: the ready FIFO remembers which port went non-empty first. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n1 = Port_space.allocate sp () in
  let n2 = Port_space.allocate sp () in
  let n3 = Port_space.allocate sp () in
  List.iter (Port_space.enable sp) [ n1; n2; n3 ];
  let p1 = Port_space.lookup_exn sp n1 in
  let p2 = Port_space.lookup_exn sp n2 in
  let p3 = Port_space.lookup_exn sp n3 in
  in_sim eng (fun () ->
      let nd = node () in
      (* Sends are sequential in simulated time: arrival order is c, a, b. *)
      ignore (Transport.send nd (Message.make ~dest:p3 [ data "c" ]));
      ignore (Transport.send nd (Message.make ~dest:p1 [ data "a" ]));
      ignore (Transport.send nd (Message.make ~dest:p2 [ data "b" ]));
      let next () =
        match Transport.receive nd sp ~from:`Any () with
        | Ok msg -> Bytes.to_string (Message.data_exn msg)
        | Error _ -> Alcotest.fail "receive-any failed"
      in
      let r1 = next () in
      let r2 = next () in
      let r3 = next () in
      check Alcotest.(list string) "arrival order" [ "c"; "a"; "b" ] [ r1; r2; r3 ])

let test_receive_any_same_port_drains () =
  (* Two messages on one ready port: the port is requeued after the
     first receive so the second is still reachable by receive-any. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  Port_space.enable sp n;
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      let nd = node () in
      ignore (Transport.send nd (Message.make ~dest:p [ data "first" ]));
      ignore (Transport.send nd (Message.make ~dest:p [ data "second" ]));
      let next () =
        match Transport.receive nd sp ~from:`Any () with
        | Ok msg -> Bytes.to_string (Message.data_exn msg)
        | Error _ -> Alcotest.fail "receive-any failed"
      in
      let r1 = next () in
      let r2 = next () in
      check Alcotest.(list string) "fifo within port" [ "first"; "second" ] [ r1; r2 ])

let test_enable_seeds_ready () =
  (* A port that already has queued messages when it is enabled must
     become receivable by receive-any without a fresh arrival. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      let nd = node () in
      ignore (Transport.send nd (Message.make ~dest:p [ data "early" ]));
      Port_space.enable sp n;
      match Transport.receive nd sp ~from:`Any ~timeout:10.0 () with
      | Ok msg -> check Alcotest.string "queued message found" "early"
                    (Bytes.to_string (Message.data_exn msg))
      | Error _ -> Alcotest.fail "receive-any missed the pre-enable message")

let test_no_spurious_wakeups () =
  (* The thundering-herd check: many idle enabled ports, several blocked
     receive-any waiters, one message. Exactly one waiter must wake and
     consume it; nobody may wake to find nothing ready. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let names = List.init 16 (fun _ -> Port_space.allocate sp ()) in
  List.iter (Port_space.enable sp) names;
  let target = Port_space.lookup_exn sp (List.nth names 11) in
  let nd = node () in
  let got = ref 0 and timed_out = ref 0 in
  for i = 1 to 3 do
    Engine.spawn eng ~name:(Printf.sprintf "waiter-%d" i) (fun () ->
        match Transport.receive nd sp ~from:`Any ~timeout:5_000.0 () with
        | Ok _ -> incr got
        | Error Transport.Recv_timed_out -> incr timed_out
        | Error _ -> ())
  done;
  Engine.spawn eng ~name:"sender" (fun () ->
      Engine.sleep 200.0;
      ignore (Transport.send (node ()) (Message.make ~dest:target [ data "one" ])));
  Engine.run eng;
  check Alcotest.int "exactly one winner" 1 !got;
  check Alcotest.int "losers timed out quietly" 2 !timed_out;
  check Alcotest.int "zero spurious wakeups" 0 nd.Transport.node_stats.Transport.s_spurious_wakeups;
  check Alcotest.int "no leaked threads" 0 (Engine.live eng)

let test_rpc_fastpath_counter () =
  (* A small fully-inline message sent to a port with a blocked receiver
     hands off directly; a large one takes the ordinary queue path. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp () in
  let p = Port_space.lookup_exn sp n in
  let nd = node () in
  let received = ref 0 in
  Engine.spawn eng ~name:"receiver" (fun () ->
      for _ = 1 to 2 do
        match Transport.receive nd sp ~from:(`Port n) () with
        | Ok _ -> incr received
        | Error _ -> ()
      done);
  Engine.spawn eng ~name:"sender" (fun () ->
      Engine.sleep 50.0;
      (* Receiver is blocked: small inline message takes the fast path. *)
      ignore (Transport.send nd (Message.make ~dest:p [ data "hi" ]));
      Engine.sleep 50.0;
      (* Past the inline threshold: normal path, counter unchanged. *)
      ignore
        (Transport.send nd
           (Message.make ~dest:p
              [ Message.Data (Bytes.create (Transport.fastpath_inline_bytes + 1)) ])));
  Engine.run eng;
  check Alcotest.int "both delivered" 2 !received;
  check Alcotest.int "one fastpath handoff" 1 nd.Transport.node_stats.Transport.s_rpc_fastpath

let test_remote_burst_single_daemon () =
  (* A burst of cross-host sends drains through one per-destination
     delivery daemon (not a thread per message), stays in order even
     when the destination queue is smaller than the burst, and the
     daemon exits once idle. *)
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:1 in
  let n = Port_space.allocate sp ~backlog:4 () in
  let p = Port_space.lookup_exn sp n in
  let burst = 20 in
  let received = ref [] in
  Engine.spawn eng ~name:"sender" (fun () ->
      let nd = node ~host:0 () in
      for i = 1 to burst do
        ignore (Transport.send nd (Message.make ~dest:p [ data (string_of_int i) ]))
      done);
  Engine.spawn eng ~name:"receiver" (fun () ->
      let nd = node ~host:1 () in
      for _ = 1 to burst do
        (* Slow consumer: the daemon must block on the full port queue
           and resume, not drop or reorder. *)
        Engine.sleep 30.0;
        match Transport.receive nd sp ~from:(`Port n) () with
        | Ok msg -> received := Bytes.to_string (Message.data_exn msg) :: !received
        | Error _ -> ()
      done);
  Engine.run eng;
  check Alcotest.(list string) "burst in order"
    (List.init burst (fun i -> string_of_int (i + 1)))
    (List.rev !received);
  check Alcotest.int "daemon drained its backlog" 0 (Context.delivery_backlog ctx ~dst:1);
  check Alcotest.int "daemon exited when idle" 0 (Engine.live eng)

(* qcheck: per-port FIFO — any interleaving of sends from multiple
   senders is received in a per-sender order-preserving sequence. *)
let fifo_prop =
  let open QCheck2 in
  Test.make ~name:"per-sender message order preserved" ~count:50
    Gen.(list_size (int_range 1 20) (int_range 0 2))
    (fun send_plan ->
      let eng, _, ctx = make_ctx () in
      let sp = Port_space.create ctx ~home:0 in
      let n = Port_space.allocate sp ~backlog:64 () in
      let p = Port_space.lookup_exn sp n in
      (* Three senders; the plan dictates global send order. Per-sender
         subsequences must arrive in order. *)
      let seq = Array.make 3 0 in
      let received = ref [] in
      Engine.spawn eng ~name:"senders" (fun () ->
          List.iter
            (fun sender ->
              let k = seq.(sender) in
              seq.(sender) <- k + 1;
              let e = Mach_util.Codec.Enc.create () in
              Mach_util.Codec.Enc.int e sender;
              Mach_util.Codec.Enc.int e k;
              ignore
                (Transport.send (node ())
                   (Message.make ~dest:p [ Message.Data (Mach_util.Codec.Enc.to_bytes e) ])))
            send_plan);
      Engine.spawn eng ~name:"receiver" (fun () ->
          for _ = 1 to List.length send_plan do
            match Transport.receive (node ()) sp ~from:(`Port n) () with
            | Ok msg ->
              let d = Mach_util.Codec.Dec.of_bytes (Message.data_exn msg) in
              let sender = Mach_util.Codec.Dec.int d in
              let k = Mach_util.Codec.Dec.int d in
              received := (sender, k) :: !received
            | Error _ -> ()
          done);
      Engine.run eng;
      let received = List.rev !received in
      (* Check per-sender monotonicity. *)
      let last = Array.make 3 (-1) in
      List.for_all
        (fun (sender, k) ->
          let ok = k = last.(sender) + 1 in
          last.(sender) <- k;
          ok)
        received
      && List.length received = List.length send_plan)

let () =
  Alcotest.run "ipc"
    [
      ( "port",
        [
          Alcotest.test_case "identity" `Quick test_port_identity;
          Alcotest.test_case "death hooks" `Quick test_port_death_hooks;
          Alcotest.test_case "backlog accessors" `Quick test_port_backlog_accessors;
        ] );
      ("message", [ Alcotest.test_case "size accounting" `Quick test_message_accounting ]);
      ( "port_space",
        [
          Alcotest.test_case "allocate and lookup" `Quick test_space_allocate_lookup;
          Alcotest.test_case "rights coalesce" `Quick test_space_rights_coalesce;
          Alcotest.test_case "deallocating receive destroys port" `Quick
            test_space_deallocate_receive_destroys;
          Alcotest.test_case "death notification" `Quick test_space_death_notification;
          Alcotest.test_case "enable/disable" `Quick test_space_enable_disable;
          Alcotest.test_case "enable requires receive" `Quick test_space_enable_requires_receive;
          Alcotest.test_case "port_messages" `Quick test_space_messages_waiting;
          Alcotest.test_case "status" `Quick test_space_status;
        ] );
      ( "transport",
        [
          Alcotest.test_case "send/receive roundtrip" `Quick test_send_receive_roundtrip;
          Alcotest.test_case "send to dead port" `Quick test_send_to_dead_port;
          Alcotest.test_case "send timeout on full queue" `Quick test_send_timeout_on_full_queue;
          Alcotest.test_case "receive timeout" `Quick test_receive_timeout;
          Alcotest.test_case "receive needs receive right" `Quick test_receive_requires_receive_right;
          Alcotest.test_case "receive-any from enabled set" `Quick test_receive_any_from_enabled_set;
          Alcotest.test_case "receive-any blocks until arrival" `Quick
            test_receive_any_blocks_until_arrival;
          Alcotest.test_case "caps inserted on receive" `Quick test_caps_inserted_on_receive;
          Alcotest.test_case "rpc" `Quick test_rpc;
          Alcotest.test_case "cross-host latency" `Quick test_cross_host_latency;
          Alcotest.test_case "copy vs map send cost" `Quick test_send_cost_scales_with_mode;
          Alcotest.test_case "receiver woken by port death" `Quick
            test_receiver_woken_by_port_death;
          Alcotest.test_case "blocked sender woken by port death" `Quick
            test_blocked_sender_woken_by_port_death;
          QCheck_alcotest.to_alcotest fifo_prop;
        ] );
      ( "ready-fifo",
        [
          Alcotest.test_case "receive-any in arrival order" `Quick
            test_receive_any_arrival_order;
          Alcotest.test_case "same port drains fully" `Quick test_receive_any_same_port_drains;
          Alcotest.test_case "enable seeds ready queue" `Quick test_enable_seeds_ready;
          Alcotest.test_case "no spurious wakeups" `Quick test_no_spurious_wakeups;
          Alcotest.test_case "rpc fastpath counter" `Quick test_rpc_fastpath_counter;
          Alcotest.test_case "remote burst through one daemon" `Quick
            test_remote_burst_single_daemon;
        ] );
    ]
