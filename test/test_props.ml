(* System-level property tests: copy-on-write isolation under random
   interleavings, shared-memory coherence under random schedules, and
   WAL recovery at random crash points. *)

open Mach
module Rng = Mach_util.Rng
module Netmem = Mach_pagers.Netmem
module Camelot = Mach_pagers.Camelot

let page = 4096

(* --- COW isolation: parent and a set of forked children performing a
   random interleaving of writes must end with exactly the bytes each
   one wrote (plus inherited data where untouched). --- *)

let cow_isolation_prop =
  let open QCheck2 in
  let gen =
    Gen.(
      pair (int_range 1 3) (* children *)
        (list_size (int_range 1 30)
           (tup3 (int_range 0 3) (* actor: 0 = parent *)
              (int_range 0 7) (* page *)
              (int_range 0 255) (* value *))))
  in
  Test.make ~name:"fork COW isolation under random write interleavings" ~count:25 gen
    (fun (nchildren, writes) ->
      let sys = Kernel.create_system () in
      let verdict = ref true in
      Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
          let parent = Task.create sys.Kernel.kernel ~name:"p" () in
          let done_ = Ivar.create () in
          ignore
            (Thread.spawn parent ~name:"p.main" (fun () ->
                 let addr = Syscalls.vm_allocate parent ~size:(8 * page) ~anywhere:true () in
                 (* Seed every page with a known value. *)
                 for pg = 0 to 7 do
                   ignore
                     (Syscalls.write_bytes parent ~addr:(addr + (pg * page)) (Bytes.make 1 '\001') ())
                 done;
                 let children =
                   List.init nchildren (fun i ->
                       Task.create sys.Kernel.kernel ~parent ~name:(Printf.sprintf "c%d" i) ())
                 in
                 let tasks = Array.of_list (parent :: children) in
                 (* A model of each task's expected memory. *)
                 let model = Array.init (nchildren + 1) (fun _ -> Array.make 8 1) in
                 List.iter
                   (fun (actor, pg, v) ->
                     let actor = actor mod (nchildren + 1) in
                     let t = tasks.(actor) in
                     (match
                        Syscalls.write_bytes t ~addr:(addr + (pg * page))
                          (Bytes.make 1 (Char.chr v)) ()
                      with
                     | Ok () -> ()
                     | Error _ -> verdict := false);
                     model.(actor).(pg) <- v)
                   writes;
                 (* Verify every task sees exactly its model. *)
                 Array.iteri
                   (fun actor t ->
                     for pg = 0 to 7 do
                       match Syscalls.read_bytes t ~addr:(addr + (pg * page)) ~len:1 () with
                       | Ok b ->
                         if Bytes.get_uint8 b 0 <> model.(actor).(pg) then verdict := false
                       | Error _ -> verdict := false
                     done)
                   tasks;
                 Ivar.fill done_ ()));
          ignore done_);
      Engine.run sys.Kernel.engine;
      !verdict)

(* --- Netmem coherence: alternating sequential operations from two
   hosts; after any write completes, the next read from the other host
   must see it (operations are sequential, so the protocol's
   invalidation must deliver exact coherence). --- *)

let netmem_coherence_prop =
  let open QCheck2 in
  let gen =
    Gen.(list_size (int_range 1 25) (tup3 bool (int_range 0 3) (int_range 1 255)))
  in
  Test.make ~name:"netmem sequential coherence across hosts" ~count:20 gen (fun ops ->
      let cluster = Kernel.create_cluster ~hosts:2 () in
      let verdict = ref true in
      Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
          let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
          let region = Netmem.create_region nm ~size:(4 * page) in
          let a = Task.create cluster.Kernel.c_kernels.(0) ~name:"a" () in
          let b = Task.create cluster.Kernel.c_kernels.(1) ~name:"b" () in
          ignore
            (Thread.spawn a ~name:"driver" (fun () ->
                 let a_addr =
                   Syscalls.vm_allocate_with_pager a ~size:(4 * page) ~anywhere:true
                     ~memory_object:region ~offset:0 ()
                 in
                 let b_addr =
                   Syscalls.vm_allocate_with_pager b ~size:(4 * page) ~anywhere:true
                     ~memory_object:region ~offset:0 ()
                 in
                 let model = Array.make 4 0 in
                 List.iter
                   (fun (use_a, pg, v) ->
                     let t, base = if use_a then (a, a_addr) else (b, b_addr) in
                     (match
                        Syscalls.write_bytes t ~addr:(base + (pg * page)) (Bytes.make 1 (Char.chr v))
                          ~policy:(Fault.Abort_after 30_000_000.0) ()
                      with
                     | Ok () -> model.(pg) <- v
                     | Error _ -> verdict := false);
                     (* The *other* host reads it back immediately. *)
                     let ot, obase = if use_a then (b, b_addr) else (a, a_addr) in
                     match
                       Syscalls.read_bytes ot ~addr:(obase + (pg * page)) ~len:1
                         ~policy:(Fault.Abort_after 30_000_000.0) ()
                     with
                     | Ok bytes -> if Bytes.get_uint8 bytes 0 <> model.(pg) then verdict := false
                     | Error _ -> verdict := false)
                   ops)));
      Engine.run cluster.Kernel.c_engine;
      !verdict)

(* --- Hinted map lookup: Vm_map keeps a sorted entry index plus a
   last-hit hint; under random allocate/deallocate/protect mutations
   every lookup must agree with a naive linear scan over the entry
   list, and the map invariants must hold after every step. --- *)

let naive_lookup map ~addr ~write =
  let needed = if write then Prot.write else Prot.read in
  let find_covering es a =
    List.find_opt (fun e -> a >= e.Vm_map.va_start && a < e.Vm_map.va_end) es
  in
  let rec direct_of e a =
    match e.Vm_map.backing with
    | Vm_map.Direct d -> Some (d.Vm_map.d_obj, d.Vm_map.d_offset + (a - e.Vm_map.va_start))
    | Vm_map.Shared { share_map; sh_offset } -> (
      let sh = sh_offset + (a - e.Vm_map.va_start) in
      match find_covering (Vm_map.entries share_map) sh with
      | Some se -> direct_of se sh
      | None -> None)
  in
  match find_covering (Vm_map.entries map) addr with
  | None -> Error `Invalid_address
  | Some e ->
    if not (Mach_hw.Prot.subset needed e.Vm_map.protection) then Error `Protection
    else (
      match direct_of e addr with
      | Some (obj, off) -> Ok (obj.Vm_types.obj_id, page * (off / page))
      | None -> Error `Invalid_address)

let hinted_lookup_prop =
  let open QCheck2 in
  let gen =
    Gen.(
      list_size (int_range 1 40)
        (tup4 (int_range 0 4) (* op kind *)
           (int_range 0 60) (* page slot *)
           (int_range 1 6) (* span in pages *)
           (int_range 0 63) (* extra probe slot *)))
  in
  Test.make ~name:"hinted Vm_map.lookup agrees with linear scan under mutation" ~count:40 gen
    (fun ops ->
      let sys = Kernel.create_system () in
      let verdict = ref true in
      Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
          let task = Task.create sys.Kernel.kernel ~name:"mapper" () in
          let map = Task.map task in
          let agree addr write =
            let expected = naive_lookup map ~addr ~write in
            let actual =
              match Vm_map.lookup map ~addr ~write with
              | Ok lk -> Ok (lk.Vm_map.lk_obj.Vm_types.obj_id, lk.Vm_map.lk_offset)
              | Error _ as e -> e
            in
            let same =
              match (expected, actual) with
              | Ok a, Ok b -> a = b
              | Error `Invalid_address, Error `Invalid_address -> true
              | Error `Protection, Error `Protection -> true
              | _ -> false
            in
            if not same then verdict := false
          in
          List.iter
            (fun (kind, slot, span, probe) ->
              let a = (slot + 1) * page in
              let size = span * page in
              (match kind with
              | 0 | 3 -> (
                try ignore (Vm_map.allocate map ~addr:a ~size ~anywhere:false ())
                with Vm_map.No_space -> ())
              | 1 -> Vm_map.deallocate map ~addr:a ~size
              | 2 -> (
                try Vm_map.protect map ~addr:a ~size ~set_max:false Prot.read
                with Vm_map.Bad_address _ -> ())
              | _ -> (
                try Vm_map.protect map ~addr:a ~size ~set_max:false Prot.rw
                with Vm_map.Bad_address _ -> ()));
              (match Vm_map.check_invariants map with
              | Ok () -> ()
              | Error msg ->
                Printf.eprintf "invariant violated: %s\n" msg;
                verdict := false);
              (* Probe around the mutation and at an unrelated slot; the
                 repeated nearby probes exercise the hint, the far one
                 forces misses/revalidation. *)
              List.iter
                (fun addr ->
                  agree addr false;
                  agree addr true)
                [ a; a + 123; a + size - 1; (probe * page) + 17 ])
            ops);
      Engine.run sys.Kernel.engine;
      !verdict)

(* --- Camelot: commit a random number of transactions, leave one
   uncommitted, crash, recover — committed values survive exactly. --- *)

let camelot_recovery_prop =
  let open QCheck2 in
  let gen = Gen.(list_size (int_range 1 6) (pair (int_range 0 15) (int_range 1 255))) in
  Test.make ~name:"camelot recovery preserves exactly committed state" ~count:15 gen
    (fun committed_writes ->
      let scratch = Engine.create () in
      let log_disk = Disk.create scratch ~name:"plog" ~blocks:256 ~block_size:page () in
      let data_disk = Disk.create scratch ~name:"pdata" ~blocks:256 ~block_size:page () in
      let verdict = ref true in
      (* Epoch 1: committed writes + one uncommitted poison write. *)
      let sys = Kernel.create_system () in
      let ld = Disk.reattach log_disk sys.Kernel.engine in
      let dd = Disk.reattach data_disk sys.Kernel.engine in
      Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
          let cam = Camelot.start sys.Kernel.kernel ~log_disk:ld ~data_disk:dd ~format:true () in
          let client = Task.create sys.Kernel.kernel ~name:"c" () in
          ignore
            (Thread.spawn client ~name:"c.main" (fun () ->
                 let server = Camelot.service_port cam in
                 match Camelot.Client.map_segment client ~server "s" ~size:page with
                 | Error _ -> verdict := false
                 | Ok base ->
                   List.iter
                     (fun (slot, v) ->
                       match Camelot.Client.begin_txn client ~server with
                       | Error _ -> verdict := false
                       | Ok tid -> (
                         (match
                            Camelot.Client.store client ~server tid ~segment:"s" ~base
                              ~offset:(slot * 16) (Bytes.make 1 (Char.chr v))
                          with
                         | Ok () -> ()
                         | Error _ -> verdict := false);
                         match Camelot.Client.commit client ~server tid with
                         | Ok () -> ()
                         | Error _ -> verdict := false))
                     committed_writes;
                   (* Uncommitted poison at slot 63. *)
                   (match Camelot.Client.begin_txn client ~server with
                   | Ok tid ->
                     ignore
                       (Camelot.Client.store client ~server tid ~segment:"s" ~base
                          ~offset:(63 * 16) (Bytes.make 1 '\255'))
                   | Error _ -> verdict := false))));
      Engine.run sys.Kernel.engine;
      (* Crash; epoch 2 recovers. *)
      let sys2 = Kernel.create_system () in
      let ld2 = Disk.reattach log_disk sys2.Kernel.engine in
      let dd2 = Disk.reattach data_disk sys2.Kernel.engine in
      Engine.spawn sys2.Kernel.engine ~name:"setup" (fun () ->
          let cam = Camelot.start sys2.Kernel.kernel ~log_disk:ld2 ~data_disk:dd2 ~format:false () in
          let client = Task.create sys2.Kernel.kernel ~name:"c2" () in
          ignore
            (Thread.spawn client ~name:"c2.main" (fun () ->
                 let server = Camelot.service_port cam in
                 match Camelot.Client.map_segment client ~server "s" ~size:page with
                 | Error _ -> verdict := false
                 | Ok base ->
                   (* Last committed value per slot. *)
                   let expected = Hashtbl.create 16 in
                   List.iter (fun (slot, v) -> Hashtbl.replace expected slot v) committed_writes;
                   Hashtbl.iter
                     (fun slot v ->
                       match Syscalls.read_bytes client ~addr:(base + (slot * 16)) ~len:1 () with
                       | Ok b -> if Bytes.get_uint8 b 0 <> v then verdict := false
                       | Error _ -> verdict := false)
                     expected;
                   (* The poison never committed. *)
                   (match Syscalls.read_bytes client ~addr:(base + (63 * 16)) ~len:1 () with
                   | Ok b -> if Bytes.get_uint8 b 0 = 255 then verdict := false
                   | Error _ -> verdict := false))));
      Engine.run sys2.Kernel.engine;
      !verdict)

let () =
  Alcotest.run "props"
    [
      ( "system-properties",
        [
          QCheck_alcotest.to_alcotest cow_isolation_prop;
          QCheck_alcotest.to_alcotest hinted_lookup_prop;
          QCheck_alcotest.to_alcotest netmem_coherence_prop;
          QCheck_alcotest.to_alcotest camelot_recovery_prop;
        ] );
    ]
