(* Chaos fabric and reliable remote delivery: fault injection, the
   sequenced/acked channel layer, watchdog channel-down, crash
   propagation, and the Transport.send timeout edge cases. *)

module Engine = Mach_sim.Engine
module Chaos = Mach_sim.Chaos
module Mailbox = Mach_sim.Mailbox
module Net = Mach_hw.Net
module Machine = Mach_hw.Machine
module Context = Mach_ipc.Context
module Port = Mach_ipc.Port
module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport

let check = Alcotest.check

let make_ctx () =
  let eng = Engine.create () in
  let net = Net.create eng ~latency_us:100.0 ~us_per_byte:1.0 () in
  let ctx = Context.create eng net in
  (eng, net, ctx)

(* A faulty two-host fabric: chaos attached, reliable channels on,
   heal/crash/restart hooks wired the way Kernel.create_cluster wires
   them. *)
let make_chaos_ctx ?(seed = 42) plan =
  let eng, net, ctx = make_ctx () in
  let chaos = Chaos.create ~seed () in
  Chaos.set_default_plan chaos plan;
  Net.set_chaos net (Some chaos);
  Context.set_reliable ctx true;
  Chaos.on_heal chaos (fun a b -> Context.reset_link ctx a b);
  Chaos.on_crash chaos (fun host -> ignore (Context.crash_host ctx ~host));
  Chaos.on_restart chaos (fun host -> Context.restart_host ctx ~host);
  (eng, net, ctx, chaos)

let node ?(host = 0) () =
  {
    Transport.node_host = host;
    node_params = Machine.uniprocessor;
    node_page_size = 4096;
    node_stats = Transport.fresh_ipc_stats ();
    node_sched = None;
    node_handoff_enabled = true;
    node_trace = None;
  }

let data s = Message.Data (Bytes.of_string s)

let in_sim eng f =
  let result = ref None in
  Engine.spawn eng ~name:"test-body" (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "test body blocked forever"

let drain_payloads port =
  let rec loop acc =
    match Mailbox.try_recv (Port.queue port) with
    | Some msg -> loop (Bytes.to_string (Message.data_exn msg) :: acc)
    | None -> List.rev acc
  in
  loop []

(* Send [n] numbered messages host 0 -> host 1 and return the payloads
   that arrived, in arrival order. *)
let run_numbered_sends eng ctx ?(n = 24) () =
  let p = Port.create ctx ~home:1 ~backlog:64 () in
  let nd = node () in
  let errors = ref 0 in
  Engine.spawn eng ~name:"sender" (fun () ->
      for i = 1 to n do
        match Transport.send nd (Message.make ~dest:p [ data (string_of_int i) ]) with
        | Ok () -> ()
        | Error _ -> incr errors
      done);
  Engine.run eng;
  (drain_payloads p, !errors)

let expected_payloads n = List.init n (fun i -> string_of_int (i + 1))

(* ---- Transport.send timeout edge cases ----------------------------------- *)

let test_send_timeout_zero_nonblocking () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp ~backlog:1 () in
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p [ data "1" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first send");
      let before = Engine.now eng in
      (match Transport.send (node ()) ~timeout:0.0 (Message.make ~dest:p [ data "2" ]) with
      | Error Transport.Send_timed_out -> ()
      | Ok () | Error _ -> Alcotest.fail "expected immediate timeout");
      (* timeout 0 is a try: no sim time passes waiting on the queue
         (only the send's own CPU charge). *)
      check (Alcotest.float 1000.0) "no queue wait" before (Engine.now eng))

let test_send_timeout_expires_behind_full_queue () =
  let eng, _, ctx = make_ctx () in
  let sp = Port_space.create ctx ~home:0 in
  let n = Port_space.allocate sp ~backlog:1 () in
  let p = Port_space.lookup_exn sp n in
  in_sim eng (fun () ->
      (match Transport.send (node ()) (Message.make ~dest:p [ data "1" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first send");
      let before = Engine.now eng in
      (match Transport.send (node ()) ~timeout:250.0 (Message.make ~dest:p [ data "2" ]) with
      | Error Transport.Send_timed_out -> ()
      | Ok () | Error _ -> Alcotest.fail "expected timeout");
      let waited = Engine.now eng -. before in
      Alcotest.(check bool) "waited the full timeout" true (waited >= 250.0);
      (* The timed-out message never landed. *)
      check Alcotest.(list string) "queue holds only the first" [ "1" ] (drain_payloads p))

(* ---- reliable channel vs injected faults --------------------------------- *)

let test_loss_recovered_by_retransmission () =
  let eng, net, ctx, chaos =
    make_chaos_ctx { Chaos.perfect with drop = 0.3 }
  in
  let got, errors = run_numbered_sends eng ctx () in
  check Alcotest.(list string) "all delivered in order" (expected_payloads 24) got;
  check Alcotest.int "no send errors" 0 errors;
  Alcotest.(check bool) "faults actually injected" true ((Chaos.stats chaos).Chaos.s_dropped > 0);
  Alcotest.(check bool) "retransmits happened" true (Net.retransmits net > 0);
  check Alcotest.int "net counted every chaos drop"
    (Chaos.faults_injected chaos - (Chaos.stats chaos).Chaos.s_reordered
    - (Chaos.stats chaos).Chaos.s_duplicated)
    (Net.dropped net)

let test_duplicate_storm_is_deduped () =
  let eng, _, ctx, chaos =
    make_chaos_ctx { Chaos.perfect with duplicate = 0.5; drop = 0.05 }
  in
  let got, errors = run_numbered_sends eng ctx () in
  check Alcotest.(list string) "exactly once, in order" (expected_payloads 24) got;
  check Alcotest.int "no send errors" 0 errors;
  Alcotest.(check bool) "duplicates injected" true
    ((Chaos.stats chaos).Chaos.s_duplicated > 0);
  let dup_dropped = List.assoc "dup_dropped" (Context.chan_stats_to_list ctx) in
  Alcotest.(check bool) "receiver shed duplicates" true (dup_dropped > 0)

let test_reorder_resequenced_fifo () =
  let eng, _, ctx, chaos =
    make_chaos_ctx { Chaos.perfect with reorder = 0.5; jitter_us = 5000.0 }
  in
  let got, errors = run_numbered_sends eng ctx () in
  check Alcotest.(list string) "FIFO preserved" (expected_payloads 24) got;
  check Alcotest.int "no send errors" 0 errors;
  Alcotest.(check bool) "reorders injected" true ((Chaos.stats chaos).Chaos.s_reordered > 0);
  let reseq = List.assoc "resequenced" (Context.chan_stats_to_list ctx) in
  Alcotest.(check bool) "receiver resequenced" true (reseq > 0)

let test_partition_exhausts_retry_budget () =
  let eng, _, ctx, chaos = make_chaos_ctx Chaos.perfect in
  Context.set_retry_budget ctx 3;
  let p = Port.create ctx ~home:1 () in
  let nd = node () in
  in_sim eng (fun () ->
      Chaos.partition chaos 0 1;
      (match Transport.send nd (Message.make ~dest:p [ data "lost" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send accepted before the watchdog trips");
      (* Let the watchdog burn through its budget. *)
      Engine.sleep 200_000.0;
      Alcotest.(check bool) "channel declared down" true (Context.chan_down ctx ~src:0 ~dst:1);
      match Transport.send nd (Message.make ~dest:p [ data "after" ]) with
      | Error Transport.Send_timed_out -> ()
      | Ok () | Error _ -> Alcotest.fail "expected Send_timed_out on a down channel");
  check Alcotest.(list string) "nothing delivered" [] (drain_payloads p);
  let aborts = List.assoc "aborts" (Context.chan_stats_to_list ctx) in
  check Alcotest.int "one channel abort" 1 aborts

let test_heal_revives_channel () =
  let eng, _, ctx, chaos = make_chaos_ctx Chaos.perfect in
  Context.set_retry_budget ctx 3;
  let p = Port.create ctx ~home:1 ~backlog:64 () in
  let nd = node () in
  in_sim eng (fun () ->
      Chaos.partition chaos 0 1;
      ignore (Transport.send nd (Message.make ~dest:p [ data "lost" ]));
      Engine.sleep 200_000.0;
      Alcotest.(check bool) "down during partition" true (Context.chan_down ctx ~src:0 ~dst:1);
      Chaos.heal chaos 0 1;
      Alcotest.(check bool) "heal revived the channel" false
        (Context.chan_down ctx ~src:0 ~dst:1);
      (match Transport.send nd (Message.make ~dest:p [ data "again" ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send after heal");
      Engine.sleep 200_000.0);
  check Alcotest.(list string) "post-heal message arrives" [ "again" ] (drain_payloads p)

let test_short_partition_recovers_without_loss () =
  (* A partition shorter than the retry budget window: retransmission
     carries every message across the heal, nothing is lost. *)
  let eng, _, ctx, chaos = make_chaos_ctx Chaos.perfect in
  let p = Port.create ctx ~home:1 ~backlog:64 () in
  let nd = node () in
  let errors = ref 0 in
  Engine.spawn eng ~name:"sender" (fun () ->
      for i = 1 to 8 do
        match Transport.send nd (Message.make ~dest:p [ data (string_of_int i) ]) with
        | Ok () -> ()
        | Error _ -> incr errors
      done);
  Engine.spawn eng ~name:"partitioner" (fun () ->
      Chaos.partition chaos 0 1;
      Engine.sleep 5_000.0;
      Chaos.heal chaos 0 1);
  Engine.run eng;
  check Alcotest.int "no send errors" 0 !errors;
  check Alcotest.(list string) "all across the heal, in order" (expected_payloads 8)
    (drain_payloads p)

let test_crash_propagates_port_death () =
  let eng, _, ctx, chaos = make_chaos_ctx Chaos.perfect in
  let remote = Port.create ctx ~home:1 () in
  let local = Port.create ctx ~home:0 () in
  let deaths = ref [] in
  ignore (Port.on_death remote (fun () -> deaths := "remote" :: !deaths));
  ignore (Port.on_death local (fun () -> deaths := "local" :: !deaths));
  in_sim eng (fun () -> Chaos.crash_host chaos 1);
  Alcotest.(check bool) "remote port died" false (Port.alive remote);
  Alcotest.(check bool) "local port survived" true (Port.alive local);
  check Alcotest.(list string) "only the crashed host's hook fired" [ "remote" ] !deaths;
  Alcotest.(check bool) "host marked down" false (Chaos.host_up chaos 1);
  in_sim eng (fun () -> Chaos.restart_host chaos 1);
  Alcotest.(check bool) "host back up" true (Chaos.host_up chaos 1)

let test_sends_to_crashed_host_fail_cleanly () =
  let eng, _, ctx, chaos = make_chaos_ctx Chaos.perfect in
  Context.set_retry_budget ctx 3;
  let p = Port.create ctx ~home:1 () in
  let nd = node () in
  in_sim eng (fun () ->
      Chaos.crash_host chaos 1;
      (* The proxy port died with its host. *)
      match Transport.send nd (Message.make ~dest:p [ data "x" ]) with
      | Error Transport.Send_invalid_port -> ()
      | Ok () | Error _ -> Alcotest.fail "expected invalid port after crash")

(* ---- chaos determinism ---------------------------------------------------- *)

let test_same_seed_same_faults () =
  let run () =
    let eng, _, ctx, chaos = make_chaos_ctx ~seed:7 { Chaos.perfect with drop = 0.2; duplicate = 0.1 } in
    let got, _ = run_numbered_sends eng ctx () in
    (got, Chaos.stats_to_list chaos, Context.chan_stats_to_list ctx)
  in
  let a = run () and b = run () in
  let pp = Alcotest.(pair (list string) (pair (list (pair string int)) (list (pair string int)))) in
  let flat (g, c, s) = (g, (c, s)) in
  check pp "identical replay" (flat a) (flat b)

let test_chaos_spec_parsing () =
  let c = Chaos.of_spec "seed=7,drop=0.1,dup=0.05,reorder=0.1,jitter=500" in
  let plan = Chaos.plan_for c ~src:0 ~dst:1 in
  check (Alcotest.float 1e-9) "drop" 0.1 plan.Chaos.drop;
  check (Alcotest.float 1e-9) "dup" 0.05 plan.Chaos.duplicate;
  check (Alcotest.float 1e-9) "reorder" 0.1 plan.Chaos.reorder;
  check (Alcotest.float 1e-9) "jitter" 500.0 plan.Chaos.jitter_us;
  Alcotest.check_raises "unknown key rejected"
    (Invalid_argument "Chaos.of_spec: unknown key frobnicate") (fun () ->
      ignore (Chaos.of_spec "frobnicate=1"))

(* ---- QCheck: sequenced delivery is payload-transparent -------------------- *)

let sequenced_transparent_prop =
  let open QCheck2 in
  let gen = Gen.(list_size (int_range 1 40) (string_size ~gen:Gen.printable (int_range 0 64))) in
  Test.make ~name:"chaos off: sequenced delivery matches the direct path byte-for-byte"
    ~count:30 gen (fun payloads ->
      let run ~reliable =
        let eng, _, ctx = make_ctx () in
        Context.set_reliable ctx reliable;
        let p = Port.create ctx ~home:1 ~backlog:(List.length payloads + 1) () in
        let nd = node () in
        Engine.spawn eng ~name:"sender" (fun () ->
            List.iter
              (fun s -> ignore (Transport.send nd (Message.make ~dest:p [ data s ])))
              payloads);
        Engine.run eng;
        drain_payloads p
      in
      run ~reliable:false = run ~reliable:true)

let () =
  Alcotest.run "chaos"
    [
      ( "transport-timeouts",
        [
          Alcotest.test_case "timeout 0 is a non-blocking try" `Quick
            test_send_timeout_zero_nonblocking;
          Alcotest.test_case "timeout expires behind a full queue" `Quick
            test_send_timeout_expires_behind_full_queue;
        ] );
      ( "reliable-channel",
        [
          Alcotest.test_case "loss recovered by retransmission" `Quick
            test_loss_recovered_by_retransmission;
          Alcotest.test_case "duplicate storm deduped" `Quick test_duplicate_storm_is_deduped;
          Alcotest.test_case "reorder resequenced to FIFO" `Quick test_reorder_resequenced_fifo;
          Alcotest.test_case "partition exhausts retry budget" `Quick
            test_partition_exhausts_retry_budget;
          Alcotest.test_case "heal revives a down channel" `Quick test_heal_revives_channel;
          Alcotest.test_case "short partition loses nothing" `Quick
            test_short_partition_recovers_without_loss;
        ] );
      ( "host-failure",
        [
          Alcotest.test_case "crash propagates port death" `Quick
            test_crash_propagates_port_death;
          Alcotest.test_case "send to crashed host fails cleanly" `Quick
            test_sends_to_crashed_host_fail_cleanly;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same faults" `Quick test_same_seed_same_faults;
          Alcotest.test_case "fault-plan spec grammar" `Quick test_chaos_spec_parsing;
          QCheck_alcotest.to_alcotest sequenced_transparent_prop;
        ] );
    ]
