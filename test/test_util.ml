(* Unit and property tests for mach_util: rng, stats, dlist, codec,
   table. *)

module Rng = Mach_util.Rng
module Stats = Mach_util.Stats
module Dlist = Mach_util.Dlist
module Codec = Mach_util.Codec
module Table = Mach_util.Table

let check = Alcotest.check

(* ---- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 12345 and b = Rng.create 12345 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_uniformity () =
  let rng = Rng.create 10 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      (* Each bucket should be within 20% of n/10. *)
      Alcotest.(check bool) "roughly uniform" true (abs (c - (n / 10)) < n / 50))
    buckets

let test_rng_zipf_skew () =
  let rng = Rng.create 11 in
  let n = 1000 in
  let hits = Array.make n 0 in
  for _ = 1 to 10_000 do
    let v = Rng.zipf rng ~n ~theta:0.99 in
    Alcotest.(check bool) "zipf in range" true (v >= 0 && v < n);
    hits.(v) <- hits.(v) + 1
  done;
  (* Rank 0 must dominate the median rank. *)
  Alcotest.(check bool) "skewed head" true (hits.(0) > 20 * max 1 hits.(n / 2))

let test_rng_exponential_mean () =
  let rng = Rng.create 12 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:50.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 50" true (abs_float (mean -. 50.0) < 3.0)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 13 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 Fun.id)

(* ---- stats -------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 0.6) "p50" 50.5 (Stats.percentile s 50.0);
  check (Alcotest.float 0.01) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 0.01) "p100" 100.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1.1) "p99" 99.0 (Stats.percentile s 99.0)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "median of empty" 0.0 (Stats.median s);
  check (Alcotest.float 0.0) "stddev of empty" 0.0 (Stats.stddev s)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "known stddev" 2.0 (Stats.stddev s)

let test_counters () =
  let module M = Mach_util.Metrics in
  let r = M.create () in
  let a = M.counter r ~subsystem:"t" "a" in
  let b = M.counter r ~subsystem:"t" "b" in
  M.incr a;
  M.incr ~by:5 b;
  M.incr a;
  check Alcotest.int "a" 2 (M.counter_value a);
  check Alcotest.int "b" 5 (M.counter_value b);
  let snap = M.snapshot r in
  check
    Alcotest.(list (pair string (float 1e-9)))
    "sorted snapshot"
    [ ("t.a", 2.0); ("t.b", 5.0) ]
    (M.to_list snap);
  check (Alcotest.float 1e-9) "missing key" 0.0 (M.get snap "t.zzz");
  M.reset r;
  check (Alcotest.float 1e-9) "reset" 0.0 (M.get (M.snapshot r) "t.a")

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 100.0; -5.0 ];
  check Alcotest.int "bucket 0" 2 (Stats.Histogram.bucket_count h 0);
  check Alcotest.int "bucket 1" 2 (Stats.Histogram.bucket_count h 1);
  check Alcotest.int "bucket 9 (incl overflow)" 2 (Stats.Histogram.bucket_count h 9)

(* ---- dlist -------------------------------------------------------------- *)

let test_dlist_fifo () =
  let l = Dlist.create () in
  let nodes = List.init 5 Dlist.node in
  List.iter (Dlist.push_back l) nodes;
  check Alcotest.int "length" 5 (Dlist.length l);
  check Alcotest.(list int) "order" [ 0; 1; 2; 3; 4 ] (Dlist.to_list l);
  let first = Option.get (Dlist.pop_front l) in
  check Alcotest.int "fifo pop" 0 (Dlist.value first);
  check Alcotest.int "length after pop" 4 (Dlist.length l)

let test_dlist_remove_middle () =
  let l = Dlist.create () in
  let nodes = Array.init 5 Dlist.node in
  Array.iter (Dlist.push_back l) nodes;
  Dlist.remove l nodes.(2);
  check Alcotest.(list int) "middle removed" [ 0; 1; 3; 4 ] (Dlist.to_list l);
  Alcotest.(check bool) "detached" false (Dlist.attached nodes.(2));
  Dlist.remove l nodes.(0);
  Dlist.remove l nodes.(4);
  check Alcotest.(list int) "ends removed" [ 1; 3 ] (Dlist.to_list l)

let test_dlist_double_attach_rejected () =
  let l = Dlist.create () in
  let n = Dlist.node 1 in
  Dlist.push_back l n;
  Alcotest.check_raises "double attach" (Invalid_argument "Dlist.push_back: node already attached")
    (fun () -> Dlist.push_back l n)

let test_dlist_cross_list_remove_rejected () =
  let l1 = Dlist.create () and l2 = Dlist.create () in
  let n = Dlist.node 1 in
  Dlist.push_back l1 n;
  Alcotest.check_raises "wrong list" (Invalid_argument "Dlist.remove: node not on this list")
    (fun () -> Dlist.remove l2 n)

let test_dlist_push_front () =
  let l = Dlist.create () in
  Dlist.push_back l (Dlist.node 1);
  Dlist.push_front l (Dlist.node 0);
  check Alcotest.(list int) "front push" [ 0; 1 ] (Dlist.to_list l)

let test_dlist_reuse_after_remove () =
  let l = Dlist.create () in
  let n = Dlist.node 42 in
  Dlist.push_back l n;
  Dlist.remove l n;
  Dlist.push_back l n;
  check Alcotest.(list int) "reattachable" [ 42 ] (Dlist.to_list l)

(* ---- codec -------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 200;
  Codec.Enc.u16 e 40000;
  Codec.Enc.u32 e 3_000_000_000;
  Codec.Enc.int e (-123456789);
  Codec.Enc.bool e true;
  Codec.Enc.float e 3.14159;
  Codec.Enc.string e "hello";
  Codec.Enc.bytes e (Bytes.of_string "\x00\xff\x42");
  let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
  check Alcotest.int "u8" 200 (Codec.Dec.u8 d);
  check Alcotest.int "u16" 40000 (Codec.Dec.u16 d);
  check Alcotest.int "u32" 3_000_000_000 (Codec.Dec.u32 d);
  check Alcotest.int "int" (-123456789) (Codec.Dec.int d);
  check Alcotest.bool "bool" true (Codec.Dec.bool d);
  check (Alcotest.float 1e-12) "float" 3.14159 (Codec.Dec.float d);
  check Alcotest.string "string" "hello" (Codec.Dec.string d);
  check Alcotest.string "bytes" "\x00\xff\x42" (Bytes.to_string (Codec.Dec.bytes d));
  Codec.Dec.finish d

let test_codec_truncated () =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e 99;
  let b = Codec.Enc.to_bytes e in
  let d = Codec.Dec.of_bytes (Bytes.sub b 0 2) in
  Alcotest.check_raises "truncated" Codec.Dec.Truncated (fun () -> ignore (Codec.Dec.u32 d))

let test_codec_trailing () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 1;
  Codec.Enc.u8 e 2;
  let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
  ignore (Codec.Dec.u8 d);
  Alcotest.check_raises "trailing" Codec.Dec.Trailing_garbage (fun () -> Codec.Dec.finish d)

(* qcheck: arbitrary value sequences round-trip. *)
let codec_prop =
  let open QCheck2 in
  Test.make ~name:"codec roundtrips arbitrary field sequences" ~count:200
    Gen.(
      small_list
        (oneof
           [
             map (fun v -> `U8 (v land 0xff)) small_int;
             map (fun v -> `U16 (v land 0xffff)) small_int;
             map (fun v -> `Int v) int;
             map (fun v -> `Bool v) bool;
             map (fun v -> `Str v) string_small;
             map (fun v -> `Fl v) float;
           ]))
    (fun fields ->
      let e = Codec.Enc.create () in
      List.iter
        (function
          | `U8 v -> Codec.Enc.u8 e v
          | `U16 v -> Codec.Enc.u16 e v
          | `Int v -> Codec.Enc.int e v
          | `Bool v -> Codec.Enc.bool e v
          | `Str v -> Codec.Enc.string e v
          | `Fl v -> Codec.Enc.float e v)
        fields;
      let d = Codec.Dec.of_bytes (Codec.Enc.to_bytes e) in
      let ok =
        List.for_all
          (function
            | `U8 v -> Codec.Dec.u8 d = v
            | `U16 v -> Codec.Dec.u16 d = v
            | `Int v -> Codec.Dec.int d = v
            | `Bool v -> Codec.Dec.bool d = v
            | `Str v -> Codec.Dec.string d = v
            | `Fl v ->
              let got = Codec.Dec.float d in
              got = v || (Float.is_nan got && Float.is_nan v))
          fields
      in
      Codec.Dec.finish d;
      ok)

(* dlist qcheck: random push/pop/remove agrees with a plain-list model. *)
let dlist_prop =
  let open QCheck2 in
  Test.make ~name:"dlist matches list model under random ops" ~count:300
    Gen.(small_list (oneof [ pure `Push; pure `Pop; map (fun k -> `Remove k) small_nat ]))
    (fun ops ->
      let l = Dlist.create () in
      (* Model: nodes in queue order, oldest first. *)
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Push ->
            incr counter;
            let n = Dlist.node !counter in
            Dlist.push_back l n;
            model := !model @ [ n ]
          | `Pop -> (
            match (Dlist.pop_front l, !model) with
            | Some n, m :: rest ->
              if n != m then ok := false;
              model := rest
            | None, [] -> ()
            | Some _, [] | None, _ :: _ -> ok := false)
          | `Remove k -> (
            match !model with
            | [] -> ()
            | _ ->
              let idx = k mod List.length !model in
              let victim = List.nth !model idx in
              Dlist.remove l victim;
              model := List.filteri (fun i _ -> i <> idx) !model))
        ops;
      !ok
      && Dlist.to_list l = List.map Dlist.value !model
      && Dlist.length l = List.length !model)

(* ---- table -------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "col1"; "longer column" ] in
  Table.row t [ "a"; "b" ];
  Table.rowf t "%d | %s" 42 "x";
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains 42" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && String.index_opt l '4' <> None))

let test_table_mismatch () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.row: cell count mismatch") (fun () ->
      Table.row t [ "only one" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "dlist",
        [
          Alcotest.test_case "fifo" `Quick test_dlist_fifo;
          Alcotest.test_case "remove middle" `Quick test_dlist_remove_middle;
          Alcotest.test_case "double attach rejected" `Quick test_dlist_double_attach_rejected;
          Alcotest.test_case "cross-list remove rejected" `Quick test_dlist_cross_list_remove_rejected;
          Alcotest.test_case "push front" `Quick test_dlist_push_front;
          Alcotest.test_case "reuse after remove" `Quick test_dlist_reuse_after_remove;
          QCheck_alcotest.to_alcotest dlist_prop;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "trailing garbage" `Quick test_codec_trailing;
          QCheck_alcotest.to_alcotest codec_prop;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cell count mismatch" `Quick test_table_mismatch;
        ] );
    ]
