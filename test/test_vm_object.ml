(* Direct unit tests for memory-object structures: shadow-chain offset
   translation, collapse with non-zero backing offsets, reference
   counting, and cached-object revival. *)

module Engine = Mach_sim.Engine
module Net = Mach_hw.Net
module Machine = Mach_hw.Machine
module Phys_mem = Mach_hw.Phys_mem
module Context = Mach_ipc.Context
module Port = Mach_ipc.Port
module Kctx = Mach_vm.Kctx
module Vm_types = Mach_vm.Vm_types
module Vm_object = Mach_vm.Vm_object
module Vm_page = Mach_vm.Vm_page
module Page_queues = Mach_vm.Page_queues

let check = Alcotest.check
let page = 4096

let make_kctx ?(frames = 64) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let ctx = Context.create eng net in
  let mem = Phys_mem.create ~frames ~page_size:page in
  let kctx = Kctx.create eng ctx ~host:0 ~params:Machine.uniprocessor ~mem () in
  Mach_vm.Pager_client.install kctx;
  kctx

let add_page kctx obj ~offset tagchar =
  let frame = Option.get (Phys_mem.alloc kctx.Kctx.mem) in
  let p = Vm_page.insert kctx obj ~offset ~frame ~busy:false ~absent:false in
  Phys_mem.fill kctx.Kctx.mem frame tagchar;
  Page_queues.activate kctx.Kctx.queues p;
  p

let frame_tag kctx (p : Vm_types.page) = Bytes.get (Phys_mem.data kctx.Kctx.mem p.Vm_types.frame) 0

let test_chain_lookup_with_offsets () =
  let kctx = make_kctx () in
  (* Backing object B has pages at 4*page and 5*page; shadow S views B
     from offset 4*page, so S offset 0 = B offset 4*page. *)
  let b = Vm_object.create_anonymous kctx ~size:(8 * page) in
  ignore (add_page kctx b ~offset:(4 * page) 'x');
  ignore (add_page kctx b ~offset:(5 * page) 'y');
  let s = Vm_object.create_shadow kctx ~backs:b ~offset:(4 * page) ~size:(2 * page) in
  check Alcotest.int "depth" 1 (Vm_object.chain_depth s);
  (match Vm_object.lookup_chain s ~offset:0 with
  | Some (p, owner, depth) ->
    check Alcotest.int "found below" 1 depth;
    Alcotest.(check bool) "owner is b" true (owner == b);
    check Alcotest.char "right page" 'x' (frame_tag kctx p)
  | None -> Alcotest.fail "page not found through chain");
  (match Vm_object.lookup_chain s ~offset:page with
  | Some (p, _, _) -> check Alcotest.char "offset translation" 'y' (frame_tag kctx p)
  | None -> Alcotest.fail "second page not found");
  (* A page in the shadow itself hides the backing page. *)
  ignore (add_page kctx s ~offset:0 'S');
  match Vm_object.lookup_chain s ~offset:0 with
  | Some (p, _, 0) -> check Alcotest.char "shadow page wins" 'S' (frame_tag kctx p)
  | Some _ -> Alcotest.fail "expected depth 0"
  | None -> Alcotest.fail "shadow page missing"

let test_collapse_with_offset_delta () =
  let kctx = make_kctx () in
  let b = Vm_object.create_anonymous kctx ~size:(8 * page) in
  ignore (add_page kctx b ~offset:(4 * page) 'x');
  ignore (add_page kctx b ~offset:(6 * page) 'z');
  let s = Vm_object.create_shadow kctx ~backs:b ~offset:(4 * page) ~size:(2 * page) in
  (* Drop b's other reference so s is its only user. *)
  (* create_shadow gave b ref 2 (1 original + 1 from shadow); simulate
     the original owner going away: *)
  Vm_object.deallocate kctx b;
  check Alcotest.int "b has one ref" 1 b.Vm_types.ref_count;
  Vm_object.collapse kctx s;
  check Alcotest.int "chain flattened" 0 (Vm_object.chain_depth s);
  check Alcotest.int "one collapse" 1 kctx.Kctx.stats.Vm_types.s_collapses;
  (* b's page at 4*page moved to s offset 0; the out-of-view page at
     6*page (s covers only 2 pages from base 4*page... offset 6*page ->
     up_offset 2*page which is beyond s's 2-page span) was freed. *)
  (match Vm_object.lookup_chain s ~offset:0 with
  | Some (p, owner, 0) ->
    Alcotest.(check bool) "page now owned by s" true (owner == s);
    check Alcotest.char "data preserved" 'x' (frame_tag kctx p)
  | Some _ | None -> Alcotest.fail "moved page missing");
  Alcotest.(check bool) "backing gone" true (s.Vm_types.backing = None);
  Alcotest.(check bool) "b dead" false b.Vm_types.obj_alive

let test_collapse_skips_shared_backing () =
  let kctx = make_kctx () in
  let b = Vm_object.create_anonymous kctx ~size:page in
  ignore (add_page kctx b ~offset:0 'x');
  let s1 = Vm_object.create_shadow kctx ~backs:b ~offset:0 ~size:page in
  let _s2 = Vm_object.create_shadow kctx ~backs:b ~offset:0 ~size:page in
  (* b now has 3 refs (original + two shadows): no collapse allowed. *)
  Vm_object.collapse kctx s1;
  check Alcotest.int "still chained" 1 (Vm_object.chain_depth s1);
  check Alcotest.int "no collapse" 0 kctx.Kctx.stats.Vm_types.s_collapses

let test_collapse_respects_toggle () =
  let kctx = make_kctx () in
  kctx.Kctx.enable_collapse <- false;
  let b = Vm_object.create_anonymous kctx ~size:page in
  let s = Vm_object.create_shadow kctx ~backs:b ~offset:0 ~size:page in
  Vm_object.deallocate kctx b;
  Vm_object.collapse kctx s;
  check Alcotest.int "disabled: no collapse" 1 (Vm_object.chain_depth s)

let test_cached_object_revival () =
  let kctx = make_kctx () in
  let eng = kctx.Kctx.engine in
  let port = Port.create kctx.Kctx.ctx ~home:0 () in
  let obj = Vm_object.create_external kctx ~memory_object:port ~size:(2 * page) in
  obj.Vm_types.can_persist <- true;
  ignore (add_page kctx obj ~offset:0 'c');
  (* Last reference dropped: the object is cached, pages intact. *)
  Engine.spawn eng (fun () -> Vm_object.deallocate kctx obj);
  Engine.run eng;
  Alcotest.(check bool) "alive in cache" true obj.Vm_types.obj_alive;
  check Alcotest.int "page kept" 1 (Vm_object.resident_count obj);
  (* Re-lookup by port revives the same structure. *)
  let again = Vm_object.create_external kctx ~memory_object:port ~size:(2 * page) in
  Alcotest.(check bool) "same object" true (again == obj);
  check Alcotest.int "one ref again" 1 again.Vm_types.ref_count;
  Alcotest.(check bool) "left the cache list" true
    (not (Vm_object.cache_is_member kctx obj))

let test_chain_has_pager_translation () =
  let kctx = make_kctx () in
  let port = Port.create kctx.Kctx.ctx ~home:0 () in
  let backed = Vm_object.create_external kctx ~memory_object:port ~size:(8 * page) in
  let s = Vm_object.create_shadow kctx ~backs:backed ~offset:(2 * page) ~size:(4 * page) in
  match Vm_object.chain_has_pager s ~offset:page with
  | Some (owner, off) ->
    Alcotest.(check bool) "pager owner" true (owner == backed);
    check Alcotest.int "translated offset" (3 * page) off
  | None -> Alcotest.fail "pager not found through chain"

(* qcheck: the pageout queues stay consistent with each page's q_state
   under random activate/deactivate/remove sequences. *)
let page_queue_prop =
  let open QCheck2 in
  Test.make ~name:"page queues consistent under random transitions" ~count:150
    Gen.(list_size (int_range 1 40) (pair (int_range 0 7) (int_range 0 3)))
    (fun ops ->
      let kctx = make_kctx ~frames:16 () in
      let q = Page_queues.create () in
      let obj = Vm_object.create_anonymous kctx ~size:(8 * page) in
      let pages =
        Array.init 8 (fun i ->
            let frame = Option.get (Phys_mem.alloc kctx.Kctx.mem) in
            Vm_page.insert kctx obj ~offset:(i * page) ~frame ~busy:false ~absent:false)
      in
      let ok = ref true in
      let verify () =
        let active = ref 0 and inactive = ref 0 and laundry = ref 0 in
        Array.iter
          (fun (p : Vm_types.page) ->
            match p.Vm_types.q_state with
            | Vm_types.Q_active -> incr active
            | Vm_types.Q_inactive -> incr inactive
            | Vm_types.Q_laundry -> incr laundry
            | Vm_types.Q_none -> ())
          pages;
        if !active <> Page_queues.active_count q then ok := false;
        if !inactive <> Page_queues.inactive_count q then ok := false;
        if !laundry <> Page_queues.laundry_count q then ok := false;
        match Page_queues.check_invariants q with Ok () -> () | Error _ -> ok := false
      in
      List.iter
        (fun (idx, op) ->
          let p = pages.(idx) in
          (match op with
          | 0 -> Page_queues.activate q p
          | 1 -> Page_queues.deactivate q p
          | 2 -> Page_queues.launder q p
          | _ -> Page_queues.remove q p);
          verify ())
        ops;
      (* Draining: oldest_active/inactive agree with membership. *)
      (match Page_queues.oldest_active q with
      | Some p -> if p.Vm_types.q_state <> Vm_types.Q_active then ok := false
      | None -> if Page_queues.active_count q <> 0 then ok := false);
      !ok)

let () =
  Alcotest.run "vm_object"
    [
      ( "shadow-chains",
        [
          Alcotest.test_case "lookup with offset deltas" `Quick test_chain_lookup_with_offsets;
          Alcotest.test_case "collapse with offset delta" `Quick test_collapse_with_offset_delta;
          Alcotest.test_case "collapse skips shared backing" `Quick
            test_collapse_skips_shared_backing;
          Alcotest.test_case "collapse toggle" `Quick test_collapse_respects_toggle;
          Alcotest.test_case "pager lookup through chain" `Quick test_chain_has_pager_translation;
        ] );
      ( "object-cache",
        [ Alcotest.test_case "cached object revival" `Quick test_cached_object_revival ] );
      ("page-queues", [ QCheck_alcotest.to_alcotest page_queue_prop ]);
    ]
