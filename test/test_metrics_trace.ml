(* The observability spine: Metrics registry semantics (snapshot /
   delta / merge / reset, QCheck'd against direct counter reads) and
   Trace behaviour (span balance, ring wraparound, disabled no-op), and
   an end-to-end check that a kernel fault storm produces balanced,
   causally linked spans. *)

open Alcotest
module Engine = Mach_sim.Engine
module Trace = Mach_sim.Trace
module Metrics = Mach_util.Metrics

(* ---- Metrics ------------------------------------------------------------ *)

let test_registry_sources () =
  let r = Metrics.create () in
  let block = ref (0, 0) in
  Metrics.register_source r ~subsystem:"blk"
    ~reset:(fun () -> block := (0, 0))
    (fun () ->
      let a, b = !block in
      [ ("a", a); ("b", b) ]);
  Metrics.gauge r ~subsystem:"blk" "depth" (fun () -> 7);
  block := (3, 4);
  let snap = Metrics.snapshot r in
  check (float 0.0) "source a" 3.0 (Metrics.get snap "blk.a");
  check (float 0.0) "source b" 4.0 (Metrics.get snap "blk.b");
  check (float 0.0) "gauge" 7.0 (Metrics.get snap "blk.depth");
  (* Duplicate keys (two sources of the same subsystem) sum. *)
  Metrics.register_source r ~subsystem:"blk" (fun () -> [ ("a", 10) ]);
  check (float 0.0) "duplicate keys sum" 13.0 (Metrics.get (Metrics.snapshot r) "blk.a");
  Metrics.reset r;
  check (float 0.0) "source reset ran" 0.0 (Metrics.get (Metrics.snapshot r) "blk.b")

let test_histogram_keys () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~subsystem:"vm" "lat_us" in
  check (float 0.0) "empty histogram has count 0" 0.0
    (Metrics.get (Metrics.snapshot r) "vm.lat_us.count");
  List.iter (Metrics.observe h) [ 10.0; 20.0; 30.0 ];
  let snap = Metrics.snapshot r in
  check (float 0.0) "count" 3.0 (Metrics.get snap "vm.lat_us.count");
  check (float 0.001) "mean" 20.0 (Metrics.get snap "vm.lat_us.mean");
  check (float 0.001) "max" 30.0 (Metrics.get snap "vm.lat_us.max");
  Metrics.reset r;
  check (float 0.0) "reset empties samples" 0.0
    (Metrics.get (Metrics.snapshot r) "vm.lat_us.count")

let test_delta_merge () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~subsystem:"s" "n" in
  Metrics.incr c ~by:5;
  let before = Metrics.snapshot r in
  Metrics.incr c ~by:7;
  let after = Metrics.snapshot r in
  check (float 0.0) "delta" 7.0 (Metrics.get (Metrics.delta ~before ~after) "s.n");
  let merged = Metrics.merge [ before; after ] in
  check (float 0.0) "merge sums" 17.0 (Metrics.get merged "s.n");
  check (float 0.0) "missing key defaults to 0" 0.0 (Metrics.get after "s.zzz")

(* QCheck: for any interleaving of increments and observations, the
   snapshot agrees with direct counter/histogram reads, and
   delta(before, after) equals what happened in between. *)
let prop_snapshot_agrees =
  QCheck.Test.make ~count:200 ~name:"snapshot/delta agree with direct reads"
    QCheck.(pair (list (int_bound 100)) (list (int_bound 100)))
    (fun (first, second) ->
      let r = Metrics.create () in
      let c = Metrics.counter r ~subsystem:"q" "c" in
      let h = Metrics.histogram r ~subsystem:"q" "h" in
      List.iter (fun n -> Metrics.incr c ~by:n; Metrics.observe h (float_of_int n)) first;
      let before = Metrics.snapshot r in
      List.iter (fun n -> Metrics.incr c ~by:n) second;
      let after = Metrics.snapshot r in
      let sum l = List.fold_left ( + ) 0 l in
      Metrics.get before "q.c" = float_of_int (sum first)
      && Metrics.counter_value c = sum first + sum second
      && Metrics.get after "q.c" = float_of_int (Metrics.counter_value c)
      && Metrics.get (Metrics.delta ~before ~after) "q.c" = float_of_int (sum second)
      && Metrics.get before "q.h.count" = float_of_int (List.length first))

let test_json_shape () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~subsystem:"j" "k" in
  Metrics.incr c ~by:2;
  let json = Metrics.to_json (Metrics.snapshot r) in
  check bool "flat key: value pair present" true
    (let sub = {|"j.k": 2|} in
     let rec find i =
       if i + String.length sub > String.length json then false
       else String.sub json i (String.length sub) = sub || find (i + 1)
     in
     find 0)

(* ---- Trace -------------------------------------------------------------- *)

(* Spans/points recorded outside any engine fiber (timer context): the
   trace must cope with having no fiber identity. *)
let test_span_balance () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Trace.set_enabled tr true;
  Engine.spawn eng ~name:"t" (fun () ->
      let a = Trace.span_open tr ~subsystem:"x" ~label:"outer" in
      let b = Trace.span_open tr ~subsystem:"x" ~label:"inner" in
      Trace.point tr ~subsystem:"x" "tick";
      Trace.span_close tr ~subsystem:"x" ~label:"done" b;
      Trace.span_close tr ~subsystem:"x" ~label:"done" a);
  Engine.run eng;
  let opens, closes = Trace.balance tr in
  check int "opens" 2 opens;
  check int "closes" 2 closes;
  check int "unclosed" 0 (Trace.unclosed tr);
  (match Trace.spans tr with
  | [ inner; outer ] ->
    check string "inner label" "inner" inner.Trace.sp_label;
    check int "inner parented on outer" outer.Trace.sp_id inner.Trace.sp_parent;
    check int "outer is a root" (-1) outer.Trace.sp_parent
  | spans -> failf "expected 2 spans, got %d" (List.length spans));
  (* The point inside both spans attributes to the innermost. *)
  let tick = List.find (fun ev -> ev.Trace.ev_label = "tick") (Trace.events tr) in
  check bool "point attributed to inner span" true (tick.Trace.ev_span >= 0)

let test_ring_wraparound () =
  let eng = Engine.create () in
  let tr = Trace.create ~capacity:8 eng in
  Trace.set_enabled tr true;
  Engine.spawn eng ~name:"t" (fun () ->
      for i = 1 to 20 do
        Trace.point tr ~subsystem:"w" (string_of_int i)
      done);
  Engine.run eng;
  let events = Trace.events tr in
  check int "ring keeps capacity" 8 (List.length events);
  check int "recorded counts everything" 20 (Trace.recorded tr);
  check int "dropped = recorded - buffered" 12 (Trace.dropped tr);
  (* The newest events survive, oldest first. *)
  check string "oldest surviving" "13" (List.hd events).Trace.ev_label;
  check string "newest surviving" "20" (List.nth events 7).Trace.ev_label

let test_disabled_noop () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Engine.spawn eng ~name:"t" (fun () ->
      let s = Trace.span_open tr ~subsystem:"x" ~label:"a" in
      check int "disabled span_open returns -1" (-1) s;
      Trace.point tr ~subsystem:"x" "p";
      Trace.span_close tr ~subsystem:"x" ~label:"a" s;
      Trace.adopt tr s (fun () -> Trace.point tr ~subsystem:"x" "q"));
  Engine.run eng;
  check int "nothing recorded" 0 (Trace.recorded tr);
  check (list pass) "no events" [] (Trace.events tr)

let test_adopt_attribution () =
  let eng = Engine.create () in
  let tr = Trace.create eng in
  Trace.set_enabled tr true;
  let carried = ref (-1) in
  Engine.spawn eng ~name:"opener" (fun () ->
      let s = Trace.span_open tr ~subsystem:"x" ~label:"work" in
      carried := s;
      Engine.sleep 10.0;
      Trace.span_close tr ~subsystem:"x" ~label:"done" s);
  Engine.spawn eng ~name:"server" (fun () ->
      Engine.sleep 5.0;
      (* Another fiber adopts the carried id, as a service loop does
         with the span found in a message header. *)
      Trace.adopt tr !carried (fun () -> Trace.point tr ~subsystem:"y" "served"));
  Engine.run eng;
  let served = List.find (fun ev -> ev.Trace.ev_label = "served") (Trace.events tr) in
  check int "cross-fiber point attributed to adopted span" !carried served.Trace.ev_span;
  check int "span closed across the adoption" 0 (Trace.unclosed tr)

(* ---- end to end: a kernel fault storm ----------------------------------- *)

let test_kernel_fault_spans () =
  let open Mach in
  let sys = Kernel.create_system () in
  let kernel = sys.Kernel.kernel in
  let tr = Kernel.trace kernel in
  Trace.set_enabled tr true;
  let pages = 6 in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create kernel ~name:"app" () in
      ignore
        (Thread.spawn task ~name:"app.main" (fun () ->
             let addr = Syscalls.vm_allocate task ~size:(pages * 4096) ~anywhere:true () in
             for i = 0 to pages - 1 do
               match Syscalls.touch task ~addr:(addr + (i * 4096)) ~write:true () with
               | Ok _ -> ()
               | Error _ -> failwith "touch failed"
             done)));
  Engine.run sys.Kernel.engine;
  let opens, closes = Trace.balance tr in
  check bool "some spans" true (opens > 0);
  check int "balanced" opens closes;
  check int "none left open" 0 (Trace.unclosed tr);
  let faults =
    List.filter
      (fun sp -> sp.Trace.sp_sub = "vm" && sp.Trace.sp_label = "fault")
      (Trace.spans tr)
  in
  check int "every fault spanned" (Kernel.stats kernel).Vm_types.s_faults
    (List.length faults);
  List.iter
    (fun sp -> check string "anonymous touches zero-fill" "zero_fill" sp.Trace.sp_resolution)
    faults;
  (* The same storm shows up in the registry, including the fault
     histogram fed by the fault handler. *)
  let snap = Metrics.snapshot (Kernel.metrics kernel) in
  check (float 0.0) "registry saw the faults"
    (float_of_int (Kernel.stats kernel).Vm_types.s_faults)
    (Metrics.get snap "vm.faults");
  check (float 0.0) "fault histogram observed every fault"
    (float_of_int (Kernel.stats kernel).Vm_types.s_faults)
    (Metrics.get snap "vm.fault_us.count")

let () =
  run "metrics_trace"
    [
      ( "metrics",
        [
          test_case "sources, gauges, reset" `Quick test_registry_sources;
          test_case "histogram snapshot keys" `Quick test_histogram_keys;
          test_case "delta and merge" `Quick test_delta_merge;
          test_case "json shape" `Quick test_json_shape;
          QCheck_alcotest.to_alcotest prop_snapshot_agrees;
        ] );
      ( "trace",
        [
          test_case "span open/close balance" `Quick test_span_balance;
          test_case "ring wraparound" `Quick test_ring_wraparound;
          test_case "disabled mode is a no-op" `Quick test_disabled_noop;
          test_case "cross-fiber adoption" `Quick test_adopt_attribution;
        ] );
      ( "kernel",
        [ test_case "fault storm: balanced spans + registry" `Quick test_kernel_fault_spans ] );
    ]
