(* Pager conformance: the same protocol scenarios driven against all
   five managers — multi-page data_request, run-shaped data_write with
   release, single-page re-request, data_unlock resolution, and
   request-port death — each asserted through the shared
   [Pager_runtime.Stats] block. A manager passes by sitting on the
   runtime, not by re-implementing the plumbing. *)

open Mach
module Rt_stats = Mach_vm.Pager_runtime.Stats
module Minimal_fs = Mach_pagers.Minimal_fs
module Camelot = Mach_pagers.Camelot
module Netmem = Mach_pagers.Netmem
module Migrator = Mach_pagers.Migrator
module Fs_layout = Mach_fs.Fs_layout

let page = 4096

(* --- a protocol driver playing the kernel's side ------------------------ *)

type driver = {
  d_task : task;
  d_rq_name : Port_space.name;
  d_request : Message.port;  (** plays both request and name port *)
}

let make_driver kernel =
  let d_task = Task.create kernel ~name:"protocol-driver" () in
  let d_rq_name = Syscalls.port_allocate d_task ~backlog:64 () in
  Syscalls.port_enable d_task d_rq_name;
  let d_request = Option.get (Syscalls.port_lookup d_task d_rq_name) in
  { d_task; d_rq_name; d_request }

let send d ?(with_reply = false) call ~dest =
  let reply = if with_reply then Some d.d_request else None in
  match Syscalls.msg_send d.d_task (Pager_iface.encode_k2m ~reply call ~dest) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "driver send failed"

(* Collect manager replies until the request port stays quiet. The idle
   window is simulated time, so generosity is free. *)
let drain ?(idle_us = 300_000.0) d =
  let rec loop acc =
    match Syscalls.msg_receive d.d_task ~from:(`Port d.d_rq_name) ~timeout:idle_us () with
    | Ok msg -> (
      match Pager_iface.decode_m2k msg with
      | call -> loop (call :: acc)
      | exception Pager_iface.Malformed _ -> loop acc)
    | Error _ -> List.rev acc
  in
  loop []

let pages_of len = max 1 ((len + page - 1) / page)

let provided_pages =
  List.fold_left
    (fun acc -> function
      | Pager_iface.Data_provided { data; _ } -> acc + pages_of (Bytes.length data)
      | _ -> acc)
    0

let unavailable_pages =
  List.fold_left
    (fun acc -> function
      | Pager_iface.Data_unavailable { size; _ } -> acc + pages_of size
      | _ -> acc)
    0

let has_release = List.exists (function Pager_iface.Release_write _ -> true | _ -> false)

let has_lock_reply =
  List.exists (function
    | Pager_iface.Data_lock _ | Pager_iface.Data_provided _ -> true
    | _ -> false)

(* --- the scenarios ------------------------------------------------------ *)

(* [min_read_pages]: how much of a 4-page request the manager must
   answer — 4 for everyone except copy-on-reference migration, which
   deliberately reshapes the cluster down to the demanded page. *)
let run_scenario ?(min_read_pages = 4) d ~dest ~stats =
  let field k = List.assoc k (Rt_stats.to_list (stats ())) in
  let checkb = Alcotest.(check bool) in
  (* 1. init: attach this "kernel" to the object. *)
  send d (Pager_iface.Init { memory_object = dest; request = d.d_request; name = d.d_request })
    ~dest;
  ignore (drain ~idle_us:50_000.0 d);
  (* a possible pager_cache reply *)
  (* 2. run-shaped write: three pages in one data_write, reply routed
        back as release_write. *)
  let w0 = field "writes" and pw0 = field "pages_written" in
  send d ~with_reply:true
    (Pager_iface.Data_write
       { memory_object = dest; offset = 0; data = Bytes.make (3 * page) 'w'; write_id = 7 })
    ~dest;
  let replies = drain d in
  checkb "write released" true (has_release replies);
  checkb "write counted" true (field "writes" >= w0 + 1);
  checkb "write pages counted" true (field "pages_written" >= pw0 + 3);
  (* 3. multi-page request: every page must be answered, provided or
        declared unavailable (modulo the manager's reshape policy). *)
  let r0 = field "requests" in
  send d
    (Pager_iface.Data_request
       {
         memory_object = dest;
         request = d.d_request;
         offset = 0;
         length = 4 * page;
         desired_access = Prot.read;
       })
    ~dest;
  let replies = drain d in
  let answered = provided_pages replies + unavailable_pages replies in
  checkb "request counted" true (field "requests" >= r0 + 1);
  checkb
    (Printf.sprintf "4-page request answered (%d/%d)" answered min_read_pages)
    true (answered >= min_read_pages);
  (* 4. single-page re-request (the partial-provide recovery path). *)
  send d
    (Pager_iface.Data_request
       {
         memory_object = dest;
         request = d.d_request;
         offset = 0;
         length = page;
         desired_access = Prot.read;
       })
    ~dest;
  let replies = drain d in
  checkb "re-request answered" true (provided_pages replies + unavailable_pages replies >= 1);
  (* 5. unlock: must resolve to a lock change (or a fresh provide). *)
  let u0 = field "unlocks" in
  send d
    (Pager_iface.Data_unlock
       {
         memory_object = dest;
         request = d.d_request;
         offset = 0;
         length = page;
         desired_access = Prot.rw;
       })
    ~dest;
  let replies = drain d in
  checkb "unlock resolved" true (has_lock_reply replies);
  checkb "unlock counted" true (field "unlocks" >= u0 + 1);
  (* 6. request-port death: the manager must notice and account it. *)
  let pd0 = field "port_deaths" in
  Syscalls.port_deallocate d.d_task d.d_rq_name;
  Engine.sleep 100_000.0;
  checkb "port death observed" true (field "port_deaths" >= pd0 + 1)

(* Boot a system, run [setup] (returning the object port to drive and
   the manager's stats block) in the driver thread, then the scenario. *)
let run_conf ?min_read_pages ~name setup =
  let sys = Kernel.create_system () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let d = make_driver sys.Kernel.kernel in
      ignore
        (Thread.spawn d.d_task ~name:"driver.main" (fun () ->
             let dest, stats = setup sys d in
             run_scenario ?min_read_pages d ~dest ~stats;
             result := Some ())));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some () -> ()
  | None -> Alcotest.failf "%s: driver did not complete (deadlock?)" name

(* --- one setup per manager ---------------------------------------------- *)

let test_minimal_fs () =
  run_conf ~name:"minimal_fs" (fun sys _d ->
      let disk =
        Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:512 ~block_size:page ()
      in
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      Fs_layout.write_file (Minimal_fs.fs fsrv) "conf.dat" (Bytes.make (4 * page) 'f');
      (Minimal_fs.file_object fsrv "conf.dat", fun () -> Minimal_fs.runtime_stats fsrv))

let test_camelot () =
  run_conf ~name:"camelot" (fun sys _d ->
      let log_disk =
        Disk.create sys.Kernel.engine ~name:"log" ~blocks:512 ~block_size:page ()
      in
      let data_disk =
        Disk.create sys.Kernel.engine ~name:"data" ~blocks:512 ~block_size:page ()
      in
      let cam =
        Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format:true ()
      in
      (Camelot.segment_object cam "seg" ~size:(4 * page), fun () -> Camelot.runtime_stats cam))

let test_netmem () =
  run_conf ~name:"netmem" (fun sys _d ->
      let nm = Netmem.start sys.Kernel.kernel () in
      let region = Netmem.create_region nm ~size:(4 * page) in
      Netmem.write_initial nm ~region ~offset:0 (Bytes.make (4 * page) 'n');
      (region, fun () -> Netmem.runtime_stats nm))

let test_migrator () =
  run_conf ~min_read_pages:1 ~name:"migrator" (fun sys _d ->
      let mig = Migrator.start sys.Kernel.kernel () in
      let src = Task.create sys.Kernel.kernel ~name:"src" () in
      let base = Syscalls.vm_allocate src ~size:(4 * page) ~anywhere:true () in
      ignore (Syscalls.write_bytes src ~addr:base (Bytes.make 64 'm') ());
      ( Migrator.back_region mig ~src ~base ~size:(4 * page) Migrator.Copy_on_reference,
        fun () -> Migrator.runtime_stats mig ))

let test_default_pager () =
  run_conf ~name:"default-pager" (fun sys d ->
      let kernel = sys.Kernel.kernel in
      let kctx = Kernel.kctx kernel in
      let dp_port = Option.get kctx.Kctx.default_pager_port in
      (* The kernel's side of pager_create: a fresh object port whose
         receive right the default pager adopts. *)
      let memory_object =
        Port.create sys.Kernel.ipc_ctx ~home:(Port.home dp_port) ~backlog:256 ()
      in
      send d
        (Pager_iface.Create
           {
             new_memory_object = memory_object;
             request = d.d_request;
             name = d.d_request;
             size = 4 * page;
           })
        ~dest:dp_port;
      Engine.sleep 50_000.0;
      let stats () =
        match kernel.Ktypes.k_default_pager with
        | Some dp -> Default_pager.runtime_stats dp
        | None -> Alcotest.fail "no default pager"
      in
      (memory_object, stats))

let () =
  Alcotest.run "pager_conformance"
    [
      ( "conformance",
        [
          Alcotest.test_case "minimal_fs" `Quick test_minimal_fs;
          Alcotest.test_case "camelot" `Quick test_camelot;
          Alcotest.test_case "netmem" `Quick test_netmem;
          Alcotest.test_case "migrator (copy-on-reference)" `Quick test_migrator;
          Alcotest.test_case "default pager" `Quick test_default_pager;
        ] );
    ]
