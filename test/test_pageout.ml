(* The pageout daemon, the default pager and the reserved pool:
   anonymous memory larger than physical memory must survive a round
   trip through the paging file (§6.2.2, §6.2.3). *)

open Mach
module Mos = Memory_object_server
module Page_queues = Mach_vm.Page_queues

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

let small = { Kernel.default_config with Kernel.phys_frames = 64 }

let tag i = Printf.sprintf "page-%04d-contents" i

let test_anonymous_paging_roundtrip () =
  with_system ~config:small (fun sys task ->
      (* 3x physical memory of anonymous data. *)
      let npages = 192 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        match Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) () with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write %d: %a" i Access.pp_error e
      done;
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageouts happened" true (stats.Vm_types.s_pageouts > 0);
      (* Read everything back: early pages were paged out to the
         default pager and must return with correct contents. *)
      for i = 0 to npages - 1 do
        match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:(String.length (tag i)) () with
        | Ok b -> check Alcotest.string (Printf.sprintf "page %d content" i) (tag i) (Bytes.to_string b)
        | Error e -> Alcotest.failf "read %d: %a" i Access.pp_error e
      done;
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageins from default pager" true (stats.Vm_types.s_pageins > 0);
      Alcotest.(check bool) "paging disk used" true (Disk.ops sys.Kernel.kernel.Ktypes.k_paging_disk > 0))

let test_repaged_data_modifiable () =
  with_system ~config:small (fun _sys task ->
      let npages = 150 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) ())
      done;
      (* Rewrite the early (paged-out) pages and check both rounds. *)
      for i = 0 to 20 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string "v2") ())
      done;
      for i = 0 to 20 do
        match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:2 () with
        | Ok b -> check Alcotest.string "v2 stuck" "v2" (Bytes.to_string b)
        | Error e -> Alcotest.failf "read: %a" Access.pp_error e
      done)

let test_reserved_pool_respected () =
  with_system ~config:small (fun sys task ->
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let reserved = kctx.Kctx.reserved_frames in
      Alcotest.(check bool) "reserve exists" true (reserved > 0);
      (* Grind through memory; at no point may an unprivileged
         allocation leave fewer than zero... the daemon keeps free above
         the floor eventually, and free never hits 0 while we allocate
         because the reserve is off-limits to us. *)
      let npages = 100 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      let min_free = ref max_int in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string "x") ());
        min_free := min !min_free (Kernel.free_frames sys.Kernel.kernel)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "reserve never breached (min free %d, reserve %d)" !min_free reserved)
        true (!min_free >= 0))

let test_lru_prefers_cold_pages () =
  with_system ~config:small (fun sys task ->
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let hot_pages = 8 in
      let addr = Syscalls.vm_allocate task ~size:(120 * page) ~anywhere:true () in
      (* Touch hot pages constantly while streaming through the rest. *)
      for i = 0 to 119 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) ());
        for h = 0 to hot_pages - 1 do
          ignore (Syscalls.touch task ~addr:(addr + (h * page)) ~write:false ())
        done
      done;
      (* The hot pages should still be resident (no pagein needed). *)
      let before = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      for h = 0 to hot_pages - 1 do
        ignore (Syscalls.touch task ~addr:(addr + (h * page)) ~write:false ())
      done;
      let after = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      check Alcotest.int "hot set stayed resident" 0 (after - before);
      ignore kctx)

let test_run_once_noop_when_memory_free () =
  with_system (fun sys _task ->
      (* Plenty of memory: nothing to reclaim. *)
      check Alcotest.int "no deficit, no work" 0 (Pageout.run_once sys.Kernel.kernel.Ktypes.k_kctx))

let test_default_pager_stats () =
  with_system ~config:small (fun sys task ->
      let npages = 150 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 8 'z') ())
      done;
      (* The default pager's backing store now holds pages. *)
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageouts counted" true (stats.Vm_types.s_pageouts > 40);
      Alcotest.(check bool) "paging disk has writes" true
        (Disk.writes sys.Kernel.kernel.Ktypes.k_paging_disk > 0))

let test_paging_blocks_recycled () =
  (* Repeatedly create, page out, and destroy address spaces: the
     paging disk must not leak blocks across object lifetimes. *)
  with_system ~config:small (fun sys _task ->
      let kernel = sys.Kernel.kernel in
      let dp = Option.get kernel.Ktypes.k_default_pager in
      let free_at_start = Default_pager.blocks_free dp in
      for round = 0 to 4 do
        let t = Task.create kernel ~name:(Printf.sprintf "churn-%d" round) () in
        let fin = Ivar.create () in
        ignore
          (Thread.spawn t ~name:(Printf.sprintf "churn-%d.main" round) (fun () ->
               let npages = 120 in
               let addr = Syscalls.vm_allocate t ~size:(npages * page) ~anywhere:true () in
               for i = 0 to npages - 1 do
                 ignore (Syscalls.write_bytes t ~addr:(addr + (i * page)) (Bytes.make 8 'x') ())
               done;
               Ivar.fill fin ()));
        Ivar.read fin;
        Task.terminate t;
        (* Let termination and releases settle. *)
        Engine.sleep 1_000_000.0
      done;
      (* Five rounds of ~56+ paged-out pages each would need hundreds
         of blocks if leaked; all must have come back. *)
      Alcotest.(check bool) "no pageouts would invalidate this test" true
        ((Kernel.stats kernel).Vm_types.s_pageouts > 0);
      check Alcotest.int "all paging blocks recycled" free_at_start (Default_pager.blocks_free dp))

(* A manager task whose callbacks we control; returns the server, the
   request port (filled at pager_init) and a data_request counter. *)
let make_manager kernel ~name ~on_data_write =
  let mgr = Task.create kernel ~name () in
  let req_port = Ivar.create () in
  let requests = ref 0 in
  let callbacks =
    {
      Mos.no_callbacks with
      Mos.on_init = (fun _ ~memory_object:_ ~request ~name:_ -> Ivar.fill req_port request);
      Mos.on_data_request =
        (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
          incr requests;
          Mos.data_provided srv ~request ~offset ~data:(Bytes.make length 'm')
            ~lock_value:Prot.none);
      Mos.on_data_write;
    }
  in
  let srv = Mos.start mgr callbacks in
  (srv, req_port, requests)

let test_refault_during_clean () =
  (* Refault on a page whose run's data_write is still outstanding: the
     page stays resident busy-cleaning on the laundry queue, so the
     faulter waits for the release instead of re-requesting the data
     from the manager (the old pipeline detached the page and paid a
     second data_request). *)
  with_system (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let srv, req_port, requests =
        make_manager kernel ~name:"slow-mgr"
          ~on_data_write:(fun _ ~memory_object:_ ~offset:_ ~data:_ ~release ->
            (* Hold the data long enough for refaults to land. *)
            Engine.sleep 5_000.0;
            release ())
      in
      let memory_object = Mos.create_memory_object srv () in
      let npages = 8 in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      for i = 0 to npages - 1 do
        ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ())
      done;
      let req = Ivar.read req_port in
      let requests_before = !requests in
      let hits_before = (Kernel.stats kernel).Vm_types.s_clean_hits in
      Mos.clean_request srv ~request:req ~offset:0 ~length:(npages * page);
      (* Let the kernel launder the run, then refault mid-clean. *)
      Engine.sleep 500.0;
      let kctx = kernel.Ktypes.k_kctx in
      Alcotest.(check bool) "pages busy-cleaning on the laundry queue" true
        (Page_queues.laundry_count kctx.Kctx.queues > 0);
      for i = 0 to npages - 1 do
        match Syscalls.touch task ~addr:(addr + (i * page)) ~write:true () with
        | Ok () -> ()
        | Error e -> Alcotest.failf "refault %d: %a" i Access.pp_error e
      done;
      let stats = Kernel.stats kernel in
      Alcotest.(check bool) "refaults absorbed by the laundry queue" true
        (stats.Vm_types.s_clean_hits > hits_before);
      check Alcotest.int "no second data_request to the manager" requests_before !requests;
      check Alcotest.int "laundry drained" 0 (Page_queues.laundry_count kctx.Kctx.queues))

let test_rescue_still_double_pages () =
  (* A manager that never releases its data_writes: the rescue timer
     must fire, push the in-transit data to the default pager (§6.2.2
     double paging) and free the frames; a later fault re-requests the
     data from the manager. *)
  with_system (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let srv, req_port, requests =
        make_manager kernel ~name:"hoarder-mgr"
          ~on_data_write:(fun _ ~memory_object:_ ~offset:_ ~data:_ ~release:_ -> ())
      in
      let memory_object = Mos.create_memory_object srv () in
      let npages = 8 in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      for i = 0 to npages - 1 do
        ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ())
      done;
      let req = Ivar.read req_port in
      let rescued_before = (Kernel.stats kernel).Vm_types.s_pageout_to_default in
      Mos.clean_request srv ~request:req ~offset:0 ~length:(npages * page);
      (* Sleep past the rescue timeout. *)
      let kctx = kernel.Ktypes.k_kctx in
      Engine.sleep (kctx.Kctx.data_write_release_timeout_us +. 100_000.0);
      let stats = Kernel.stats kernel in
      Alcotest.(check bool) "rescue double-paged the run to the default pager" true
        (stats.Vm_types.s_pageout_to_default > rescued_before);
      check Alcotest.int "laundry drained by the rescue" 0
        (Page_queues.laundry_count kctx.Kctx.queues);
      (* The pages are gone; faulting again must re-request from the
         manager and still complete. *)
      let requests_before = !requests in
      for i = 0 to npages - 1 do
        match Syscalls.touch task ~addr:(addr + (i * page)) ~write:false () with
        | Ok () -> ()
        | Error e -> Alcotest.failf "post-rescue fault %d: %a" i Access.pp_error e
      done;
      Alcotest.(check bool) "post-rescue faults re-request from the manager" true
        (!requests > requests_before))

let () =
  Alcotest.run "pageout"
    [
      ( "paging",
        [
          Alcotest.test_case "anonymous paging roundtrip" `Quick test_anonymous_paging_roundtrip;
          Alcotest.test_case "repaged data modifiable" `Quick test_repaged_data_modifiable;
          Alcotest.test_case "reserved pool respected" `Quick test_reserved_pool_respected;
          Alcotest.test_case "LRU keeps hot pages" `Quick test_lru_prefers_cold_pages;
          Alcotest.test_case "run_once no-op when free" `Quick test_run_once_noop_when_memory_free;
          Alcotest.test_case "default pager stats" `Quick test_default_pager_stats;
          Alcotest.test_case "paging blocks recycled across object lifetimes" `Quick
            test_paging_blocks_recycled;
        ] );
      ( "writeback",
        [
          Alcotest.test_case "refault during clean is absorbed" `Quick test_refault_during_clean;
          Alcotest.test_case "unreleased data_write still double-pages" `Quick
            test_rescue_still_double_pages;
        ] );
    ]
