(* Fault-handler behaviour (§5.5) and the kernel↔manager protocol
   details (§3.4.1): locks and unlocks, unavailable data, request
   coalescing, shadow chains, failure policies. *)

open Mach
module Mos = Memory_object_server

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

(* A manager serving counted requests, optionally write-locking pages. *)
let counting_manager kernel ~lock_writes =
  let task = Task.create kernel ~name:"mgr" () in
  let requests = ref [] in
  let unlocks = ref [] in
  let cb =
    {
      Mos.no_callbacks with
      Mos.on_data_request =
        (fun srv ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
          requests := offset :: !requests;
          Mos.data_provided srv ~request ~offset
            ~data:(Bytes.make page (Char.chr (65 + (offset / page mod 26))))
            ~lock_value:(if lock_writes then Prot.write else Prot.none));
      Mos.on_data_unlock =
        (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
          unlocks := offset :: !unlocks;
          Mos.data_lock srv ~request ~offset ~length ~lock_value:Prot.none);
    }
  in
  let srv = Mos.start task cb in
  (srv, requests, unlocks)

let test_zero_fill_and_soft_fault () =
  with_system (fun sys task ->
      let addr = Syscalls.vm_allocate task ~size:page ~anywhere:true () in
      let s0 = (Kernel.stats sys.Kernel.kernel).Vm_types.s_zero_fill in
      ignore (Syscalls.touch task ~addr ~write:false ());
      let s1 = (Kernel.stats sys.Kernel.kernel).Vm_types.s_zero_fill in
      check Alcotest.int "one zero fill" 1 (s1 - s0);
      (* Invalidate the translation but keep the page: refault is soft. *)
      (match Vm_map.pmap (Task.map task) with
      | Some pm -> Mach_hw.Pmap.remove pm ~vpn:(addr / page)
      | None -> ());
      let h0 = (Kernel.stats sys.Kernel.kernel).Vm_types.s_hits in
      ignore (Syscalls.touch task ~addr ~write:false ());
      let h1 = (Kernel.stats sys.Kernel.kernel).Vm_types.s_hits in
      check Alcotest.int "soft fault hit" 1 (h1 - h0))

let test_manager_write_lock_unlock_flow () =
  with_system (fun sys task ->
      let srv, _requests, unlocks = counting_manager sys.Kernel.kernel ~lock_writes:true in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(2 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (* Read works under the write lock. *)
      (match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "read ok" "AAAA" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e);
      check Alcotest.int "no unlock yet" 0 (List.length !unlocks);
      (* Write must trigger pager_data_unlock and then succeed. *)
      (match Syscalls.write_bytes task ~addr (Bytes.of_string "WW") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Access.pp_error e);
      check Alcotest.(list int) "one unlock for page 0" [ 0 ] !unlocks;
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "unlock counted" true (stats.Vm_types.s_unlock_requests >= 1))

let test_data_unavailable_zero_fills () =
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"sparse-mgr" () in
      let cb =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
              Mos.data_unavailable srv ~request ~offset ~size:length);
        }
      in
      let srv = Mos.start mgr cb in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      match Syscalls.read_bytes task ~addr ~len:8 () with
      | Ok b ->
        check Alcotest.string "zero filled" (String.make 8 '\000') (Bytes.to_string b);
        let stats = Kernel.stats sys.Kernel.kernel in
        Alcotest.(check bool) "counted" true (stats.Vm_types.s_data_unavailable >= 1)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e)

let test_concurrent_faults_coalesce () =
  with_system (fun sys task ->
      (* A slow manager: both faulters must wait on ONE request. *)
      let mgr = Task.create sys.Kernel.kernel ~name:"slow-mgr" () in
      let requests = ref 0 in
      let cb =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
              incr requests;
              Engine.sleep 5000.0;
              Mos.data_provided srv ~request ~offset ~data:(Bytes.make page 'S')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr cb in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      let t2 = Task.create sys.Kernel.kernel ~name:"app2" () in
      let addr2 =
        Syscalls.vm_allocate_with_pager t2 ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      let d1 = Ivar.create () and d2 = Ivar.create () in
      ignore
        (Thread.spawn task ~name:"faulter-1" (fun () ->
             ignore (Syscalls.read_bytes task ~addr ~len:1 ());
             Ivar.fill d1 ()));
      ignore
        (Thread.spawn t2 ~name:"faulter-2" (fun () ->
             ignore (Syscalls.read_bytes t2 ~addr:addr2 ~len:1 ());
             Ivar.fill d2 ()));
      Ivar.read d1;
      Ivar.read d2;
      (* Same kernel, same object, same page: one pager_data_request. *)
      check Alcotest.int "coalesced" 1 !requests)

let test_policy_abort_and_zero_fill () =
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"dead-mgr" () in
      let srv = Mos.start mgr Mos.no_callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(2 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (match Syscalls.read_bytes task ~addr ~len:4 ~policy:(Fault.Abort_after 1000.0) () with
      | Error (Access.Manager_failed _) -> ()
      | Ok _ -> Alcotest.fail "expected abort"
      | Error e -> Alcotest.failf "wrong error: %a" Access.pp_error e);
      (* Zero-fill policy on the other page succeeds with zeroes. *)
      match
        Syscalls.read_bytes task ~addr:(addr + page) ~len:4
          ~policy:(Fault.Zero_fill_after 1000.0) ()
      with
      | Ok b -> check Alcotest.string "zeroes" "\000\000\000\000" (Bytes.to_string b)
      | Error e -> Alcotest.failf "zero-fill policy: %a" Access.pp_error e)

let test_shared_inheritance_read_write () =
  with_system (fun sys task ->
      let addr = Syscalls.vm_allocate task ~size:page ~anywhere:true () in
      ignore (Syscalls.write_bytes task ~addr (Bytes.of_string "before-fork") ());
      Syscalls.vm_inherit task ~addr ~size:page Vm_types.Inherit_share;
      let child = Task.create sys.Kernel.kernel ~parent:task ~name:"sharer" () in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn child ~name:"sharer.main" (fun () ->
             (match Syscalls.read_bytes child ~addr ~len:11 () with
             | Ok b -> check Alcotest.string "child sees parent" "before-fork" (Bytes.to_string b)
             | Error e -> Alcotest.failf "child read: %a" Access.pp_error e);
             (match Syscalls.write_bytes child ~addr (Bytes.of_string "child-wrote") () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "child write: %a" Access.pp_error e);
             Ivar.fill done_ ()));
      Ivar.read done_;
      match Syscalls.read_bytes task ~addr ~len:11 () with
      | Ok b -> check Alcotest.string "parent sees child write" "child-wrote" (Bytes.to_string b)
      | Error e -> Alcotest.failf "parent read: %a" Access.pp_error e)

let test_three_generation_cow_chain () =
  with_system (fun sys task ->
      let addr = Syscalls.vm_allocate task ~size:page ~anywhere:true () in
      ignore (Syscalls.write_bytes task ~addr (Bytes.of_string "gen0") ());
      let child = Task.create sys.Kernel.kernel ~parent:task ~name:"gen1" () in
      let gc_done = Ivar.create () in
      ignore
        (Thread.spawn child ~name:"gen1.main" (fun () ->
             (* Child writes (shadow #1), then forks a grandchild. *)
             ignore (Syscalls.write_bytes child ~addr (Bytes.of_string "gen1") ());
             let grandchild = Task.create sys.Kernel.kernel ~parent:child ~name:"gen2" () in
             ignore
               (Thread.spawn grandchild ~name:"gen2.main" (fun () ->
                    (match Syscalls.read_bytes grandchild ~addr ~len:4 () with
                    | Ok b ->
                      check Alcotest.string "grandchild reads through chain" "gen1"
                        (Bytes.to_string b)
                    | Error e -> Alcotest.failf "gc read: %a" Access.pp_error e);
                    ignore (Syscalls.write_bytes grandchild ~addr (Bytes.of_string "gen2") ());
                    Ivar.fill gc_done ()))));
      Ivar.read gc_done;
      (* Everyone sees their own value. *)
      (match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "gen0 isolated" "gen0" (Bytes.to_string b)
      | Error e -> Alcotest.failf "gen0: %a" Access.pp_error e))

let test_manager_flush_drops_clean_pages () =
  with_system (fun sys task ->
      let srv, requests, _ = counting_manager sys.Kernel.kernel ~lock_writes:false in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      ignore (Syscalls.read_bytes task ~addr ~len:1 ());
      check Alcotest.int "one request" 1 (List.length !requests);
      (* Flush from the manager: the cached page is invalidated. *)
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let obj = Option.get (Vm_object.find_by_port kctx memory_object) in
      let request_port =
        match obj.Vm_types.pager with
        | Vm_types.Pager p -> Option.get p.Vm_types.request_port
        | Vm_types.No_pager -> Alcotest.fail "expected pager"
      in
      Mos.flush_request srv ~request:request_port ~offset:0 ~length:page;
      Engine.sleep 10_000.0;
      check Alcotest.int "page gone" 0 (Vm_object.resident_count obj);
      (* Refault pulls it again. *)
      ignore (Syscalls.read_bytes task ~addr ~len:1 ());
      check Alcotest.int "second request" 2 (List.length !requests))

let test_mapping_at_object_offset () =
  (* Table 3-4: the mapped region corresponds to a given offset within
     the memory object; requests arriving at the manager carry object
     offsets, not task addresses. *)
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"mgr" () in
      let offsets_seen = ref [] in
      let cb =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
              offsets_seen := offset :: !offsets_seen;
              Mos.data_provided srv ~request ~offset
                ~data:(Bytes.make page (Char.chr (65 + (offset / page mod 26))))
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr cb in
      let memory_object = Mos.create_memory_object srv () in
      (* Map pages 4..5 of the object. *)
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(2 * page) ~anywhere:true ~memory_object
          ~offset:(4 * page) ()
      in
      (match Syscalls.read_bytes task ~addr ~len:1 () with
      | Ok b -> check Alcotest.string "object page 4" "E" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e);
      (match Syscalls.read_bytes task ~addr:(addr + page) ~len:1 () with
      | Ok b -> check Alcotest.string "object page 5" "F" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read2: %a" Access.pp_error e);
      check Alcotest.(list int) "manager saw object offsets" [ 4 * page; 5 * page ]
        (List.sort compare !offsets_seen))

let test_two_mappings_same_object_share_pages () =
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"mgr" () in
      let requests = ref 0 in
      let cb =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
              incr requests;
              Mos.data_provided srv ~request ~offset ~data:(Bytes.make page 's')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr cb in
      let memory_object = Mos.create_memory_object srv () in
      (* "A single memory object may be mapped in more than once" — both
         mappings hit the same cached page. *)
      let a1 =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      let a2 =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      ignore (Syscalls.read_bytes task ~addr:a1 ~len:1 ());
      ignore (Syscalls.read_bytes task ~addr:a2 ~len:1 ());
      check Alcotest.int "one pagein serves both mappings" 1 !requests;
      (* Writes through one mapping are visible through the other. *)
      (match Syscalls.write_bytes task ~addr:a1 (Bytes.of_string "W") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Access.pp_error e);
      match Syscalls.read_bytes task ~addr:a2 ~len:1 () with
      | Ok b -> check Alcotest.string "aliased" "W" (Bytes.to_string b)
      | Error e -> Alcotest.failf "aliased read: %a" Access.pp_error e)

let test_protection_fault_surfaces () =
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:page ~anywhere:true () in
      Syscalls.vm_protect task ~addr ~size:page ~set_max:false Prot.read;
      match Syscalls.write_bytes task ~addr (Bytes.of_string "x") () with
      | Error (Access.Access_denied _) -> ()
      | Ok () -> Alcotest.fail "write must be denied"
      | Error e -> Alcotest.failf "wrong error: %a" Access.pp_error e)

let test_write_across_protection_boundary () =
  (* A multi-page write that starts in a writable entry and crosses into
     a read-only one must fail at the boundary, leaving the writable
     part written. *)
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:(2 * page) ~anywhere:true () in
      Syscalls.vm_protect task ~addr:(addr + page) ~size:page ~set_max:false Prot.read;
      let data = Bytes.make (page + 8) 'B' in
      (match Syscalls.write_bytes task ~addr data () with
      | Error (Access.Access_denied a) -> check Alcotest.int "failed at boundary" (addr + page) a
      | Ok () -> Alcotest.fail "must not cross into read-only page"
      | Error e -> Alcotest.failf "wrong error: %a" Access.pp_error e);
      match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "first page written" "BBBB" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e)

let test_regions_expose_pager_name_port () =
  (* vm_regions identifies pager-backed regions by the pager name port
     (§3.4.1, footnote 3: never the memory object or request port). *)
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"mgr" () in
      let srv = Mos.start mgr Mos.no_callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true ~memory_object ~offset:0 ()
      in
      let region =
        List.find (fun r -> r.Vm_map.ri_start = addr) (Syscalls.vm_regions task)
      in
      match region.Vm_map.ri_name_port with
      | Some name_port ->
        Alcotest.(check bool) "name port is not the memory object" false
          (Mach_ipc.Port.equal name_port memory_object)
      | None -> Alcotest.fail "pager-backed region must expose its name port")

(* A manager recording (offset, length) of every data request, providing
   [serve] pages per request (the kernel may ask for a whole cluster). *)
let recording_manager kernel ~serve =
  let task = Task.create kernel ~name:"rec-mgr" () in
  let requests = ref [] in
  let cb =
    {
      Mos.no_callbacks with
      Mos.on_data_request =
        (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
          requests := (offset, length) :: !requests;
          let len = min length (serve * page) in
          Mos.data_provided srv ~request ~offset
            ~data:(Bytes.init len (fun i -> Char.chr (65 + ((offset + i) / page mod 26))))
            ~lock_value:Prot.none);
    }
  in
  let srv = Mos.start task cb in
  (srv, requests)

let test_clustered_request_multi_page_provide () =
  (* A hard read fault asks for a whole cluster in ONE message; a manager
     that honors the length fills every page, and the neighbors are then
     touched without any further pager traffic. *)
  with_system (fun sys task ->
      let srv, requests = recording_manager sys.Kernel.kernel ~serve:8 in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(8 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      for i = 0 to 7 do
        match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:1 () with
        | Ok b ->
          check Alcotest.string
            (Printf.sprintf "page %d content" i)
            (String.make 1 (Char.chr (65 + i)))
            (Bytes.to_string b)
        | Error e -> Alcotest.failf "read %d: %a" i Access.pp_error e
      done;
      check
        Alcotest.(list (pair int int))
        "one clustered request" [ (0, 8 * page) ] !requests;
      let stats = Kernel.stats sys.Kernel.kernel in
      check Alcotest.int "eight pages paged in" 8 stats.Vm_types.s_pageins;
      Alcotest.(check bool) "cluster counted" true (stats.Vm_types.s_cluster_pages >= 7))

let test_cluster_clipped_at_object_end () =
  (* The cluster window must not run past the end of the memory object:
     a 3-page object gets a 3-page request, not the full window. *)
  with_system (fun sys task ->
      let srv, requests = recording_manager sys.Kernel.kernel ~serve:8 in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(3 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (match Syscalls.read_bytes task ~addr ~len:1 () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e);
      check
        Alcotest.(list (pair int int))
        "request clipped to object size" [ (0, 3 * page) ] !requests)

let test_cluster_partial_provide_rerequest () =
  (* A manager that answers only the first page of each request: a fault
     landing on an unfilled speculative placeholder must promote it and
     re-request that page alone; the reclaim timer frees the rest. *)
  with_system (fun sys task ->
      let srv, requests = recording_manager sys.Kernel.kernel ~serve:1 in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(8 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (match Syscalls.read_bytes task ~addr ~len:1 () with
      | Ok b -> check Alcotest.string "page 0" "A" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read 0: %a" Access.pp_error e);
      (match Syscalls.read_bytes task ~addr:(addr + (2 * page)) ~len:1 () with
      | Ok b -> check Alcotest.string "page 2 via re-request" "C" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read 2: %a" Access.pp_error e);
      (match List.rev !requests with
      | [ (o1, l1); (o2, l2) ] ->
        check Alcotest.int "first request offset" 0 o1;
        check Alcotest.int "first request is clustered" (8 * page) l1;
        check Alcotest.int "re-request offset" (2 * page) o2;
        check Alcotest.int "re-request is a single page" page l2
      | rs -> Alcotest.failf "expected 2 requests, saw %d" (List.length rs));
      (* Past the pager timeout the unfilled placeholders are reclaimed:
         only the two demanded pages stay resident. *)
      Engine.sleep 2_500_000.0;
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let obj = Option.get (Vm_object.find_by_port kctx memory_object) in
      check Alcotest.int "speculative placeholders reclaimed" 2
        (Vm_object.resident_count obj))

let test_zero_fill_races_multi_page_provide () =
  (* Zero_fill_after fires before a slow manager's clustered provide
     lands: the demanded page keeps its zeroes (late data is dropped),
     while the still-absent neighbors accept the provide. *)
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"slow-mgr" () in
      let requests = ref 0 in
      let cb =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
              incr requests;
              Engine.sleep 5000.0;
              Mos.data_provided srv ~request ~offset
                ~data:(Bytes.init length (fun i -> Char.chr (65 + ((offset + i) / page mod 26))))
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr cb in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (match Syscalls.read_bytes task ~addr ~len:4 ~policy:(Fault.Zero_fill_after 1000.0) () with
      | Ok b -> check Alcotest.string "zero-filled under policy" "\000\000\000\000" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e);
      (* Let the clustered provide arrive. *)
      Engine.sleep 10_000.0;
      (match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "late data dropped" "\000\000\000\000" (Bytes.to_string b)
      | Error e -> Alcotest.failf "reread: %a" Access.pp_error e);
      (match Syscalls.read_bytes task ~addr:(addr + page) ~len:1 () with
      | Ok b -> check Alcotest.string "neighbor filled by provide" "B" (Bytes.to_string b)
      | Error e -> Alcotest.failf "neighbor: %a" Access.pp_error e);
      check Alcotest.int "single clustered request" 1 !requests)

let test_bad_address_surfaces () =
  with_system (fun _sys task ->
      match Syscalls.read_bytes task ~addr:0x7f000000 ~len:1 () with
      | Error (Access.Bad_address _) -> ()
      | Ok _ -> Alcotest.fail "unmapped read must fail"
      | Error e -> Alcotest.failf "wrong error: %a" Access.pp_error e)

let () =
  Alcotest.run "vm_fault"
    [
      ( "fault-paths",
        [
          Alcotest.test_case "zero-fill then soft" `Quick test_zero_fill_and_soft_fault;
          Alcotest.test_case "protection fault" `Quick test_protection_fault_surfaces;
          Alcotest.test_case "bad address" `Quick test_bad_address_surfaces;
          Alcotest.test_case "write across protection boundary" `Quick
            test_write_across_protection_boundary;
          Alcotest.test_case "vm_regions exposes pager name port" `Quick
            test_regions_expose_pager_name_port;
          Alcotest.test_case "three-generation COW chain" `Quick test_three_generation_cow_chain;
          Alcotest.test_case "shared inheritance" `Quick test_shared_inheritance_read_write;
        ] );
      ( "pager-protocol",
        [
          Alcotest.test_case "write lock and unlock flow" `Quick test_manager_write_lock_unlock_flow;
          Alcotest.test_case "data unavailable zero-fills" `Quick test_data_unavailable_zero_fills;
          Alcotest.test_case "concurrent faults coalesce" `Quick test_concurrent_faults_coalesce;
          Alcotest.test_case "abort and zero-fill policies" `Quick test_policy_abort_and_zero_fill;
          Alcotest.test_case "manager flush drops clean pages" `Quick
            test_manager_flush_drops_clean_pages;
          Alcotest.test_case "mapping at object offset" `Quick test_mapping_at_object_offset;
          Alcotest.test_case "multiple mappings share pages" `Quick
            test_two_mappings_same_object_share_pages;
        ] );
      ( "clustered-paging",
        [
          Alcotest.test_case "clustered request, multi-page provide" `Quick
            test_clustered_request_multi_page_provide;
          Alcotest.test_case "cluster clipped at object end" `Quick
            test_cluster_clipped_at_object_end;
          Alcotest.test_case "partial provide triggers re-request" `Quick
            test_cluster_partial_provide_rerequest;
          Alcotest.test_case "zero-fill races multi-page provide" `Quick
            test_zero_fill_races_multi_page_provide;
        ] );
    ]
