(* Copy semantics of out-of-line message transfer.

   msg_send snapshots Ool_region items into kernel copy objects
   (vm_map_copyin): from that instant the message's contents are fixed.
   The receiver's map_ool attaches the snapshot lazily (vm_map_copyout)
   and its pages materialize through the fault path. Both directions of
   isolation must hold — sender writes after the send are invisible to
   the receiver, and receiver writes never leak back — locally and
   across hosts, for any interleaving of sends and writes. *)

open Mach

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"sender" () in
      ignore (Thread.spawn task ~name:"sender.main" (fun () -> result := Some (f sys task)));
      ());
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "scenario did not complete (deadlock?)"

let read_str task ~addr ~len =
  match Syscalls.read_bytes task ~addr ~len () with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "%s read: %a" (Task.name task) Access.pp_error e

let write_str task ~addr s =
  match Syscalls.write_bytes task ~addr (Bytes.of_string s) () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s write: %a" (Task.name task) Access.pp_error e

(* Ship [addr, addr+size) of [sender] out of line to [dest]. *)
let send_region sender ~addr ~size ~dest =
  match
    Syscalls.msg_send sender (Message.make ~dest [ Syscalls.ool_region sender ~addr ~size ])
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "ool send failed"

let receive_mapped receiver ~svc =
  match Syscalls.msg_receive receiver ~from:(`Port svc) () with
  | Ok msg -> (
    match Syscalls.map_ool receiver msg with
    | [ (addr, size) ] -> (addr, size)
    | other -> Alcotest.failf "expected one mapped region, got %d" (List.length other))
  | Error _ -> Alcotest.fail "receive failed"

let test_sender_writes_invisible () =
  with_system (fun sys sender ->
      let receiver = Task.create sys.Kernel.kernel ~name:"receiver" () in
      let svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) svc in
      let size = 2 * page in
      let addr = Syscalls.vm_allocate sender ~size ~anywhere:true () in
      write_str sender ~addr "before";
      write_str sender ~addr:(addr + page) "tail";
      send_region sender ~addr ~size ~dest:svc_port;
      (* The snapshot is already fixed: scribble over both pages. *)
      write_str sender ~addr "AFTER!";
      write_str sender ~addr:(addr + page) "gone";
      let raddr, rsize = receive_mapped receiver ~svc in
      check Alcotest.int "full region mapped" size rsize;
      check Alcotest.string "first page is the snapshot" "before"
        (read_str receiver ~addr:raddr ~len:6);
      check Alcotest.string "second page is the snapshot" "tail"
        (read_str receiver ~addr:(raddr + page) ~len:4))

let test_receiver_writes_do_not_leak () =
  with_system (fun sys sender ->
      let receiver = Task.create sys.Kernel.kernel ~name:"receiver" () in
      let svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) svc in
      let size = page in
      let addr = Syscalls.vm_allocate sender ~size ~anywhere:true () in
      write_str sender ~addr "original";
      send_region sender ~addr ~size ~dest:svc_port;
      let raddr, _ = receive_mapped receiver ~svc in
      write_str receiver ~addr:raddr "tampered";
      check Alcotest.string "receiver sees its own write" "tampered"
        (read_str receiver ~addr:raddr ~len:8);
      check Alcotest.string "sender unaffected" "original" (read_str sender ~addr ~len:8))

let test_lazy_copyout_faults_counted () =
  with_system (fun sys sender ->
      let stats = (Kernel.kctx sys.Kernel.kernel).Kctx.node.Transport.node_stats in
      let receiver = Task.create sys.Kernel.kernel ~name:"receiver" () in
      let svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) svc in
      let size = 4 * page in
      let addr = Syscalls.vm_allocate sender ~size ~anywhere:true () in
      write_str sender ~addr "payload";
      let copyins0 = stats.Transport.s_copyins in
      send_region sender ~addr ~size ~dest:svc_port;
      check Alcotest.int "one copyin at send" 1 (stats.Transport.s_copyins - copyins0);
      let faults0 = stats.Transport.s_lazy_copyout_faults in
      let raddr, _ = receive_mapped receiver ~svc in
      check Alcotest.int "mapping alone faults nothing" 0
        (stats.Transport.s_lazy_copyout_faults - faults0);
      check Alcotest.string "first touch pages the copy in" "payload"
        (read_str receiver ~addr:raddr ~len:7);
      Alcotest.(check bool) "lazy copy-out faults counted" true
        (stats.Transport.s_lazy_copyout_faults > faults0))

let test_remote_copy_transfer () =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  let result = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let sender = Task.create cluster.Kernel.c_kernels.(0) ~name:"sender" () in
      let receiver = Task.create cluster.Kernel.c_kernels.(1) ~name:"receiver" () in
      let svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) svc in
      let size = 2 * page in
      ignore
        (Thread.spawn sender ~name:"sender.main" (fun () ->
             let addr = Syscalls.vm_allocate sender ~size ~anywhere:true () in
             write_str sender ~addr "across-the-wire";
             send_region sender ~addr ~size ~dest:svc_port;
             (* Late sender writes must not reach the remote snapshot
                even though its pages have not crossed the wire yet. *)
             write_str sender ~addr "XXXXXXXXXXXXXXX"));
      ignore
        (Thread.spawn receiver ~name:"receiver.main" (fun () ->
             let msg =
               match Syscalls.msg_receive receiver ~from:(`Port svc) () with
               | Ok msg -> msg
               | Error _ -> Alcotest.fail "remote receive failed"
             in
             (* The message carries only a handle to the sender-side
                export, never the bytes. *)
             let mo =
               match msg.Message.body with
               | [ Message.Ool_copy { Message.cp_payload = Message.Net_copy { nc_object }; _ } ]
                 -> nc_object
               | _ -> Alcotest.fail "expected a remote copy handle"
             in
             let raddr, rsize =
               match Syscalls.map_ool receiver msg with
               | [ r ] -> r
               | other -> Alcotest.failf "expected one mapped region, got %d" (List.length other)
             in
             let first = read_str receiver ~addr:raddr ~len:15 in
             write_str receiver ~addr:raddr "local-scribble!";
             let after = read_str receiver ~addr:raddr ~len:15 in
             (* Dropping the mapping kills our pager request port; the
                sender-side export sees the death and tears down. *)
             Syscalls.vm_deallocate receiver ~addr:raddr ~size:rsize;
             Engine.sleep 10_000.0;
             result := Some (first, after, Mach_ipc.Port.alive mo))));
  Engine.run cluster.Kernel.c_engine;
  match !result with
  | None -> Alcotest.fail "remote transfer did not complete (deadlock?)"
  | Some (first, after, export_alive) ->
    check Alcotest.string "receiver pages in the send-time snapshot" "across-the-wire" first;
    check Alcotest.string "receiver writes stay local" "local-scribble!" after;
    Alcotest.(check bool) "export torn down after unmap" false export_alive

(* qcheck: the lazy pipeline must be observationally equal to an eager
   Bytes.blit snapshot at every send, for any interleaving of sends and
   single-byte sender writes. *)
let copy_oracle_prop =
  let open QCheck2 in
  let size = 2 * page in
  let gen =
    Gen.(
      list_size (int_range 1 4)
        (pair
           (list_size (int_range 0 6) (pair (int_range 0 (size - 1)) (char_range 'a' 'z')))
           unit))
  in
  Test.make ~name:"lazy copy-out equals eager blit oracle" ~count:30 gen (fun rounds ->
      with_system (fun sys sender ->
          let receiver = Task.create sys.Kernel.kernel ~name:"receiver" () in
          let svc = Syscalls.port_allocate receiver ~backlog:8 () in
          let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) svc in
          let addr = Syscalls.vm_allocate sender ~size ~anywhere:true () in
          (match Syscalls.write_bytes sender ~addr (Bytes.make size '.') () with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "seed write failed");
          let oracle = Bytes.make size '.' in
          (* Each round: a burst of overlapping writes, then a send.
             The oracle snapshots eagerly at the send. *)
          let snapshots =
            List.map
              (fun (writes, ()) ->
                List.iter
                  (fun (off, ch) ->
                    Bytes.set oracle off ch;
                    match
                      Syscalls.write_bytes sender ~addr:(addr + off) (Bytes.make 1 ch) ()
                    with
                    | Ok () -> ()
                    | Error _ -> Alcotest.fail "interleaved write failed")
                  writes;
                send_region sender ~addr ~size ~dest:svc_port;
                let snap = Bytes.create size in
                Bytes.blit oracle 0 snap 0 size;
                snap)
              rounds
          in
          List.for_all
            (fun snap ->
              let raddr, rsize = receive_mapped receiver ~svc in
              let got = read_str receiver ~addr:raddr ~len:rsize in
              Syscalls.vm_deallocate receiver ~addr:raddr ~size:rsize;
              String.equal got (Bytes.to_string snap))
            snapshots))

let () =
  Alcotest.run "copy_transfer"
    [
      ( "local",
        [
          Alcotest.test_case "sender writes after send invisible" `Quick
            test_sender_writes_invisible;
          Alcotest.test_case "receiver writes do not leak back" `Quick
            test_receiver_writes_do_not_leak;
          Alcotest.test_case "copyin eager, copy-out faults lazy" `Quick
            test_lazy_copyout_faults_counted;
        ] );
      ("remote", [ Alcotest.test_case "cross-host snapshot" `Quick test_remote_copy_transfer ]);
      ("property", [ QCheck_alcotest.to_alcotest copy_oracle_prop ]);
    ]
