(* Tests for the processor scheduler: per-CPU run queues, affinity,
   work stealing, quantum preemption, handoff donation — and the
   kernel-level guarantee that the IPC RPC fast path hands the sender's
   processor to the receiver without a context-switch charge. *)

open Mach
module Sched = Mach_sim.Sched
module Rng = Mach_util.Rng

let check = Alcotest.check

(* ---- deterministic replay ----------------------------------------------- *)

(* A fixed pseudo-random workload run twice must produce identical
   completion traces and identical counters: the scheduler introduces
   no hidden nondeterminism (hash order, physical time, ...). *)
let workload_trace ~seed ~cpus ~threads ~bursts =
  let eng = Engine.create () in
  let s = Sched.create eng ~cpus ~quantum_us:500.0 ~context_switch_us:20.0 () in
  let rng = Rng.create seed in
  let plans =
    List.init threads (fun _ -> List.init bursts (fun _ -> float_of_int (Rng.int_in rng 1 400)))
  in
  let trace = ref [] in
  List.iteri
    (fun i plan ->
      Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
          List.iter
            (fun us ->
              Sched.compute s us;
              trace := (i, Engine.now eng) :: !trace)
            plan))
    plans;
  Engine.run eng;
  (List.rev !trace, Sched.stats_to_list (Sched.stats s), Sched.busy_us s)

let test_determinism () =
  let a = workload_trace ~seed:42 ~cpus:3 ~threads:5 ~bursts:12 in
  let b = workload_trace ~seed:42 ~cpus:3 ~threads:5 ~bursts:12 in
  let trace_a, stats_a, busy_a = a and trace_b, stats_b, busy_b = b in
  check Alcotest.(list (pair int (float 1e-9))) "same completion trace" trace_a trace_b;
  check Alcotest.(list (pair string int)) "same counters" stats_a stats_b;
  check (Alcotest.float 1e-9) "same busy time" busy_a busy_b

(* ---- serialization and parallelism -------------------------------------- *)

let run_bursts ~cpus ~quantum_us ~context_switch_us jobs =
  let eng = Engine.create () in
  let s = Sched.create eng ~cpus ~quantum_us ~context_switch_us () in
  let finished = ref 0 in
  List.iteri
    (fun i us ->
      Engine.spawn eng ~name:(Printf.sprintf "j%d" i) (fun () ->
          Sched.compute s us;
          incr finished))
    jobs;
  Engine.run eng;
  (Engine.now eng, Sched.stats s, !finished)

let test_serializes_on_one_cpu () =
  let elapsed, _, finished = run_bursts ~cpus:1 ~quantum_us:10_000.0 ~context_switch_us:0.0
      [ 100.0; 100.0; 100.0 ] in
  check Alcotest.int "all finished" 3 finished;
  Alcotest.(check bool) "serialized" true (elapsed >= 300.0)

let test_parallel_on_enough_cpus () =
  let elapsed, st, finished = run_bursts ~cpus:4 ~quantum_us:10_000.0 ~context_switch_us:50.0
      [ 100.0; 100.0; 100.0; 100.0 ] in
  check Alcotest.int "all finished" 4 finished;
  Alcotest.(check bool) "ran in parallel" true (elapsed < 150.0);
  check Alcotest.int "no switch charges on idle acquires" 0 st.Sched.s_switches

let test_quantum_preemption () =
  (* Two 25ms bursts on one CPU with a 10ms quantum interleave: the
     second thread must start well before the first finishes. *)
  let eng = Engine.create () in
  let s = Sched.create eng ~cpus:1 ~quantum_us:10_000.0 ~context_switch_us:0.0 () in
  let first_done = ref 0.0 and second_start = ref infinity in
  Engine.spawn eng ~name:"a" (fun () ->
      Sched.compute s 25_000.0;
      first_done := Engine.now eng);
  Engine.spawn eng ~name:"b" (fun () ->
      second_start := Engine.now eng;
      Sched.compute s 25_000.0);
  Engine.run eng;
  Alcotest.(check bool) "preemptions happened" true ((Sched.stats s).Sched.s_preemptions >= 2);
  Alcotest.(check bool) "b started before a finished (timeslicing)" true
    (!second_start < !first_done)

let test_affinity_preferred () =
  (* With every CPU idle, consecutive bursts of one thread stay on the
     same processor. *)
  let eng = Engine.create () in
  let s = Sched.create eng ~cpus:4 ~quantum_us:10_000.0 ~context_switch_us:10.0 () in
  Engine.spawn eng ~name:"hot" (fun () ->
      for _ = 1 to 5 do
        Sched.compute s 50.0;
        Engine.sleep 5.0
      done);
  Engine.run eng;
  let st = Sched.stats s in
  Alcotest.(check bool) "affinity hits" true (st.Sched.s_affinity_hits >= 4);
  check Alcotest.int "no migrations" 0 st.Sched.s_migrations

let test_handoff_expiry () =
  (* A donation nobody claims frees the processor after one
     context-switch window instead of leaking it. *)
  let eng = Engine.create () in
  let s = Sched.create eng ~cpus:1 ~quantum_us:10_000.0 ~context_switch_us:20.0 () in
  let late_done = ref false in
  Engine.spawn eng ~name:"donor" (fun () ->
      Sched.compute s 10.0;
      (match Sched.donate s with
      | Some _ -> ()
      | None -> Alcotest.fail "donation of an idle CPU should succeed");
      Engine.sleep 1000.0);
  Engine.spawn eng ~name:"other" (fun () ->
      Engine.sleep 15.0;
      (* The only CPU is reserved at this point; the burst must still
         complete once the reservation expires. *)
      Sched.compute s 10.0;
      late_done := true);
  Engine.run eng;
  Alcotest.(check bool) "burst ran after expiry" true !late_done;
  check Alcotest.int "expiry counted" 1 (Sched.stats s).Sched.s_handoff_expired

(* ---- no-starvation / work-stealing property ------------------------------ *)

(* Random fleets of threads with random burst plans on random CPU
   counts: every burst completes, and the invariant oracle — a CPU went
   idle while another CPU's run queue held a waiter — never fires.
   This is the property work stealing exists to enforce. *)
let no_starvation_prop =
  let open QCheck2 in
  let gen =
    Gen.(
      tup3 (int_range 1 4)
        (int_range 1 8)
        (list_size (int_range 1 40) (pair (int_range 0 7) (int_range 1 300))))
  in
  Test.make ~name:"no CPU idles while a runnable thread waits" ~count:50 gen
    (fun (cpus, threads, bursts) ->
      let eng = Engine.create () in
      let s = Sched.create eng ~cpus ~quantum_us:100.0 ~context_switch_us:7.0 () in
      let plans = Array.make threads [] in
      List.iter
        (fun (th, us) ->
          let th = th mod threads in
          plans.(th) <- float_of_int us :: plans.(th))
        bursts;
      let total = List.length bursts in
      let completed = ref 0 in
      Array.iteri
        (fun i plan ->
          Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
              List.iter
                (fun us ->
                  Sched.compute s us;
                  incr completed)
                plan))
        plans;
      Engine.run eng;
      !completed = total
      && (Sched.stats s).Sched.s_idle_with_waiter = 0
      && Sched.queued s = 0
      && Sched.idle_cpus s = cpus)

(* ---- kernel-level handoff: RPC fast path charges no switch --------------- *)

let multimax2 = { Machine.multimax with Machine.cpus = 2 }

(* One RPC to an already-blocked receiver: both deliveries (request and
   reply) must ride the handoff path — no run-queue dispatch charge on
   either side. *)
let test_rpc_handoff_no_switch () =
  let config = { Kernel.default_config with Kernel.params = multimax2 } in
  let sys = Kernel.create_system ~config () in
  let kctx = Kernel.kctx sys.Kernel.kernel in
  let sched = kctx.Kctx.sched in
  let istats = kctx.Kctx.node.Transport.node_stats in
  let ok = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"t" () in
      let svc = Syscalls.port_allocate task ~backlog:4 () in
      let svc_port = Port_space.lookup_exn (Task.space task) svc in
      ignore
        (Thread.spawn task ~name:"server" (fun () ->
             match Syscalls.msg_receive task ~from:(`Port svc) () with
             | Ok msg ->
               let rp = Option.get msg.Message.header.Message.reply in
               ignore (Syscalls.msg_send task (Message.make ~dest:rp [ Message.Data (Bytes.create 4) ]))
             | Error _ -> Alcotest.fail "server receive failed"));
      ignore
        (Thread.spawn task ~name:"client" (fun () ->
             (* Let the server block first. *)
             Engine.sleep 100.0;
             let reply = Syscalls.port_allocate task ~backlog:1 () in
             let reply_port = Port_space.lookup_exn (Task.space task) reply in
             let sw0 = (Sched.stats sched).Sched.s_switches in
             let ho0 = istats.Transport.s_handoffs in
             (match
                Syscalls.msg_rpc task
                  (Message.make ~dest:svc_port ~reply:reply_port [ Message.Data (Bytes.create 4) ])
                  ()
              with
             | Ok _ -> ()
             | Error _ -> Alcotest.fail "rpc failed");
             check Alcotest.int "no context-switch charges on the RPC"
               sw0 (Sched.stats sched).Sched.s_switches;
             check Alcotest.int "request and reply both handed off"
               (ho0 + 2) istats.Transport.s_handoffs;
             Alcotest.(check bool) "donations claimed" true
               ((Sched.stats sched).Sched.s_handoff_claims >= 1);
             ok := true)));
  Engine.run sys.Kernel.engine;
  Alcotest.(check bool) "scenario completed" true !ok

(* The same ping-pong with donation disabled is strictly slower: the
   saving is the two context-switch charges the handoff skips. *)
let ping_elapsed ~handoff ~rpcs =
  let config = { Kernel.default_config with Kernel.params = multimax2 } in
  let sys = Kernel.create_system ~config () in
  (Kernel.kctx sys.Kernel.kernel).Kctx.node.Transport.node_handoff_enabled <- handoff;
  let elapsed = ref 0.0 in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"t" () in
      let svc = Syscalls.port_allocate task ~backlog:4 () in
      let svc_port = Port_space.lookup_exn (Task.space task) svc in
      ignore
        (Thread.spawn task ~name:"server" (fun () ->
             for _ = 1 to rpcs do
               match Syscalls.msg_receive task ~from:(`Port svc) () with
               | Ok msg ->
                 let rp = Option.get msg.Message.header.Message.reply in
                 ignore
                   (Syscalls.msg_send task (Message.make ~dest:rp [ Message.Data (Bytes.create 4) ]))
               | Error _ -> Alcotest.fail "server receive failed"
             done));
      ignore
        (Thread.spawn task ~name:"client" (fun () ->
             let reply = Syscalls.port_allocate task ~backlog:1 () in
             let reply_port = Port_space.lookup_exn (Task.space task) reply in
             let t0 = Engine.now sys.Kernel.engine in
             for _ = 1 to rpcs do
               match
                 Syscalls.msg_rpc task
                   (Message.make ~dest:svc_port ~reply:reply_port [ Message.Data (Bytes.create 4) ])
                   ()
               with
               | Ok _ -> ()
               | Error _ -> Alcotest.fail "rpc failed"
             done;
             elapsed := Engine.now sys.Kernel.engine -. t0)));
  Engine.run sys.Kernel.engine;
  !elapsed

let test_handoff_cheaper_than_queue () =
  let rpcs = 50 in
  let on = ping_elapsed ~handoff:true ~rpcs in
  let off = ping_elapsed ~handoff:false ~rpcs in
  Alcotest.(check bool)
    (Printf.sprintf "handoff path cheaper (%.1f < %.1f us)" on off)
    true (on < off);
  (* Each RPC skips two receive-side switch charges. *)
  let expected_saving = float_of_int (2 * rpcs) *. multimax2.Machine.context_switch_us in
  check (Alcotest.float 1.0) "saving = two switch charges per RPC" expected_saving (off -. on)

let () =
  Alcotest.run "sched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "deterministic replay" `Quick test_determinism;
          Alcotest.test_case "one CPU serializes" `Quick test_serializes_on_one_cpu;
          Alcotest.test_case "enough CPUs parallelize" `Quick test_parallel_on_enough_cpus;
          Alcotest.test_case "quantum preemption interleaves" `Quick test_quantum_preemption;
          Alcotest.test_case "soft affinity" `Quick test_affinity_preferred;
          Alcotest.test_case "unclaimed donation expires" `Quick test_handoff_expiry;
          QCheck_alcotest.to_alcotest no_starvation_prop;
        ] );
      ( "ipc-handoff",
        [
          Alcotest.test_case "RPC fast path charges no switch" `Quick test_rpc_handoff_no_switch;
          Alcotest.test_case "handoff cheaper than run queue" `Quick test_handoff_cheaper_than_queue;
        ] );
    ]
