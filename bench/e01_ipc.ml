(* E1 — Table 3-1/3-2: primitive message and port operation costs, the
   msg_rpc round trip as a function of inline payload size, and the
   kernel's IPC counters for the whole run (zero-copy bookkeeping). *)

open Mach
open Common

let null_msg ~dest ?reply () =
  Message.make ?reply ~dest [ Message.Data (Bytes.create 32) ]

let rpc_sizes = [ 32; 256; 1024; 4096 ]

let run_body ~rounds =
  run_system (fun sys task ->
      let engine = sys.Kernel.engine in
      let server = Task.create sys.Kernel.kernel ~name:"echo" () in
      let svc = Syscalls.port_allocate server ~backlog:64 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space server) svc in
      ignore
        (Thread.spawn server ~name:"echo.main" (fun () ->
             let continue_serving = ref true in
             while !continue_serving do
               match Syscalls.msg_receive server ~from:(`Port svc) () with
               | Ok msg -> (
                 match msg.Message.header.reply with
                 | Some reply -> (
                   match Syscalls.msg_send server (null_msg ~dest:reply ()) with
                   | Ok () -> ()
                   | Error _ -> continue_serving := false)
                 | None -> ())
               | Error _ -> continue_serving := false
             done));
      (* One-way send into a drained queue. *)
      let sink = Task.create sys.Kernel.kernel ~name:"sink" () in
      let sink_name = Syscalls.port_allocate sink ~backlog:(rounds + 1) () in
      let sink_port = Mach_ipc.Port_space.lookup_exn (Task.space sink) sink_name in
      let (), send_us =
        timed engine (fun () ->
            for _ = 1 to rounds do
              ignore (Syscalls.msg_send task (null_msg ~dest:sink_port ()))
            done)
      in
      (* Receive cost. *)
      let (), recv_us =
        timed engine (fun () ->
            for _ = 1 to rounds do
              ignore (Syscalls.msg_receive sink ~from:(`Port sink_name) ())
            done)
      in
      (* Full RPC. *)
      let reply_name = Syscalls.port_allocate task () in
      let reply_port = Mach_ipc.Port_space.lookup_exn (Task.space task) reply_name in
      let (), rpc_us =
        timed engine (fun () ->
            for _ = 1 to rounds do
              ignore (Syscalls.msg_rpc task (null_msg ~dest:svc_port ~reply:reply_port ()) ())
            done)
      in
      (* Port management. *)
      let (), port_us =
        timed engine (fun () ->
            for _ = 1 to rounds do
              let n = Syscalls.port_allocate task () in
              Syscalls.port_deallocate task n
            done)
      in
      let (), status_us =
        timed engine (fun () ->
            for _ = 1 to rounds do
              ignore (Syscalls.port_status task reply_name)
            done)
      in
      let per x = x /. float_of_int rounds in
      (* Round trip as a function of inline payload: the small sizes
         ride the blocked-receiver fast path, the large ones take the
         queue path and pay the per-byte copy. *)
      let rpc_by_size =
        List.map
          (fun size ->
            let msg () =
              Message.make ~dest:svc_port ~reply:reply_port
                [ Message.Data (Bytes.create size) ]
            in
            let (), t =
              timed engine (fun () ->
                  for _ = 1 to rounds do
                    ignore (Syscalls.msg_rpc task (msg ()) ())
                  done)
            in
            (size, per t))
          rpc_sizes
      in
      let ops =
        [
          ("msg_send (32-byte message, one way)", per send_us);
          ("msg_receive", per recv_us);
          ("msg_rpc (round trip)", per rpc_us);
          ("port_allocate + port_deallocate", per port_us);
          ("port_status", per status_us);
        ]
      in
      (ops, rpc_by_size, ipc_counters sys.Kernel.kernel))

let run () =
  let ops, rpc_by_size, counters = run_body ~rounds:200 in
  let t =
    Table.create ~title:"E1: IPC primitive operations (Table 3-1/3-2)"
      ~columns:[ "operation"; "simulated us" ]
  in
  List.iter (fun (op, v) -> Table.row t [ op; us v ]) ops;
  let t2 =
    Table.create ~title:"E1: msg_rpc round trip by inline payload size"
      ~columns:[ "payload"; "round trip us" ]
  in
  List.iter
    (fun (size, v) -> Table.row t2 [ Printf.sprintf "%d B" size; us v ])
    rpc_by_size;
  let t3 =
    Table.create ~title:"E1: kernel IPC counters (whole run)"
      ~columns:[ "counter"; "value" ]
  in
  List.iter (fun (k, v) -> Table.row t3 [ k; string_of_int v ]) counters;
  [ t; t2; t3 ]

let json () =
  let ops, rpc_by_size, counters = run_body ~rounds:50 in
  let op_key = function
    | "msg_send (32-byte message, one way)" -> "msg_send_us"
    | "msg_receive" -> "msg_receive_us"
    | "msg_rpc (round trip)" -> "msg_rpc_us"
    | "port_allocate + port_deallocate" -> "port_alloc_dealloc_us"
    | "port_status" -> "port_status_us"
    | s -> s
  in
  List.map (fun (op, v) -> (op_key op, v)) ops
  @ List.map (fun (size, v) -> (Printf.sprintf "rpc_us_%d" size, v)) rpc_by_size
  @ List.map (fun (k, v) -> ("counter_" ^ k, float_of_int v)) counters

let experiment =
  {
    id = "E1";
    title = "IPC primitives";
    paper_claim =
      "Tables 3-1/3-2 define msg_send/msg_receive/msg_rpc and the port operations; a local \
       message exchange costs on the order of 100 us on 1987 hardware.";
    run;
    quick = (fun () -> ignore (run_body ~rounds:10));
    json = Some json;
  }
