(* E3 regression gate: compare a freshly produced `--json` run of the
   copy-vs-map experiment against the committed baseline
   (BENCH_e03.json) and fail if the zero-copy machinery regressed.

   Usage: check_e03 BASELINE CURRENT *)

open Check_common

(* Tolerated fraction of the recorded baseline ratio (the runs are
   deterministic; the slack only covers intentional cost-model
   retuning). *)
let baseline_fraction = 0.8

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let b_ratio = get baseline baseline_path "copy_over_map_1048576" in
    let c_ratio = get current current_path "copy_over_map_1048576" in
    let b_mw = get baseline baseline_path "map_write_us_1048576" in
    let c_mw = get current current_path "map_write_us_1048576" in
    let crossover = get current current_path "crossover_bytes" in
    let mapped_copied = get current current_path "map_send_bytes_copied_1048576" in
    if !failures = 0 then begin
      (* A crossover must exist (-1 means copy never lost), and mapped
         transfer must beat copying from 64 KB at the latest. *)
      check_ge "crossover_bytes (crossover exists)" crossover 1.0;
      check_le "crossover_bytes" crossover 65536.0;
      (* Sending a mapped region must copy zero bytes eagerly. *)
      check_eq "map_send_bytes_copied_1048576 (zero-copy)" mapped_copied 0.0;
      check_ge
        (Printf.sprintf "copy_over_map_1048576 vs baseline %.3f" b_ratio)
        c_ratio (baseline_fraction *. b_ratio);
      (* The copy engine's write-heavy win: touching every page of a
         1 MB mapped-in region must not regress past the recorded cost
         (clustered COW resolution keeps it below one fault+copy per
         page). *)
      check_le
        (Printf.sprintf "map_write_us_1048576 vs baseline %.0f" b_mw)
        c_mw (b_mw /. baseline_fraction)
    end
  | _ -> usage "check_e03");
  finish "E3 zero-copy crossover within recorded floors"
