(* E4 — §9: "the bulk of physical memory as a cache of secondary
   storage" vs the traditional UNIX 10%-of-RAM buffer cache, measured
   on the compilation workload. The paper reports a cached compile
   running twice as fast as under SunOS and a 10x reduction in I/O
   operations for a large system compilation. *)

open Mach
open Common
module Compile_sim = Mach_workloads.Compile_sim
module Unix_fs = Mach_baseline.Unix_fs
module Minimal_fs = Mach_pagers.Minimal_fs

let page = 4096

let project ~sources =
  let rng = Rng.create 0x4D414348 in
  Compile_sim.generate rng ~sources ~source_bytes:(12 * 1024) ~headers:24
    ~header_bytes:(16 * 1024) ~headers_per_source:8

(* Both machines: 4 MB of physical memory, the same disk geometry. *)
let frames = 1024

let run_unix ~builds proj =
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"unix-disk" ~blocks:4096 ~block_size:page () in
  let results = ref [] in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      (* The classic configuration: buffer cache is 10% of memory. *)
      let ufs =
        Unix_fs.create sys.Kernel.kernel.Ktypes.k_params ~disk ~cache_buffers:(frames / 10)
          ~format:true
      in
      let ops = Compile_sim.unix_ops ufs in
      Compile_sim.populate ops (Rng.create 7) proj;
      Unix_fs.sync ufs;
      Disk.reset_stats disk;
      for _ = 1 to builds do
        let m = Compile_sim.measure_build sys.Kernel.engine ops proj in
        results := m :: !results
      done);
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  List.rev !results

(* Pager protocol traffic during the measured builds: messages sent
   (data_requests), pages received (pageins) and the ratio — cluster-in
   should bring in clearly more than one page per request. *)
type pager_traffic = { pt_requests : int; pt_pageins : int }

let run_mach ~builds proj =
  let config = { Kernel.default_config with Kernel.phys_frames = frames } in
  let sys = Kernel.create_system ~config () in
  let disk = Disk.create sys.Kernel.engine ~name:"mach-disk" ~blocks:4096 ~block_size:page () in
  let results = ref [] in
  let st = sys.Kernel.kernel.Ktypes.k_kctx.Kctx.stats in
  let base = ref (0, 0) in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"cc" () in
      ignore
        (Thread.spawn client ~name:"cc.main" (fun () ->
             let ops =
               Compile_sim.mach_ops client ~server:(Minimal_fs.service_port fsrv) ~disk
             in
             Compile_sim.populate ops (Rng.create 7) proj;
             Disk.reset_stats disk;
             base := (st.Vm_types.s_data_requests, st.Vm_types.s_pageins);
             for _ = 1 to builds do
               let m = Compile_sim.measure_build sys.Kernel.engine ops proj in
               results := m :: !results
             done)));
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  let req0, in0 = !base in
  let traffic =
    { pt_requests = st.Vm_types.s_data_requests - req0; pt_pageins = st.Vm_types.s_pageins - in0 }
  in
  (List.rev !results, traffic)

(* Write-side traffic: the link/emit phase of the build — sequentially
   dirtying a mapped output image larger than memory — on a
   memory-constrained machine, so the pageout daemon must clean while
   the writer runs. Runs of adjacent dirty pages coalesce into single
   run-sized data_writes (the write-side mirror of cluster-in). *)
type write_traffic = { wt_writes : int; wt_pageouts : int; wt_laundered : int }

let run_writeback ~frames:wb_frames ~image_pages =
  let config = { Kernel.default_config with Kernel.phys_frames = wb_frames } in
  let sys = Kernel.create_system ~config () in
  let disk =
    Disk.create sys.Kernel.engine ~name:"mach-wb-disk" ~blocks:(4 * image_pages)
      ~block_size:page ()
  in
  let st = sys.Kernel.kernel.Ktypes.k_kctx.Kctx.stats in
  let base = ref (0, 0, 0) in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let client = Task.create sys.Kernel.kernel ~name:"ld" () in
      ignore
        (Thread.spawn client ~name:"ld.main" (fun () ->
             (match
                Minimal_fs.Client.write_file client ~server "image"
                  (Bytes.make (image_pages * page) '\000')
              with
             | Ok () | Error _ -> ());
             match Minimal_fs.Client.map_file client ~server "image" with
             | Error _ -> ()
             | Ok (addr, _size) ->
               base :=
                 (st.Vm_types.s_data_writes, st.Vm_types.s_pageouts, st.Vm_types.s_laundered);
               for i = 0 to image_pages - 1 do
                 ignore (ok_exn "emit" (Syscalls.touch client ~addr:(addr + (i * page)) ~write:true ()))
               done)));
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  let w0, p0, l0 = !base in
  {
    wt_writes = st.Vm_types.s_data_writes - w0;
    wt_pageouts = st.Vm_types.s_pageouts - p0;
    wt_laundered = st.Vm_types.s_laundered - l0;
  }

let run_body ~sources ~builds ~wb_frames ~image_pages =
  let proj = project ~sources in
  let unix_runs = run_unix ~builds proj in
  let mach_runs, traffic = run_mach ~builds proj in
  let wtraffic = run_writeback ~frames:wb_frames ~image_pages in
  (proj, List.combine unix_runs mach_runs, traffic, wtraffic)

let run () =
  let proj, rows, traffic, wtraffic =
    run_body ~sources:48 ~builds:3 ~wb_frames:256 ~image_pages:512
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: compilation on a %d KB project, 4 MB memory (Section 9: ~2x elapsed, ~10x fewer \
            I/Os when cached)"
           (Compile_sim.project_bytes proj / 1024))
      ~columns:
        [
          "build";
          "UNIX elapsed s";
          "Mach elapsed s";
          "speedup";
          "UNIX disk ops";
          "Mach disk ops";
          "I/O ratio";
        ]
  in
  List.iteri
    (fun i (u, m) ->
      let open Compile_sim in
      Table.row t
        [
          (if i = 0 then "1 (cold)" else Printf.sprintf "%d (warm)" (i + 1));
          Printf.sprintf "%.2f" (u.elapsed_us /. 1e6);
          Printf.sprintf "%.2f" (m.elapsed_us /. 1e6);
          ratio u.elapsed_us m.elapsed_us;
          string_of_int u.disk_ops;
          string_of_int m.disk_ops;
          (if m.disk_ops = 0 then Printf.sprintf "%dx / 0" u.disk_ops
           else Printf.sprintf "%.1fx" (float_of_int u.disk_ops /. float_of_int m.disk_ops));
        ])
    rows;
  let p =
    Table.create ~title:"E4: Mach pager traffic over the measured builds (cluster-in)"
      ~columns:[ "data_requests (messages)"; "pageins (pages)"; "pages per request" ]
  in
  Table.row p
    [
      string_of_int traffic.pt_requests;
      string_of_int traffic.pt_pageins;
      (if traffic.pt_requests = 0 then "-"
       else
         Printf.sprintf "%.2f"
           (float_of_int traffic.pt_pageins /. float_of_int traffic.pt_requests));
    ];
  let w =
    Table.create
      ~title:
        "E4: Mach write traffic, emitting a 2 MB image through a 1 MB cache (laundered runs)"
      ~columns:
        [ "data_writes (messages)"; "pageouts (pages)"; "laundered"; "pages per data_write" ]
  in
  Table.row w
    [
      string_of_int wtraffic.wt_writes;
      string_of_int wtraffic.wt_pageouts;
      string_of_int wtraffic.wt_laundered;
      (if wtraffic.wt_writes = 0 then "-"
       else
         Printf.sprintf "%.2f"
           (float_of_int wtraffic.wt_pageouts /. float_of_int wtraffic.wt_writes));
    ];
  [ t; p; w ]

let experiment =
  {
    id = "E4";
    title = "File cache (compilation)";
    paper_claim =
      "Compilation of a program cached in memory under Mach is twice as fast as under SunOS, \
       and a large system compilation does 10x fewer I/O operations, because Mach uses the bulk \
       of physical memory as a file cache instead of a fixed 10% buffer cache.";
    run;
    quick = (fun () -> ignore (run_body ~sources:6 ~builds:2 ~wb_frames:64 ~image_pages:128));
    json = None;
  }
