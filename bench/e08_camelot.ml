(* E8 — §8.3: Camelot on the external pager interface. Measures commit
   throughput with write-ahead logging, verifies the WAL invariant under
   paging, exercises crash recovery, and compares against a naive
   synchronous write-through design (every update forces a data-disk
   write), quantifying what mapped recoverable memory buys. *)

open Mach
open Common
module Camelot = Mach_pagers.Camelot

let page = 4096

type point = {
  p_txns : int;
  p_elapsed_us : float;
  p_log_forces : int;
  p_violations : int;
  p_data_ops : int;
}

let run_camelot ~txns ~updates_per_txn =
  let sys = Kernel.create_system () in
  let log_disk = Disk.create sys.Kernel.engine ~name:"log" ~blocks:4096 ~block_size:page () in
  let data_disk = Disk.create sys.Kernel.engine ~name:"data" ~blocks:4096 ~block_size:page () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"txn" () in
      ignore
        (Thread.spawn client ~name:"txn.main" (fun () ->
             let server = Camelot.service_port cam in
             let base =
               ok_exn "map" (Camelot.Client.map_segment client ~server "db" ~size:(256 * page))
             in
             let rng = Rng.create 99 in
             let t0 = Engine.now sys.Kernel.engine in
             for _ = 1 to txns do
               let tid = ok_exn "begin" (Camelot.Client.begin_txn client ~server) in
               for _ = 1 to updates_per_txn do
                 (* 16-aligned so an 8-byte update never crosses a page. *)
                 let offset = 16 * Rng.int rng (256 * page / 16) in
                 ok_exn "store"
                   (Camelot.Client.store client ~server tid ~segment:"db" ~base ~offset
                      (Bytes.make 8 'u'))
               done;
               ok_exn "commit" (Camelot.Client.commit client ~server tid)
             done;
             result :=
               Some
                 {
                   p_txns = txns;
                   p_elapsed_us = Engine.now sys.Kernel.engine -. t0;
                   p_log_forces = Camelot.log_forces cam;
                   p_violations = Camelot.wal_violations cam;
                   p_data_ops = Disk.ops data_disk;
                 })));
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  match !result with Some r -> r | None -> failwith "E8 camelot run deadlocked"

(* The strawman: no mapped recoverable memory, every update writes the
   data disk synchronously (no log needed, no cache leverage). *)
let run_write_through ~txns ~updates_per_txn =
  let sys = Kernel.create_system () in
  let data_disk = Disk.create sys.Kernel.engine ~name:"wt-data" ~blocks:4096 ~block_size:page () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fs = Mach_fs.Fs_layout.format data_disk ~max_files:8 in
      let rng = Rng.create 99 in
      let t0 = Engine.now sys.Kernel.engine in
      for _ = 1 to txns do
        for _ = 1 to updates_per_txn do
          let offset = 16 * Rng.int rng (256 * page / 16) in
          let idx = offset / page in
          let block =
            match Mach_fs.Fs_layout.read_block fs "db" ~index:idx with
            | Some b -> b
            | None -> Bytes.make page '\000'
          in
          Bytes.blit (Bytes.make 8 'u') 0 block (offset mod page) 8;
          Mach_fs.Fs_layout.write_block fs "db" ~index:idx block
        done
      done;
      result :=
        Some
          {
            p_txns = txns;
            p_elapsed_us = Engine.now sys.Kernel.engine -. t0;
            p_log_forces = 0;
            p_violations = 0;
            p_data_ops = Disk.ops data_disk;
          });
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  match !result with Some r -> r | None -> failwith "E8 write-through run deadlocked"

(* Crash/recovery demonstration: commit one transaction, lose another,
   reboot, count redo/undo. *)
let run_recovery () =
  let scratch = Engine.create () in
  let log_disk = Disk.create scratch ~name:"rlog" ~blocks:1024 ~block_size:page () in
  let data_disk = Disk.create scratch ~name:"rdata" ~blocks:1024 ~block_size:page () in
  let epoch ~format f =
    let sys = Kernel.create_system () in
    let log_disk = Disk.reattach log_disk sys.Kernel.engine in
    let data_disk = Disk.reattach data_disk sys.Kernel.engine in
    let out = ref None in
    Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
        let cam = Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format () in
        let client = Task.create sys.Kernel.kernel ~name:"txn" () in
        ignore (Thread.spawn client ~name:"txn.main" (fun () -> out := Some (f cam client))));
    Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
    match !out with Some r -> r | None -> failwith "E8 recovery epoch deadlocked"
  in
  epoch ~format:true (fun cam client ->
      let server = Camelot.service_port cam in
      let base = ok_exn "map" (Camelot.Client.map_segment client ~server "db" ~size:(8 * page)) in
      let t1 = ok_exn "begin" (Camelot.Client.begin_txn client ~server) in
      ok_exn "store"
        (Camelot.Client.store client ~server t1 ~segment:"db" ~base ~offset:0
           (Bytes.of_string "SURVIVES"));
      ok_exn "commit" (Camelot.Client.commit client ~server t1);
      let t2 = ok_exn "begin" (Camelot.Client.begin_txn client ~server) in
      ok_exn "store"
        (Camelot.Client.store client ~server t2 ~segment:"db" ~base ~offset:page
           (Bytes.of_string "VANISHES")));
  (* crash *)
  epoch ~format:false (fun cam client ->
      let server = Camelot.service_port cam in
      let base = ok_exn "map" (Camelot.Client.map_segment client ~server "db" ~size:(8 * page)) in
      let committed =
        match Syscalls.read_bytes client ~addr:base ~len:8 () with
        | Ok b -> Bytes.to_string b = "SURVIVES"
        | Error _ -> false
      in
      let uncommitted_gone =
        match Syscalls.read_bytes client ~addr:(base + page) ~len:8 () with
        | Ok b -> Bytes.to_string b <> "VANISHES"
        | Error _ -> false
      in
      (Camelot.recovered_redo cam, Camelot.recovered_undo cam, committed, uncommitted_gone))

let run_body ~txns ~updates_per_txn =
  let cam = run_camelot ~txns ~updates_per_txn in
  let wt = run_write_through ~txns ~updates_per_txn in
  (cam, wt)

let run () =
  let txns = 50 and updates_per_txn = 20 in
  let cam, wt = run_body ~txns ~updates_per_txn in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E8: %d transactions x %d updates on mapped recoverable memory (Section 8.3)"
           txns updates_per_txn)
      ~columns:
        [ "system"; "txns/s"; "data-disk ops"; "log forces"; "WAL violations" ]
  in
  let row name (p : point) =
    Table.row t
      [
        name;
        Printf.sprintf "%.1f" (float_of_int p.p_txns /. (p.p_elapsed_us /. 1e6));
        string_of_int p.p_data_ops;
        string_of_int p.p_log_forces;
        string_of_int p.p_violations;
      ]
  in
  row "Camelot (WAL + mapped memory)" cam;
  row "synchronous write-through" wt;
  let redo, undo, committed, gone = run_recovery () in
  let t2 =
    Table.create ~title:"E8b: crash recovery" ~columns:[ "check"; "result" ]
  in
  Table.row t2 [ "log records redone (committed txn)"; string_of_int redo ];
  Table.row t2 [ "log records undone (uncommitted txn)"; string_of_int undo ];
  Table.row t2 [ "committed data survives crash"; string_of_bool committed ];
  Table.row t2 [ "uncommitted data rolled back"; string_of_bool gone ];
  [ t; t2 ]

let experiment =
  {
    id = "E8";
    title = "Camelot recoverable memory";
    paper_claim =
      "Camelot keeps permanent objects in mapped virtual memory with write-ahead logging; the \
       disk manager forces log records before flushed pages reach disk, clients need no buffer \
       management, and recoverable data is written directly to its permanent home (Section 8.3).";
    run;
    quick = (fun () -> ignore (run_body ~txns:5 ~updates_per_txn:5));
    json = None;
  }
