(* Shared helpers for the experiment harness. *)

open Mach
module Table = Mach_util.Table
module Rng = Mach_util.Rng
module Metrics = Mach_util.Metrics

(* Every run_system/run_cluster notes the registry snapshot of each
   kernel it booted, so any experiment's --json output can carry the
   unified "subsystem.counter" schema alongside its own metrics. *)
let collected : Metrics.snapshot list ref = ref []

let reset_collected () = collected := []
let note_registry kernel = collected := Metrics.snapshot (Kernel.metrics kernel) :: !collected

(* The merged registry snapshot of every kernel run since the last
   [reset_collected] (counters sum pointwise across hosts and runs). *)
let collected_registry () = Metrics.merge !collected

(* Run a scenario inside a fresh single-host system; the callback runs
   on a task thread. Returns the callback's result. *)
let run_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"bench-setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"bench" () in
      ignore
        (Thread.spawn task ~name:"bench.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  note_registry sys.Kernel.kernel;
  match !result with
  | Some r -> r
  | None -> failwith "bench scenario deadlocked"

let run_cluster ~hosts ?config f =
  let cluster = Kernel.create_cluster ~hosts ?config () in
  let result = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"bench-setup" (fun () ->
      result := Some (f cluster));
  Engine.run cluster.Kernel.c_engine;
  Array.iter note_registry cluster.Kernel.c_kernels;
  match !result with
  | Some r -> r
  | None -> failwith "bench cluster scenario deadlocked"

(* Simulated-time stopwatch around a thunk running in the current
   simulated thread. *)
let timed engine f =
  let t0 = Engine.now engine in
  let r = f () in
  (r, Engine.now engine -. t0)

(* Trace-derived stopwatch: wrap the thunk in a named span on the
   kernel's trace and report the span's duration. Numerically equal to
   [timed] (tracing charges no simulated time) but the measurement now
   lives in the trace buffer, linked to every fault/IPC span the phase
   caused — E10 and E13 reduce their tables from exactly these spans. *)
let spanned kernel label f =
  let tr = Kernel.trace kernel in
  let was = Trace.enabled tr in
  Trace.set_enabled tr true;
  let span = Trace.span_open tr ~subsystem:"bench" ~label in
  let r = f () in
  Trace.span_close tr ~subsystem:"bench" ~label span;
  Trace.set_enabled tr was;
  match Trace.find_span tr span with
  | Some sp -> (r, sp.Trace.sp_end -. sp.Trace.sp_start)
  | None -> failwith ("bench span evicted from trace buffer: " ^ label)

let ok_exn what = function
  | Ok v -> v
  | Error _ -> failwith ("unexpected failure: " ^ what)

let us v = Printf.sprintf "%.1f" v
let us0 v = Printf.sprintf "%.0f" v
let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.2fx" (a /. b)

(* Cumulative IPC counters of a host's kernel node. Every task on a
   host shares the kernel's node, so this aggregates all send/receive
   activity of that host since boot. *)
let ipc_counters kernel =
  Transport.ipc_stats_to_list (Kernel.kctx kernel).Kctx.node.Transport.node_stats

(* Pointwise sum of several counter lists (e.g. the hosts of a
   cluster). All lists carry the same keys in the same order. *)
let sum_counters = function
  | [] -> []
  | first :: _ as lists ->
    List.map
      (fun (key, _) ->
        (key, List.fold_left (fun acc l -> acc + List.assoc key l) 0 lists))
      first

type experiment = {
  id : string;  (** e.g. "E4" *)
  title : string;
  paper_claim : string;
  run : unit -> Table.t list;
  quick : unit -> unit;  (** scaled-down body for bechamel *)
  json : (unit -> (string * float) list) option;
      (** machine-readable metrics for [--json] (self-contained run,
          modest parameters); [None] for experiments without a stable
          numeric summary *)
}
