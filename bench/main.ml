(* Benchmark harness: reproduces every table/figure-level claim of the
   paper's evaluation (E1–E11, see DESIGN.md), then runs a bechamel
   microbench suite (one Test.make per experiment, measuring the
   harness itself).

   Usage:
     main.exe                 run all experiments + microbenches
     main.exe --only E4,E7    run selected experiments
     main.exe --list          list experiments
     main.exe --no-bechamel   skip the wall-clock microbenches
     main.exe --json out.json write machine-readable per-experiment
                              numbers (E1 round-trip by size, E3
                              copy-vs-map crossover, E13 duality
                              summary) instead of tables *)

module Table = Mach_util.Table

let experiments : Common.experiment list =
  [
    E01_ipc.experiment;
    E02_vm.experiment;
    E03_copy_map.experiment;
    E04_file_cache.experiment;
    E05_multiprocessor.experiment;
    E06_netmem.experiment;
    E07_migration.experiment;
    E08_camelot.experiment;
    E09_failures.experiment;
    E10_fault_breakdown.experiment;
    E11_fork_cow.experiment;
    E12_ablations.experiment;
    E13_duality.experiment;
  ]

let run_experiment (e : Common.experiment) =
  Printf.printf "\n### %s — %s\n" e.Common.id e.Common.title;
  Printf.printf "Paper: %s\n\n" e.Common.paper_claim;
  let t0 = Unix.gettimeofday () in
  let tables = e.Common.run () in
  List.iter Table.print tables;
  Printf.printf "(experiment wall time: %.2fs)\n" (Unix.gettimeofday () -. t0)

let run_bechamel selected =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let tests =
    List.map
      (fun (e : Common.experiment) ->
        Test.make ~name:(e.Common.id ^ "-" ^ e.Common.title) (Staged.stage e.Common.quick))
      selected
  in
  let test = Test.make_grouped ~name:"mach-repro" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n### Bechamel microbenches (wall-clock per quick-experiment iteration)\n\n";
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, result) ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-44s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
    rows

(* Tiny-parameter sanity pass: run every experiment's [quick] body once
   so a refactor that breaks an experiment fails fast (the `bench-smoke`
   dune alias runs this). *)
let run_smoke selected =
  List.iter
    (fun (e : Common.experiment) ->
      Printf.printf "smoke %-4s %-28s ... %!" e.Common.id e.Common.title;
      let t0 = Unix.gettimeofday () in
      e.Common.quick ();
      Printf.printf "ok (%.2fs)\n%!" (Unix.gettimeofday () -. t0))
    selected

(* Machine-readable results: one flat {metric: number} object per
   experiment. Every experiment emits the shared registry-snapshot
   schema — each "subsystem.counter" of every kernel its run booted,
   prefixed "reg." — and an experiment with a [json] producer prepends
   its own derived metrics. Hand-rolled writer — the values are plain
   floats and the format never nests deeper than two levels, so no JSON
   library is needed. *)
let run_json path selected =
  let with_json =
    List.map
      (fun (e : Common.experiment) ->
        Printf.printf "json %-4s %-28s ... %!" e.Common.id e.Common.title;
        let t0 = Unix.gettimeofday () in
        Common.reset_collected ();
        let own = match e.Common.json with Some f -> f () | None -> e.Common.quick (); [] in
        let reg =
          List.map (fun (k, v) -> ("reg." ^ k, v)) (Common.collected_registry ())
        in
        Printf.printf "ok (%.2fs)\n%!" (Unix.gettimeofday () -. t0);
        (e.Common.id, own @ reg))
      selected
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (id, kvs) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc "  %S: {" id;
      List.iteri
        (fun j (k, v) ->
          if j > 0 then output_string oc ",";
          Printf.fprintf oc "\n    %S: %.3f" k v)
        kvs;
      output_string oc "\n  }")
    with_json;
  output_string oc "\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d experiments)\n" path (List.length with_json)

let main only list_only no_bechamel smoke json_file =
  if list_only then begin
    List.iter
      (fun (e : Common.experiment) -> Printf.printf "%-4s %s\n" e.Common.id e.Common.title)
      experiments;
    0
  end
  else begin
    let selected =
      match only with
      | [] -> experiments
      | ids ->
        let wanted = List.map String.uppercase_ascii ids in
        List.filter (fun (e : Common.experiment) -> List.mem e.Common.id wanted) experiments
    in
    if selected = [] then begin
      prerr_endline "no matching experiments (try --list)";
      1
    end
    else if smoke then begin
      run_smoke selected;
      0
    end
    else if json_file <> "" then begin
      run_json json_file selected;
      0
    end
    else begin
      Printf.printf "Mach duality reproduction — experiment harness\n";
      Printf.printf "==============================================\n";
      List.iter run_experiment selected;
      if not no_bechamel then run_bechamel selected;
      0
    end
  end

open Cmdliner

let only =
  let doc = "Comma-separated experiment ids to run (e.g. E4,E7)." in
  Arg.(value & opt (list string) [] & info [ "only" ] ~doc ~docv:"IDS")

let list_only =
  let doc = "List experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let no_bechamel =
  let doc = "Skip the bechamel wall-clock microbench suite." in
  Arg.(value & flag & info [ "no-bechamel" ] ~doc)

let smoke =
  let doc = "Run each experiment once with tiny parameters (sanity pass, no tables)." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let json_file =
  let doc =
    "Write machine-readable per-experiment numbers to $(docv) (JSON, one object per \
     experiment) instead of printing tables."
  in
  Arg.(value & opt string "" & info [ "json" ] ~doc ~docv:"FILE")

let cmd =
  let doc = "Reproduce the evaluation of the Mach memory/communication duality paper" in
  Cmd.v (Cmd.info "mach-bench" ~doc)
    Term.(const main $ only $ list_only $ no_bechamel $ smoke $ json_file)

let () = exit (Cmd.eval' cmd)
