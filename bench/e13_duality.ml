(* E13 — the thesis itself (§7): "a programmer has the option of
   choosing to use either shared memory or message-based communication
   ... depending on the kind of multiprocessor or network available".

   A producer/consumer exchanges items two ways on two machines:
   - tightly coupled (UMA MultiMax, one host): messages move bytes by
     copying; shared memory (inherited read/write region) moves them by
     cache access — no per-item kernel overhead;
   - loosely coupled (NORMA HyperCube, two hosts): messages ride the
     network natively; "shared memory" is the §4.2 coherence protocol,
     whose ownership ping-pong pays invalidation round trips per item.

   Each mode's elapsed time is derived from a "bench" span on the trace
   spine ([Common.spanned]), so the table's numbers are trace
   reductions and every fault/IPC event of a phase is causally linked
   to the phase that caused it. *)

open Mach
open Common
module Netmem = Mach_pagers.Netmem

let page = 4096

(* --- one host: messages vs inherited shared memory ----------------------- *)

let uma_messages ~items ~item_size =
  let config = { Kernel.default_config with Kernel.params = Machine.multimax } in
  run_system ~config (fun sys task ->
      let consumer = Task.create sys.Kernel.kernel ~name:"consumer" () in
      let svc = Syscalls.port_allocate consumer ~backlog:8 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space consumer) svc in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               ignore (Syscalls.msg_receive consumer ~from:(`Port svc) ())
             done;
             Ivar.fill done_ ()));
      let (), elapsed =
        spanned sys.Kernel.kernel "uma_messages" (fun () ->
            for _ = 1 to items do
              ignore
                (Syscalls.msg_send task
                   (Message.make ~dest:svc_port [ Message.Data (Bytes.create item_size) ]))
            done;
            Ivar.read done_)
      in
      (elapsed /. float_of_int items, ipc_counters sys.Kernel.kernel))

let uma_shared ~items ~item_size =
  let config = { Kernel.default_config with Kernel.params = Machine.multimax } in
  run_system ~config (fun sys parent ->
      (* A read/write-shared region between two children (§3.3
         inheritance). *)
      let buf = Syscalls.vm_allocate parent ~size:(2 * page + item_size) ~anywhere:true () in
      ignore (ok_exn "seed" (Syscalls.write_bytes parent ~addr:buf (Bytes.make 1 '\000') ()));
      Syscalls.vm_inherit parent ~addr:buf ~size:(2 * page + item_size) Vm_types.Inherit_share;
      let producer = Task.create sys.Kernel.kernel ~parent ~name:"producer" () in
      let consumer = Task.create sys.Kernel.kernel ~parent ~name:"consumer" () in
      let full = Mach_sim.Semaphore.create 0 in
      let empty = Mach_sim.Semaphore.create 1 in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               Mach_sim.Semaphore.acquire full;
               ignore (Syscalls.read_bytes consumer ~addr:buf ~len:item_size ());
               Mach_sim.Semaphore.release empty
             done;
             Ivar.fill done_ ()));
      let payload = Bytes.create item_size in
      let fin = Ivar.create () in
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               spanned sys.Kernel.kernel "uma_shared" (fun () ->
                   for _ = 1 to items do
                     Mach_sim.Semaphore.acquire empty;
                     ignore (ok_exn "produce" (Syscalls.write_bytes producer ~addr:buf payload ()));
                     Mach_sim.Semaphore.release full
                   done;
                   Ivar.read done_)
             in
             Ivar.fill fin (elapsed /. float_of_int items)));
      Ivar.read fin)

(* --- two hosts: messages vs coherent shared memory ----------------------- *)

let norma_config =
  { Kernel.default_config with Kernel.params = Machine.hypercube }

let norma_messages ~items ~item_size =
  let cluster = Kernel.create_cluster ~hosts:2 ~config:norma_config () in
  let out = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let producer = Task.create cluster.Kernel.c_kernels.(0) ~name:"producer" () in
      let consumer = Task.create cluster.Kernel.c_kernels.(1) ~name:"consumer" () in
      let svc = Syscalls.port_allocate consumer ~backlog:8 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space consumer) svc in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               ignore (Syscalls.msg_receive consumer ~from:(`Port svc) ())
             done;
             Ivar.fill done_ ()));
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               spanned cluster.Kernel.c_kernels.(0) "norma_messages" (fun () ->
                   for _ = 1 to items do
                     ignore
                       (Syscalls.msg_send producer
                          (Message.make ~dest:svc_port [ Message.Data (Bytes.create item_size) ]))
                   done;
                   Ivar.read done_)
             in
             out := Some (elapsed /. float_of_int items))));
  Engine.run cluster.Kernel.c_engine;
  let counters =
    sum_counters (Array.to_list (Array.map ipc_counters cluster.Kernel.c_kernels))
  in
  (Option.get !out, counters)

let norma_shared ~items ~item_size =
  let cluster = Kernel.create_cluster ~hosts:2 ~config:norma_config () in
  let out = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(item_size + page) in
      let producer = Task.create cluster.Kernel.c_kernels.(0) ~name:"producer" () in
      let consumer = Task.create cluster.Kernel.c_kernels.(1) ~name:"consumer" () in
      let p_addr =
        Syscalls.vm_allocate_with_pager producer ~size:(item_size + page) ~anywhere:true
          ~memory_object:region ~offset:0 ()
      in
      let c_addr =
        Syscalls.vm_allocate_with_pager consumer ~size:(item_size + page) ~anywhere:true
          ~memory_object:region ~offset:0 ()
      in
      let full = Mach_sim.Semaphore.create 0 in
      let empty = Mach_sim.Semaphore.create 1 in
      let done_ = Ivar.create () in
      let policy = Fault.Abort_after 60_000_000.0 in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               Mach_sim.Semaphore.acquire full;
               ignore (Syscalls.read_bytes consumer ~addr:c_addr ~len:item_size ~policy ());
               Mach_sim.Semaphore.release empty
             done;
             Ivar.fill done_ ()));
      let payload = Bytes.create item_size in
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               spanned cluster.Kernel.c_kernels.(0) "norma_shared" (fun () ->
                   for _ = 1 to items do
                     Mach_sim.Semaphore.acquire empty;
                     ignore (ok_exn "produce" (Syscalls.write_bytes producer ~addr:p_addr payload ~policy ()));
                     Mach_sim.Semaphore.release full
                   done;
                   Ivar.read done_)
             in
             out := Some (elapsed /. float_of_int items))));
  Engine.run cluster.Kernel.c_engine;
  Option.get !out

let sizes = [ 64; 1024; 4096; 16384 ]

let run_body ~items ~sizes =
  List.map
    (fun s ->
      let um, uc = uma_messages ~items ~item_size:s in
      let nm, nc = norma_messages ~items ~item_size:s in
      (s, um, uma_shared ~items ~item_size:s, nm, norma_shared ~items ~item_size:s, uc, nc))
    sizes

let run () =
  let rows = run_body ~items:50 ~sizes in
  let t =
    Table.create
      ~title:
        "E13: producer/consumer, per-item cost — shared memory vs messages by machine class \
         (Section 7)"
      ~columns:
        [ "item size"; "UMA messages us"; "UMA shared mem us"; "NORMA messages us";
          "NORMA shared mem us" ]
  in
  List.iter
    (fun (s, um, us_, nm, ns, _, _) ->
      Table.row t
        [
          (if s >= 1024 then Printf.sprintf "%d KB" (s / 1024) else Printf.sprintf "%d B" s);
          us0 um;
          us0 us_;
          us0 nm;
          us0 ns;
        ])
    rows;
  (* IPC counters of the message-based runs at the largest item size:
     on the UMA the small items ride the RPC fast path; on the NORMA
     the same workload shows the wire-delivery bookkeeping. *)
  let t2 =
    match List.rev rows with
    | (s, _, _, _, _, uc, nc) :: _ ->
      let t2 =
        Table.create
          ~title:
            (Printf.sprintf "E13: IPC counters for the message runs (%d KB items)" (s / 1024))
          ~columns:[ "counter"; "UMA (1 host)"; "NORMA (2 hosts)" ]
      in
      List.iter
        (fun (k, v) -> Table.row t2 [ k; string_of_int v; string_of_int (List.assoc k nc) ])
        uc;
      [ t2 ]
    | [] -> []
  in
  t :: t2

let json () =
  let rows = run_body ~items:20 ~sizes:[ 1024; 4096 ] in
  List.concat_map
    (fun (s, um, us_, nm, ns, uc, nc) ->
      [
        (Printf.sprintf "uma_messages_us_%d" s, um);
        (Printf.sprintf "uma_shared_us_%d" s, us_);
        (Printf.sprintf "norma_messages_us_%d" s, nm);
        (Printf.sprintf "norma_shared_us_%d" s, ns);
        (Printf.sprintf "uma_rpc_fastpath_%d" s, float_of_int (List.assoc "rpc_fastpath" uc));
        (Printf.sprintf "norma_msgs_sent_%d" s, float_of_int (List.assoc "msgs_sent" nc));
      ])
    rows

let experiment =
  {
    id = "E13";
    title = "Duality by machine class";
    paper_claim =
      "All three multiprocessor classes can support either mechanism, but which one is cheap \
       depends on the machine: on a tightly-coupled UMA, shared memory avoids per-message \
       kernel overhead; on a NORMA, messages are native and coherent shared memory pays \
       ownership round trips per exchange (Section 7).";
    run;
    quick = (fun () -> ignore (run_body ~items:5 ~sizes:[ 1024 ]));
    json = Some json;
  }
