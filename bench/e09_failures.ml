(* E9 — §6: the problems of external memory management, and the
   kernel's defenses. Injects each failure the paper lists and reports
   the containment mechanism that handled it. *)

open Mach
open Common
module Mos = Memory_object_server
module Rt = Pager_runtime

let page = 4096

(* A manager that never answers pager_data_request: a runtime policy
   whose every page read defers forever. The runtime still counts the
   requests it ignored — that is the stats table's point. *)
let silent_manager kernel ~name =
  let task = Task.create kernel ~name () in
  let policy =
    {
      Rt.default_policy with
      Rt.p_read = (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Rt.Defer);
    }
  in
  let rt, srv = Rt.serve task policy in
  let memory_object = Mos.create_memory_object srv () in
  ignore (Rt.register rt ~memory_object ());
  (rt, srv, memory_object)

(* Scenario 1/2: thread blocked on data from a hostile manager; the
   §6.2.1 options — abort after timeout, or substitute zeroes. *)
let run_unresponsive ~policy =
  run_system (fun sys task ->
      let rt, _srv, memory_object = silent_manager sys.Kernel.kernel ~name:"silent-mgr" in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let engine = sys.Kernel.engine in
      let r, elapsed = timed engine (fun () -> Syscalls.read_bytes task ~addr ~len:8 ~policy ()) in
      (r, elapsed, Rt.Stats.to_list (Rt.stats rt)))

(* Scenario 3: the manager dies mid-fault. No caller timeout is
   involved: the kernel's pager-death handler resolves every
   outstanding placeholder page the moment the object port dies —
   zero-fill for anonymous-style objects, a fault error for file-backed
   ones. The faulting thread may therefore wait without any timeout at
   all and still come back promptly. *)
let run_death ~kill_after_us =
  run_system (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let rt, srv, memory_object = silent_manager kernel ~name:"doomed-mgr" in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let engine = sys.Kernel.engine in
      Engine.spawn engine ~name:"killer" (fun () ->
          Engine.sleep kill_after_us;
          Mos.stop srv;
          Port.destroy memory_object);
      let r, elapsed =
        timed engine (fun () ->
            Syscalls.read_bytes task ~addr ~len:8 ~policy:Fault.Wait_forever ())
      in
      let st = Kernel.stats kernel in
      ( r,
        elapsed,
        Rt.Stats.to_list (Rt.stats rt),
        ( st.Vm_types.s_pager_deaths,
          st.Vm_types.s_death_errors,
          st.Vm_types.s_death_zero_fills ) ))

(* Scenario 4: manager that accepts pager_data_write but never releases
   the data — §6.2.2 double paging must rescue the frames. Holding the
   release is a protocol violation the runtime refuses to express
   (handle_data_write always releases), so this manager is hand-rolled
   on the raw server. *)
let run_hoarder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"hoarder-mgr" () in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
              Mos.data_unavailable srv ~request ~offset ~size:length);
          (* Swallow the data; never call release. *)
          Mos.on_data_write = (fun _ ~memory_object:_ ~offset:_ ~data:_ ~release:_ -> ());
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let npages = 200 in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (* Dirty more pages than physical memory: pageout hands them to
         the hoarding manager. *)
      for i = 0 to npages - 1 do
        ignore
          (ok_exn "dirty"
             (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 32 'd')
                ~policy:(Fault.Abort_after 60_000_000.0) ()))
      done;
      (* Let the release timeouts fire. *)
      Engine.sleep 2_000_000.0;
      let stats = Kernel.stats kernel in
      let still_alive =
        match Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () with
        | _addr -> (
          match Syscalls.write_bytes task ~addr:_addr (Bytes.make 16 'x') () with
          | Ok () -> true
          | Error _ -> false)
        | exception _ -> false
      in
      (stats.Vm_types.s_pageout_to_default, still_alive))

(* Scenario 5: manager floods the kernel with unsolicited pre-paged
   data; the kernel only accepts while unreserved frames exist. Another
   abuse the runtime cannot produce (its replies answer requests), so
   again raw server callbacks. *)
let run_flooder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"flood-mgr" () in
      let offered = 4096 in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset:_ ~length:_ ~desired_access:_ ->
              (* Respond to any request with a colossal unsolicited
                 blob starting at 0. *)
              Mos.data_provided srv ~request ~offset:0
                ~data:(Bytes.make (offered * page) 'F')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(offered * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      ignore (Syscalls.read_bytes task ~addr ~len:8 ~policy:(Fault.Abort_after 10_000_000.0) ());
      Engine.sleep 100_000.0;
      let free_after = Kernel.free_frames kernel in
      let reserved = kernel.Ktypes.k_kctx.Kctx.reserved_frames in
      let can_still_allocate =
        match Syscalls.vm_allocate task ~size:page ~anywhere:true () with
        | _ -> true
        | exception _ -> false
      in
      (offered, free_after, reserved, can_still_allocate))

let run_body ~quick =
  let timeout = if quick then 50_000.0 else 500_000.0 in
  let kill_after = if quick then 20_000.0 else 100_000.0 in
  let abort_result, abort_us, abort_stats = run_unresponsive ~policy:(Fault.Abort_after timeout) in
  let zf_result, zf_us, zf_stats = run_unresponsive ~policy:(Fault.Zero_fill_after timeout) in
  let death_result, death_us, death_stats, death_counters = run_death ~kill_after_us:kill_after in
  let rescued, alive = if quick then (1, true) else run_hoarder () in
  let offered, free_after, reserved, can_alloc = if quick then (0, 1, 1, true) else run_flooder () in
  ( timeout, abort_result, abort_us, abort_stats, zf_result, zf_us, zf_stats, kill_after,
    death_result, death_us, death_stats, death_counters, rescued, alive, offered, free_after,
    reserved, can_alloc )

let run () =
  let ( timeout, abort_result, abort_us, abort_stats, zf_result, zf_us, zf_stats, kill_after,
        death_result, death_us, death_stats, (pager_deaths, death_errors, death_zero_fills),
        rescued, alive, offered, free_after, reserved, can_alloc ) =
    run_body ~quick:false
  in
  let t =
    Table.create ~title:"E9: data manager failure injection (Section 6)"
      ~columns:[ "failure"; "defense"; "outcome"; "metric" ]
  in
  Table.row t
    [
      "manager never returns data";
      Printf.sprintf "abort request after %.0f ms timeout" (timeout /. 1000.0);
      (match abort_result with Error _ -> "fault aborted, error to thread" | Ok _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (abort_us /. 1000.0);
    ];
  Table.row t
    [
      "manager never returns data";
      "substitute zero-filled memory after timeout";
      (match zf_result with
      | Ok b when Bytes.for_all (fun c -> c = '\000') b -> "zeroes delivered, thread continues"
      | Ok _ -> "wrong data"
      | Error _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (zf_us /. 1000.0);
    ];
  Table.row t
    [
      "manager dies mid-fault (object port death)";
      "kernel pager-death handler resolves placeholders";
      (match death_result with
      | Error _ -> "deterministic fault error, no timer involved"
      | Ok _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms (killed at %.0f ms); deaths=%d errors=%d zero_fills=%d"
        (death_us /. 1000.0) (kill_after /. 1000.0) pager_deaths death_errors death_zero_fills;
    ];
  Table.row t
    [
      "manager fails to free flushed data";
      "double paging to the default pager (s6.2.2)";
      (if alive then "kernel kept allocating" else "KERNEL STARVED");
      Printf.sprintf "%d frames rescued" rescued;
    ];
  Table.row t
    [
      "manager floods the cache";
      "unsolicited data accepted only while frames are free";
      (if can_alloc then "reserved pool intact, allocation works" else "ALLOCATION BLOCKED");
      Printf.sprintf "offered %d pages; %d frames free after (reserve %d)" offered free_after
        reserved;
    ];
  (* The uniform per-pager stats block each failing manager accumulated
     — the same counters the conformance suite asserts on. *)
  let s =
    Table.create ~title:"E9: per-pager runtime stats"
      ~columns:("manager" :: List.map fst abort_stats)
  in
  List.iter
    (fun (name, stats) -> Table.row s (name :: List.map (fun (_, v) -> string_of_int v) stats))
    [
      ("silent-mgr (abort run)", abort_stats);
      ("silent-mgr (zero-fill run)", zf_stats);
      ("doomed-mgr (death run)", death_stats);
    ];
  [ t; s ]

let json () =
  let ( timeout, _, abort_us, _, _, zf_us, _, kill_after, _, death_us, _,
        (pager_deaths, death_errors, death_zero_fills), _, _, _, _, _, _ ) =
    run_body ~quick:true
  in
  [
    ("timeout_us", timeout);
    ("abort_blocked_us", abort_us);
    ("zero_fill_blocked_us", zf_us);
    ("kill_after_us", kill_after);
    ("death_blocked_us", death_us);
    ("pager_deaths", float_of_int pager_deaths);
    ("death_errors", float_of_int death_errors);
    ("death_zero_fills", float_of_int death_zero_fills);
  ]

let experiment =
  {
    id = "E9";
    title = "Failure handling";
    paper_claim =
      "External data manager failures are analogous to communication failures; the same options \
       apply (timeout, zero-fill, wait), and the default pager plus double paging protect the \
       kernel from starvation by errant managers (Section 6).";
    run;
    quick = (fun () -> ignore (run_body ~quick:true));
    json = Some json;
  }
