(* E9 — §6: the problems of external memory management, and the
   kernel's defenses. Injects each failure the paper lists and reports
   the containment mechanism that handled it. *)

open Mach
open Common
module Mos = Memory_object_server

let page = 4096

(* A manager that never answers pager_data_request. *)
let silent_manager kernel =
  let task = Task.create kernel ~name:"silent-mgr" () in
  Mos.start task Mos.no_callbacks

(* Scenario 1/2: thread blocked on data from a hostile manager; the
   §6.2.1 options — abort after timeout, or substitute zeroes. *)
let run_unresponsive ~policy =
  run_system (fun sys task ->
      let srv = silent_manager sys.Kernel.kernel in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let engine = sys.Kernel.engine in
      let r, elapsed = timed engine (fun () -> Syscalls.read_bytes task ~addr ~len:8 ~policy ()) in
      (r, elapsed))

(* Scenario 3: manager that accepts pager_data_write but never releases
   the data — §6.2.2 double paging must rescue the frames. *)
let run_hoarder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"hoarder-mgr" () in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
              Mos.data_unavailable srv ~request ~offset ~size:length);
          (* Swallow the data; never call release. *)
          Mos.on_data_write = (fun _ ~memory_object:_ ~offset:_ ~data:_ ~release:_ -> ());
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let npages = 200 in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (* Dirty more pages than physical memory: pageout hands them to
         the hoarding manager. *)
      for i = 0 to npages - 1 do
        ignore
          (ok_exn "dirty"
             (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 32 'd')
                ~policy:(Fault.Abort_after 60_000_000.0) ()))
      done;
      (* Let the release timeouts fire. *)
      Engine.sleep 2_000_000.0;
      let stats = Kernel.stats kernel in
      let still_alive =
        match Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () with
        | _addr -> (
          match Syscalls.write_bytes task ~addr:_addr (Bytes.make 16 'x') () with
          | Ok () -> true
          | Error _ -> false)
        | exception _ -> false
      in
      (stats.Vm_types.s_pageout_to_default, still_alive))

(* Scenario 4: manager floods the kernel with unsolicited pre-paged
   data; the kernel only accepts while unreserved frames exist. *)
let run_flooder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"flood-mgr" () in
      let offered = 4096 in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset:_ ~length:_ ~desired_access:_ ->
              (* Respond to any request with a colossal unsolicited
                 blob starting at 0. *)
              Mos.data_provided srv ~request ~offset:0
                ~data:(Bytes.make (offered * page) 'F')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(offered * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      ignore (Syscalls.read_bytes task ~addr ~len:8 ~policy:(Fault.Abort_after 10_000_000.0) ());
      Engine.sleep 100_000.0;
      let free_after = Kernel.free_frames kernel in
      let reserved = kernel.Ktypes.k_kctx.Kctx.reserved_frames in
      let can_still_allocate =
        match Syscalls.vm_allocate task ~size:page ~anywhere:true () with
        | _ -> true
        | exception _ -> false
      in
      (offered, free_after, reserved, can_still_allocate))

let run_body ~quick =
  let timeout = if quick then 50_000.0 else 500_000.0 in
  let abort_result, abort_us = run_unresponsive ~policy:(Fault.Abort_after timeout) in
  let zf_result, zf_us = run_unresponsive ~policy:(Fault.Zero_fill_after timeout) in
  let rescued, alive = if quick then (1, true) else run_hoarder () in
  let offered, free_after, reserved, can_alloc = if quick then (0, 1, 1, true) else run_flooder () in
  (timeout, abort_result, abort_us, zf_result, zf_us, rescued, alive, offered, free_after, reserved, can_alloc)

let run () =
  let ( timeout, abort_result, abort_us, zf_result, zf_us, rescued, alive, offered, free_after,
        reserved, can_alloc ) =
    run_body ~quick:false
  in
  let t =
    Table.create ~title:"E9: data manager failure injection (Section 6)"
      ~columns:[ "failure"; "defense"; "outcome"; "metric" ]
  in
  Table.row t
    [
      "manager never returns data";
      Printf.sprintf "abort request after %.0f ms timeout" (timeout /. 1000.0);
      (match abort_result with Error _ -> "fault aborted, error to thread" | Ok _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (abort_us /. 1000.0);
    ];
  Table.row t
    [
      "manager never returns data";
      "substitute zero-filled memory after timeout";
      (match zf_result with
      | Ok b when Bytes.for_all (fun c -> c = '\000') b -> "zeroes delivered, thread continues"
      | Ok _ -> "wrong data"
      | Error _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (zf_us /. 1000.0);
    ];
  Table.row t
    [
      "manager fails to free flushed data";
      "double paging to the default pager (s6.2.2)";
      (if alive then "kernel kept allocating" else "KERNEL STARVED");
      Printf.sprintf "%d frames rescued" rescued;
    ];
  Table.row t
    [
      "manager floods the cache";
      "unsolicited data accepted only while frames are free";
      (if can_alloc then "reserved pool intact, allocation works" else "ALLOCATION BLOCKED");
      Printf.sprintf "offered %d pages; %d frames free after (reserve %d)" offered free_after
        reserved;
    ];
  [ t ]

let experiment =
  {
    id = "E9";
    title = "Failure handling";
    paper_claim =
      "External data manager failures are analogous to communication failures; the same options \
       apply (timeout, zero-fill, wait), and the default pager plus double paging protect the \
       kernel from starvation by errant managers (Section 6).";
    run;
    quick = (fun () -> ignore (run_body ~quick:true));
    json = None;
  }
