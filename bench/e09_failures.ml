(* E9 — §6: the problems of external memory management, and the
   kernel's defenses. Part one injects each local failure the paper
   lists (unresponsive, dying, hoarding, flooding managers) and reports
   the containment mechanism that handled it. Part two is the chaos
   suite: the same external-pager machinery driven over a faulty
   NORMA fabric — seeded loss, duplicate storms, partitions, and
   whole-host crashes — to show the reliable channel layer and the
   failure-recovery paths keep every thread accounted for. *)

open Mach
open Common
module Mos = Memory_object_server
module Rt = Pager_runtime
module Chaos = Mach_sim.Chaos
module HwNet = Mach_hw.Net
module IpcContext = Mach_ipc.Context
module Netmem = Mach_pagers.Netmem

let page = 4096

(* A manager that never answers pager_data_request: a runtime policy
   whose every page read defers forever. The runtime still counts the
   requests it ignored — that is the stats table's point. *)
let silent_manager kernel ~name =
  let task = Task.create kernel ~name () in
  let policy =
    {
      Rt.default_policy with
      Rt.p_read = (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Rt.Defer);
    }
  in
  let rt, srv = Rt.serve task policy in
  let memory_object = Mos.create_memory_object srv () in
  ignore (Rt.register rt ~memory_object ());
  (rt, srv, memory_object)

(* Scenario 1/2: thread blocked on data from a hostile manager; the
   §6.2.1 options — abort after timeout, or substitute zeroes. *)
let run_unresponsive ~policy =
  run_system (fun sys task ->
      let rt, _srv, memory_object = silent_manager sys.Kernel.kernel ~name:"silent-mgr" in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let engine = sys.Kernel.engine in
      let r, elapsed = timed engine (fun () -> Syscalls.read_bytes task ~addr ~len:8 ~policy ()) in
      (r, elapsed, Rt.Stats.to_list (Rt.stats rt)))

(* Scenario 3: the manager dies mid-fault. No caller timeout is
   involved: the kernel's pager-death handler resolves every
   outstanding placeholder page the moment the object port dies —
   zero-fill for anonymous-style objects, a fault error for file-backed
   ones. The faulting thread may therefore wait without any timeout at
   all and still come back promptly. *)
let run_death ~kill_after_us =
  run_system (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let rt, srv, memory_object = silent_manager kernel ~name:"doomed-mgr" in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(4 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let engine = sys.Kernel.engine in
      Engine.spawn engine ~name:"killer" (fun () ->
          Engine.sleep kill_after_us;
          Mos.stop srv;
          Port.destroy memory_object);
      let r, elapsed =
        timed engine (fun () ->
            Syscalls.read_bytes task ~addr ~len:8 ~policy:Fault.Wait_forever ())
      in
      let st = Kernel.stats kernel in
      ( r,
        elapsed,
        Rt.Stats.to_list (Rt.stats rt),
        ( st.Vm_types.s_pager_deaths,
          st.Vm_types.s_death_errors,
          st.Vm_types.s_death_zero_fills ) ))

(* Scenario 4: manager that accepts pager_data_write but never releases
   the data — §6.2.2 double paging must rescue the frames. Holding the
   release is a protocol violation the runtime refuses to express
   (handle_data_write always releases), so this manager is hand-rolled
   on the raw server. *)
let run_hoarder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"hoarder-mgr" () in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length ~desired_access:_ ->
              Mos.data_unavailable srv ~request ~offset ~size:length);
          (* Swallow the data; never call release. *)
          Mos.on_data_write = (fun _ ~memory_object:_ ~offset:_ ~data:_ ~release:_ -> ());
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let npages = 200 in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (* Dirty more pages than physical memory: pageout hands them to
         the hoarding manager. *)
      for i = 0 to npages - 1 do
        ignore
          (ok_exn "dirty"
             (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 32 'd')
                ~policy:(Fault.Abort_after 60_000_000.0) ()))
      done;
      (* Let the release timeouts fire. *)
      Engine.sleep 2_000_000.0;
      let stats = Kernel.stats kernel in
      let still_alive =
        match Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () with
        | _addr -> (
          match Syscalls.write_bytes task ~addr:_addr (Bytes.make 16 'x') () with
          | Ok () -> true
          | Error _ -> false)
        | exception _ -> false
      in
      (stats.Vm_types.s_pageout_to_default, still_alive))

(* Scenario 5: manager floods the kernel with unsolicited pre-paged
   data; the kernel only accepts while unreserved frames exist. Another
   abuse the runtime cannot produce (its replies answer requests), so
   again raw server callbacks. *)
let run_flooder () =
  let config = { Kernel.default_config with Kernel.phys_frames = 128 } in
  run_system ~config (fun sys task ->
      let kernel = sys.Kernel.kernel in
      let mgr_task = Task.create kernel ~name:"flood-mgr" () in
      let offered = 4096 in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset:_ ~length:_ ~desired_access:_ ->
              (* Respond to any request with a colossal unsolicited
                 blob starting at 0. *)
              Mos.data_provided srv ~request ~offset:0
                ~data:(Bytes.make (offered * page) 'F')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(offered * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      ignore (Syscalls.read_bytes task ~addr ~len:8 ~policy:(Fault.Abort_after 10_000_000.0) ());
      Engine.sleep 100_000.0;
      let free_after = Kernel.free_frames kernel in
      let reserved = kernel.Ktypes.k_kctx.Kctx.reserved_frames in
      let can_still_allocate =
        match Syscalls.vm_allocate task ~size:page ~anywhere:true () with
        | _ -> true
        | exception _ -> false
      in
      (offered, free_after, reserved, can_still_allocate))

(* --- the chaos suite ----------------------------------------------------- *)

let chaos_seed = 20260808

(* Build a cluster under a seeded fault plan and run [setup] on a
   simulated thread. [setup] spawns the workload and returns a closure
   that reads the outcome after the engine quiesces — so a worker that
   hangs shows up as a completion shortfall instead of deadlocking the
   harness. *)
let run_chaos ~hosts ?(plan = Chaos.perfect) ?(seed = chaos_seed) setup =
  let chaos = Chaos.create ~seed () in
  Chaos.set_default_plan chaos plan;
  let cluster = Kernel.create_cluster ~hosts ~chaos () in
  let finish = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"chaos-setup" (fun () ->
      finish := Some (setup cluster chaos));
  Engine.run cluster.Kernel.c_engine;
  Array.iter note_registry cluster.Kernel.c_kernels;
  match !finish with
  | Some f -> f ()
  | None -> failwith "E9 chaos setup never ran"

type chaos_worker = {
  cw_done : bool ref;
  cw_finish : float ref;  (* Engine.now at completion *)
  cw_failures : int ref;  (* aborted or mis-verified accesses *)
}

(* One remote client: write a marker into every page of [region], read
   each back, and verify — every access a cross-host pager RPC. *)
let spawn_chaos_client cluster ~host ~region ~npages ~value =
  let w = { cw_done = ref false; cw_finish = ref 0.0; cw_failures = ref 0 } in
  let engine = cluster.Kernel.c_engine in
  let task =
    Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "chaos-c%d" host) ()
  in
  ignore
    (Thread.spawn task ~name:(Printf.sprintf "chaos-c%d.main" host) (fun () ->
         let addr =
           Syscalls.vm_allocate_with_pager task ~size:(npages * page) ~anywhere:true
             ~memory_object:region ~offset:0 ()
         in
         let policy = Fault.Abort_after 30_000_000.0 in
         for i = 0 to npages - 1 do
           let payload = Bytes.make 16 value in
           (match Syscalls.write_bytes task ~addr:(addr + (i * page)) payload ~policy () with
           | Ok () -> ()
           | Error _ -> incr w.cw_failures);
           match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:16 ~policy () with
           | Ok b when Bytes.equal b payload -> ()
           | Ok _ | Error _ -> incr w.cw_failures
         done;
         w.cw_done := true;
         w.cw_finish := Engine.now engine));
  w

let blocked w = if !(w.cw_done) then 0 else 1

(* Loss sweep: the remote-pager workload at increasing drop rates. The
   channel layer must deliver every page exactly once, at the cost of
   retransmissions and time. *)
let run_loss_point ~drop ~npages =
  run_chaos ~hosts:2 ~plan:{ Chaos.perfect with Chaos.drop } (fun cluster _chaos ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(npages * page) in
      let w = spawn_chaos_client cluster ~host:1 ~region ~npages ~value:'L' in
      fun () ->
        ( blocked w,
          !(w.cw_failures),
          !(w.cw_finish),
          HwNet.retransmits cluster.Kernel.c_net,
          HwNet.dropped cluster.Kernel.c_net ))

(* Duplicate storm: at-most-once effects despite every other packet
   arriving twice (plus background loss so acks get lost too). *)
let run_duplicate_storm ~npages =
  run_chaos ~hosts:2
    ~plan:{ Chaos.perfect with Chaos.duplicate = 0.3; drop = 0.05 }
    (fun cluster chaos ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(npages * page) in
      let w = spawn_chaos_client cluster ~host:1 ~region ~npages ~value:'D' in
      fun () ->
        let dup_dropped =
          List.assoc "dup_dropped" (IpcContext.chan_stats_to_list cluster.Kernel.c_ctx)
        in
        ( blocked w,
          !(w.cw_failures),
          (Chaos.stats chaos).Chaos.s_duplicated,
          dup_dropped ))

(* Partition-and-heal: cut the link mid-workload for [dur_us], well
   inside the retry budget; retransmission must carry every in-flight
   message across the heal. Convergence = how long after the heal the
   workload needed to finish. *)
let run_partition_heal ~npages ~at_us ~dur_us =
  run_chaos ~hosts:2 (fun cluster chaos ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(npages * page) in
      let w = spawn_chaos_client cluster ~host:1 ~region ~npages ~value:'P' in
      let heal_t = ref 0.0 in
      Engine.spawn cluster.Kernel.c_engine ~name:"partitioner" (fun () ->
          Engine.sleep at_us;
          Chaos.partition chaos 0 1;
          Engine.sleep dur_us;
          Chaos.heal chaos 0 1;
          heal_t := Engine.now cluster.Kernel.c_engine);
      fun () ->
        let s = Chaos.stats chaos in
        ( blocked w,
          !(w.cw_failures),
          Float.max 0.0 (!(w.cw_finish) -. !heal_t),
          s.Chaos.s_partition_drops ))

(* Mid-data_write host crash: the manager's host dies while the client
   is dirtying pages through it. Proxy-port death must reach the
   client's kernel (pager-death path: resolve placeholders, fail fast)
   so the client finishes — with errors, never a hang. *)
let run_crash_mid_write ~npages ~kill_after_us =
  run_chaos ~hosts:2 (fun cluster chaos ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(1) () in
      let region = Netmem.create_region nm ~size:(npages * page) in
      let w = spawn_chaos_client cluster ~host:0 ~region ~npages ~value:'C' in
      Engine.spawn cluster.Kernel.c_engine ~name:"host-killer" (fun () ->
          Engine.sleep kill_after_us;
          Chaos.crash_host chaos 1);
      fun () ->
        let st = Kernel.stats cluster.Kernel.c_kernels.(0) in
        ( blocked w,
          !(w.cw_failures),
          st.Vm_types.s_pager_deaths,
          (Chaos.stats chaos).Chaos.s_crash_drops ))

(* Netmem ownership migration under loss: two clients ping-pong write
   grants on one page over a 10%-drop fabric, then one rereads the
   final value through the coherence protocol. *)
let run_migration_under_loss ~rounds ~drop =
  run_chaos ~hosts:3 ~plan:{ Chaos.perfect with Chaos.drop } (fun cluster _chaos ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:page in
      let gates = Array.init (rounds + 1) (fun _ -> Ivar.create ()) in
      Ivar.fill gates.(0) ();
      let completed = ref 0 in
      let failures = ref 0 in
      let final_ok = ref false in
      let finish = ref 0.0 in
      let last_value = Char.chr (64 + rounds) in
      let spawn_client host parity =
        let task =
          Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "mig-%d" host) ()
        in
        ignore
          (Thread.spawn task ~name:(Printf.sprintf "mig-%d.main" host) (fun () ->
               let addr =
                 Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true
                   ~memory_object:region ~offset:0 ()
               in
               let policy = Fault.Abort_after 30_000_000.0 in
               for r = 0 to rounds - 1 do
                 if r mod 2 = parity then begin
                   Ivar.read gates.(r);
                   (match
                      Syscalls.write_bytes task ~addr (Bytes.make 8 (Char.chr (65 + r))) ~policy ()
                    with
                   | Ok () -> ()
                   | Error _ -> incr failures);
                   Ivar.fill gates.(r + 1) ()
                 end
               done;
               if parity = 0 then begin
                 (* Reread through the protocol: forces the last writer's
                    copy home and proves coherence survived the loss. *)
                 Ivar.read gates.(rounds);
                 (match Syscalls.read_bytes task ~addr ~len:1 ~policy () with
                 | Ok b -> final_ok := Bytes.get b 0 = last_value
                 | Error _ -> incr failures)
               end;
               incr completed;
               finish := Engine.now cluster.Kernel.c_engine))
      in
      spawn_client 1 0;
      spawn_client 2 1;
      fun () ->
        ( 2 - !completed,
          !failures,
          (if !final_ok then 1 else 0),
          Netmem.invalidations nm,
          !finish ))

let chaos_body ~quick =
  let npages = if quick then 8 else 32 in
  let sweep =
    List.map
      (fun drop ->
        let b, f, t, rx, drops = run_loss_point ~drop ~npages in
        (drop, b, f, t, rx, drops))
      [ 0.0; 0.05; 0.10; 0.20 ]
  in
  let dup = run_duplicate_storm ~npages in
  let part =
    if quick then run_partition_heal ~npages ~at_us:10_000.0 ~dur_us:30_000.0
    else run_partition_heal ~npages:64 ~at_us:20_000.0 ~dur_us:100_000.0
  in
  let crash =
    run_crash_mid_write ~npages ~kill_after_us:(if quick then 10_000.0 else 25_000.0)
  in
  let mig = run_migration_under_loss ~rounds:(if quick then 4 else 8) ~drop:0.10 in
  (sweep, dup, part, crash, mig)

let run_body ~quick =
  let timeout = if quick then 50_000.0 else 500_000.0 in
  let kill_after = if quick then 20_000.0 else 100_000.0 in
  let abort_result, abort_us, abort_stats = run_unresponsive ~policy:(Fault.Abort_after timeout) in
  let zf_result, zf_us, zf_stats = run_unresponsive ~policy:(Fault.Zero_fill_after timeout) in
  let death_result, death_us, death_stats, death_counters = run_death ~kill_after_us:kill_after in
  let rescued, alive = if quick then (1, true) else run_hoarder () in
  let offered, free_after, reserved, can_alloc = if quick then (0, 1, 1, true) else run_flooder () in
  ( timeout, abort_result, abort_us, abort_stats, zf_result, zf_us, zf_stats, kill_after,
    death_result, death_us, death_stats, death_counters, rescued, alive, offered, free_after,
    reserved, can_alloc )

let run () =
  let ( timeout, abort_result, abort_us, abort_stats, zf_result, zf_us, zf_stats, kill_after,
        death_result, death_us, death_stats, (pager_deaths, death_errors, death_zero_fills),
        rescued, alive, offered, free_after, reserved, can_alloc ) =
    run_body ~quick:false
  in
  let t =
    Table.create ~title:"E9: data manager failure injection (Section 6)"
      ~columns:[ "failure"; "defense"; "outcome"; "metric" ]
  in
  Table.row t
    [
      "manager never returns data";
      Printf.sprintf "abort request after %.0f ms timeout" (timeout /. 1000.0);
      (match abort_result with Error _ -> "fault aborted, error to thread" | Ok _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (abort_us /. 1000.0);
    ];
  Table.row t
    [
      "manager never returns data";
      "substitute zero-filled memory after timeout";
      (match zf_result with
      | Ok b when Bytes.for_all (fun c -> c = '\000') b -> "zeroes delivered, thread continues"
      | Ok _ -> "wrong data"
      | Error _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms" (zf_us /. 1000.0);
    ];
  Table.row t
    [
      "manager dies mid-fault (object port death)";
      "kernel pager-death handler resolves placeholders";
      (match death_result with
      | Error _ -> "deterministic fault error, no timer involved"
      | Ok _ -> "UNEXPECTED");
      Printf.sprintf "blocked %.0f ms (killed at %.0f ms); deaths=%d errors=%d zero_fills=%d"
        (death_us /. 1000.0) (kill_after /. 1000.0) pager_deaths death_errors death_zero_fills;
    ];
  Table.row t
    [
      "manager fails to free flushed data";
      "double paging to the default pager (s6.2.2)";
      (if alive then "kernel kept allocating" else "KERNEL STARVED");
      Printf.sprintf "%d frames rescued" rescued;
    ];
  Table.row t
    [
      "manager floods the cache";
      "unsolicited data accepted only while frames are free";
      (if can_alloc then "reserved pool intact, allocation works" else "ALLOCATION BLOCKED");
      Printf.sprintf "offered %d pages; %d frames free after (reserve %d)" offered free_after
        reserved;
    ];
  (* The uniform per-pager stats block each failing manager accumulated
     — the same counters the conformance suite asserts on. *)
  let s =
    Table.create ~title:"E9: per-pager runtime stats"
      ~columns:("manager" :: List.map fst abort_stats)
  in
  List.iter
    (fun (name, stats) -> Table.row s (name :: List.map (fun (_, v) -> string_of_int v) stats))
    [
      ("silent-mgr (abort run)", abort_stats);
      ("silent-mgr (zero-fill run)", zf_stats);
      ("doomed-mgr (death run)", death_stats);
    ];
  (* Part two: the chaos suite. *)
  let sweep, dup, part, crash, mig = chaos_body ~quick:false in
  let c =
    Table.create ~title:"E9c: remote pager workload under seeded network faults (chaos fabric)"
      ~columns:[ "scenario"; "fault plan"; "outcome"; "metric" ]
  in
  List.iter
    (fun (drop, b, f, t_us, rx, drops) ->
      Table.row c
        [
          "loss sweep (32 pages, write+verify)";
          Printf.sprintf "drop %.0f%%" (drop *. 100.0);
          (if b = 0 && f = 0 then "all pages exact, zero blocked threads"
           else Printf.sprintf "BLOCKED=%d failures=%d" b f);
          Printf.sprintf "%.1f ms, %d retransmits, %d wire drops" (t_us /. 1000.0) rx drops;
        ])
    sweep;
  (let b, f, dups, dedup = dup in
   Table.row c
     [
       "duplicate storm";
       "dup 30% + drop 5%";
       (if b = 0 && f = 0 then "at-most-once held (dedup window)"
        else Printf.sprintf "BLOCKED=%d failures=%d" b f);
       Printf.sprintf "%d duplicates injected, %d shed at receiver" dups dedup;
     ]);
  (let b, f, conv_us, pdrops = part in
   Table.row c
     [
       "partition-and-heal (100 ms cut)";
       "partition 0|1, heal";
       (if b = 0 && f = 0 then "retransmits carried all traffic across the heal"
        else Printf.sprintf "BLOCKED=%d failures=%d" b f);
       Printf.sprintf "converged %.1f ms after heal; %d messages hit the cut"
         (conv_us /. 1000.0) pdrops;
     ]);
  (let b, f, deaths, cdrops = crash in
   Table.row c
     [
       "manager host crash mid-data_write";
       "crash_host 1";
       (if b = 0 && deaths > 0 then "proxy-port death reached the client kernel; no hang"
        else Printf.sprintf "BLOCKED=%d pager_deaths=%d" b deaths);
       Printf.sprintf "%d aborted accesses, %d pager deaths, %d msgs to dead host" f deaths
         cdrops;
     ]);
  (let b, f, final_ok, invals, _ = mig in
   Table.row c
     [
       "netmem ownership migration";
       "drop 10%";
       (if b = 0 && f = 0 && final_ok = 1 then "write grants migrated; final value coherent"
        else Printf.sprintf "BLOCKED=%d failures=%d coherent=%d" b f final_ok);
       Printf.sprintf "%d invalidations" invals;
     ]);
  [ t; s; c ]

let json () =
  let ( timeout, _, abort_us, _, _, zf_us, _, kill_after, _, death_us, _,
        (pager_deaths, death_errors, death_zero_fills), _, _, _, _, _, _ ) =
    run_body ~quick:true
  in
  let sweep, dup, part, crash, mig = chaos_body ~quick:true in
  let sweep_blocked = List.fold_left (fun a (_, b, _, _, _, _) -> a + b) 0 sweep in
  let sweep_failures = List.fold_left (fun a (_, _, f, _, _, _) -> a + f) 0 sweep in
  let loss10_us, loss10_rx =
    let _, _, _, t, rx, _ = List.nth sweep 2 in
    (t, rx)
  in
  let dup_blocked, dup_failures, dups_injected, dup_dropped = dup in
  let part_blocked, part_failures, convergence_us, partition_drops = part in
  let crash_blocked, crash_failures, crash_pager_deaths, crash_drops = crash in
  let mig_blocked, mig_failures, mig_coherent, mig_invals, _ = mig in
  let blocked_workers =
    sweep_blocked + dup_blocked + part_blocked + crash_blocked + mig_blocked
  in
  let fi = float_of_int in
  [
    ("timeout_us", timeout);
    ("abort_blocked_us", abort_us);
    ("zero_fill_blocked_us", zf_us);
    ("kill_after_us", kill_after);
    ("death_blocked_us", death_us);
    ("pager_deaths", fi pager_deaths);
    ("death_errors", fi death_errors);
    ("death_zero_fills", fi death_zero_fills);
    (* chaos suite *)
    ("blocked_workers", fi blocked_workers);
    ("sweep_failures", fi sweep_failures);
    ("loss10_completion_us", loss10_us);
    ("loss10_retransmits", fi loss10_rx);
    ("dup_injected", fi dups_injected);
    ("dup_dropped", fi dup_dropped);
    ("dup_failures", fi (dup_blocked + dup_failures));
    ("partition_convergence_us", convergence_us);
    ("partition_drops", fi partition_drops);
    ("partition_failures", fi (part_blocked + part_failures));
    ("crash_pager_deaths", fi crash_pager_deaths);
    ("crash_drops", fi crash_drops);
    ("crash_aborted_accesses", fi crash_failures);
    ("migration_coherent", fi mig_coherent);
    ("migration_invalidations", fi mig_invals);
    ("migration_failures", fi (mig_blocked + mig_failures));
  ]

let experiment =
  {
    id = "E9";
    title = "Failure handling";
    paper_claim =
      "External data manager failures are analogous to communication failures; the same options \
       apply (timeout, zero-fill, wait), and the default pager plus double paging protect the \
       kernel from starvation by errant managers (Section 6).";
    run;
    quick =
      (fun () ->
        ignore (run_body ~quick:true);
        ignore (chaos_body ~quick:true));
    json = Some json;
  }
