(* E2 — Table 3-3: virtual memory operation costs. *)

open Mach
open Common

let page = 4096

let run_body ~rounds =
  run_system (fun sys task ->
      let engine = sys.Kernel.engine in
      let per x = x /. float_of_int rounds in
      let time_op f = snd (timed engine (fun () -> for i = 1 to rounds do f i done)) in
      let alloc_us =
        time_op (fun _ ->
            let addr = Syscalls.vm_allocate task ~size:(16 * page) ~anywhere:true () in
            Syscalls.vm_deallocate task ~addr ~size:(16 * page))
      in
      let base = Syscalls.vm_allocate task ~size:(64 * page) ~anywhere:true () in
      ignore (ok_exn "warm" (Syscalls.write_bytes task ~addr:base (Bytes.make (64 * page) 'x') ()));
      let protect_us =
        time_op (fun _ ->
            Syscalls.vm_protect task ~addr:base ~size:(64 * page) ~set_max:false Prot.read;
            Syscalls.vm_protect task ~addr:base ~size:(64 * page) ~set_max:false Prot.rw)
      in
      let inherit_us =
        time_op (fun _ -> Syscalls.vm_inherit task ~addr:base ~size:(64 * page) Vm_types.Inherit_share)
      in
      let read_us =
        time_op (fun _ -> ignore (ok_exn "vm_read" (Syscalls.vm_read task ~addr:base ~size:page ())))
      in
      let write_us =
        time_op (fun _ ->
            ignore (ok_exn "vm_write" (Syscalls.vm_write task ~addr:base (Bytes.make page 'y') ())))
      in
      let copy_us =
        time_op (fun _ ->
            ignore
              (ok_exn "vm_copy"
                 (Syscalls.vm_copy task ~src_addr:base ~size:page ~dst_addr:(base + (32 * page)))))
      in
      let regions_us = time_op (fun _ -> ignore (Syscalls.vm_regions task)) in
      let stats_us = time_op (fun _ -> ignore (Syscalls.vm_statistics task)) in
      [
        ("vm_allocate + vm_deallocate (64 KB)", per alloc_us /. 2.0);
        ("vm_protect (256 KB range)", per protect_us /. 2.0);
        ("vm_inherit (256 KB range)", per inherit_us);
        ("vm_read (1 page)", per read_us);
        ("vm_write (1 page)", per write_us);
        ("vm_copy (1 page)", per copy_us);
        ("vm_regions", per regions_us);
        ("vm_statistics", per stats_us);
      ])

let run () =
  let rows = run_body ~rounds:100 in
  let t =
    Table.create ~title:"E2: virtual memory operations (Table 3-3)"
      ~columns:[ "operation"; "simulated us" ]
  in
  List.iter (fun (op, v) -> Table.row t [ op; us v ]) rows;
  [ t ]

let experiment =
  {
    id = "E2";
    title = "VM operations";
    paper_claim =
      "Table 3-3 lists the vm_* operations every task can perform on its address space; \
       allocation is lazy (zero-fill on demand) so structural operations cost microseconds, \
       not page copies.";
    run;
    quick = (fun () -> ignore (run_body ~rounds:5));
    json = None;
  }
