(* E3 — the duality claim (§1, §2, §9): moving large message bodies by
   copy-on-write mapping instead of byte copying. Sweeps the message
   size and compares:
   - copy transfer (bytes physically copied at send);
   - mapped transfer, receiver never touches the data (pure transfer);
   - mapped transfer, receiver reads every page (lazy cost paid);
   - mapped transfer, receiver overwrites every page (COW worst case).

   The mapped path is the real vm_map_copyin/copyout pipeline: the
   kernel's IPC counters are sampled around each exchange, so the
   accounting table can show that a mapped send moves zero bytes and
   the pages the receiver touches arrive as lazy copy-out faults. *)

open Mach
open Common

let page = 4096

type mode = Copy | Map_lazy | Map_read | Map_write

let mode_name = function
  | Copy -> "copy"
  | Map_lazy -> "map (untouched)"
  | Map_read -> "map (read all)"
  | Map_write -> "map (write all)"

type accounting = {
  a_bytes_copied : int;  (** bytes physically copied at send *)
  a_copyins : int;
  a_lazy_faults : int;
}

(* One exchange: sender ships [size] bytes from [src_addr], receiver
   consumes per [mode], then acks. Returns simulated elapsed time plus
   the IPC-counter deltas over the exchange. *)
let exchange sys ~sender ~receiver ~recv_svc ~ack_name ~ack_port ~src_addr ~size ~mode =
  let engine = sys.Kernel.engine in
  let recv_port = Mach_ipc.Port_space.lookup_exn (Task.space receiver) recv_svc in
  let stats = (Kernel.kctx sys.Kernel.kernel).Kctx.node.Transport.node_stats in
  let copied0 = stats.Transport.s_bytes_copied in
  let copyins0 = stats.Transport.s_copyins in
  let faults0 = stats.Transport.s_lazy_copyout_faults in
  let (), elapsed =
    timed engine (fun () ->
        let finished = Ivar.create () in
        ignore
          (Thread.spawn receiver ~name:"e3.receiver" (fun () ->
               (match Syscalls.msg_receive receiver ~from:(`Port recv_svc) () with
               | Ok msg ->
                 List.iter
                   (fun (addr, sz) ->
                     (match mode with
                     | Copy | Map_lazy -> ()
                     | Map_read ->
                       let p = ref 0 in
                       while !p < sz do
                         ignore (Syscalls.touch receiver ~addr:(addr + !p) ~write:false ());
                         p := !p + page
                       done
                     | Map_write ->
                       let p = ref 0 in
                       while !p < sz do
                         ignore (Syscalls.touch receiver ~addr:(addr + !p) ~write:true ());
                         p := !p + page
                       done);
                     Syscalls.vm_deallocate receiver ~addr ~size:sz)
                   (Syscalls.map_ool receiver msg);
                 ignore (Syscalls.msg_send receiver (Message.make ~dest:ack_port []))
               | Error _ -> ());
               Ivar.fill finished ()));
        let body =
          match mode with
          | Copy ->
            [ Message.Ool { Message.ool_data = Bytes.create size; transfer = Message.Copy_transfer } ]
          | Map_lazy | Map_read | Map_write -> [ Syscalls.ool_region sender ~addr:src_addr ~size ]
        in
        (match Syscalls.msg_send sender (Message.make ~dest:recv_port body) with
        | Ok () -> ()
        | Error _ -> failwith "e3 send failed");
        Ivar.read finished;
        ignore (Syscalls.msg_receive sender ~from:(`Port ack_name) ()))
  in
  let acct =
    {
      a_bytes_copied = stats.Transport.s_bytes_copied - copied0;
      a_copyins = stats.Transport.s_copyins - copyins0;
      a_lazy_faults = stats.Transport.s_lazy_copyout_faults - faults0;
    }
  in
  (elapsed, acct)

let sizes = [ 4 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 ]

let run_body ~sizes =
  let config = { Kernel.default_config with Kernel.phys_frames = 16384 } in
  run_system ~config (fun sys task ->
      let receiver = Task.create sys.Kernel.kernel ~name:"e3-recv" () in
      let recv_svc = Syscalls.port_allocate receiver ~backlog:4 () in
      let ack_name = Syscalls.port_allocate task ~backlog:4 () in
      let ack_port = Mach_ipc.Port_space.lookup_exn (Task.space task) ack_name in
      List.map
        (fun size ->
          (* The source region exists and is resident before the clock
             starts — we measure the transfer, not data creation. *)
          let src_addr = Syscalls.vm_allocate task ~size ~anywhere:true () in
          ignore (ok_exn "fill" (Syscalls.write_bytes task ~addr:src_addr (Bytes.create size) ()));
          let results =
            List.map
              (fun mode ->
                ( mode,
                  exchange sys ~sender:task ~receiver ~recv_svc ~ack_name ~ack_port ~src_addr
                    ~size ~mode ))
              [ Copy; Map_lazy; Map_read; Map_write ]
          in
          Syscalls.vm_deallocate task ~addr:src_addr ~size;
          (size, results))
        sizes)

let find mode results = List.assoc mode results
let pp_size size =
  if size >= 1024 * 1024 then Printf.sprintf "%d MB" (size / 1024 / 1024)
  else Printf.sprintf "%d KB" (size / 1024)

let run () =
  let rows = run_body ~sizes in
  let t =
    Table.create
      ~title:"E3: large message transfer — physical copy vs copy-on-write mapping (Sections 1, 2, 9)"
      ~columns:
        [ "message size"; "copy us"; "map untouched us"; "map read-all us"; "map write-all us";
          "copy/map-untouched" ]
  in
  List.iter
    (fun (size, results) ->
      let copy_us, _ = find Copy results in
      let lazy_us, _ = find Map_lazy results in
      Table.row t
        [
          pp_size size;
          us0 copy_us;
          us0 lazy_us;
          us0 (fst (find Map_read results));
          us0 (fst (find Map_write results));
          ratio copy_us lazy_us;
        ])
    rows;
  (* Where does mapping start to win? (With a 16-byte handle and
     O(pages) map ops it already wins at one page; the table makes the
     measured crossover explicit rather than asserted.) *)
  let crossover =
    List.find_opt
      (fun (_, results) -> fst (find Copy results) > fst (find Map_lazy results))
      rows
  in
  (match crossover with
  | Some (size, _) ->
    Table.row t [ Printf.sprintf "crossover at %s" (pp_size size); "-"; "-"; "-"; "-"; "-" ]
  | None -> Table.row t [ "no crossover in sweep"; "-"; "-"; "-"; "-"; "-" ]);
  (* Zero-copy accounting at the largest size: a mapped send moves no
     bytes (one copyin, handle in the message), and only the pages the
     receiver touches come back as lazy copy-out faults. *)
  let acct_size, acct_row = List.nth rows (List.length rows - 1) in
  let t2 =
    Table.create
      ~title:(Printf.sprintf "E3: zero-copy accounting (%s message)" (pp_size acct_size))
      ~columns:[ "mode"; "bytes copied at send"; "copyins"; "lazy copy-out faults" ]
  in
  List.iter
    (fun (mode, (_, a)) ->
      Table.row t2
        [
          mode_name mode;
          string_of_int a.a_bytes_copied;
          string_of_int a.a_copyins;
          string_of_int a.a_lazy_faults;
        ])
    acct_row;
  [ t; t2 ]

let json () =
  let rows = run_body ~sizes:[ 4 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ] in
  let crossover =
    List.find_opt
      (fun (_, results) -> fst (find Copy results) > fst (find Map_lazy results))
      rows
  in
  List.concat_map
    (fun (size, results) ->
      let copy_us, _ = find Copy results in
      let lazy_us, acct = find Map_lazy results in
      [
        (Printf.sprintf "copy_us_%d" size, copy_us);
        (Printf.sprintf "map_untouched_us_%d" size, lazy_us);
        (Printf.sprintf "map_read_us_%d" size, fst (find Map_read results));
        (Printf.sprintf "map_write_us_%d" size, fst (find Map_write results));
        (Printf.sprintf "copy_over_map_%d" size, if lazy_us = 0.0 then 0.0 else copy_us /. lazy_us);
        (Printf.sprintf "map_send_bytes_copied_%d" size, float_of_int acct.a_bytes_copied);
      ])
    rows
  @ [
      ( "crossover_bytes",
        match crossover with Some (size, _) -> float_of_int size | None -> -1.0 );
    ]

let experiment =
  {
    id = "E3";
    title = "Message copy vs map";
    paper_claim =
      "Mach uses memory-mapping techniques to make the passing of large messages more \
       efficient: mapped transfer costs one map operation per page instead of a physical copy, \
       so its advantage grows with message size; the price is deferred to the pages the \
       receiver actually touches.";
    run;
    quick = (fun () -> ignore (run_body ~sizes:[ 4 * 1024; 64 * 1024 ]));
    json = Some json;
  }
