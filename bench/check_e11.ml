(* E11 regression gate: compare a freshly produced `--json` run of the
   fork/COW experiment against the committed baseline (BENCH_e11.json)
   and fail if the copy engine regressed.

   Usage: check_e11 BASELINE CURRENT *)

open Check_common

(* Tolerated fraction of the recorded baseline (deterministic runs; the
   slack only covers intentional cost-model retuning). *)
let baseline_fraction = 0.8

(* Fork of a fully resident space must cost the same regardless of
   region size: the freeze is one batched protect per entry, so the
   largest/smallest fork-time ratio stays near 1. *)
let flatness_ceiling = 1.5

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let c key = get current current_path key in
    let b key = get baseline baseline_path key in
    if !failures = 0 then begin
      (* Fork cost independent of region size (64 .. 4096 pages). *)
      check_le "fork_flatness (max/min fork_us over sizes)" (c "fork_flatness") flatness_ceiling;
      check_le
        (Printf.sprintf "fork_us_4096 vs baseline %.0f" (b "fork_us_4096"))
        (c "fork_us_4096")
        (b "fork_us_4096" /. baseline_fraction);
      (* The generational workload must actually steal: exclusive
         backing pages move up the chain instead of being copied. *)
      check_ge "cow_steals (nonzero on generational workload)" (c "cow_steals") 1.0;
      check_ge
        (Printf.sprintf "steal_rate vs baseline %.3f" (b "steal_rate"))
        (c "steal_rate")
        (baseline_fraction *. b "steal_rate");
      (* Fork/exit generations may not accrete shadow-chain depth. *)
      check_le "gen_depth_peak (chain flat after each exit)" (c "gen_depth_peak") 2.0;
      check_ge "collapses (both collapse triggers fire)" (c "collapses") (c "generations")
    end
  | _ -> usage "check_e11");
  finish "E11 fork/COW within recorded floors"
