(* E10 — §5.5: cost of each fault-handler path: zero-fill, soft
   (resident page, invalid translation), copy-on-write, external pager,
   and pagein from the default pager after a pageout round trip.

   The per-fault numbers are TRACE REDUCTIONS: every fault opens a span
   on the kernel's trace spine and closes it with its resolution kind,
   so this experiment enables tracing, drives each phase, and derives
   the per-path cost as the mean duration of the fault spans that
   started inside that phase's window — the stopwatch and the causal
   record are the same data. *)

open Mach
open Common
module Mos = Memory_object_server
module Rt = Pager_runtime

let page = 4096

let run_body ~rounds =
  run_system (fun sys task ->
      let engine = sys.Kernel.engine in
      let kernel = sys.Kernel.kernel in
      let tr = Kernel.trace kernel in
      Trace.set_enabled tr true;
      (* Each phase records its sim-time window; the trace reduction
         below attributes fault spans to phases by start time. *)
      let windows = ref [] in
      let phase name f =
        let t0 = Engine.now engine in
        let r = f () in
        windows := (name, t0, Engine.now engine) :: !windows;
        r
      in
      (* Zero-fill faults: first touch of fresh anonymous pages. *)
      let zf_addr = Syscalls.vm_allocate task ~size:(rounds * page) ~anywhere:true () in
      phase "zf" (fun () ->
          for i = 0 to rounds - 1 do
            ignore (ok_exn "zf" (Syscalls.touch task ~addr:(zf_addr + (i * page)) ~write:true ()))
          done);
      (* Soft faults: pages resident in the object but the hardware
         translations removed (e.g. after pmap eviction). *)
      (match Vm_map.pmap (Task.map task) with
      | Some pm ->
        for i = 0 to rounds - 1 do
          Mach_hw.Pmap.remove pm ~vpn:((zf_addr + (i * page)) / page)
        done
      | None -> ());
      phase "soft" (fun () ->
          for i = 0 to rounds - 1 do
            ignore (ok_exn "soft" (Syscalls.touch task ~addr:(zf_addr + (i * page)) ~write:false ()))
          done);
      (* COW faults: fork, then the child writes. *)
      let child = Task.create kernel ~parent:task ~name:"cow-child" () in
      phase "cow" (fun () ->
          let cow_done = Ivar.create () in
          ignore
            (Thread.spawn child ~name:"cow-child.main" (fun () ->
                 for i = 0 to rounds - 1 do
                   ignore
                     (ok_exn "cow" (Syscalls.touch child ~addr:(zf_addr + (i * page)) ~write:true ()))
                 done;
                 Ivar.fill cow_done ()));
          Ivar.read cow_done);
      (* External pager faults: a prompt user-level manager — a
         one-line runtime policy serving constant pages. *)
      let mgr_task = Task.create kernel ~name:"prompt-mgr" () in
      let prompt_policy =
        {
          Rt.default_policy with
          Rt.p_read =
            (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Rt.Data (Bytes.make page 'e'));
        }
      in
      let prompt_rt, srv = Rt.serve mgr_task prompt_policy in
      let memory_object = Mos.create_memory_object srv () in
      ignore (Rt.register prompt_rt ~memory_object ());
      let ext_addr =
        Syscalls.vm_allocate_with_pager task ~size:(rounds * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      phase "ext" (fun () ->
          for i = 0 to rounds - 1 do
            ignore (ok_exn "ext" (Syscalls.touch task ~addr:(ext_addr + (i * page)) ~write:false ()))
          done);
      (* Writeback pipeline: dirty a range behind a manager that delays
         its releases, have the manager ask for a clean, and refault
         mid-clean. The laundry queue absorbs the faulter (clean_hits);
         the old pipeline would have detached the pages and re-requested
         them from the manager. *)
      let wb_mgr = Task.create kernel ~name:"laundry-mgr" () in
      let wb_request = Ivar.create () in
      let wb_policy =
        {
          Rt.default_policy with
          Rt.p_init = (fun _ _ ~request -> Ivar.fill wb_request request);
          Rt.p_read =
            (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Rt.Data (Bytes.make page 'w'));
          Rt.p_prepare_write =
            (fun _ _ ~offset:_ ~data:_ ->
              (* Sit on the data long enough for refaults to land while
                 the run's data_write is outstanding. *)
              Engine.sleep 3000.0);
        }
      in
      let wb_rt, wb_srv = Rt.serve wb_mgr wb_policy in
      let wb_object = Mos.create_memory_object wb_srv () in
      ignore (Rt.register wb_rt ~memory_object:wb_object ());
      let wb_addr =
        Syscalls.vm_allocate_with_pager task ~size:(rounds * page) ~anywhere:true
          ~memory_object:wb_object ~offset:0 ()
      in
      for i = 0 to rounds - 1 do
        ignore (ok_exn "wb-dirty" (Syscalls.touch task ~addr:(wb_addr + (i * page)) ~write:true ()))
      done;
      let wb_req = Ivar.read wb_request in
      Rt.clean_request wb_rt ~request:wb_req ~offset:0 ~length:(rounds * page);
      (* Let the kernel launder the runs, then refault mid-clean. *)
      Engine.sleep 500.0;
      phase "wb" (fun () ->
          for i = 0 to rounds - 1 do
            ignore
              (ok_exn "wb-refault" (Syscalls.touch task ~addr:(wb_addr + (i * page)) ~write:true ()))
          done);
      (* ---- trace reduction ------------------------------------------ *)
      let fault_spans =
        List.filter
          (fun sp -> sp.Trace.sp_sub = "vm" && sp.Trace.sp_label = "fault")
          (Trace.spans tr)
      in
      let phase_mean name =
        let _, t0, t1 =
          List.find (fun (n, _, _) -> n = name) !windows
        in
        let ds =
          List.filter_map
            (fun sp ->
              if sp.Trace.sp_start >= t0 && sp.Trace.sp_start < t1 then
                Some (sp.Trace.sp_end -. sp.Trace.sp_start)
              else None)
            fault_spans
        in
        match ds with
        | [] -> 0.0
        | _ -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
      in
      (* Resolution mix: the close label of every fault span says which
         slow-path step (if any) dominated its resolution. *)
      let mix = Hashtbl.create 8 in
      List.iter
        (fun sp ->
          let k = sp.Trace.sp_resolution in
          Hashtbl.replace mix k (1 + Option.value ~default:0 (Hashtbl.find_opt mix k)))
        fault_spans;
      let mix =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) mix []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let opens, closes = Trace.balance tr in
      (* Fault-pipeline counters: how the handler actually resolved the
         workload's faults (fast vs slow path, hint behaviour, clustered
         pager traffic, burst mappings, and the writeback laundry). *)
      let st = sys.Kernel.kernel.Ktypes.k_kctx.Kctx.stats in
      let counters =
        let wanted =
          [
            "faults"; "fast_faults"; "hits"; "hint_hits"; "hint_misses"; "burst_entered";
            "slow_busy"; "slow_lock"; "slow_pager"; "slow_error"; "data_requests"; "cluster_pages";
            "pageins"; "pageouts"; "data_writes"; "laundered"; "clean_hits"; "cow_steals";
            "cow_batched";
          ]
        in
        List.filter (fun (k, _) -> List.mem k wanted) (Vm_types.stats_to_list st)
      in
      ( [
          ("zero-fill fault (anonymous memory)", phase_mean "zf");
          ("soft fault (resident page, pmap refill)", phase_mean "soft");
          ("copy-on-write fault (page copy + shadow)", phase_mean "cow");
          ("external pager fault (IPC round trip to manager)", phase_mean "ext");
          ("refault during clean (absorbed by laundry queue)", phase_mean "wb");
        ],
        mix,
        (opens, closes),
        counters,
        [
          ("prompt-mgr", Rt.Stats.to_list (Rt.stats prompt_rt));
          ("laundry-mgr", Rt.Stats.to_list (Rt.stats wb_rt));
        ] ))

let run () =
  let rows, mix, (opens, closes), counters, pager_stats = run_body ~rounds:50 in
  let t =
    Table.create ~title:"E10: fault-path cost breakdown (trace spans, Section 5.5)"
      ~columns:[ "fault type"; "simulated us per fault (mean span)" ]
  in
  List.iter (fun (k, v) -> Table.row t [ k; us v ]) rows;
  let m =
    Table.create
      ~title:
        (Printf.sprintf "E10: fault-span resolution mix (%d spans opened, %d closed)" opens
           closes)
      ~columns:[ "resolved via"; "spans" ]
  in
  List.iter (fun (k, v) -> Table.row m [ k; string_of_int v ]) mix;
  let c =
    Table.create
      ~title:
        "E10: fault pipeline counters (fast/slow split, lookup hints, cluster-in)"
      ~columns:[ "counter"; "count" ]
  in
  List.iter (fun (k, v) -> Table.row c [ k; string_of_int v ]) counters;
  (* The uniform per-pager stats block for the managers this experiment
     booted — requests, pages served, writes — through the runtime. *)
  let s =
    Table.create ~title:"E10: per-pager runtime stats"
      ~columns:("manager" :: List.map fst (snd (List.hd pager_stats)))
  in
  List.iter
    (fun (name, stats) -> Table.row s (name :: List.map (fun (_, v) -> string_of_int v) stats))
    pager_stats;
  [ t; m; c; s ]

let json () =
  let rows, mix, (opens, closes), counters, _ = run_body ~rounds:25 in
  let phase_keys =
    List.map2
      (fun key (_, v) -> (key, v))
      [ "zf_us"; "soft_us"; "cow_us"; "ext_us"; "wb_us" ]
      rows
  in
  phase_keys
  @ List.map (fun (k, v) -> ("via_" ^ k, float_of_int v)) mix
  @ [ ("spans_opened", float_of_int opens); ("spans_closed", float_of_int closes) ]
  @ List.map (fun (k, v) -> (k, float_of_int v)) counters

let experiment =
  {
    id = "E10";
    title = "Fault-path breakdown";
    paper_claim =
      "The fault handler resolves validity/protection, page lookup, copy-on-write and hardware \
       validation; only the machine-dependent validation differs per machine. External-pager \
       faults add a message round trip to the data manager (Section 5.5).";
    run;
    quick = (fun () -> ignore (run_body ~rounds:5));
    json = Some json;
  }
