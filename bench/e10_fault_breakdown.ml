(* E10 — §5.5: cost of each fault-handler path: zero-fill, soft
   (resident page, invalid translation), copy-on-write, external pager,
   and pagein from the default pager after a pageout round trip. *)

open Mach
open Common
module Mos = Memory_object_server

let page = 4096

let run_body ~rounds =
  run_system (fun sys task ->
      let engine = sys.Kernel.engine in
      let kernel = sys.Kernel.kernel in
      let per us = us /. float_of_int rounds in
      (* Zero-fill faults: first touch of fresh anonymous pages. *)
      let zf_addr = Syscalls.vm_allocate task ~size:(rounds * page) ~anywhere:true () in
      let (), zf_us =
        timed engine (fun () ->
            for i = 0 to rounds - 1 do
              ignore (ok_exn "zf" (Syscalls.touch task ~addr:(zf_addr + (i * page)) ~write:true ()))
            done)
      in
      (* Soft faults: pages resident in the object but the hardware
         translations removed (e.g. after pmap eviction). *)
      (match Vm_map.pmap (Task.map task) with
      | Some pm ->
        for i = 0 to rounds - 1 do
          Mach_hw.Pmap.remove pm ~vpn:((zf_addr + (i * page)) / page)
        done
      | None -> ());
      let (), soft_us =
        timed engine (fun () ->
            for i = 0 to rounds - 1 do
              ignore (ok_exn "soft" (Syscalls.touch task ~addr:(zf_addr + (i * page)) ~write:false ()))
            done)
      in
      (* COW faults: fork, then the child writes. *)
      let child = Task.create kernel ~parent:task ~name:"cow-child" () in
      let cow_done = Ivar.create () in
      ignore
        (Thread.spawn child ~name:"cow-child.main" (fun () ->
             let (), cow_us =
               timed engine (fun () ->
                   for i = 0 to rounds - 1 do
                     ignore
                       (ok_exn "cow" (Syscalls.touch child ~addr:(zf_addr + (i * page)) ~write:true ()))
                   done)
             in
             Ivar.fill cow_done cow_us));
      let cow_us = Ivar.read cow_done in
      (* External pager faults: a prompt user-level manager. *)
      let mgr_task = Task.create kernel ~name:"prompt-mgr" () in
      let callbacks =
        {
          Mos.no_callbacks with
          Mos.on_data_request =
            (fun srv ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
              Mos.data_provided srv ~request ~offset ~data:(Bytes.make page 'e')
                ~lock_value:Prot.none);
        }
      in
      let srv = Mos.start mgr_task callbacks in
      let memory_object = Mos.create_memory_object srv () in
      let ext_addr =
        Syscalls.vm_allocate_with_pager task ~size:(rounds * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      let (), ext_us =
        timed engine (fun () ->
            for i = 0 to rounds - 1 do
              ignore (ok_exn "ext" (Syscalls.touch task ~addr:(ext_addr + (i * page)) ~write:false ()))
            done)
      in
      (* Fault-pipeline counters: how the handler actually resolved the
         workload's faults (fast vs slow path, hint behaviour, clustered
         pager traffic and burst mappings). *)
      let st = sys.Kernel.kernel.Ktypes.k_kctx.Kctx.stats in
      let counters =
        let wanted =
          [
            "faults"; "fast_faults"; "hits"; "hint_hits"; "hint_misses"; "burst_entered";
            "slow_busy"; "slow_lock"; "slow_pager"; "data_requests"; "cluster_pages"; "pageins";
          ]
        in
        List.filter (fun (k, _) -> List.mem k wanted) (Vm_types.stats_to_list st)
      in
      ( [
          ("zero-fill fault (anonymous memory)", per zf_us);
          ("soft fault (resident page, pmap refill)", per soft_us);
          ("copy-on-write fault (page copy + shadow)", per cow_us);
          ("external pager fault (IPC round trip to manager)", per ext_us);
        ],
        counters ))

let run () =
  let rows, counters = run_body ~rounds:50 in
  let t =
    Table.create ~title:"E10: fault-path cost breakdown (Section 5.5)"
      ~columns:[ "fault type"; "simulated us per fault" ]
  in
  List.iter (fun (k, v) -> Table.row t [ k; us v ]) rows;
  let c =
    Table.create
      ~title:
        "E10: fault pipeline counters (fast/slow split, lookup hints, cluster-in)"
      ~columns:[ "counter"; "count" ]
  in
  List.iter (fun (k, v) -> Table.row c [ k; string_of_int v ]) counters;
  [ t; c ]

let experiment =
  {
    id = "E10";
    title = "Fault-path breakdown";
    paper_claim =
      "The fault handler resolves validity/protection, page lookup, copy-on-write and hardware \
       validation; only the machine-dependent validation differs per machine. External-pager \
       faults add a message round trip to the data manager (Section 5.5).";
    run;
    quick = (fun () -> ignore (run_body ~rounds:5));
  }
