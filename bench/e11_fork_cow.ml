(* E11 — §3.3: copy-on-write inheritance. Fork cost is (nearly)
   independent of address-space size; the price is paid per page, only
   for pages the child actually writes. Compared against what an eager
   copying fork of the same space would cost. *)

open Mach
open Common

let page = 4096

let run_point sys task ~pages ~write_fraction =
  let engine = sys.Kernel.engine in
  let kernel = sys.Kernel.kernel in
  let addr = Syscalls.vm_allocate task ~size:(pages * page) ~anywhere:true () in
  ignore (ok_exn "init" (Syscalls.write_bytes task ~addr (Bytes.make (pages * page) 'p') ()));
  let child = ref None in
  let (), fork_us =
    timed engine (fun () -> child := Some (Task.create kernel ~parent:task ~name:"forked" ()))
  in
  let child = Option.get !child in
  let to_write = max 1 (int_of_float (float_of_int pages *. write_fraction)) in
  let finished = Ivar.create () in
  ignore
    (Thread.spawn child ~name:"forked.main" (fun () ->
         let (), write_us =
           timed engine (fun () ->
               for i = 0 to to_write - 1 do
                 let p = i * pages / to_write in
                 ignore
                   (ok_exn "cw" (Syscalls.touch child ~addr:(addr + (p * page)) ~write:true ()))
               done)
         in
         Ivar.fill finished write_us));
  let write_us = Ivar.read finished in
  let stats = Kernel.stats kernel in
  let cow = stats.Vm_types.s_cow_faults in
  Task.terminate child;
  Syscalls.vm_deallocate task ~addr ~size:(pages * page);
  (fork_us, write_us, cow)

let run_body ~pages ~fractions =
  run_system (fun sys task ->
      let last_cow = ref 0 in
      List.map
        (fun frac ->
          let fork_us, write_us, cow_total = run_point sys task ~pages ~write_fraction:frac in
          let cow = cow_total - !last_cow in
          last_cow := cow_total;
          (frac, fork_us, write_us, cow))
        fractions)

let run () =
  let pages = 256 in
  let eager_estimate =
    float_of_int pages *. Machine.uniprocessor.Machine.page_copy_us /. 1000.0
  in
  let rows = run_body ~pages ~fractions:[ 0.0; 0.1; 0.25; 0.5; 1.0 ] in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E11: fork of a %d-page (1 MB) space; an eager-copy fork would cost ~%.1f ms up front \
            (Section 3.3)"
           pages eager_estimate)
      ~columns:
        [ "child writes"; "fork us"; "child write-path ms"; "copy-on-write faults" ]
  in
  List.iter
    (fun (frac, fork_us, write_us, cow) ->
      Table.row t
        [
          Printf.sprintf "%.0f%%" (frac *. 100.0);
          us fork_us;
          Printf.sprintf "%.2f" (write_us /. 1000.0);
          string_of_int cow;
        ])
    rows;
  [ t ]

let experiment =
  {
    id = "E11";
    title = "Fork copy-on-write";
    paper_claim =
      "Copy-on-write sharing through inheritance makes virtual memory copying at task creation \
       cheap: the fork itself costs microseconds regardless of size; pages are copied only when \
       the child writes them (Section 3.3).";
    run;
    quick = (fun () -> ignore (run_body ~pages:16 ~fractions:[ 0.5 ]));
    json = None;
  }
