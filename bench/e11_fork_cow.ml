(* E11 — §3.3: copy-on-write inheritance under the copy engine. Three
   claims are measured:

   1. Fork cost is independent of address-space size: the freeze of the
      parent's chain is one batched protect per entry (Pmap.protect_range),
      not one map op per resident page.
   2. Fork/exit generations do not accrete shadow-chain depth: the
      child's exit triggers a collapse from the surviving shadower, and
      the parent's next write STEALS sole-user pages up the chain
      instead of copying them.
   3. Steal-vs-copy accounting: pages whose backing became exclusive
      move for free (rename), only genuinely shared pages pay the
      400 us copy. *)

open Mach
open Common

let page = 4096

(* Max shadow-chain depth under any of the task's direct entries. *)
let chain_depth_of task =
  List.fold_left
    (fun acc e ->
      match e.Vm_map.backing with
      | Vm_map.Direct d -> max acc (Vm_object.chain_depth d.Vm_map.d_obj)
      | Vm_map.Shared _ -> acc)
    0
    (Vm_map.entries (Task.map task))

(* Run [f] to completion on a fresh thread of [child]. *)
let in_child child name f =
  let finished = Ivar.create () in
  ignore
    (Thread.spawn child ~name (fun () ->
         f ();
         Ivar.fill finished ()));
  Ivar.read finished

(* ---- 1. fork cost vs region size ---------------------------------- *)

(* Touch every page so the fork freezes a fully resident chain — the
   worst case for a per-page write-protect sweep. *)
let fork_cost sys task ~pages =
  let engine = sys.Kernel.engine in
  let kernel = sys.Kernel.kernel in
  let addr = Syscalls.vm_allocate task ~size:(pages * page) ~anywhere:true () in
  for i = 0 to pages - 1 do
    ignore (ok_exn "warm" (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ()))
  done;
  let child = ref None in
  let (), fork_us =
    timed engine (fun () -> child := Some (Task.create kernel ~parent:task ~name:"forked" ()))
  in
  Task.terminate (Option.get !child);
  Syscalls.vm_deallocate task ~addr ~size:(pages * page);
  fork_us

(* ---- 2./3. generational fork/exit --------------------------------- *)

(* Two regions, two mechanisms. In the EAGER region the parent dirties
   a few pages while the child lives: the backing is shared, so these
   copy and leave a live parent shadow — when the child exits, the
   deallocate-path collapse fires from that survivor and flattens the
   chain with renames. In the LAZY region the parent writes only after
   the exit: the first fault finds the whole backing chain exclusive
   and STEALS its window up the chain (the collapse renames the rest);
   nothing is copied. The child dirties a quarter of both regions each
   generation (genuinely shared pages — those must copy). *)
type gen_row = {
  g_gen : int;
  g_depth_live : int;  (** parent chain depth while the child lives *)
  g_depth_exit : int;  (** after child exit + one parent write *)
  g_steals : int;
  g_copies : int;
}

let generations sys task ~pages ~gens =
  let kernel = sys.Kernel.kernel in
  let stats = Kernel.stats kernel in
  let eager = Syscalls.vm_allocate task ~size:(pages * page) ~anywhere:true () in
  let lazy_ = Syscalls.vm_allocate task ~size:(pages * page) ~anywhere:true () in
  List.iter
    (fun addr ->
      for i = 0 to pages - 1 do
        ignore (ok_exn "init" (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ()))
      done)
    [ eager; lazy_ ];
  let spread_writes tsk addr n =
    for i = 0 to n - 1 do
      let p = i * pages / n in
      ignore (ok_exn "w" (Syscalls.touch tsk ~addr:(addr + (p * page)) ~write:true ()))
    done
  in
  let rows = ref [] in
  for g = 1 to gens do
    let steals0 = stats.Vm_types.s_cow_steals in
    let resolved0 = stats.Vm_types.s_cow_faults + stats.Vm_types.s_cow_batched in
    let child = Task.create kernel ~parent:task ~name:(Printf.sprintf "gen%d" g) () in
    spread_writes task eager 4;
    let depth_live = chain_depth_of task in
    in_child child (Printf.sprintf "gen%d.main" g) (fun () ->
        for i = 0 to (pages / 4) - 1 do
          ignore (ok_exn "cw" (Syscalls.touch child ~addr:(eager + (i * page)) ~write:true ()));
          ignore (ok_exn "cw" (Syscalls.touch child ~addr:(lazy_ + (i * page)) ~write:true ()))
        done);
    Task.terminate child;
    spread_writes task lazy_ 4;
    let steals = stats.Vm_types.s_cow_steals - steals0 in
    let resolved = stats.Vm_types.s_cow_faults + stats.Vm_types.s_cow_batched - resolved0 in
    rows :=
      {
        g_gen = g;
        g_depth_live = depth_live;
        g_depth_exit = chain_depth_of task;
        g_steals = steals;
        g_copies = resolved - steals;
      }
      :: !rows
  done;
  List.iter (fun addr -> Syscalls.vm_deallocate task ~addr ~size:(pages * page)) [ eager; lazy_ ];
  List.rev !rows

let run_body ~sizes ~pages ~gens =
  run_system (fun sys task ->
      let forks = List.map (fun pages -> (pages, fork_cost sys task ~pages)) sizes in
      let rows = generations sys task ~pages ~gens in
      let stats = Kernel.stats sys.Kernel.kernel in
      let totals =
        ( stats.Vm_types.s_cow_steals,
          stats.Vm_types.s_cow_faults + stats.Vm_types.s_cow_batched,
          stats.Vm_types.s_collapses,
          stats.Vm_types.s_chain_depth_peak )
      in
      (forks, rows, totals))

let sizes = [ 64; 256; 1024; 4096 ]

let run () =
  let forks, rows, (steals, resolved, collapses, walk_peak) =
    run_body ~sizes ~pages:64 ~gens:8
  in
  let f =
    Table.create
      ~title:
        "E11: fork cost vs region size (fully resident; freeze is one batched protect per entry, \
         Section 3.3)"
      ~columns:[ "region"; "fork us" ]
  in
  List.iter
    (fun (pages, fork_us) ->
      Table.row f [ Printf.sprintf "%d pages (%d KB)" pages (pages * page / 1024); us fork_us ])
    forks;
  let g =
    Table.create
      ~title:
        "E11: fork/exit generations over a 64-page region (the deallocate-path collapse and \
         page stealing keep the chain flat)"
      ~columns:
        [ "generation"; "depth (child live)"; "depth (after exit)"; "pages stolen"; "pages copied" ]
  in
  List.iter
    (fun r ->
      Table.row g
        [
          string_of_int r.g_gen;
          string_of_int r.g_depth_live;
          string_of_int r.g_depth_exit;
          string_of_int r.g_steals;
          string_of_int r.g_copies;
        ])
    rows;
  let s =
    Table.create ~title:"E11: steal-vs-copy accounting (whole run)" ~columns:[ "counter"; "value" ]
  in
  Table.row s [ "COW pages resolved"; string_of_int resolved ];
  Table.row s [ "  stolen (renamed, no copy)"; string_of_int steals ];
  Table.row s [ "  copied (400 us each)"; string_of_int (resolved - steals) ];
  Table.row s
    [ "steal rate"; Printf.sprintf "%.3f" (float_of_int steals /. float_of_int (max 1 resolved)) ];
  Table.row s [ "chain collapses"; string_of_int collapses ];
  Table.row s [ "deepest chain walked by a fault"; string_of_int walk_peak ];
  [ f; g; s ]

let json () =
  let forks, rows, (steals, resolved, collapses, walk_peak) =
    run_body ~sizes ~pages:64 ~gens:8
  in
  let fork_times = List.map snd forks in
  let fmin = List.fold_left min (List.hd fork_times) fork_times in
  let fmax = List.fold_left max (List.hd fork_times) fork_times in
  let depth_peak = List.fold_left (fun acc r -> max acc r.g_depth_exit) 0 rows in
  List.map (fun (pages, fork_us) -> (Printf.sprintf "fork_us_%d" pages, fork_us)) forks
  @ [
      ("fork_flatness", fmax /. fmin);
      ("generations", float_of_int (List.length rows));
      ("gen_depth_peak", float_of_int depth_peak);
      ("chain_depth_peak", float_of_int walk_peak);
      ("cow_pages_resolved", float_of_int resolved);
      ("cow_steals", float_of_int steals);
      ("cow_copies", float_of_int (resolved - steals));
      ("steal_rate", float_of_int steals /. float_of_int (max 1 resolved));
      ("collapses", float_of_int collapses);
    ]

let experiment =
  {
    id = "E11";
    title = "Fork copy-on-write";
    paper_claim =
      "Copy-on-write sharing through inheritance makes virtual memory copying at task creation \
       cheap: the fork itself costs microseconds regardless of size; pages are copied only when \
       actually written — and not even then, when the snapshot is the page's only remaining user \
       (Section 3.3).";
    run;
    quick = (fun () -> ignore (run_body ~sizes:[ 16 ] ~pages:16 ~gens:2));
    json = Some json;
  }
