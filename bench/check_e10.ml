(* E10 regression gate: the fault-path breakdown is now a trace
   reduction, so this gate checks both the observability invariants —
   every fault opened a span and every span closed — and the cost
   ordering/level of the per-path numbers against the committed
   baseline (BENCH_e10.json).

   Usage: check_e10 BASELINE CURRENT *)

open Check_common

(* Cost ceilings tolerate this much inflation over the recorded
   baseline before the gate trips (deterministic runs; slack covers
   intentional cost-model retuning only). *)
let baseline_fraction = 0.8

(* The json producer drives 25 rounds per phase. *)
let rounds = 25.0

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let c key = get current current_path key in
    let b key = get baseline baseline_path key in
    let opens = c "spans_opened" in
    let closes = c "spans_closed" in
    let faults = c "faults" in
    if !failures = 0 then begin
      (* Span ledger: balanced, and one span per fault. *)
      check_ge "spans_opened" opens 1.0;
      check_eq "spans_opened = spans_closed" opens closes;
      check_eq "faults all spanned" faults opens;
      (* Resolution mix: each driven path actually resolved that way.
         COW faults are clustered (up to 8 pages per fault), so the
         rounds of child writes resolve in at least rounds/8 spans. *)
      check_ge "via_zero_fill" (c "via_zero_fill") rounds;
      check_ge "via_cow_copy" (c "via_cow_copy") (rounds /. 8.0);
      check_ge "cow pages all resolved (faults + batched)"
        (c "via_cow_copy" +. c "cow_batched")
        rounds;
      check_ge "via_pager" (c "via_pager") rounds;
      check_ge "via_fast (soft refaults)" (c "via_fast") rounds;
      check_ge "via_clean_hit (laundry absorption)" (c "via_clean_hit") 1.0;
      (* Cost ordering: an external-pager fault pays an IPC round trip
         on top of what a zero-fill or soft fault pays. *)
      check_ge "ext_us > zf_us" (c "ext_us" -. c "zf_us") 0.001;
      check_ge "ext_us > soft_us" (c "ext_us" -. c "soft_us") 0.001;
      (* Level vs baseline: per-path costs must not inflate. *)
      List.iter
        (fun key -> check_le (key ^ " vs baseline") (c key) (b key /. baseline_fraction))
        [ "zf_us"; "soft_us"; "cow_us"; "ext_us"; "wb_us" ]
    end
  | _ -> usage "check_e10");
  finish "E10 fault breakdown within recorded floors"
