(* E7 — §8.2: task migration strategies. Copy-on-reference makes the
   freeze/restart latency independent of address-space size and moves
   only referenced pages; eager copy pays for everything up front;
   pre-paging trades extra transfer for fewer demand faults. *)

open Mach
open Common
module Migrator = Mach_pagers.Migrator

let page = 4096

let strategy_name = function
  | Migrator.Eager_copy -> "eager copy"
  | Migrator.Copy_on_reference -> "copy-on-reference"
  | Migrator.Pre_paging n -> Printf.sprintf "pre-paging(%d)" n

let run_point ~pages ~touched_fraction strategy =
  run_cluster ~hosts:2 (fun cluster ->
      let engine = cluster.Kernel.c_engine in
      let src = Task.create cluster.Kernel.c_kernels.(0) ~name:"job" () in
      let ready = Ivar.create () in
      ignore
        (Thread.spawn src ~name:"job.init" (fun () ->
             let addr = Syscalls.vm_allocate src ~size:(pages * page) ~anywhere:true () in
             for i = 0 to pages - 1 do
               ignore
                 (ok_exn "init"
                    (Syscalls.write_bytes src ~addr:(addr + (i * page))
                       (Bytes.make 64 (Char.chr (65 + (i mod 26))))
                       ()))
             done;
             Ivar.fill ready addr));
      let addr = Ivar.read ready in
      let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
      let t0 = Engine.now engine in
      let mg = Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1) strategy in
      let migrate_us = Engine.now engine -. t0 in
      let dst = mg.Migrator.mg_task in
      (* The migrated task resumes and touches a fraction of its pages. *)
      let touched = max 1 (int_of_float (float_of_int pages *. touched_fraction)) in
      let finished = Ivar.create () in
      ignore
        (Thread.spawn dst ~name:"job-migrated.main" (fun () ->
             let t1 = Engine.now engine in
             for i = 0 to touched - 1 do
               (* Spread references across the space. *)
               let p = i * pages / touched in
               ignore
                 (ok_exn "touch"
                    (Syscalls.read_bytes dst ~addr:(addr + (p * page)) ~len:64
                       ~policy:(Fault.Abort_after 30_000_000.0) ()))
             done;
             Ivar.fill finished (Engine.now engine -. t1)));
      let run_us = Ivar.read finished in
      (migrate_us, run_us, Migrator.pages_transferred mgr))

let run_body ~pages ~fractions =
  List.concat_map
    (fun frac ->
      List.map
        (fun strategy ->
          let migrate_us, run_us, shipped = run_point ~pages ~touched_fraction:frac strategy in
          (frac, strategy, migrate_us, run_us, shipped))
        [ Migrator.Eager_copy; Migrator.Copy_on_reference; Migrator.Pre_paging 4 ])
    fractions

let run () =
  let pages = 128 in
  let rows = run_body ~pages ~fractions:[ 0.1; 0.5; 1.0 ] in
  let t =
    Table.create
      ~title:(Printf.sprintf "E7: migrating a %d-page task between hosts (Section 8.2)" pages)
      ~columns:
        [ "touched"; "strategy"; "freeze-to-restart ms"; "post-restart run ms"; "total ms";
          "pages shipped" ]
  in
  List.iter
    (fun (frac, strategy, migrate_us, run_us, shipped) ->
      Table.row t
        [
          Printf.sprintf "%.0f%%" (frac *. 100.0);
          strategy_name strategy;
          Printf.sprintf "%.1f" (migrate_us /. 1000.0);
          Printf.sprintf "%.1f" (run_us /. 1000.0);
          Printf.sprintf "%.1f" ((migrate_us +. run_us) /. 1000.0);
          string_of_int shipped;
        ])
    rows;
  [ t ]

let experiment =
  {
    id = "E7";
    title = "Task migration";
    paper_claim =
      "Copy-on-reference migration restarts the task almost immediately and ships only the \
       pages it references; eager copy pays the whole address space before restart; pre-paging \
       helps tasks with predictable access patterns (Section 8.2, after Zayas).";
    run;
    quick = (fun () -> ignore (run_body ~pages:16 ~fractions:[ 0.5 ]));
    json = None;
  }
