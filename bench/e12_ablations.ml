(* E12 — ablations of the design choices DESIGN.md calls out:

   A1. Shadow-chain collapse. Generations of fork → child-writes →
       parent-continues grow a shadow chain per entry; with collapse the
       chain stays flat and fault cost constant, without it both grow
       linearly.

   A2. pager_cache (object caching). The §9 file-cache win depends on
       the manager granting the kernel permission to keep file pages
       after unmapping; with it off, every re-read goes to disk.

   A3. The reserved pool (§6.2.3). With reserved frames, pageout always
       has headroom; with none, heavy dirtying risks deadlock — we
       measure how close to empty memory gets. *)

open Mach
open Common
module Minimal_fs = Mach_pagers.Minimal_fs

let page = 4096

(* --- A1: shadow chains ---------------------------------------------------- *)

let chain_depth_of task =
  List.fold_left
    (fun acc e ->
      match e.Vm_map.backing with
      | Vm_map.Direct d -> max acc (Vm_object.chain_depth d.Vm_map.d_obj)
      | Vm_map.Shared _ -> acc)
    0
    (Vm_map.entries (Task.map task))

let run_chain ~generations ~collapse =
  run_system (fun sys task ->
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      kctx.Kctx.enable_collapse <- collapse;
      let addr = Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () in
      ignore (ok_exn "seed" (Syscalls.write_bytes task ~addr (Bytes.make 8  'g') ()));
      (* Each generation: fork a child that writes one page and exits;
         then the parent writes, accumulating shadows. *)
      for gen = 1 to generations do
        let child = Task.create sys.Kernel.kernel ~parent:task ~name:(Printf.sprintf "g%d" gen) () in
        let fin = Ivar.create () in
        ignore
          (Thread.spawn child ~name:(Printf.sprintf "g%d.main" gen) (fun () ->
               ignore (Syscalls.write_bytes child ~addr (Bytes.make 8 (Char.chr (64 + (gen mod 60)))) ());
               Ivar.fill fin ()));
        Ivar.read fin;
        Task.terminate child;
        ignore (ok_exn "parent write" (Syscalls.write_bytes task ~addr (Bytes.make 8 'p') ()))
      done;
      let depth = chain_depth_of task in
      (* Cost of a fresh read fault at the end of the chain: invalidate
         and refault. *)
      (match Vm_map.pmap (Task.map task) with
      | Some pm -> Mach_hw.Pmap.remove pm ~vpn:(addr / page)
      | None -> ());
      let (), fault_us =
        timed sys.Kernel.engine (fun () -> ignore (Syscalls.touch task ~addr ~write:false ()))
      in
      let collapses = (Kernel.stats sys.Kernel.kernel).Vm_types.s_collapses in
      (depth, fault_us, collapses))

(* --- A2: pager_cache -------------------------------------------------------- *)

let run_cache_ablation ~enable_cache =
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"abl-disk" ~blocks:2048 ~block_size:page () in
  let out = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~enable_cache ~disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"reader" () in
      ignore
        (Thread.spawn client ~name:"reader.main" (fun () ->
             let server = Minimal_fs.service_port fsrv in
             let data = Bytes.make (16 * page) 'c' in
             (match Minimal_fs.Client.write_file client ~server "f" data with
             | Ok () -> ()
             | Error _ -> failwith "write");
             Disk.reset_stats disk;
             (* Map the object directly five times, unmapping in
                between: with pager_cache the kernel keeps the pages;
                without, the object is terminated on each unmap. *)
             for _ = 1 to 5 do
               match Minimal_fs.Client.map_file client ~server "f" with
               | Ok (addr, size) ->
                 ignore (Syscalls.read_bytes client ~addr ~len:size ());
                 Syscalls.vm_deallocate client ~addr ~size
               | Error _ -> failwith "map"
             done;
             out := Some (Disk.reads disk))));
  Engine.run sys.Kernel.engine;
  match !out with Some r -> r | None -> failwith "A2 deadlocked"

(* --- A3: reserved pool ------------------------------------------------------- *)

let run_reserve_ablation ~reserved_frames =
  let config =
    { Kernel.default_config with Kernel.phys_frames = 96; reserved_frames = Some reserved_frames }
  in
  run_system ~config (fun sys task ->
      let npages = 160 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      let min_free = ref max_int in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 8 'r') ());
        min_free := min !min_free (Kernel.free_frames sys.Kernel.kernel)
      done;
      !min_free)

let run_body ~quick =
  let gens = if quick then 4 else 24 in
  let with_c = run_chain ~generations:gens ~collapse:true in
  let without_c = run_chain ~generations:gens ~collapse:false in
  let cache_on = if quick then 0 else run_cache_ablation ~enable_cache:true in
  let cache_off = if quick then 1 else run_cache_ablation ~enable_cache:false in
  let reserve_some = if quick then 2 else run_reserve_ablation ~reserved_frames:4 in
  let reserve_none = if quick then 0 else run_reserve_ablation ~reserved_frames:0 in
  (gens, with_c, without_c, cache_on, cache_off, reserve_some, reserve_none)

let run () =
  let gens, (d1, f1, c1), (d2, f2, c2), cache_on, cache_off, reserve_some, reserve_none =
    run_body ~quick:false
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "E12/A1: shadow chains after %d fork generations" gens)
      ~columns:[ "configuration"; "max chain depth"; "cold fault us"; "collapses" ]
  in
  Table.row t [ "collapse enabled (Mach)"; string_of_int d1; us f1; string_of_int c1 ];
  Table.row t [ "collapse disabled"; string_of_int d2; us f2; string_of_int c2 ];
  let t2 =
    Table.create ~title:"E12/A2: pager_cache permission (5 re-reads of a 64 KB file)"
      ~columns:[ "configuration"; "disk reads" ]
  in
  Table.row t2 [ "pager_cache true (Mach fs server)"; string_of_int cache_on ];
  Table.row t2 [ "pager_cache false"; string_of_int cache_off ];
  let t3 =
    Table.create ~title:"E12/A3: reserved pool under heavy dirtying (96-frame machine)"
      ~columns:[ "configuration"; "minimum free frames seen" ]
  in
  Table.row t3 [ "4 reserved frames"; string_of_int reserve_some ];
  Table.row t3 [ "no reserve"; string_of_int reserve_none ];
  [ t; t2; t3 ]

let experiment =
  {
    id = "E12";
    title = "Design ablations";
    paper_claim =
      "Ablations of load-bearing design choices: shadow-chain collapse keeps COW chains flat; \
       pager_cache is what turns physical memory into a file cache (Section 9); the reserved \
       pool keeps the pageout path alive under pressure (Section 6.2.3).";
    run;
    quick = (fun () -> ignore (run_body ~quick:true));
    json = None;
  }
