(* @trace-smoke gate: drive a fault storm — anonymous zero-fill, soft
   refaults after pmap eviction, and external-pager faults — twice:

   - traced: the span ledger must balance (every fault opened exactly
     one span and closed it; nothing left open), the fault spans must
     equal the fault counter, and the causal id must have crossed into
     the IPC layer (send/recv points attributed to fault spans);

   - untraced: the buffer must stay empty AND the run must be
     simulated-time identical to the traced run — tracing charges no
     simulated time when on and compiles to a branch when off, so
     enabling it can never perturb an experiment's numbers. *)

open Mach
module Mos = Memory_object_server
module Rt = Pager_runtime

let page = 4096
let rounds = 40
let failures = ref 0

let check what ok =
  if ok then Printf.printf "ok   %s\n" what
  else begin
    Printf.eprintf "FAIL %s\n" what;
    incr failures
  end

let run_storm ~traced =
  let sys = Kernel.create_system () in
  let kernel = sys.Kernel.kernel in
  Trace.set_enabled (Kernel.trace kernel) traced;
  let ok = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create kernel ~name:"storm" () in
      ignore
        (Thread.spawn task ~name:"storm.main" (fun () ->
             (* Zero-fill, then soft refaults of the same range. *)
             let addr = Syscalls.vm_allocate task ~size:(rounds * page) ~anywhere:true () in
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ())
             done;
             (match Vm_map.pmap (Task.map task) with
             | Some pm ->
               for i = 0 to rounds - 1 do
                 Mach_hw.Pmap.remove pm ~vpn:((addr + (i * page)) / page)
               done
             | None -> ());
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:false ())
             done;
             (* External-pager faults: each one rides IPC to a prompt
                user-level manager and back. *)
             let mgr = Task.create kernel ~name:"storm-mgr" () in
             let policy =
               {
                 Rt.default_policy with
                 Rt.p_read =
                   (fun _ _ ~request:_ ~page:_ ~desired_access:_ ->
                     Rt.Data (Bytes.make page 's'));
               }
             in
             let rt, srv = Rt.serve mgr policy in
             let memory_object = Mos.create_memory_object srv () in
             ignore (Rt.register rt ~memory_object ());
             let ext =
               Syscalls.vm_allocate_with_pager task ~size:(rounds * page) ~anywhere:true
                 ~memory_object ~offset:0 ()
             in
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(ext + (i * page)) ~write:false ())
             done;
             ok := true)));
  Engine.run sys.Kernel.engine;
  check (Printf.sprintf "storm completed (traced=%b)" traced) !ok;
  (Engine.now sys.Kernel.engine, (Kernel.stats kernel).Vm_types.s_faults, Kernel.trace kernel)

let () =
  let t_on, faults_on, tr = run_storm ~traced:true in
  let opens, closes = Trace.balance tr in
  check "spans opened" (opens > 0);
  check (Printf.sprintf "spans balanced (%d opened, %d closed)" opens closes)
    (opens = closes);
  check "no unclosed spans" (Trace.unclosed tr = 0);
  let fault_spans =
    List.filter
      (fun sp -> sp.Trace.sp_sub = "vm" && sp.Trace.sp_label = "fault")
      (Trace.spans tr)
  in
  check
    (Printf.sprintf "one span per fault (%d spans, %d faults)" (List.length fault_spans)
       faults_on)
    (List.length fault_spans = faults_on && faults_on > 0);
  let ipc_under_fault =
    List.exists
      (fun ev -> ev.Trace.ev_sub = "ipc" && ev.Trace.ev_span >= 0)
      (Trace.events tr)
  in
  check "fault span crossed into the IPC layer" ipc_under_fault;
  let t_off, faults_off, tr_off = run_storm ~traced:false in
  check "disabled trace records nothing" (Trace.events tr_off = []);
  check
    (Printf.sprintf "identical simulated time traced vs untraced (%.1f vs %.1f us)" t_on
       t_off)
    (t_on = t_off);
  check "identical fault counts traced vs untraced" (faults_on = faults_off);
  if !failures > 0 then exit 1;
  print_endline "trace smoke: balanced spans, zero overhead when disabled"
