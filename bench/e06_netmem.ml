(* E6 — §4.2: consistent network shared memory. Efficiency "depends on
   the extent to which [algorithms] exhibit read/write locality":
   raising the write ratio multiplies invalidations and slows every
   access (the Li & Hudak curve). *)

open Mach
open Common
module Netmem = Mach_pagers.Netmem
module Access_patterns = Mach_workloads.Access_patterns

let page = 4096

let run_point ?(hosts = 2) ~pages ~ops_per_client ~write_ratio () =
  run_cluster ~hosts (fun cluster ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(pages * page) in
      let engine = cluster.Kernel.c_engine in
      let run_client host seed finished =
        let task =
          Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "sm-%d" host) ()
        in
        ignore
          (Thread.spawn task ~name:(Printf.sprintf "sm-%d.main" host) (fun () ->
               let addr =
                 Syscalls.vm_allocate_with_pager task ~size:(pages * page) ~anywhere:true
                   ~memory_object:region ~offset:0 ()
               in
               let rng = Rng.create seed in
               let trace =
                 Access_patterns.working_set ~pages ~ops:ops_per_client ~write_ratio
                   ~hot_fraction:0.25 ~hot_bias:0.8 rng
               in
               List.iter
                 (fun { Access_patterns.ap_page; ap_write } ->
                   match
                     Syscalls.touch task
                       ~addr:(addr + (ap_page * page) + Rng.int rng page)
                       ~write:ap_write
                       ~policy:(Fault.Abort_after 10_000_000.0) ()
                   with
                   | Ok () -> ()
                   | Error _ -> failwith "E6 access failed")
                 trace;
               Ivar.fill finished ()))
      in
      let fins = List.init hosts (fun _ -> Ivar.create ()) in
      let t0 = Engine.now engine in
      List.iteri (fun h fin -> run_client h ((11 * h) + 11) fin) fins;
      List.iter Ivar.read fins;
      let elapsed = Engine.now engine -. t0 in
      (elapsed, Netmem.invalidations nm, Netmem.grants nm))

let ratios = [ 0.0; 0.02; 0.1; 0.3; 0.5 ]

let run_body ~pages ~ops_per_client ~ratios =
  List.map
    (fun wr ->
      let elapsed, inv, grants = run_point ~pages ~ops_per_client ~write_ratio:wr () in
      (wr, elapsed, inv, grants))
    ratios

let run_hosts_sweep ~pages ~ops_per_client =
  List.map
    (fun hosts ->
      let elapsed, inv, grants =
        run_point ~hosts ~pages ~ops_per_client ~write_ratio:0.1 ()
      in
      (hosts, elapsed, inv, grants))
    [ 2; 3; 4 ]

let run () =
  let ops_per_client = 400 in
  let rows = run_body ~pages:32 ~ops_per_client ~ratios in
  let t =
    Table.create
      ~title:"E6: network shared memory, 2 hosts, 32 pages, hot/cold working set (Section 4.2)"
      ~columns:
        [ "write ratio"; "avg access us"; "invalidations"; "write grants"; "inval per 100 ops" ]
  in
  List.iter
    (fun (wr, elapsed, inv, grants) ->
      let total_ops = float_of_int (2 * ops_per_client) in
      Table.row t
        [
          Printf.sprintf "%.2f" wr;
          us (elapsed /. total_ops);
          string_of_int inv;
          string_of_int grants;
          Printf.sprintf "%.1f" (float_of_int inv /. total_ops *. 100.0);
        ])
    rows;
  (* More sharers: every write has more copies to invalidate. *)
  let t2 =
    Table.create
      ~title:"E6b: same workload at write ratio 0.10, varying the number of sharing hosts"
      ~columns:[ "hosts"; "avg access us"; "invalidations"; "inval per 100 ops" ]
  in
  List.iter
    (fun (hosts, elapsed, inv, _grants) ->
      let total_ops = float_of_int (hosts * ops_per_client) in
      Table.row t2
        [
          string_of_int hosts;
          us (elapsed /. total_ops);
          string_of_int inv;
          Printf.sprintf "%.1f" (float_of_int inv /. total_ops *. 100.0);
        ])
    (run_hosts_sweep ~pages:32 ~ops_per_client);
  [ t; t2 ]

let experiment =
  {
    id = "E6";
    title = "Network shared memory coherence";
    paper_claim =
      "Multiple readers share pages freely; a write invalidates all other cached copies before \
       being granted, so performance degrades as the write ratio rises — efficient exactly when \
       algorithms exhibit read/write locality (s4.2, after Li).";
    run;
    quick = (fun () -> ignore (run_body ~pages:8 ~ops_per_client:40 ~ratios:[ 0.0; 0.3 ]));
    json = None;
  }
