(* E5 — §7: the UMA / NUMA / NORMA taxonomy. The paper's calibration
   points: remote communication is "considerably less than one
   microsecond (on average) for a MultiMax", "five microseconds for a
   Butterfly" (roughly 10x its local access), and "hundreds of
   microseconds" on the HyperCube, which has no remote memory access at
   all. *)

open Mach
open Common

let machines = [ Machine.multimax; Machine.butterfly; Machine.hypercube ]

let msg_exchange_us params =
  (* Cross-node exchange: a one-word message. NORMA machines pay the
     network; shared-memory machines synchronise through memory. *)
  match params.Machine.mp_class with
  | Machine.Norma -> params.Machine.net_latency_us +. (8.0 *. params.Machine.net_us_per_byte)
  | Machine.Uma | Machine.Numa -> (
    match params.Machine.remote_access_us with
    | Some r -> r
    | None -> assert false)

let run_body () =
  List.map
    (fun p ->
      let local = Machine.access_us p ~remote:false ~words:1 in
      let remote =
        match p.Machine.remote_access_us with
        | Some _ -> Some (Machine.access_us p ~remote:true ~words:1)
        | None -> None
      in
      (p, local, remote, msg_exchange_us p))
    machines

let run () =
  let rows = run_body () in
  let t =
    Table.create ~title:"E5: multiprocessor classes (Section 7)"
      ~columns:
        [ "class"; "machine"; "cpus"; "local word us"; "remote word us"; "remote/local";
          "cross-node exchange us" ]
  in
  List.iter
    (fun (p, local, remote, msg) ->
      Table.row t
        [
          Machine.class_to_string p.Machine.mp_class;
          p.Machine.model;
          string_of_int p.Machine.cpus;
          Printf.sprintf "%.2f" local;
          (match remote with Some r -> Printf.sprintf "%.2f" r | None -> "no remote access");
          (match remote with Some r -> Printf.sprintf "%.0fx" (r /. local) | None -> "-");
          Printf.sprintf "%.0f" msg;
        ])
    rows;
  (* Also demonstrate the claim end-to-end: actual message latency on a
     simulated NORMA cluster. *)
  let measured =
    run_cluster ~hosts:2
      ~config:{ Kernel.default_config with Kernel.params = Machine.hypercube }
      (fun cluster ->
        let a = Task.create cluster.Kernel.c_kernels.(0) ~name:"node-a" () in
        let b = Task.create cluster.Kernel.c_kernels.(1) ~name:"node-b" () in
        let svc = Syscalls.port_allocate b ~backlog:8 () in
        let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space b) svc in
        let done_ = Ivar.create () in
        ignore
          (Thread.spawn b ~name:"node-b.recv" (fun () ->
               ignore (Syscalls.msg_receive b ~from:(`Port svc) ());
               Ivar.fill done_ (Engine.now cluster.Kernel.c_engine)));
        let finished = Ivar.create () in
        ignore
          (Thread.spawn a ~name:"node-a.send" (fun () ->
               let t0 = Engine.now cluster.Kernel.c_engine in
               (match
                  Syscalls.msg_send a (Message.make ~dest:svc_port [ Message.Data (Bytes.create 8) ])
                with
               | Ok () -> ()
               | Error _ -> failwith "E5 send failed");
               let t_recv = Ivar.read done_ in
               Ivar.fill finished (t_recv -. t0)));
        Ivar.read finished)
  in
  let t2 =
    Table.create ~title:"E5b: measured NORMA message latency (simulated HyperCube cluster)"
      ~columns:[ "path"; "simulated us" ]
  in
  Table.row t2 [ "msg_send -> remote msg_receive (8-byte payload)"; us measured ];
  [ t; t2 ]

let experiment =
  {
    id = "E5";
    title = "Multiprocessor classes";
    paper_claim =
      "UMA remote access averages well under a microsecond; NUMA (Butterfly) remote access is \
       ~5 us, roughly 10x local; NORMA (HyperCube) machines have no remote memory access and \
       communicate in hundreds of microseconds.";
    run;
    quick = (fun () -> ignore (run_body ()));
    json = None;
  }
