(* E5 — §7: multiprocessor scaling through the processor scheduler.

   The paper's §7 taxonomy (UMA / NUMA / NORMA) is reproduced as a
   calibration table, and then exercised: three parallel workloads —
   a zero-fill fault storm, IPC ping-pong pairs, and the §9 compile
   workload run as parallel jobs — are swept over 1..16 processors of
   each machine class. Every compute burst (fault service, message
   copies, compiler CPU) contends for the host's per-CPU run queues,
   so the sweep measures real speedup curves plus the scheduler's own
   counters: context switches, quantum preemptions, migrations, work
   steals, run-queue depth, and the handoff hit rate of the RPC fast
   path. A final A/B run measures what handoff scheduling saves per
   RPC by re-running the same ping-pong with donation disabled. *)

open Mach
open Common
module Compile_sim = Mach_workloads.Compile_sim
module Minimal_fs = Mach_pagers.Minimal_fs
module Sched = Mach_sim.Sched

let page = 4096
let machines = [ Machine.multimax; Machine.butterfly; Machine.hypercube ]
let with_cpus p n = { p with Machine.cpus = n }

(* All three classes have >= 16 CPUs; local-work scaling beyond that is
   identical, so the sweep stops there. *)
let cpu_sweep = [ 1; 2; 4; 8; 16 ]

(* --- measurement plumbing ---------------------------------------------- *)

type point = {
  pt_cpus : int;
  pt_elapsed : float;
  pt_util : float;  (** busy / (cpus * elapsed) over the measured window *)
  pt_sched : (string * int) list;  (** Sched counter deltas *)
  pt_handoffs : int;  (** IPC receives that arrived via handoff *)
}

let counter pt key = try List.assoc key pt.pt_sched with Not_found -> 0

type mark = {
  m_t : float;
  m_busy : float;
  m_sched : (string * int) list;
  m_handoffs : int;
}

let mark (sys : Kernel.system) =
  let kctx = Kernel.kctx sys.Kernel.kernel in
  {
    m_t = Engine.now sys.Kernel.engine;
    m_busy = Sched.busy_us kctx.Kctx.sched;
    m_sched = Sched.stats_to_list (Sched.stats kctx.Kctx.sched);
    m_handoffs = kctx.Kctx.node.Transport.node_stats.Transport.s_handoffs;
  }

let point (sys : Kernel.system) m0 =
  let m1 = mark sys in
  let cpus = Sched.cpu_count (Kernel.kctx sys.Kernel.kernel).Kctx.sched in
  let elapsed = m1.m_t -. m0.m_t in
  {
    pt_cpus = cpus;
    pt_elapsed = elapsed;
    pt_util =
      (if elapsed > 0.0 then (m1.m_busy -. m0.m_busy) /. (float_of_int cpus *. elapsed)
       else 0.0);
    pt_sched =
      List.map
        (fun (k, v) ->
          (* peak depth is a high-water mark, not a counter: report the
             absolute value rather than a meaningless difference *)
          if k = "queue_depth_peak" then (k, v) else (k, v - List.assoc k m0.m_sched))
        m1.m_sched;
    pt_handoffs = m1.m_handoffs - m0.m_handoffs;
  }

let speedup base pt = base.pt_elapsed /. pt.pt_elapsed
let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)
let ms pt = Printf.sprintf "%.1f" (pt.pt_elapsed /. 1000.0)

let avg_queue_depth pt =
  let enq = counter pt "enqueues" in
  if enq = 0 then "0.0"
  else Printf.sprintf "%.1f" (float_of_int (counter pt "queue_depth_sum") /. float_of_int enq)

(* --- workload 1: parallel zero-fill fault storm ------------------------- *)

(* Each worker touches its own anonymous region, so every page access is
   a zero-fill fault serviced on the faulting thread: syscall entry,
   fault base cost, pmap work and the data copy all run as scheduler
   bursts and contend for CPUs. *)
let fault_storm params ~workers ~pages_per_worker =
  let config = { Kernel.default_config with Kernel.params = params; Kernel.phys_frames = 4096 } in
  run_system ~config (fun sys task ->
      let m0 = mark sys in
      let dones =
        List.init workers (fun i ->
            let d = Ivar.create () in
            ignore
              (Thread.spawn task ~name:(Printf.sprintf "storm-%d" i) (fun () ->
                   let addr =
                     Syscalls.vm_allocate task ~size:(pages_per_worker * page) ~anywhere:true ()
                   in
                   for p = 0 to pages_per_worker - 1 do
                     ignore
                       (ok_exn "touch"
                          (Syscalls.touch task ~addr:(addr + (p * page)) ~write:true ()))
                   done;
                   Ivar.fill d ()));
            d)
      in
      List.iter Ivar.read dones;
      point sys m0)

(* --- workload 2: IPC ping-pong pairs ------------------------------------ *)

(* Each pair runs small inline RPCs: the blocked-receiver fast path plus
   processor handoff. [handoff:false] is the ablation arm: the same
   messages flow, but every receive pays the context-switch charge and
   queues for a processor. *)
let ping_pong ?(handoff = true) params ~pairs ~rpcs =
  let config = { Kernel.default_config with Kernel.params = params } in
  run_system ~config (fun sys task ->
      (Kernel.kctx sys.Kernel.kernel).Kctx.node.Transport.node_handoff_enabled <- handoff;
      let m0 = mark sys in
      let dones =
        List.init pairs (fun i ->
            let d = Ivar.create () in
            let svc = Syscalls.port_allocate task ~backlog:8 () in
            let svc_port = Port_space.lookup_exn (Task.space task) svc in
            ignore
              (Thread.spawn task ~name:(Printf.sprintf "pong-%d" i) (fun () ->
                   for _ = 1 to rpcs do
                     match Syscalls.msg_receive task ~from:(`Port svc) () with
                     | Ok msg -> (
                       match msg.Message.header.Message.reply with
                       | Some rp ->
                         ignore
                           (Syscalls.msg_send task
                              (Message.make ~dest:rp [ Message.Data (Bytes.create 8) ]))
                       | None -> failwith "E5 rpc without reply port")
                     | Error _ -> failwith "E5 pong receive failed"
                   done));
            ignore
              (Thread.spawn task ~name:(Printf.sprintf "ping-%d" i) (fun () ->
                   let reply = Syscalls.port_allocate task ~backlog:1 () in
                   let reply_port = Port_space.lookup_exn (Task.space task) reply in
                   for _ = 1 to rpcs do
                     ignore
                       (ok_exn "rpc"
                          (Syscalls.msg_rpc task
                             (Message.make ~dest:svc_port ~reply:reply_port
                                [ Message.Data (Bytes.create 8) ])
                             ()))
                   done;
                   Ivar.fill d ()));
            d)
      in
      List.iter Ivar.read dones;
      (point sys m0, 2 * pairs * rpcs))

(* --- workload 3: parallel compile jobs (§9 workload) -------------------- *)

(* One shared project served by the §4.1 filesystem server; each job
   compiles its own slice of the sources while all jobs re-read the
   same shared headers through the unified page cache. Compiler CPU
   bursts are long (hundreds of ms), so this is where quantum
   preemption shows up once jobs > cpus. *)
let compile_scale params ~jobs ~sources_per_job =
  let config = { Kernel.default_config with Kernel.params = params; Kernel.phys_frames = 2048 } in
  run_system ~config (fun sys task ->
      let disk =
        Disk.create sys.Kernel.engine ~name:"e5-disk" ~blocks:8192 ~block_size:page ()
      in
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let proj =
        Compile_sim.generate (Rng.create 0x4D503535) ~sources:(jobs * sources_per_job)
          ~source_bytes:(12 * 1024) ~headers:16 ~header_bytes:(16 * 1024) ~headers_per_source:6
      in
      let ops = Compile_sim.mach_ops task ~server ~disk in
      Compile_sim.populate ops (Rng.create 7) proj;
      let slices =
        List.init jobs (fun i ->
            {
              proj with
              Compile_sim.sources =
                List.filteri (fun idx _ -> idx / sources_per_job = i) proj.Compile_sim.sources;
            })
      in
      let m0 = mark sys in
      let dones =
        List.mapi
          (fun i slice ->
            let d = Ivar.create () in
            ignore
              (Thread.spawn task ~name:(Printf.sprintf "cc-%d" i) (fun () ->
                   Compile_sim.build ops slice;
                   Ivar.fill d ()));
            d)
          slices
      in
      List.iter Ivar.read dones;
      point sys m0)

(* --- the §7 taxonomy calibration table ---------------------------------- *)

let msg_exchange_us params =
  match params.Machine.mp_class with
  | Machine.Norma -> params.Machine.net_latency_us +. (8.0 *. params.Machine.net_us_per_byte)
  | Machine.Uma | Machine.Numa -> (
    match params.Machine.remote_access_us with Some r -> r | None -> assert false)

let taxonomy_table () =
  let t =
    Table.create ~title:"E5: multiprocessor classes (Section 7)"
      ~columns:
        [ "class"; "machine"; "cpus"; "local word us"; "remote word us"; "remote/local";
          "cross-node exchange us" ]
  in
  List.iter
    (fun p ->
      let local = Machine.access_us p ~remote:false ~words:1 in
      let remote =
        match p.Machine.remote_access_us with
        | Some _ -> Some (Machine.access_us p ~remote:true ~words:1)
        | None -> None
      in
      Table.row t
        [
          Machine.class_to_string p.Machine.mp_class;
          p.Machine.model;
          string_of_int p.Machine.cpus;
          Printf.sprintf "%.2f" local;
          (match remote with Some r -> Printf.sprintf "%.2f" r | None -> "no remote access");
          (match remote with Some r -> Printf.sprintf "%.0fx" (r /. local) | None -> "-");
          Printf.sprintf "%.0f" (msg_exchange_us p);
        ])
    machines;
  t

(* --- full experiment ----------------------------------------------------- *)

let storm_workers = 8
let storm_pages = 48
let pp_pairs = 4
let pp_rpcs = 150

let run () =
  let t_storm =
    Table.create ~title:"E5a: zero-fill fault storm (8 workers x 48 pages)"
      ~columns:
        [ "machine"; "cpus"; "elapsed ms"; "speedup"; "util"; "switches"; "preempt"; "migr";
          "steals"; "peak q"; "avg q" ]
  in
  let t_pp =
    Table.create ~title:"E5b: IPC ping-pong (4 pairs x 150 RPCs, 8-byte payload)"
      ~columns:
        [ "machine"; "cpus"; "elapsed ms"; "speedup"; "rpc us"; "handoff rate"; "switches";
          "steals" ]
  in
  let t_cc =
    Table.create ~title:"E5c: parallel compile jobs (6 jobs x 2 sources, shared headers)"
      ~columns:
        [ "machine"; "cpus"; "elapsed ms"; "speedup"; "util"; "switches"; "preempt"; "migr" ]
  in
  List.iter
    (fun machine ->
      let storm =
        List.map (fun n -> fault_storm (with_cpus machine n) ~workers:storm_workers
                             ~pages_per_worker:storm_pages)
          cpu_sweep
      in
      let storm1 = List.hd storm in
      List.iter
        (fun pt ->
          Table.row t_storm
            [
              machine.Machine.model; string_of_int pt.pt_cpus; ms pt;
              Printf.sprintf "%.2fx" (speedup storm1 pt); pct pt.pt_util;
              string_of_int (counter pt "switches");
              string_of_int (counter pt "preemptions");
              string_of_int (counter pt "migrations");
              string_of_int (counter pt "steals");
              string_of_int (counter pt "queue_depth_peak");
              avg_queue_depth pt;
            ])
        storm;
      let pp =
        List.map (fun n -> ping_pong (with_cpus machine n) ~pairs:pp_pairs ~rpcs:pp_rpcs)
          cpu_sweep
      in
      let pp1, _ = List.hd pp in
      List.iter
        (fun (pt, receives) ->
          Table.row t_pp
            [
              machine.Machine.model; string_of_int pt.pt_cpus; ms pt;
              Printf.sprintf "%.2fx" (speedup pp1 pt);
              Printf.sprintf "%.1f" (pt.pt_elapsed /. float_of_int (pp_pairs * pp_rpcs));
              pct (float_of_int pt.pt_handoffs /. float_of_int receives);
              string_of_int (counter pt "switches");
              string_of_int (counter pt "steals");
            ])
        pp;
      let cc =
        List.map (fun n -> compile_scale (with_cpus machine n) ~jobs:6 ~sources_per_job:2)
          cpu_sweep
      in
      let cc1 = List.hd cc in
      List.iter
        (fun pt ->
          Table.row t_cc
            [
              machine.Machine.model; string_of_int pt.pt_cpus; ms pt;
              Printf.sprintf "%.2fx" (speedup cc1 pt); pct pt.pt_util;
              string_of_int (counter pt "switches");
              string_of_int (counter pt "preemptions");
              string_of_int (counter pt "migrations");
            ])
        cc)
    machines;
  (* Handoff A/B: identical single-pair ping-pong on 2 CPUs, with and
     without processor donation. The delta is the per-RPC price of the
     run-queue round trip the handoff path skips. *)
  let ab_rpcs = 400 in
  let ab_machine = with_cpus Machine.multimax 2 in
  let on, _ = ping_pong ~handoff:true ab_machine ~pairs:1 ~rpcs:ab_rpcs in
  let off, _ = ping_pong ~handoff:false ab_machine ~pairs:1 ~rpcs:ab_rpcs in
  let per_rpc pt = pt.pt_elapsed /. float_of_int ab_rpcs in
  let t_ab =
    Table.create ~title:"E5d: handoff vs run-queue RPC (1 pair x 400 RPCs, 2 CPUs, MultiMax)"
      ~columns:[ "arm"; "elapsed ms"; "per-RPC us"; "handoffs"; "switches charged" ]
  in
  Table.row t_ab
    [ "handoff (donated CPU)"; ms on; us (per_rpc on); string_of_int on.pt_handoffs;
      string_of_int (counter on "switches") ];
  Table.row t_ab
    [ "run queue (donation off)"; ms off; us (per_rpc off); string_of_int off.pt_handoffs;
      string_of_int (counter off "switches") ];
  Table.row t_ab
    [ "saving per RPC"; "-"; us (per_rpc off -. per_rpc on); "-"; "-" ];
  [ taxonomy_table (); t_storm; t_pp; t_cc; t_ab ]

let quick () =
  ignore (fault_storm (with_cpus Machine.multimax 2) ~workers:2 ~pages_per_worker:4);
  ignore (ping_pong (with_cpus Machine.multimax 2) ~pairs:1 ~rpcs:4)

let json () =
  let sweep = [ 1; 2; 4; 8; 16 ] in
  let storm =
    List.map
      (fun n -> (n, fault_storm (with_cpus Machine.multimax n) ~workers:8 ~pages_per_worker:32))
      sweep
  in
  let storm1 = List.assoc 1 storm in
  let max_cpus, storm_max = List.nth storm (List.length storm - 1) in
  let pp_pt, pp_recv = ping_pong (with_cpus Machine.multimax 4) ~pairs:4 ~rpcs:100 in
  let ab = with_cpus Machine.multimax 2 in
  let on, _ = ping_pong ~handoff:true ab ~pairs:1 ~rpcs:200 in
  let off, _ = ping_pong ~handoff:false ab ~pairs:1 ~rpcs:200 in
  let cc1 = compile_scale (with_cpus Machine.multimax 1) ~jobs:4 ~sources_per_job:2 in
  let cc4 = compile_scale (with_cpus Machine.multimax 4) ~jobs:4 ~sources_per_job:2 in
  List.concat
    [
      [ ("fault_storm_elapsed_1cpu_ms", storm1.pt_elapsed /. 1000.0) ];
      List.filter_map
        (fun (n, pt) ->
          if n = 1 then None
          else Some (Printf.sprintf "fault_storm_speedup_%d" n, speedup storm1 pt))
        storm;
      [
        ("fault_storm_speedup_max", speedup storm1 storm_max);
        ("fault_storm_max_cpus", float_of_int max_cpus);
        ("fault_storm_util_max_pct", 100.0 *. storm_max.pt_util);
        ("fault_storm_steals_max", float_of_int (counter storm_max "steals"));
        ("pingpong_handoff_rate", float_of_int pp_pt.pt_handoffs /. float_of_int pp_recv);
        ("handoff_rpc_us", on.pt_elapsed /. 200.0);
        ("queued_rpc_us", off.pt_elapsed /. 200.0);
        ("handoff_saving_us_per_rpc", (off.pt_elapsed -. on.pt_elapsed) /. 200.0);
        ("compile_speedup_4", speedup cc1 cc4);
      ];
    ]

let experiment =
  {
    id = "E5";
    title = "Multiprocessor scheduling";
    paper_claim =
      "Mach runs on UMA, NUMA and NORMA machines (Section 7): compute-bound work scales with \
       added processors through per-CPU run queues, and message/scheduling integration lets an \
       RPC hand the sender's processor straight to the receiver instead of a run-queue round \
       trip.";
    run;
    quick;
    json = Some json;
  }
