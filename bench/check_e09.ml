(* E9 regression gate: compare a freshly produced `--json` run of the
   failure-handling + chaos suite against the committed baseline
   (BENCH_e09.json) and fail if the fault fabric stopped containing
   failures: a hung worker, unaccounted faults, a broken dedup window,
   runaway retransmission, or slow partition-heal convergence.

   Usage: check_e09 BASELINE CURRENT *)

open Check_common

(* Hard ceilings (chaos runs are seeded, so run-to-run numbers are
   deterministic; the slack over the recorded baseline only covers
   intentional cost-model or protocol retuning). *)
let retransmit_ceiling_factor = 4.0
let convergence_ceiling_factor = 3.0

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let b = get baseline baseline_path in
    let c = get current current_path in
    if !failures = 0 then begin
      (* The §6 local defenses still hold. *)
      check_ge "pager_deaths" (c "pager_deaths") 1.0;
      check_ge "death_errors" (c "death_errors") 1.0;
      (* Zero permanently-blocked threads across the whole chaos suite. *)
      check_eq "blocked_workers" (c "blocked_workers") 0.0;
      check_eq "sweep_failures" (c "sweep_failures") 0.0;
      check_eq "dup_failures" (c "dup_failures") 0.0;
      check_eq "partition_failures" (c "partition_failures") 0.0;
      check_eq "migration_failures" (c "migration_failures") 0.0;
      check_eq "migration_coherent" (c "migration_coherent") 1.0;
      (* Faults were actually injected and the defenses engaged. *)
      check_ge "reg.chaos.dropped" (c "reg.chaos.dropped") 1.0;
      check_ge "dup_injected" (c "dup_injected") 1.0;
      check_ge "dup_dropped (dedup window active)" (c "dup_dropped") 1.0;
      check_ge "crash_pager_deaths" (c "crash_pager_deaths") 1.0;
      check_eq "reg.chan.aborts (no spurious channel-down)" (c "reg.chan.aborts") 0.0;
      (* Every wire-level fault is accounted for in chaos.* metrics. *)
      check_eq "net.dropped = chaos drop + partition + crash"
        (c "reg.net.dropped")
        (c "reg.chaos.dropped" +. c "reg.chaos.partition_drops"
        +. c "reg.chaos.crash_drops");
      check_eq "net.duplicated = chaos.duplicated" (c "reg.net.duplicated")
        (c "reg.chaos.duplicated");
      check_eq "net.retransmits = chan.retransmits" (c "reg.net.retransmits")
        (c "reg.chan.retransmits");
      (* Retransmission stays proportionate and the heal converges. *)
      check_le "loss10_retransmits"
        (c "loss10_retransmits")
        (Float.max 20.0 (retransmit_ceiling_factor *. b "loss10_retransmits"));
      check_le "partition_convergence_us"
        (c "partition_convergence_us")
        (Float.max 500_000.0 (convergence_ceiling_factor *. b "partition_convergence_us"))
    end
  | _ -> usage "check_e09");
  finish "E9 chaos containment within recorded floors"
