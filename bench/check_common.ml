(* Shared machinery of the bench regression gates (check_e03 /
   check_e05 / check_e10): a line scanner for the harness's own flat
   JSON writer — one `"key": number` pair per line, so no JSON library
   is needed — and the ok/FAIL assertion helpers with a process-wide
   failure count. *)

let parse path =
  let ic = open_in path in
  let kvs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match String.index_opt line ':' with
       | Some i when i >= 2 && line.[0] = '"' && line.[i - 1] = '"' ->
         let key = String.sub line 1 (i - 2) in
         let v = String.sub line (i + 1) (String.length line - i - 1) in
         let v =
           String.trim
             (match String.index_opt v ',' with Some j -> String.sub v 0 j | None -> v)
         in
         (match float_of_string_opt v with
         | Some f -> kvs := (key, f) :: !kvs
         | None -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !kvs

let failures = ref 0

let get kvs path key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None ->
    Printf.eprintf "FAIL %s: missing key %S\n" path key;
    incr failures;
    nan

let check_ge what value floor =
  if value >= floor then Printf.printf "ok   %s: %.3f (floor %.3f)\n" what value floor
  else begin
    Printf.eprintf "FAIL %s: %.3f below floor %.3f\n" what value floor;
    incr failures
  end

let check_le what value ceiling =
  if value <= ceiling then Printf.printf "ok   %s: %.3f (ceiling %.3f)\n" what value ceiling
  else begin
    Printf.eprintf "FAIL %s: %.3f above ceiling %.3f\n" what value ceiling;
    incr failures
  end

let check_eq what value expected =
  if value = expected then Printf.printf "ok   %s: %.3f\n" what value
  else begin
    Printf.eprintf "FAIL %s: %.3f <> %.3f\n" what value expected;
    incr failures
  end

(* Exit 1 on any recorded failure, else print the success line. *)
let finish msg =
  if !failures > 0 then exit 1;
  print_endline msg

let usage name =
  prerr_endline ("usage: " ^ name ^ " BASELINE CURRENT");
  exit 2
