(* E5 regression gate: compare a freshly produced `--json` run of the
   multiprocessor-scaling experiment against the committed baseline
   (BENCH_e05.json) and fail if the scheduler's scaling or the handoff
   advantage regressed.

   Usage: check_e05 BASELINE CURRENT

   The JSON involved is the bench harness's own flat writer — one
   `"key": number` pair per line — so a line scanner is all the parsing
   this needs. *)

let parse path =
  let ic = open_in path in
  let kvs = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match String.index_opt line ':' with
       | Some i when i >= 2 && line.[0] = '"' && line.[i - 1] = '"' ->
         let key = String.sub line 1 (i - 2) in
         let v = String.sub line (i + 1) (String.length line - i - 1) in
         let v =
           String.trim
             (match String.index_opt v ',' with Some j -> String.sub v 0 j | None -> v)
         in
         (match float_of_string_opt v with
         | Some f -> kvs := (key, f) :: !kvs
         | None -> ())
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !kvs

let failures = ref 0

let get kvs path key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None ->
    Printf.eprintf "FAIL %s: missing key %S\n" path key;
    incr failures;
    nan

let check_ge what value floor =
  if value >= floor then Printf.printf "ok   %s: %.3f (floor %.3f)\n" what value floor
  else begin
    Printf.eprintf "FAIL %s: %.3f below floor %.3f\n" what value floor;
    incr failures
  end

(* The absolute acceptance floor for fault-storm speedup at 4 CPUs, and
   the tolerated fraction of the recorded baseline for the max-CPU
   speedup (run-to-run numbers are deterministic, so the slack only
   covers intentional cost-model retuning; larger drops must update the
   committed baseline deliberately). *)
let abs_floor_4cpu = 1.5
let baseline_fraction = 0.8

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let b_max = get baseline baseline_path "fault_storm_speedup_max" in
    let c_max = get current current_path "fault_storm_speedup_max" in
    let c_4 = get current current_path "fault_storm_speedup_4" in
    let saving = get current current_path "handoff_saving_us_per_rpc" in
    let rate = get current current_path "pingpong_handoff_rate" in
    if !failures = 0 then begin
      check_ge "fault_storm_speedup_4 (absolute)" c_4 abs_floor_4cpu;
      check_ge
        (Printf.sprintf "fault_storm_speedup_max vs baseline %.3f" b_max)
        c_max (baseline_fraction *. b_max);
      check_ge "handoff_saving_us_per_rpc" saving 1.0;
      check_ge "pingpong_handoff_rate" rate 0.9
    end
  | _ ->
    prerr_endline "usage: check_e05 BASELINE CURRENT";
    exit 2);
  if !failures > 0 then exit 1;
  print_endline "E5 scaling within recorded floors"
