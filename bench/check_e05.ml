(* E5 regression gate: compare a freshly produced `--json` run of the
   multiprocessor-scaling experiment against the committed baseline
   (BENCH_e05.json) and fail if the scheduler's scaling or the handoff
   advantage regressed.

   Usage: check_e05 BASELINE CURRENT *)

open Check_common

(* The absolute acceptance floor for fault-storm speedup at 4 CPUs, and
   the tolerated fraction of the recorded baseline for the max-CPU
   speedup (run-to-run numbers are deterministic, so the slack only
   covers intentional cost-model retuning; larger drops must update the
   committed baseline deliberately). *)
let abs_floor_4cpu = 1.5
let baseline_fraction = 0.8

let () =
  (match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let baseline = parse baseline_path in
    let current = parse current_path in
    let b_max = get baseline baseline_path "fault_storm_speedup_max" in
    let c_max = get current current_path "fault_storm_speedup_max" in
    let c_4 = get current current_path "fault_storm_speedup_4" in
    let saving = get current current_path "handoff_saving_us_per_rpc" in
    let rate = get current current_path "pingpong_handoff_rate" in
    if !failures = 0 then begin
      check_ge "fault_storm_speedup_4 (absolute)" c_4 abs_floor_4cpu;
      check_ge
        (Printf.sprintf "fault_storm_speedup_max vs baseline %.3f" b_max)
        c_max (baseline_fraction *. b_max);
      check_ge "handoff_saving_us_per_rpc" saving 1.0;
      check_ge "pingpong_handoff_rate" rate 0.9
    end
  | _ -> usage "check_e05");
  finish "E5 scaling within recorded floors"
