(* §8.3: Camelot-style recoverable virtual memory — write-ahead
   logging, failure atomicity and crash recovery. *)

open Mach
module Camelot = Mach_pagers.Camelot

let check = Alcotest.check
let page = 4096

(* Disks persist across "crashes"; the systems come and go. *)
let make_disks () =
  let scratch = Engine.create () in
  let log_disk = Disk.create scratch ~name:"log" ~blocks:1024 ~block_size:page () in
  let data_disk = Disk.create scratch ~name:"data" ~blocks:1024 ~block_size:page () in
  (log_disk, data_disk)

let run_epoch ~log_disk ~data_disk ~format f =
  let sys = Kernel.create_system () in
  let log_disk = Disk.reattach log_disk sys.Kernel.engine in
  let data_disk = Disk.reattach data_disk sys.Kernel.engine in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format () in
      let client = Task.create sys.Kernel.kernel ~name:"txn-client" () in
      ignore
        (Thread.spawn client ~name:"txn-client.main" (fun () -> result := Some (f sys cam client))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "transaction client did not complete (deadlock?)"

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Camelot.Client.pp_error e

let read_mem task ~addr ~len =
  match Syscalls.read_bytes task ~addr ~len () with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "memory read: %a" Access.pp_error e

let test_commit_durable_across_crash () =
  let log_disk, data_disk = make_disks () in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "acct" ~size:(2 * page)) in
      let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
      ok_or_fail "store"
        (Camelot.Client.store client ~server tid ~segment:"acct" ~base ~offset:100
           (Bytes.of_string "COMMITTED"));
      ok_or_fail "commit" (Camelot.Client.commit client ~server tid);
      (* A second transaction updates but never commits: its changes
         may even reach the data disk via pageout (steal policy). *)
      let tid2 = ok_or_fail "begin2" (Camelot.Client.begin_txn client ~server) in
      ok_or_fail "store2"
        (Camelot.Client.store client ~server tid2 ~segment:"acct" ~base ~offset:300
           (Bytes.of_string "UNCOMMITTED")));
  (* Crash. Reboot and recover. *)
  run_epoch ~log_disk ~data_disk ~format:false (fun _sys cam client ->
      Alcotest.(check bool) "redo applied" true (Camelot.recovered_redo cam >= 1);
      let server = Camelot.service_port cam in
      let base = ok_or_fail "remap" (Camelot.Client.map_segment client ~server "acct" ~size:(2 * page)) in
      check Alcotest.string "committed data survives" "COMMITTED"
        (read_mem client ~addr:(base + 100) ~len:9);
      check Alcotest.string "uncommitted data rolled back"
        (String.make 11 '\000')
        (read_mem client ~addr:(base + 300) ~len:11))

let test_abort_undoes_in_memory () =
  let log_disk, data_disk = make_disks () in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "s" ~size:page) in
      let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
      ok_or_fail "store"
        (Camelot.Client.store client ~server tid ~segment:"s" ~base ~offset:0
           (Bytes.of_string "doomed"));
      check Alcotest.string "visible before abort" "doomed" (read_mem client ~addr:base ~len:6);
      ok_or_fail "abort" (Camelot.Client.abort client ~server tid);
      check Alcotest.string "undone after abort" (String.make 6 '\000')
        (read_mem client ~addr:base ~len:6))

let test_wal_ordering_under_pressure () =
  let log_disk, data_disk = make_disks () in
  (* Small physical memory forces pageout of dirty recoverable pages
     while transactions are still running. *)
  let config =
    { Kernel.default_config with Kernel.phys_frames = 96; Kernel.pager_timeout_us = 60_000_000.0 }
  in
  let sys = Kernel.create_system ~config () in
  let log_disk = Disk.reattach log_disk sys.Kernel.engine in
  let data_disk = Disk.reattach data_disk sys.Kernel.engine in
  let violations = ref (-1) in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"txn-client" () in
      ignore
        (Thread.spawn client ~name:"txn-client.main" (fun () ->
             let server = Camelot.service_port cam in
             let npages = 160 in
             let size = npages * page in
             let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "big" ~size) in
             (* Update more pages than physical memory holds, forcing
                pageout of dirty recoverable pages mid-transaction. *)
             for round = 0 to 1 do
               let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
               for p = 0 to npages - 1 do
                 ok_or_fail "store"
                   (Camelot.Client.store client ~server tid ~segment:"big" ~base
                      ~offset:(p * page)
                      (Bytes.of_string (Printf.sprintf "r%d-p%03d" round p)))
               done;
               ok_or_fail "commit" (Camelot.Client.commit client ~server tid)
             done;
             violations := Camelot.wal_violations cam;
             Alcotest.(check bool) "pageouts happened" true
               ((Kernel.stats sys.Kernel.kernel).Vm_types.s_pageouts > 0))));
  Engine.run sys.Kernel.engine;
  check Alcotest.int "no WAL violations" 0 !violations

let test_two_transactions_isolated_offsets () =
  let log_disk, data_disk = make_disks () in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "s" ~size:page) in
      let t1 = ok_or_fail "begin1" (Camelot.Client.begin_txn client ~server) in
      let t2 = ok_or_fail "begin2" (Camelot.Client.begin_txn client ~server) in
      ok_or_fail "s1" (Camelot.Client.store client ~server t1 ~segment:"s" ~base ~offset:0 (Bytes.of_string "one"));
      ok_or_fail "s2" (Camelot.Client.store client ~server t2 ~segment:"s" ~base ~offset:64 (Bytes.of_string "two"));
      ok_or_fail "commit t1" (Camelot.Client.commit client ~server t1);
      ok_or_fail "abort t2" (Camelot.Client.abort client ~server t2);
      check Alcotest.string "t1 kept" "one" (read_mem client ~addr:base ~len:3);
      check Alcotest.string "t2 undone" (String.make 3 '\000') (read_mem client ~addr:(base + 64) ~len:3))

let test_multi_segment_transaction () =
  let log_disk, data_disk = make_disks () in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let b1 = ok_or_fail "map1" (Camelot.Client.map_segment client ~server "accounts" ~size:page) in
      let b2 = ok_or_fail "map2" (Camelot.Client.map_segment client ~server "audit" ~size:page) in
      let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
      ok_or_fail "s1"
        (Camelot.Client.store client ~server tid ~segment:"accounts" ~base:b1 ~offset:0
           (Bytes.of_string "debit"));
      ok_or_fail "s2"
        (Camelot.Client.store client ~server tid ~segment:"audit" ~base:b2 ~offset:0
           (Bytes.of_string "entry"));
      ok_or_fail "commit" (Camelot.Client.commit client ~server tid);
      check Alcotest.string "seg1" "debit" (read_mem client ~addr:b1 ~len:5);
      check Alcotest.string "seg2" "entry" (read_mem client ~addr:b2 ~len:5));
  (* Both segments' committed data survive a crash. *)
  run_epoch ~log_disk ~data_disk ~format:false (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let b1 = ok_or_fail "remap1" (Camelot.Client.map_segment client ~server "accounts" ~size:page) in
      let b2 = ok_or_fail "remap2" (Camelot.Client.map_segment client ~server "audit" ~size:page) in
      check Alcotest.string "seg1 recovered" "debit" (read_mem client ~addr:b1 ~len:5);
      check Alcotest.string "seg2 recovered" "entry" (read_mem client ~addr:b2 ~len:5))

let test_big_transaction_spans_log_blocks () =
  let log_disk, data_disk = make_disks () in
  let updates = 200 in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "s" ~size:(4 * page)) in
      let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
      for i = 0 to updates - 1 do
        ok_or_fail "store"
          (Camelot.Client.store client ~server tid ~segment:"s" ~base ~offset:(i * 64)
             (Bytes.of_string (Printf.sprintf "u%04d" i)))
      done;
      ok_or_fail "commit" (Camelot.Client.commit client ~server tid));
  run_epoch ~log_disk ~data_disk ~format:false (fun _sys cam client ->
      Alcotest.(check bool) "all updates redone" true (Camelot.recovered_redo cam >= updates);
      let server = Camelot.service_port cam in
      let base = ok_or_fail "remap" (Camelot.Client.map_segment client ~server "s" ~size:(4 * page)) in
      for i = 0 to updates - 1 do
        check Alcotest.string
          (Printf.sprintf "update %d" i)
          (Printf.sprintf "u%04d" i)
          (read_mem client ~addr:(base + (i * 64)) ~len:5)
      done)

let test_store_spanning_pages () =
  let log_disk, data_disk = make_disks () in
  run_epoch ~log_disk ~data_disk ~format:true (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "map" (Camelot.Client.map_segment client ~server "s" ~size:(2 * page)) in
      let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
      (* A 32-byte update straddling the page boundary. *)
      let v = Bytes.init 32 (fun i -> Char.chr (65 + i)) in
      ok_or_fail "store"
        (Camelot.Client.store client ~server tid ~segment:"s" ~base ~offset:(page - 16) v);
      ok_or_fail "commit" (Camelot.Client.commit client ~server tid);
      check Alcotest.string "in memory" (Bytes.to_string v)
        (read_mem client ~addr:(base + page - 16) ~len:32));
  run_epoch ~log_disk ~data_disk ~format:false (fun _sys cam client ->
      let server = Camelot.service_port cam in
      let base = ok_or_fail "remap" (Camelot.Client.map_segment client ~server "s" ~size:(2 * page)) in
      let expect = String.init 32 (fun i -> Char.chr (65 + i)) in
      check Alcotest.string "both pages recovered" expect
        (read_mem client ~addr:(base + page - 16) ~len:32);
      Alcotest.(check bool) "redo covered the straddle" true (Camelot.recovered_redo cam >= 1))

let test_abort_after_steal () =
  (* Dirty uncommitted pages that reached the data disk through pageout
     (a steal) must still be undone by abort. *)
  let log_disk, data_disk = make_disks () in
  let config =
    { Kernel.default_config with Kernel.phys_frames = 80; Kernel.pager_timeout_us = 60_000_000.0 }
  in
  let sys = Kernel.create_system ~config () in
  let log_disk = Disk.reattach log_disk sys.Kernel.engine in
  let data_disk = Disk.reattach data_disk sys.Kernel.engine in
  let passed = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"txn-client" () in
      ignore
        (Thread.spawn client ~name:"txn-client.main" (fun () ->
             let server = Camelot.service_port cam in
             let npages = 120 in
             let base =
               ok_or_fail "map" (Camelot.Client.map_segment client ~server "s" ~size:(npages * page))
             in
             let tid = ok_or_fail "begin" (Camelot.Client.begin_txn client ~server) in
             for p = 0 to npages - 1 do
               ok_or_fail "store"
                 (Camelot.Client.store client ~server tid ~segment:"s" ~base ~offset:(p * page)
                    (Bytes.of_string "steal-me"))
             done;
             Alcotest.(check bool) "pageouts (steal) happened" true
               ((Kernel.stats sys.Kernel.kernel).Vm_types.s_pageouts > 0);
             ok_or_fail "abort" (Camelot.Client.abort client ~server tid);
             (* Every page reads as zero again, even the stolen ones. *)
             for p = 0 to npages - 1 do
               check Alcotest.string
                 (Printf.sprintf "page %d undone" p)
                 (String.make 8 '\000')
                 (read_mem client ~addr:(base + (p * page)) ~len:8)
             done;
             passed := true)));
  Engine.run sys.Kernel.engine;
  Alcotest.(check bool) "scenario completed" true !passed

let () =
  Alcotest.run "camelot"
    [
      ( "recoverable-vm",
        [
          Alcotest.test_case "commit survives crash, uncommitted rolls back" `Quick
            test_commit_durable_across_crash;
          Alcotest.test_case "abort undoes through shared mapping" `Quick
            test_abort_undoes_in_memory;
          Alcotest.test_case "WAL ordering holds under memory pressure" `Quick
            test_wal_ordering_under_pressure;
          Alcotest.test_case "commit and abort interleaved" `Quick
            test_two_transactions_isolated_offsets;
          Alcotest.test_case "multi-segment transaction" `Quick test_multi_segment_transaction;
          Alcotest.test_case "big transaction spans log blocks" `Quick
            test_big_transaction_spans_log_blocks;
          Alcotest.test_case "abort undoes stolen pages" `Quick test_abort_after_steal;
          Alcotest.test_case "update spanning a page boundary" `Quick test_store_spanning_pages;
        ] );
    ]
