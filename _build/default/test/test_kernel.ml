(* Tasks, threads, CPU accounting, and the syscall façade. *)

open Mach

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

let test_task_create_terminate () =
  with_system (fun sys _task ->
      let before = List.length sys.Kernel.kernel.Ktypes.k_tasks in
      let t = Task.create sys.Kernel.kernel ~name:"ephemeral" () in
      check Alcotest.int "registered" (before + 1) (List.length sys.Kernel.kernel.Ktypes.k_tasks);
      Alcotest.(check bool) "alive" true (Task.alive t);
      let n = Syscalls.port_allocate t () in
      let p = Port_space.lookup_exn (Task.space t) n in
      Task.terminate t;
      Alcotest.(check bool) "dead" false (Task.alive t);
      Alcotest.(check bool) "ports destroyed" false (Mach_ipc.Port.alive p);
      check Alcotest.int "unregistered" before (List.length sys.Kernel.kernel.Ktypes.k_tasks))

let test_task_termination_notifies_senders () =
  with_system (fun sys task ->
      let t = Task.create sys.Kernel.kernel ~name:"server" () in
      let n = Syscalls.port_allocate t () in
      let p = Port_space.lookup_exn (Task.space t) n in
      let my_name = Syscalls.port_insert task p Message.Send_right in
      Task.terminate t;
      match Port_space.next_notification (Task.space task) ~timeout:1000.0 () with
      | Some (Port_space.Port_deleted dead) -> check Alcotest.int "notified of death" my_name dead
      | None -> Alcotest.fail "expected notification")

let test_thread_suspend_resume () =
  with_system (fun sys _task ->
      let t = Task.create sys.Kernel.kernel ~name:"worker" () in
      let progress = ref 0 in
      let th = ref None in
      let body () =
        for _ = 1 to 10 do
          Thread.checkpoint (Option.get !th);
          incr progress;
          Engine.sleep 10.0
        done
      in
      th := Some (Thread.spawn t ~name:"worker.loop" body);
      let thread = Option.get !th in
      Engine.sleep 35.0;
      Thread.suspend thread;
      let frozen_at = !progress in
      Engine.sleep 100.0;
      check Alcotest.int "no progress while suspended" frozen_at !progress;
      Thread.resume thread;
      Engine.sleep 200.0;
      check Alcotest.int "completed after resume" 10 !progress;
      Alcotest.(check bool) "done" true (Thread.is_done thread))

let test_cpu_contention () =
  (* One CPU: two 100us bursts take 200us; four CPUs: 100us. *)
  let burst_time cpus =
    let params = Machine.custom ~cpus Machine.Uma in
    let config = { Kernel.default_config with Kernel.params } in
    with_system ~config (fun sys _task ->
        let t0 = Engine.now sys.Kernel.engine in
        let d1 = Ivar.create () and d2 = Ivar.create () in
        let t = Task.create sys.Kernel.kernel ~name:"burner" () in
        ignore (Thread.spawn t ~name:"b1" (fun () -> Cpu.compute sys.Kernel.kernel 100.0; Ivar.fill d1 ()));
        ignore (Thread.spawn t ~name:"b2" (fun () -> Cpu.compute sys.Kernel.kernel 100.0; Ivar.fill d2 ()));
        Ivar.read d1;
        Ivar.read d2;
        Engine.now sys.Kernel.engine -. t0)
  in
  Alcotest.(check bool) "1 cpu serialises" true (burst_time 1 >= 200.0);
  Alcotest.(check bool) "4 cpus parallelise" true (burst_time 4 < 150.0)

let test_vm_syscall_integration () =
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:(2 * page) ~anywhere:true () in
      (match Syscalls.vm_write task ~addr (Bytes.of_string "syscall-data") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "vm_write: %a" Access.pp_error e);
      (match Syscalls.vm_read task ~addr ~size:12 () with
      | Ok b -> check Alcotest.string "vm_read" "syscall-data" (Bytes.to_string b)
      | Error e -> Alcotest.failf "vm_read: %a" Access.pp_error e);
      (match Syscalls.vm_copy task ~src_addr:addr ~size:12 ~dst_addr:(addr + page) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "vm_copy: %a" Access.pp_error e);
      match Syscalls.vm_read task ~addr:(addr + page) ~size:12 () with
      | Ok b -> check Alcotest.string "copied" "syscall-data" (Bytes.to_string b)
      | Error e -> Alcotest.failf "vm_read 2: %a" Access.pp_error e)

let test_vm_read_other_task () =
  with_system (fun sys task ->
      let other = Task.create sys.Kernel.kernel ~name:"other" () in
      let addr = Syscalls.vm_allocate other ~size:page ~anywhere:true () in
      (match Syscalls.vm_write task ~target:other ~addr (Bytes.of_string "cross-task") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "cross write: %a" Access.pp_error e);
      match Syscalls.vm_read task ~target:other ~addr ~size:10 () with
      | Ok b -> check Alcotest.string "cross read" "cross-task" (Bytes.to_string b)
      | Error e -> Alcotest.failf "cross read: %a" Access.pp_error e)

let test_vm_statistics_reporting () =
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () in
      ignore (Syscalls.write_bytes task ~addr (Bytes.make (4 * page) 'x') ());
      let vs = Syscalls.vm_statistics task in
      check Alcotest.int "page size" page vs.Syscalls.vs_page_size;
      Alcotest.(check bool) "free counted" true (vs.Syscalls.vs_free_count > 0);
      Alcotest.(check bool) "active pages" true (vs.Syscalls.vs_active_count >= 4);
      Alcotest.(check bool) "faults recorded" true (vs.Syscalls.vs_stats.Vm_types.s_faults >= 4)

)

let test_transfer_region_and_map_ool () =
  with_system (fun sys task ->
      let recv = Task.create sys.Kernel.kernel ~name:"receiver" () in
      let addr = Syscalls.vm_allocate task ~size:(2 * page) ~anywhere:true () in
      ignore (Syscalls.write_bytes task ~addr (Bytes.of_string "ool-payload") ());
      let svc = Syscalls.port_allocate recv () in
      let svc_port = Port_space.lookup_exn (Task.space recv) svc in
      let finished = Ivar.create () in
      ignore
        (Thread.spawn recv ~name:"receiver.main" (fun () ->
             match Syscalls.msg_receive recv ~from:(`Port svc) () with
             | Ok msg -> (
               match Syscalls.map_ool recv msg with
               | [ (raddr, rsize) ] ->
                 check Alcotest.int "size" (2 * page) rsize;
                 (match Syscalls.read_bytes recv ~addr:raddr ~len:11 () with
                 | Ok b -> Ivar.fill finished (Bytes.to_string b)
                 | Error e -> Alcotest.failf "receiver read: %a" Access.pp_error e)
               | _ -> Alcotest.fail "expected one region")
             | Error _ -> Alcotest.fail "receive failed"));
      (match
         Syscalls.msg_send task
           (Message.make ~dest:svc_port [ Syscalls.ool_region task ~addr ~size:(2 * page) ])
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
      check Alcotest.string "payload mapped" "ool-payload" (Ivar.read finished);
      (* Receiver's copy is COW-isolated from the sender. *)
      ignore (Syscalls.write_bytes task ~addr (Bytes.of_string "MUTATED") ());
      ())

let test_fork_inherits_port_space_not () =
  (* Port spaces are per-task and NOT inherited (only memory is). *)
  with_system (fun sys task ->
      let n = Syscalls.port_allocate task () in
      let child = Task.create sys.Kernel.kernel ~parent:task ~name:"child" () in
      Alcotest.(check bool) "child space empty of parent's name" true
        (Port_space.lookup (Task.space child) n = None))

let () =
  Alcotest.run "kernel"
    [
      ( "tasks-threads",
        [
          Alcotest.test_case "create/terminate" `Quick test_task_create_terminate;
          Alcotest.test_case "termination notifies senders" `Quick
            test_task_termination_notifies_senders;
          Alcotest.test_case "thread suspend/resume" `Quick test_thread_suspend_resume;
          Alcotest.test_case "cpu contention" `Quick test_cpu_contention;
          Alcotest.test_case "fork does not share port space" `Quick
            test_fork_inherits_port_space_not;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "vm read/write/copy" `Quick test_vm_syscall_integration;
          Alcotest.test_case "cross-task vm_read/vm_write" `Quick test_vm_read_other_task;
          Alcotest.test_case "vm_statistics" `Quick test_vm_statistics_reporting;
          Alcotest.test_case "ool region transfer" `Quick test_transfer_region_and_map_ool;
        ] );
    ]
