(* §8.2: copy-on-reference task migration between hosts. *)

open Mach
module Migrator = Mach_pagers.Migrator

let check = Alcotest.check
let page = 4096

(* A frozen source task with [pages] pages of recognisable content. *)
let make_source kernel ~pages =
  let src = Task.create kernel ~name:"victim" () in
  let done_ = Ivar.create () in
  ignore
    (Thread.spawn src ~name:"victim.init" (fun () ->
         let addr = Syscalls.vm_allocate src ~size:(pages * page) ~anywhere:true () in
         for i = 0 to pages - 1 do
           let tag = Bytes.of_string (Printf.sprintf "page-%03d" i) in
           match Syscalls.write_bytes src ~addr:(addr + (i * page)) tag () with
           | Ok () -> ()
           | Error e -> Alcotest.failf "init write: %a" Access.pp_error e
         done;
         Ivar.fill done_ addr));
  (src, done_)

let run_cluster f =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  let result = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () -> result := Some (f cluster));
  Engine.run cluster.Kernel.c_engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "scenario did not complete (deadlock?)"

let read_tag task addr i =
  match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:8 () with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "migrated read: %a" Access.pp_error e

let test_strategy strategy ~touch ~expect_shipped_at_most ~expect_shipped_at_least () =
  run_cluster (fun cluster ->
      let pages = 16 in
      let src, addr_ivar = make_source cluster.Kernel.c_kernels.(0) ~pages in
      let addr = Ivar.read addr_ivar in
      let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
      let mg = Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1) strategy in
      let dst = mg.Migrator.mg_task in
      let finished = Ivar.create () in
      ignore
        (Thread.spawn dst ~name:"victim-migrated.main" (fun () ->
             List.iter
               (fun i ->
                 check Alcotest.string
                   (Printf.sprintf "page %d content survives migration" i)
                   (Printf.sprintf "page-%03d" i)
                   (read_tag dst addr i))
               touch;
             Ivar.fill finished ()));
      Ivar.read finished;
      let shipped = Migrator.pages_transferred mgr in
      Alcotest.(check bool)
        (Printf.sprintf "shipped %d <= %d" shipped expect_shipped_at_most)
        true (shipped <= expect_shipped_at_most);
      Alcotest.(check bool)
        (Printf.sprintf "shipped %d >= %d" shipped expect_shipped_at_least)
        true (shipped >= expect_shipped_at_least))

let test_cor_writes_are_private () =
  run_cluster (fun cluster ->
      let src, addr_ivar = make_source cluster.Kernel.c_kernels.(0) ~pages:4 in
      let addr = Ivar.read addr_ivar in
      let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
      let mg =
        Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1)
          Migrator.Copy_on_reference
      in
      let dst = mg.Migrator.mg_task in
      let finished = Ivar.create () in
      ignore
        (Thread.spawn dst ~name:"migrated.main" (fun () ->
             (match Syscalls.write_bytes dst ~addr (Bytes.of_string "MUTATED!") () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "migrated write: %a" Access.pp_error e);
             check Alcotest.string "dst sees its write" "MUTATED!" (read_tag dst addr 0);
             Ivar.fill finished ()));
      Ivar.read finished;
      (* The frozen source is untouched. *)
      let v =
        match
          Access.read_bytes cluster.Kernel.c_kernels.(0).Ktypes.k_kctx (Task.map src) ~addr ~len:8
            ()
        with
        | Ok b -> Bytes.to_string b
        | Error e -> Alcotest.failf "src read: %a" Access.pp_error e
      in
      check Alcotest.string "source untouched" "page-000" v)

let test_multi_region_task () =
  run_cluster (fun cluster ->
      let src = Task.create cluster.Kernel.c_kernels.(0) ~name:"multi" () in
      let ready = Ivar.create () in
      ignore
        (Thread.spawn src ~name:"multi.init" (fun () ->
             let a = Syscalls.vm_allocate src ~addr:0x10000 ~size:(2 * page) ~anywhere:false () in
             let b = Syscalls.vm_allocate src ~addr:0x80000 ~size:(2 * page) ~anywhere:false () in
             ignore (Syscalls.write_bytes src ~addr:a (Bytes.of_string "region-A") ());
             ignore (Syscalls.write_bytes src ~addr:b (Bytes.of_string "region-B") ());
             Ivar.fill ready (a, b)));
      let a, b = Ivar.read ready in
      let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
      let mg =
        Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1)
          Migrator.Copy_on_reference
      in
      let dst = mg.Migrator.mg_task in
      let fin = Ivar.create () in
      ignore
        (Thread.spawn dst ~name:"multi-migrated.main" (fun () ->
             (match Syscalls.read_bytes dst ~addr:a ~len:8 () with
             | Ok bytes ->
               Alcotest.(check string) "region A at same address" "region-A" (Bytes.to_string bytes)
             | Error e -> Alcotest.failf "A: %a" Access.pp_error e);
             (match Syscalls.read_bytes dst ~addr:b ~len:8 () with
             | Ok bytes ->
               Alcotest.(check string) "region B at same address" "region-B" (Bytes.to_string bytes)
             | Error e -> Alcotest.failf "B: %a" Access.pp_error e);
             Ivar.fill fin ()));
      Ivar.read fin)

let test_finish_stops_demand_paging () =
  run_cluster (fun cluster ->
      let src, addr_ivar = make_source cluster.Kernel.c_kernels.(0) ~pages:4 in
      let addr = Ivar.read addr_ivar in
      let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
      let mg =
        Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1)
          Migrator.Copy_on_reference
      in
      let dst = mg.Migrator.mg_task in
      let fin = Ivar.create () in
      ignore
        (Thread.spawn dst ~name:"migrated.main" (fun () ->
             (* Pull one page across, then end the migration. *)
             ignore (Syscalls.read_bytes dst ~addr ~len:8 ());
             Migrator.finish mgr mg;
             Alcotest.(check bool) "source reclaimed" false (Task.alive src);
             (* Already-resident data still works... *)
             (match Syscalls.read_bytes dst ~addr ~len:8 () with
             | Ok b -> Alcotest.(check string) "resident page fine" "page-000" (Bytes.to_string b)
             | Error e -> Alcotest.failf "resident: %a" Access.pp_error e);
             (* ...but unpulled pages can no longer be demand-fetched:
                the manager answers unavailable (zero-fill). *)
             (match
                Syscalls.read_bytes dst ~addr:(addr + (3 * page)) ~len:8
                  ~policy:(Fault.Zero_fill_after 5_000_000.0) ()
              with
             | Ok b ->
               Alcotest.(check string) "post-finish fetch is zeroes" (String.make 8 '\000')
                 (Bytes.to_string b)
             | Error e -> Alcotest.failf "post-finish: %a" Access.pp_error e);
             Ivar.fill fin ()));
      Ivar.read fin)

let () =
  Alcotest.run "migrator"
    [
      ( "migration",
        [
          Alcotest.test_case "eager copy ships all pages" `Quick
            (test_strategy Migrator.Eager_copy ~touch:[ 0; 15 ] ~expect_shipped_at_most:16
               ~expect_shipped_at_least:16);
          Alcotest.test_case "copy-on-reference ships only touched pages" `Quick
            (test_strategy Migrator.Copy_on_reference ~touch:[ 0; 7; 15 ]
               ~expect_shipped_at_most:3 ~expect_shipped_at_least:3);
          Alcotest.test_case "pre-paging ships touched plus lookahead" `Quick
            (test_strategy (Migrator.Pre_paging 2) ~touch:[ 0 ] ~expect_shipped_at_most:3
               ~expect_shipped_at_least:2);
          Alcotest.test_case "migrated writes are private to destination" `Quick
            test_cor_writes_are_private;
          Alcotest.test_case "multi-region task keeps addresses" `Quick test_multi_region_task;
          Alcotest.test_case "finish reclaims source, stops paging" `Quick
            test_finish_stops_demand_paging;
        ] );
    ]
