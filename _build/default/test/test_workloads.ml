(* Workload generators: determinism, shape, and the E4 harness glue. *)

module Rng = Mach_util.Rng
module Compile_sim = Mach_workloads.Compile_sim
module Access_patterns = Mach_workloads.Access_patterns

let check = Alcotest.check

let test_project_deterministic () =
  let gen () =
    Compile_sim.generate (Rng.create 5) ~sources:10 ~source_bytes:4096 ~headers:4
      ~header_bytes:8192 ~headers_per_source:2
  in
  let a = gen () and b = gen () in
  check Alcotest.int "same total" (Compile_sim.project_bytes a) (Compile_sim.project_bytes b);
  check Alcotest.(list (pair string int)) "same sources" a.Compile_sim.sources b.Compile_sim.sources

let test_project_shape () =
  let p =
    Compile_sim.generate (Rng.create 5) ~sources:10 ~source_bytes:4096 ~headers:4
      ~header_bytes:8192 ~headers_per_source:2
  in
  check Alcotest.int "sources" 10 (List.length p.Compile_sim.sources);
  check Alcotest.int "headers" 4 (List.length p.Compile_sim.headers);
  List.iter
    (fun (name, size) ->
      Alcotest.(check bool) ("positive " ^ name) true (size > 0))
    (p.Compile_sim.sources @ p.Compile_sim.headers)

(* A fake in-memory FILE_OPS to test the build driver. *)
let fake_ops () =
  let files : (string, bytes) Hashtbl.t = Hashtbl.create 32 in
  let reads = ref [] in
  let compute_total = ref 0.0 in
  let ops =
    {
      Compile_sim.read_file =
        (fun name ->
          reads := name :: !reads;
          match Hashtbl.find_opt files name with Some b -> Bytes.length b | None -> 0);
      write_file = (fun name data -> Hashtbl.replace files name data);
      compute = (fun us -> compute_total := !compute_total +. us);
      io_ops = (fun () -> 0);
    }
  in
  (ops, files, reads, compute_total)

let test_build_reads_and_writes () =
  let p =
    Compile_sim.generate (Rng.create 5) ~sources:6 ~source_bytes:1000 ~headers:4
      ~header_bytes:2000 ~headers_per_source:3
  in
  let ops, files, reads, compute_total = fake_ops () in
  Compile_sim.populate ops (Rng.create 6) p;
  check Alcotest.int "all files created" 10 (Hashtbl.length files);
  Compile_sim.build ops p;
  (* Every source read once; headers re-read per source. *)
  let read_count name = List.length (List.filter (( = ) name) !reads) in
  List.iter (fun (s, _) -> check Alcotest.int ("source read once: " ^ s) 1 (read_count s)) p.Compile_sim.sources;
  let header_reads = List.fold_left (fun acc (h, _) -> acc + read_count h) 0 p.Compile_sim.headers in
  check Alcotest.int "headers re-read per source" (6 * 3) header_reads;
  (* Objects were written. *)
  Alcotest.(check bool) "objects exist" true (Hashtbl.mem files "src000.o");
  Alcotest.(check bool) "compute charged" true (!compute_total > 0.0)

let test_access_patterns_bounds () =
  let rng = Rng.create 3 in
  let all =
    Access_patterns.sequential ~pages:16 ~ops:100 ~write_ratio:0.3 rng
    @ Access_patterns.uniform ~pages:16 ~ops:100 ~write_ratio:0.3 rng
    @ Access_patterns.zipf ~pages:16 ~ops:100 ~write_ratio:0.3 ~theta:0.9 rng
    @ Access_patterns.working_set ~pages:16 ~ops:100 ~write_ratio:0.3 ~hot_fraction:0.25
        ~hot_bias:0.9 rng
  in
  check Alcotest.int "total ops" 400 (List.length all);
  List.iter
    (fun { Access_patterns.ap_page; _ } ->
      Alcotest.(check bool) "page in range" true (ap_page >= 0 && ap_page < 16))
    all

let test_write_ratio_respected () =
  let rng = Rng.create 4 in
  let ops = Access_patterns.uniform ~pages:8 ~ops:5000 ~write_ratio:0.25 rng in
  let writes = List.length (List.filter (fun o -> o.Access_patterns.ap_write) ops) in
  Alcotest.(check bool) "around 25%" true (abs (writes - 1250) < 150)

let test_working_set_locality () =
  let rng = Rng.create 5 in
  let ops =
    Access_patterns.working_set ~pages:100 ~ops:5000 ~write_ratio:0.0 ~hot_fraction:0.1
      ~hot_bias:0.9 rng
  in
  let hot_hits = List.length (List.filter (fun o -> o.Access_patterns.ap_page < 10) ops) in
  (* ~90% of accesses on the hot 10%. *)
  Alcotest.(check bool) "locality respected" true (hot_hits > 4200)

let test_sequential_cycles () =
  let rng = Rng.create 6 in
  let ops = Access_patterns.sequential ~pages:4 ~ops:10 ~write_ratio:0.0 rng in
  check Alcotest.(list int) "cyclic sweep" [ 0; 1; 2; 3; 0; 1; 2; 3; 0; 1 ]
    (List.map (fun o -> o.Access_patterns.ap_page) ops)

let () =
  Alcotest.run "workloads"
    [
      ( "compile-sim",
        [
          Alcotest.test_case "deterministic" `Quick test_project_deterministic;
          Alcotest.test_case "shape" `Quick test_project_shape;
          Alcotest.test_case "build reads/writes" `Quick test_build_reads_and_writes;
        ] );
      ( "access-patterns",
        [
          Alcotest.test_case "bounds" `Quick test_access_patterns_bounds;
          Alcotest.test_case "write ratio" `Quick test_write_ratio_respected;
          Alcotest.test_case "working-set locality" `Quick test_working_set_locality;
          Alcotest.test_case "sequential cycles" `Quick test_sequential_cycles;
        ] );
    ]
