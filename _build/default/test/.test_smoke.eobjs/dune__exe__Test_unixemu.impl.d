test/test_unixemu.ml: Alcotest Bytes Char Disk Engine Kernel Mach Mach_pagers Mach_unixemu Task Thread
