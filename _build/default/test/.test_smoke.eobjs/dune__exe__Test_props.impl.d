test/test_props.ml: Alcotest Array Bytes Char Disk Engine Fault Gen Hashtbl Ivar Kernel List Mach Mach_pagers Mach_util Printf QCheck2 QCheck_alcotest Syscalls Task Test Thread
