test/test_pageout.ml: Access Alcotest Bytes Default_pager Disk Engine Ivar Kctx Kernel Ktypes Mach Option Pageout Printf String Syscalls Task Thread Vm_types
