test/test_vm_fault.ml: Access Alcotest Bytes Char Engine Fault Ivar Kernel Ktypes List Mach Mach_hw Mach_ipc Memory_object_server Option Prot String Syscalls Task Thread Vm_map Vm_object Vm_types
