test/test_pager_protocol.mli:
