test/test_sim.ml: Alcotest Buffer Gen List Mach_sim Printf QCheck2 QCheck_alcotest Test
