test/test_kernel.ml: Access Alcotest Bytes Cpu Engine Ivar Kernel Ktypes List Mach Mach_ipc Machine Message Option Port_space Syscalls Task Thread Vm_types
