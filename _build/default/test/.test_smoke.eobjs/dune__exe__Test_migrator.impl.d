test/test_migrator.ml: Access Alcotest Array Bytes Engine Fault Ivar Kernel Ktypes List Mach Mach_pagers Printf String Syscalls Task Thread
