test/test_minimal_fs.mli:
