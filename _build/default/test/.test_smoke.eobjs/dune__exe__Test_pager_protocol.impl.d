test/test_pager_protocol.ml: Alcotest Bytes Gen Kernel List Mach Mach_hw Mach_ipc Mach_sim Mach_vm Printf QCheck2 QCheck_alcotest Syscalls Task Test Thread
