test/test_netmem.ml: Access Alcotest Array Bytes Engine Fault Ivar Kernel Mach Mach_pagers Mach_util Message Printf Syscalls Task Thread
