test/test_minimal_fs.ml: Access Alcotest Bytes Char Disk Engine Kernel Mach Mach_fs Mach_pagers Syscalls Task Thread
