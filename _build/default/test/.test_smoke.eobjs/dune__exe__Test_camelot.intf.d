test/test_camelot.mli:
