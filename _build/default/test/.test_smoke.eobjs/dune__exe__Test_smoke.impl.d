test/test_smoke.ml: Access Alcotest Bytes Char Engine Ivar Kernel Mach Memory_object_server Message Port_space Prot String Syscalls Task Thread Vm_types
