test/test_integration.ml: Access Alcotest Array Bytes Char Disk Engine Fault Ivar Kernel List Mach Mach_pagers Printf Syscalls Task Thread Vm_map Vm_object Vm_types
