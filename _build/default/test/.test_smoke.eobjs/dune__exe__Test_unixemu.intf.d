test/test_unixemu.mli:
