test/test_vm_object.mli:
