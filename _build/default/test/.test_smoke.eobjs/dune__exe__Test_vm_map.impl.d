test/test_vm_map.ml: Alcotest Gen List Mach_hw Mach_ipc Mach_sim Mach_vm QCheck2 QCheck_alcotest Test
