test/test_migrator.mli:
