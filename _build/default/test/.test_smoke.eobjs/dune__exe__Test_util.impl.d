test/test_util.ml: Alcotest Array Bytes Float Fun Gen List Mach_util Option QCheck2 QCheck_alcotest String Test
