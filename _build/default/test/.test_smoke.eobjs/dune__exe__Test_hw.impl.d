test/test_hw.ml: Alcotest Bytes Gen List Mach_hw Mach_sim Option QCheck2 QCheck_alcotest Test
