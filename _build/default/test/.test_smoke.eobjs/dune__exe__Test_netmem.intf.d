test/test_netmem.mli:
