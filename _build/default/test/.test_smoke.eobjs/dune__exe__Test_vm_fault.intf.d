test/test_vm_fault.mli:
