test/test_vm_object.ml: Alcotest Array Bytes Gen List Mach_hw Mach_ipc Mach_sim Mach_vm Option QCheck2 QCheck_alcotest Test
