test/test_baseline.ml: Alcotest Bytes Char Gen Hashtbl List Mach_baseline Mach_fs Mach_hw Mach_sim Printf QCheck2 QCheck_alcotest String Test
