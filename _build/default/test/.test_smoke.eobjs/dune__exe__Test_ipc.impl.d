test/test_ipc.ml: Alcotest Array Bytes Gen List Mach_hw Mach_ipc Mach_sim Mach_util Option QCheck2 QCheck_alcotest Test
