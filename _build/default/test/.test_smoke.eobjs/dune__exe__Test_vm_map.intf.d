test/test_vm_map.mli:
