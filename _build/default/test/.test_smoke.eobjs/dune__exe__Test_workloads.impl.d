test/test_workloads.ml: Alcotest Bytes Hashtbl List Mach_util Mach_workloads
