test/test_camelot.ml: Access Alcotest Bytes Char Disk Engine Kernel Mach Mach_pagers Printf String Syscalls Task Thread Vm_types
