(* End-to-end smoke tests: if these pass, the simulated kernel boots,
   tasks allocate and touch memory, fork is copy-on-write, and the
   external pager protocol round-trips through real IPC. *)

open Mach

let check = Alcotest.check
let page = 4096

let with_system f =
  let sys = Kernel.create_system () in
  let result = ref None in
  let task = Task.create sys.Kernel.kernel ~name:"app" () in
  ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task)));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

let test_zero_fill () =
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:(4 * page) ~anywhere:true () in
      (match Syscalls.read_bytes task ~addr ~len:16 () with
      | Ok b -> check Alcotest.string "zero filled" (String.make 16 '\000') (Bytes.to_string b)
      | Error e -> Alcotest.failf "read failed: %a" Access.pp_error e);
      match Syscalls.write_bytes task ~addr (Bytes.of_string "hello mach") () with
      | Ok () -> (
        match Syscalls.read_bytes task ~addr ~len:10 () with
        | Ok b -> check Alcotest.string "written back" "hello mach" (Bytes.to_string b)
        | Error e -> Alcotest.failf "re-read failed: %a" Access.pp_error e)
      | Error e -> Alcotest.failf "write failed: %a" Access.pp_error e)

let test_fork_cow () =
  with_system (fun sys task ->
      let addr = Syscalls.vm_allocate task ~size:(2 * page) ~anywhere:true () in
      (match Syscalls.write_bytes task ~addr (Bytes.of_string "parent-data") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "parent write: %a" Access.pp_error e);
      (* Default inheritance is copy. *)
      let child = Task.create sys.Kernel.kernel ~parent:task ~name:"child" () in
      let child_read = ref "" in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn child ~name:"child.main" (fun () ->
             (match Syscalls.read_bytes child ~addr ~len:11 () with
             | Ok b -> child_read := Bytes.to_string b
             | Error e -> Alcotest.failf "child read: %a" Access.pp_error e);
             (* Child writes; parent must not see it. *)
             (match Syscalls.write_bytes child ~addr (Bytes.of_string "child-writes") () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "child write: %a" Access.pp_error e);
             Ivar.fill done_ ()));
      Ivar.read done_;
      check Alcotest.string "child saw parent data" "parent-data" !child_read;
      match Syscalls.read_bytes task ~addr ~len:11 () with
      | Ok b -> check Alcotest.string "parent unaffected by child write" "parent-data" (Bytes.to_string b)
      | Error e -> Alcotest.failf "parent re-read: %a" Access.pp_error e)

let test_ipc_roundtrip () =
  with_system (fun sys task ->
      let server = Task.create sys.Kernel.kernel ~name:"server" () in
      let service_name = Syscalls.port_allocate server () in
      let service_port = Port_space.lookup_exn (Task.space server) service_name in
      ignore
        (Thread.spawn server ~name:"server.main" (fun () ->
             match Syscalls.msg_receive server ~from:(`Port service_name) () with
             | Ok msg -> (
               let reply = match msg.Message.header.reply with Some r -> r | None -> assert false in
               let payload = Message.data_exn msg in
               let resp = Bytes.uppercase_ascii payload in
               match Syscalls.msg_send server (Message.make ~dest:reply [ Message.Data resp ]) with
               | Ok () -> ()
               | Error _ -> Alcotest.fail "server reply failed")
             | Error _ -> Alcotest.fail "server receive failed"));
      let reply_name = Syscalls.port_allocate task () in
      let reply_port = Port_space.lookup_exn (Task.space task) reply_name in
      let msg =
        Message.make ~reply:reply_port ~dest:service_port [ Message.Data (Bytes.of_string "hello") ]
      in
      match Syscalls.msg_rpc task msg () with
      | Ok resp -> check Alcotest.string "rpc echo" "HELLO" (Bytes.to_string (Message.data_exn resp))
      | Error _ -> Alcotest.fail "rpc failed")

(* A manager that serves pages whose bytes encode the page index. *)
let test_external_pager () =
  with_system (fun sys task ->
      let mgr_task = Task.create sys.Kernel.kernel ~name:"mgr" () in
      let writes = ref [] in
      let cb =
        {
          Memory_object_server.no_callbacks with
          Memory_object_server.on_data_request =
            (fun t ~memory_object:_ ~request ~offset ~length:_ ~desired_access:_ ->
              let data = Bytes.make page (Char.chr (0x41 + (offset / page mod 26))) in
              Memory_object_server.data_provided t ~request ~offset ~data ~lock_value:Prot.none);
          Memory_object_server.on_data_write =
            (fun _ ~memory_object:_ ~offset ~data ~release ->
              writes := (offset, Bytes.get data 0) :: !writes;
              release ());
        }
      in
      let server = Memory_object_server.start mgr_task cb in
      let memory_object = Memory_object_server.create_memory_object server () in
      let addr =
        Syscalls.vm_allocate_with_pager task ~size:(8 * page) ~anywhere:true ~memory_object
          ~offset:0 ()
      in
      (* Fault in pages 0 and 3. *)
      (match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "page 0 content" "AAAA" (Bytes.to_string b)
      | Error e -> Alcotest.failf "pager read: %a" Access.pp_error e);
      (match Syscalls.read_bytes task ~addr:(addr + (3 * page)) ~len:4 () with
      | Ok b -> check Alcotest.string "page 3 content" "DDDD" (Bytes.to_string b)
      | Error e -> Alcotest.failf "pager read 3: %a" Access.pp_error e);
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "data requests sent" true (stats.Vm_types.s_data_requests >= 2);
      Alcotest.(check bool) "pageins recorded" true (stats.Vm_types.s_pageins >= 2))

let test_spawn_and_run_helper () =
  let sys = Kernel.create_system () in
  let seen = ref 0 in
  spawn_and_run sys ~name:"helper-app" (fun task ->
      let addr = Syscalls.vm_allocate task ~size:page ~anywhere:true () in
      (match Syscalls.write_bytes task ~addr (Bytes.of_string "via-helper") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Access.pp_error e);
      seen := 1);
  check Alcotest.int "helper ran the body" 1 !seen

let () =
  Alcotest.run "smoke"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "zero-fill allocate/read/write" `Quick test_zero_fill;
          Alcotest.test_case "fork is copy-on-write" `Quick test_fork_cow;
          Alcotest.test_case "ipc rpc roundtrip" `Quick test_ipc_roundtrip;
          Alcotest.test_case "external pager pagein" `Quick test_external_pager;
          Alcotest.test_case "spawn_and_run helper" `Quick test_spawn_and_run_helper;
        ] );
    ]
