(* The pageout daemon, the default pager and the reserved pool:
   anonymous memory larger than physical memory must survive a round
   trip through the paging file (§6.2.2, §6.2.3). *)

open Mach

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

let small = { Kernel.default_config with Kernel.phys_frames = 64 }

let tag i = Printf.sprintf "page-%04d-contents" i

let test_anonymous_paging_roundtrip () =
  with_system ~config:small (fun sys task ->
      (* 3x physical memory of anonymous data. *)
      let npages = 192 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        match Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) () with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write %d: %a" i Access.pp_error e
      done;
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageouts happened" true (stats.Vm_types.s_pageouts > 0);
      (* Read everything back: early pages were paged out to the
         default pager and must return with correct contents. *)
      for i = 0 to npages - 1 do
        match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:(String.length (tag i)) () with
        | Ok b -> check Alcotest.string (Printf.sprintf "page %d content" i) (tag i) (Bytes.to_string b)
        | Error e -> Alcotest.failf "read %d: %a" i Access.pp_error e
      done;
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageins from default pager" true (stats.Vm_types.s_pageins > 0);
      Alcotest.(check bool) "paging disk used" true (Disk.ops sys.Kernel.kernel.Ktypes.k_paging_disk > 0))

let test_repaged_data_modifiable () =
  with_system ~config:small (fun _sys task ->
      let npages = 150 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) ())
      done;
      (* Rewrite the early (paged-out) pages and check both rounds. *)
      for i = 0 to 20 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string "v2") ())
      done;
      for i = 0 to 20 do
        match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:2 () with
        | Ok b -> check Alcotest.string "v2 stuck" "v2" (Bytes.to_string b)
        | Error e -> Alcotest.failf "read: %a" Access.pp_error e
      done)

let test_reserved_pool_respected () =
  with_system ~config:small (fun sys task ->
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let reserved = kctx.Kctx.reserved_frames in
      Alcotest.(check bool) "reserve exists" true (reserved > 0);
      (* Grind through memory; at no point may an unprivileged
         allocation leave fewer than zero... the daemon keeps free above
         the floor eventually, and free never hits 0 while we allocate
         because the reserve is off-limits to us. *)
      let npages = 100 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      let min_free = ref max_int in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string "x") ());
        min_free := min !min_free (Kernel.free_frames sys.Kernel.kernel)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "reserve never breached (min free %d, reserve %d)" !min_free reserved)
        true (!min_free >= 0))

let test_lru_prefers_cold_pages () =
  with_system ~config:small (fun sys task ->
      let kctx = sys.Kernel.kernel.Ktypes.k_kctx in
      let hot_pages = 8 in
      let addr = Syscalls.vm_allocate task ~size:(120 * page) ~anywhere:true () in
      (* Touch hot pages constantly while streaming through the rest. *)
      for i = 0 to 119 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.of_string (tag i)) ());
        for h = 0 to hot_pages - 1 do
          ignore (Syscalls.touch task ~addr:(addr + (h * page)) ~write:false ())
        done
      done;
      (* The hot pages should still be resident (no pagein needed). *)
      let before = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      for h = 0 to hot_pages - 1 do
        ignore (Syscalls.touch task ~addr:(addr + (h * page)) ~write:false ())
      done;
      let after = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      check Alcotest.int "hot set stayed resident" 0 (after - before);
      ignore kctx)

let test_run_once_noop_when_memory_free () =
  with_system (fun sys _task ->
      (* Plenty of memory: nothing to reclaim. *)
      check Alcotest.int "no deficit, no work" 0 (Pageout.run_once sys.Kernel.kernel.Ktypes.k_kctx))

let test_default_pager_stats () =
  with_system ~config:small (fun sys task ->
      let npages = 150 in
      let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
      for i = 0 to npages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(addr + (i * page)) (Bytes.make 8 'z') ())
      done;
      (* The default pager's backing store now holds pages. *)
      let stats = Kernel.stats sys.Kernel.kernel in
      Alcotest.(check bool) "pageouts counted" true (stats.Vm_types.s_pageouts > 40);
      Alcotest.(check bool) "paging disk has writes" true
        (Disk.writes sys.Kernel.kernel.Ktypes.k_paging_disk > 0))

let test_paging_blocks_recycled () =
  (* Repeatedly create, page out, and destroy address spaces: the
     paging disk must not leak blocks across object lifetimes. *)
  with_system ~config:small (fun sys _task ->
      let kernel = sys.Kernel.kernel in
      let dp = Option.get kernel.Ktypes.k_default_pager in
      let free_at_start = Default_pager.blocks_free dp in
      for round = 0 to 4 do
        let t = Task.create kernel ~name:(Printf.sprintf "churn-%d" round) () in
        let fin = Ivar.create () in
        ignore
          (Thread.spawn t ~name:(Printf.sprintf "churn-%d.main" round) (fun () ->
               let npages = 120 in
               let addr = Syscalls.vm_allocate t ~size:(npages * page) ~anywhere:true () in
               for i = 0 to npages - 1 do
                 ignore (Syscalls.write_bytes t ~addr:(addr + (i * page)) (Bytes.make 8 'x') ())
               done;
               Ivar.fill fin ()));
        Ivar.read fin;
        Task.terminate t;
        (* Let termination and releases settle. *)
        Engine.sleep 1_000_000.0
      done;
      (* Five rounds of ~56+ paged-out pages each would need hundreds
         of blocks if leaked; all must have come back. *)
      Alcotest.(check bool) "no pageouts would invalidate this test" true
        ((Kernel.stats kernel).Vm_types.s_pageouts > 0);
      check Alcotest.int "all paging blocks recycled" free_at_start (Default_pager.blocks_free dp))

let () =
  Alcotest.run "pageout"
    [
      ( "paging",
        [
          Alcotest.test_case "anonymous paging roundtrip" `Quick test_anonymous_paging_roundtrip;
          Alcotest.test_case "repaged data modifiable" `Quick test_repaged_data_modifiable;
          Alcotest.test_case "reserved pool respected" `Quick test_reserved_pool_respected;
          Alcotest.test_case "LRU keeps hot pages" `Quick test_lru_prefers_cold_pages;
          Alcotest.test_case "run_once no-op when free" `Quick test_run_once_noop_when_memory_free;
          Alcotest.test_case "default pager stats" `Quick test_default_pager_stats;
          Alcotest.test_case "paging blocks recycled across object lifetimes" `Quick
            test_paging_blocks_recycled;
        ] );
    ]
