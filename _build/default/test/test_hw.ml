(* Tests for the hardware substrate: protections, physical memory,
   pmap, disk, network, machine models. *)

module Engine = Mach_sim.Engine
module Prot = Mach_hw.Prot
module Phys_mem = Mach_hw.Phys_mem
module Pmap = Mach_hw.Pmap
module Disk = Mach_hw.Disk
module Net = Mach_hw.Net
module Machine = Mach_hw.Machine

let check = Alcotest.check

(* ---- prot --------------------------------------------------------------- *)

let test_prot_basics () =
  Alcotest.(check bool) "rw reads" true (Prot.can_read Prot.rw);
  Alcotest.(check bool) "rw writes" true (Prot.can_write Prot.rw);
  Alcotest.(check bool) "rw no exec" false (Prot.can_execute Prot.rw);
  Alcotest.(check bool) "none nothing" false (Prot.can_read Prot.none);
  check Alcotest.string "to_string" "rw-" (Prot.to_string Prot.rw);
  check Alcotest.string "all" "rwx" (Prot.to_string Prot.all)

let test_prot_algebra () =
  Alcotest.(check bool) "union" true Prot.(equal (union read write) rw);
  Alcotest.(check bool) "inter" true Prot.(equal (inter rw rx) read);
  Alcotest.(check bool) "diff" true Prot.(equal (diff all write) rx);
  Alcotest.(check bool) "subset yes" true (Prot.subset Prot.read Prot.rw);
  Alcotest.(check bool) "subset no" false (Prot.subset Prot.rw Prot.read)

let prot_prop =
  let open QCheck2 in
  let gen = Gen.map Prot.of_int (Gen.int_range 0 7) in
  Test.make ~name:"prot algebra laws" ~count:200 (Gen.pair gen gen) (fun (a, b) ->
      Prot.subset (Prot.inter a b) a
      && Prot.subset a (Prot.union a b)
      && Prot.equal (Prot.inter a (Prot.diff a b)) (Prot.diff a b)
      && Prot.equal (Prot.of_int (Prot.to_int a)) a
      && (not (Prot.subset a b && Prot.subset b a)) || Prot.equal a b)

(* ---- phys_mem ------------------------------------------------------------ *)

let test_phys_alloc_free () =
  let m = Phys_mem.create ~frames:4 ~page_size:4096 in
  check Alcotest.int "all free" 4 (Phys_mem.free_frames m);
  let f1 = Option.get (Phys_mem.alloc m) in
  let f2 = Option.get (Phys_mem.alloc m) in
  Alcotest.(check bool) "distinct" true (f1 <> f2);
  check Alcotest.int "two left" 2 (Phys_mem.free_frames m);
  Phys_mem.free m f1;
  check Alcotest.int "back to three" 3 (Phys_mem.free_frames m)

let test_phys_exhaustion () =
  let m = Phys_mem.create ~frames:2 ~page_size:4096 in
  ignore (Phys_mem.alloc m);
  ignore (Phys_mem.alloc m);
  check Alcotest.(option int) "exhausted" None (Phys_mem.alloc m)

let test_phys_zeroed_on_free () =
  let m = Phys_mem.create ~frames:2 ~page_size:4096 in
  let f = Option.get (Phys_mem.alloc m) in
  Phys_mem.write m f ~off:0 (Bytes.of_string "dirty");
  Phys_mem.free m f;
  let f2 = Option.get (Phys_mem.alloc m) in
  ignore f2;
  (* The freed frame comes back eventually; allocate the other one too. *)
  let f3 = Option.get (Phys_mem.alloc m) in
  let data = Phys_mem.read m f3 ~off:0 ~len:5 in
  check Alcotest.string "zeroed" "\000\000\000\000\000" (Bytes.to_string data)

let test_phys_double_free_rejected () =
  let m = Phys_mem.create ~frames:2 ~page_size:4096 in
  let f = Option.get (Phys_mem.alloc m) in
  Phys_mem.free m f;
  Alcotest.check_raises "double free" (Invalid_argument "Phys_mem: frame not allocated") (fun () ->
      Phys_mem.free m f)

let test_phys_copy_and_bits () =
  let m = Phys_mem.create ~frames:2 ~page_size:4096 in
  let a = Option.get (Phys_mem.alloc m) in
  let b = Option.get (Phys_mem.alloc m) in
  Phys_mem.write m a ~off:100 (Bytes.of_string "payload");
  Phys_mem.copy m ~src:a ~dst:b;
  check Alcotest.string "copied" "payload" (Bytes.to_string (Phys_mem.read m b ~off:100 ~len:7));
  Alcotest.(check bool) "ref clear" false (Phys_mem.referenced m a);
  Phys_mem.set_referenced m a true;
  Phys_mem.set_modified m a true;
  Alcotest.(check bool) "ref set" true (Phys_mem.referenced m a);
  Alcotest.(check bool) "mod set" true (Phys_mem.modified m a)

(* ---- pmap ----------------------------------------------------------------- *)

let test_pmap_enter_access () =
  let m = Phys_mem.create ~frames:4 ~page_size:4096 in
  let pm = Pmap.create m in
  let f = Option.get (Phys_mem.alloc m) in
  Pmap.enter pm ~vpn:5 ~frame:f ~prot:Prot.rw;
  (match Pmap.access pm ~vpn:5 ~write:false with
  | Ok frame -> check Alcotest.int "read hits" f frame
  | Error _ -> Alcotest.fail "read should succeed");
  Alcotest.(check bool) "ref bit set" true (Phys_mem.referenced m f);
  Alcotest.(check bool) "mod bit clear" false (Phys_mem.modified m f);
  (match Pmap.access pm ~vpn:5 ~write:true with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "write should succeed");
  Alcotest.(check bool) "mod bit set" true (Phys_mem.modified m f)

let test_pmap_protection_fault () =
  let m = Phys_mem.create ~frames:4 ~page_size:4096 in
  let pm = Pmap.create m in
  let f = Option.get (Phys_mem.alloc m) in
  Pmap.enter pm ~vpn:1 ~frame:f ~prot:Prot.read;
  (match Pmap.access pm ~vpn:1 ~write:true with
  | Error Pmap.Protection -> ()
  | Ok _ | Error Pmap.Missing -> Alcotest.fail "expected protection fault");
  match Pmap.access pm ~vpn:2 ~write:false with
  | Error Pmap.Missing -> ()
  | Ok _ | Error Pmap.Protection -> Alcotest.fail "expected missing fault"

let test_pmap_remove_range () =
  let m = Phys_mem.create ~frames:8 ~page_size:4096 in
  let pm = Pmap.create m in
  for vpn = 0 to 7 do
    let f = Option.get (Phys_mem.alloc m) in
    Pmap.enter pm ~vpn ~frame:f ~prot:Prot.rw
  done;
  Pmap.remove_range pm ~lo:2 ~hi:5;
  check Alcotest.int "four left" 4 (Pmap.resident_count pm);
  Alcotest.(check bool) "vpn 1 intact" true (Pmap.lookup pm ~vpn:1 <> None);
  Alcotest.(check bool) "vpn 3 gone" true (Pmap.lookup pm ~vpn:3 = None)

let test_pmap_frames_mapping () =
  let m = Phys_mem.create ~frames:4 ~page_size:4096 in
  let pm = Pmap.create m in
  let f = Option.get (Phys_mem.alloc m) in
  Pmap.enter pm ~vpn:10 ~frame:f ~prot:Prot.read;
  Pmap.enter pm ~vpn:20 ~frame:f ~prot:Prot.read;
  check Alcotest.(list int) "both vpns" [ 10; 20 ] (Pmap.frames_mapping pm f)

(* ---- disk ----------------------------------------------------------------- *)

let test_disk_roundtrip_and_timing () =
  let eng = Engine.create () in
  let d = Disk.create eng ~name:"d0" ~blocks:16 ~block_size:512 ~seek_us:1000.0 ~transfer_us_per_byte:1.0 () in
  let elapsed = ref 0.0 in
  Engine.spawn eng (fun () ->
      let t0 = Engine.now eng in
      Disk.write d ~block:3 (Bytes.of_string "hello disk");
      let b = Disk.read d ~block:3 in
      elapsed := Engine.now eng -. t0;
      check Alcotest.string "data" "hello disk" (Bytes.to_string (Bytes.sub b 0 10)));
  Engine.run eng;
  (* write: 1000 + 10*1; read: 1000 + 512*1 *)
  check (Alcotest.float 1e-6) "timing" (1000.0 +. 10.0 +. 1000.0 +. 512.0) !elapsed;
  check Alcotest.int "ops" 2 (Disk.ops d);
  check Alcotest.int "bytes written" 10 (Disk.bytes_written d)

let test_disk_serialises_requests () =
  let eng = Engine.create () in
  let d = Disk.create eng ~name:"d1" ~blocks:4 ~block_size:512 ~seek_us:100.0 ~transfer_us_per_byte:0.0 () in
  let finish_times = ref [] in
  for i = 0 to 2 do
    Engine.spawn eng (fun () ->
        ignore (Disk.read d ~block:i);
        finish_times := Engine.now eng :: !finish_times)
  done;
  Engine.run eng;
  check Alcotest.(list (float 1e-6)) "one at a time" [ 100.0; 200.0; 300.0 ]
    (List.rev !finish_times)

let test_disk_raw_uncharged () =
  let eng = Engine.create () in
  let d = Disk.create eng ~name:"d2" ~blocks:4 ~block_size:512 () in
  Disk.write_raw d ~block:0 (Bytes.of_string "raw");
  check Alcotest.string "raw roundtrip" "raw" (Bytes.to_string (Bytes.sub (Disk.read_raw d ~block:0) 0 3));
  check Alcotest.int "no charged ops" 0 (Disk.ops d)

let test_disk_reattach_shares_bytes () =
  let eng = Engine.create () in
  let d = Disk.create eng ~name:"d3" ~blocks:4 ~block_size:512 () in
  Disk.write_raw d ~block:1 (Bytes.of_string "persist");
  let eng2 = Engine.create () in
  let d2 = Disk.reattach d eng2 in
  check Alcotest.string "contents survive" "persist"
    (Bytes.to_string (Bytes.sub (Disk.read_raw d2 ~block:1) 0 7));
  check Alcotest.int "stats reset" 0 (Disk.ops d2)

let test_disk_bounds () =
  let eng = Engine.create () in
  let d = Disk.create eng ~name:"d4" ~blocks:4 ~block_size:512 () in
  Engine.spawn eng (fun () ->
      Alcotest.check_raises "out of range" (Invalid_argument "Disk d4: block 9 out of range")
        (fun () -> ignore (Disk.read d ~block:9)));
  Engine.run eng

(* ---- net ------------------------------------------------------------------ *)

let test_net_latency_and_fifo () =
  let eng = Engine.create () in
  let net = Net.create eng ~latency_us:100.0 ~us_per_byte:1.0 () in
  let arrivals = ref [] in
  Engine.spawn eng (fun () ->
      (* Big message first, then small: FIFO per channel means the small
         one must NOT overtake. *)
      Net.deliver net ~src:0 ~dst:1 ~bytes:1000 (fun () -> arrivals := ("big", Engine.now eng) :: !arrivals);
      Net.deliver net ~src:0 ~dst:1 ~bytes:10 (fun () -> arrivals := ("small", Engine.now eng) :: !arrivals));
  Engine.run eng;
  (match List.rev !arrivals with
  | [ ("big", t1); ("small", t2) ] ->
    check (Alcotest.float 1e-6) "big arrival" 1100.0 t1;
    check (Alcotest.float 1e-6) "small queued behind" 1110.0 t2
  | _ -> Alcotest.fail "wrong arrival order");
  check Alcotest.int "messages" 2 (Net.messages net);
  check Alcotest.int "bytes" 1010 (Net.bytes_carried net)

let test_net_local_free () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let fired = ref false in
  Net.deliver net ~src:3 ~dst:3 ~bytes:100000 (fun () -> fired := true);
  Alcotest.(check bool) "same host is immediate" true !fired;
  check Alcotest.int "not counted" 0 (Net.messages net)

let test_net_independent_channels () =
  let eng = Engine.create () in
  let net = Net.create eng ~latency_us:10.0 ~us_per_byte:1.0 () in
  let t_ab = ref 0.0 and t_cd = ref 0.0 in
  Engine.spawn eng (fun () ->
      Net.deliver net ~src:0 ~dst:1 ~bytes:1000 (fun () -> t_ab := Engine.now eng);
      Net.deliver net ~src:2 ~dst:3 ~bytes:1000 (fun () -> t_cd := Engine.now eng));
  Engine.run eng;
  check (Alcotest.float 1e-6) "a->b" 1010.0 !t_ab;
  (* The distinct channel is not serialised behind a->b. *)
  check (Alcotest.float 1e-6) "c->d parallel" 1010.0 !t_cd

(* ---- machine --------------------------------------------------------------- *)

let test_machine_presets () =
  check Alcotest.string "uma" "UMA" (Machine.class_to_string Machine.multimax.Machine.mp_class);
  check Alcotest.string "numa" "NUMA" (Machine.class_to_string Machine.butterfly.Machine.mp_class);
  check Alcotest.string "norma" "NORMA" (Machine.class_to_string Machine.hypercube.Machine.mp_class);
  (* The paper's ratios. *)
  let b = Machine.butterfly in
  (match b.Machine.remote_access_us with
  | Some r -> check (Alcotest.float 1e-9) "butterfly 10x" 10.0 (r /. b.Machine.local_access_us)
  | None -> Alcotest.fail "butterfly has remote access");
  (match Machine.multimax.Machine.remote_access_us with
  | Some r -> Alcotest.(check bool) "multimax sub-microsecond" true (r < 1.0)
  | None -> Alcotest.fail "multimax has remote access");
  Alcotest.(check bool) "hypercube no remote" true (Machine.hypercube.Machine.remote_access_us = None);
  Alcotest.(check bool) "hypercube hundreds of us" true
    (Machine.hypercube.Machine.net_latency_us >= 100.0)

let test_machine_access_us () =
  let p = Machine.butterfly in
  check (Alcotest.float 1e-9) "local words" 5.0 (Machine.access_us p ~remote:false ~words:10);
  check (Alcotest.float 1e-9) "remote words" 50.0 (Machine.access_us p ~remote:true ~words:10);
  Alcotest.check_raises "norma remote access rejected"
    (Invalid_argument "Machine.access_us: NORMA machines have no remote memory access") (fun () ->
      ignore (Machine.access_us Machine.hypercube ~remote:true ~words:1))

let test_machine_custom () =
  let p = Machine.custom ~cpus:99 ~local_access_us:0.25 Machine.Numa in
  check Alcotest.int "cpus" 99 p.Machine.cpus;
  check (Alcotest.float 1e-9) "local" 0.25 p.Machine.local_access_us;
  Alcotest.(check bool) "class" true (p.Machine.mp_class = Machine.Numa)

let () =
  Alcotest.run "hw"
    [
      ( "prot",
        [
          Alcotest.test_case "basics" `Quick test_prot_basics;
          Alcotest.test_case "algebra" `Quick test_prot_algebra;
          QCheck_alcotest.to_alcotest prot_prop;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_phys_exhaustion;
          Alcotest.test_case "zeroed on free" `Quick test_phys_zeroed_on_free;
          Alcotest.test_case "double free rejected" `Quick test_phys_double_free_rejected;
          Alcotest.test_case "copy and ref/mod bits" `Quick test_phys_copy_and_bits;
        ] );
      ( "pmap",
        [
          Alcotest.test_case "enter and access" `Quick test_pmap_enter_access;
          Alcotest.test_case "protection fault" `Quick test_pmap_protection_fault;
          Alcotest.test_case "remove range" `Quick test_pmap_remove_range;
          Alcotest.test_case "frames mapping" `Quick test_pmap_frames_mapping;
        ] );
      ( "disk",
        [
          Alcotest.test_case "roundtrip and timing" `Quick test_disk_roundtrip_and_timing;
          Alcotest.test_case "serialises requests" `Quick test_disk_serialises_requests;
          Alcotest.test_case "raw access uncharged" `Quick test_disk_raw_uncharged;
          Alcotest.test_case "reattach shares bytes" `Quick test_disk_reattach_shares_bytes;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency and fifo" `Quick test_net_latency_and_fifo;
          Alcotest.test_case "local delivery free" `Quick test_net_local_free;
          Alcotest.test_case "independent channels" `Quick test_net_independent_channels;
        ] );
      ( "machine",
        [
          Alcotest.test_case "paper presets" `Quick test_machine_presets;
          Alcotest.test_case "access_us" `Quick test_machine_access_us;
          Alcotest.test_case "custom" `Quick test_machine_custom;
        ] );
    ]
