(* The traditional-UNIX comparison system: buffer cache and the
   read/write file path. *)

module Engine = Mach_sim.Engine
module Disk = Mach_hw.Disk
module Machine = Mach_hw.Machine
module Buffer_cache = Mach_baseline.Buffer_cache
module Unix_fs = Mach_baseline.Unix_fs
module Fs_layout = Mach_fs.Fs_layout

let check = Alcotest.check
let bs = 4096

let in_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"body" (fun () -> result := Some (f eng));
  Engine.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "body blocked"

let make_disk eng = Disk.create eng ~name:"bd" ~blocks:512 ~block_size:bs ()

(* ---- buffer cache --------------------------------------------------------- *)

let test_cache_hit_miss () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let bc = Buffer_cache.create ~disk ~buffers:4 in
      Disk.write_raw disk ~block:7 (Bytes.make bs 'x');
      ignore (Buffer_cache.bread bc ~block:7);
      check Alcotest.int "first is a miss" 1 (Buffer_cache.misses bc);
      ignore (Buffer_cache.bread bc ~block:7);
      check Alcotest.int "second is a hit" 1 (Buffer_cache.hits bc);
      check Alcotest.int "one disk read" 1 (Disk.reads disk))

let test_cache_lru_eviction () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let bc = Buffer_cache.create ~disk ~buffers:2 in
      ignore (Buffer_cache.bread bc ~block:0);
      ignore (Buffer_cache.bread bc ~block:1);
      ignore (Buffer_cache.bread bc ~block:0) (* refresh 0 *);
      ignore (Buffer_cache.bread bc ~block:2) (* evicts 1 *);
      Buffer_cache.reset_stats bc;
      ignore (Buffer_cache.bread bc ~block:0);
      check Alcotest.int "0 still cached" 1 (Buffer_cache.hits bc);
      ignore (Buffer_cache.bread bc ~block:1);
      check Alcotest.int "1 was evicted" 1 (Buffer_cache.misses bc))

let test_cache_delayed_write () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let bc = Buffer_cache.create ~disk ~buffers:2 in
      Buffer_cache.bwrite bc ~block:3 (Bytes.make bs 'w');
      check Alcotest.int "write delayed" 0 (Disk.writes disk);
      Buffer_cache.sync bc;
      check Alcotest.int "sync flushes" 1 (Disk.writes disk);
      check Alcotest.string "data on disk" "w"
        (String.make 1 (Bytes.get (Disk.read_raw disk ~block:3) 0)))

let test_cache_eviction_writes_back () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let bc = Buffer_cache.create ~disk ~buffers:1 in
      Buffer_cache.bwrite bc ~block:5 (Bytes.make bs 'd');
      ignore (Buffer_cache.bread bc ~block:6);
      (* evicts dirty 5 *)
      check Alcotest.int "writeback on eviction" 1 (Buffer_cache.writebacks bc);
      check Alcotest.string "dirty data persisted" "d"
        (String.make 1 (Bytes.get (Disk.read_raw disk ~block:5) 0)))

(* ---- unix fs --------------------------------------------------------------- *)

let make_ufs eng = Unix_fs.create Machine.uniprocessor ~disk:(make_disk eng) ~cache_buffers:8 ~format:true

let test_unix_rw_roundtrip () =
  in_sim (fun eng ->
      let ufs = make_ufs eng in
      Unix_fs.write_file ufs "f" (Bytes.of_string "unix file data");
      (match Unix_fs.read_file ufs "f" with
      | Some b -> check Alcotest.string "roundtrip" "unix file data" (Bytes.to_string b)
      | None -> Alcotest.fail "file missing");
      check Alcotest.(option int) "size" (Some 14) (Unix_fs.file_size ufs "f"))

let test_unix_partial_rw () =
  in_sim (fun eng ->
      let ufs = make_ufs eng in
      Unix_fs.write_file ufs "f" (Bytes.make 10000 'a');
      Unix_fs.write ufs "f" ~off:5000 (Bytes.of_string "XYZ");
      match Unix_fs.read ufs "f" ~off:4998 ~len:7 with
      | Some b -> check Alcotest.string "overlay" "aaXYZaa" (Bytes.to_string b)
      | None -> Alcotest.fail "read failed")

let test_unix_missing_file () =
  in_sim (fun eng ->
      let ufs = make_ufs eng in
      Alcotest.(check bool) "missing" true (Unix_fs.read_file ufs "nope" = None))

let test_unix_copy_cost_charged () =
  in_sim (fun eng ->
      let ufs = make_ufs eng in
      Unix_fs.write_file ufs "f" (Bytes.make (4 * bs) 'c');
      Unix_fs.sync ufs;
      (* Warm the cache. *)
      ignore (Unix_fs.read_file ufs "f");
      let t0 = Engine.now eng in
      ignore (Unix_fs.read_file ufs "f");
      let warm = Engine.now eng -. t0 in
      (* Fully cached, yet the copy still costs time — the §9 point. *)
      Alcotest.(check bool) "copies cost even when cached" true (warm > 100.0))

let test_unix_cross_block_read () =
  in_sim (fun eng ->
      let ufs = make_ufs eng in
      let data = Bytes.init (2 * bs) (fun i -> Char.chr (32 + (i mod 90))) in
      Unix_fs.write_file ufs "f" data;
      match Unix_fs.read ufs "f" ~off:(bs - 3) ~len:6 with
      | Some b -> check Alcotest.string "crosses boundary" (Bytes.to_string (Bytes.sub data (bs - 3) 6)) (Bytes.to_string b)
      | None -> Alcotest.fail "read failed")

(* ---- fs layout extras ------------------------------------------------------ *)

let test_layout_persistence () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let fs = Fs_layout.format disk ~max_files:16 in
      Fs_layout.write_file fs "persistent" (Bytes.of_string "still here");
      (* Remount from the same platters. *)
      let fs2 = Fs_layout.mount disk in
      (match Fs_layout.read_file fs2 "persistent" with
      | Some b -> check Alcotest.string "survives remount" "still here" (Bytes.to_string b)
      | None -> Alcotest.fail "file lost");
      check Alcotest.(list string) "listing" [ "persistent" ] (Fs_layout.list_files fs2))

let test_layout_delete_frees_blocks () =
  in_sim (fun eng ->
      let disk = make_disk eng in
      let fs = Fs_layout.format disk ~max_files:16 in
      (* Fill and delete repeatedly: blocks must be reclaimed. *)
      for i = 0 to 9 do
        Fs_layout.write_file fs "big" (Bytes.make (40 * bs) (Char.chr (65 + i)));
        Fs_layout.delete fs "big"
      done;
      Fs_layout.write_file fs "after" (Bytes.make (40 * bs) 'z');
      match Fs_layout.read_file fs "after" with
      | Some b -> check Alcotest.int "size" (40 * bs) (Bytes.length b)
      | None -> Alcotest.fail "write after churn failed")

let test_layout_indirect_blocks () =
  in_sim (fun eng ->
      let disk = Disk.create eng ~name:"big" ~blocks:512 ~block_size:bs () in
      let fs = Fs_layout.format disk ~max_files:4 in
      (* More than the 20 direct blocks. *)
      let data = Bytes.init (30 * bs) (fun i -> Char.chr (33 + (i / bs))) in
      Fs_layout.write_file fs "indirect" data;
      match Fs_layout.read_file fs "indirect" with
      | Some b ->
        check Alcotest.int "size" (30 * bs) (Bytes.length b);
        check Alcotest.bool "contents" true (Bytes.equal b data)
      | None -> Alcotest.fail "indirect file lost")

(* Model-based property: a random sequence of whole-file writes, reads
   and deletes agrees with a Hashtbl model, including across a
   remount. *)
let fs_layout_model_prop =
  let open QCheck2 in
  let name_gen = Gen.map (fun i -> Printf.sprintf "f%d" (i mod 5)) Gen.small_nat in
  let op_gen =
    Gen.(
      oneof
        [
          map2 (fun n size -> `Write (n, size mod 30000)) name_gen small_nat;
          map (fun n -> `Read n) name_gen;
          map (fun n -> `Delete n) name_gen;
          pure `Remount;
        ])
  in
  Test.make ~name:"fs_layout agrees with model under random ops" ~count:40
    Gen.(list_size (int_range 1 25) op_gen)
    (fun ops ->
      let eng = Engine.create () in
      let ok = ref true in
      Engine.spawn eng ~name:"body" (fun () ->
          let disk = Disk.create eng ~name:"prop" ~blocks:1024 ~block_size:bs () in
          let fs = ref (Fs_layout.format disk ~max_files:16) in
          let model : (string, bytes) Hashtbl.t = Hashtbl.create 8 in
          let fill = ref 0 in
          List.iter
            (fun op ->
              match op with
              | `Write (n, size) ->
                incr fill;
                let data = Bytes.make size (Char.chr (33 + (!fill mod 90))) in
                Fs_layout.write_file !fs n data;
                Hashtbl.replace model n data
              | `Read n -> (
                match (Fs_layout.read_file !fs n, Hashtbl.find_opt model n) with
                | Some a, Some b -> if not (Bytes.equal a b) then ok := false
                | None, None -> ()
                | Some _, None | None, Some _ -> ok := false)
              | `Delete n ->
                Fs_layout.delete !fs n;
                Hashtbl.remove model n
              | `Remount -> fs := Fs_layout.mount disk)
            ops;
          (* Final audit. *)
          Hashtbl.iter
            (fun n data ->
              match Fs_layout.read_file !fs n with
              | Some b -> if not (Bytes.equal b data) then ok := false
              | None -> ok := false)
            model;
          if List.length (Fs_layout.list_files !fs) <> Hashtbl.length model then ok := false);
      Engine.run eng;
      !ok)

let () =
  Alcotest.run "baseline"
    [
      ( "buffer-cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "delayed write" `Quick test_cache_delayed_write;
          Alcotest.test_case "eviction writes back" `Quick test_cache_eviction_writes_back;
        ] );
      ( "unix-fs",
        [
          Alcotest.test_case "roundtrip" `Quick test_unix_rw_roundtrip;
          Alcotest.test_case "partial read/write" `Quick test_unix_partial_rw;
          Alcotest.test_case "missing file" `Quick test_unix_missing_file;
          Alcotest.test_case "copy cost charged when cached" `Quick test_unix_copy_cost_charged;
          Alcotest.test_case "cross-block read" `Quick test_unix_cross_block_read;
        ] );
      ( "fs-layout",
        [
          Alcotest.test_case "persistence across mount" `Quick test_layout_persistence;
          Alcotest.test_case "delete frees blocks" `Quick test_layout_delete_frees_blocks;
          Alcotest.test_case "indirect blocks" `Quick test_layout_indirect_blocks;
          QCheck_alcotest.to_alcotest fs_layout_model_prop;
        ] );
    ]
