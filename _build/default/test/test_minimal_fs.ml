(* The §4.1 minimal filesystem: read-whole-file / write-whole-file with
   copy-on-write reads through the external pager. *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Fs_layout = Mach_fs.Fs_layout

let check = Alcotest.check
let page = 4096

type env = { sys : Kernel.system; fsrv : Minimal_fs.t; client : task }

let with_fs f =
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:2048 ~block_size:page () in
  let result = ref None in
  (* All scenario code, including server boot, runs inside the
     simulation (boot blocks on simulated syscalls). *)
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"client" () in
      ignore
        (Thread.spawn client ~name:"client.main" (fun () ->
             result := Some (f { sys; fsrv; client }))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "client thread did not complete (deadlock?)"

let expect_read env name =
  match Minimal_fs.Client.read_file env.client ~server:(Minimal_fs.service_port env.fsrv) name with
  | Ok (addr, size) -> (addr, size)
  | Error e -> Alcotest.failf "read_file: %a" Minimal_fs.Client.pp_error e

let expect_write env name data =
  match
    Minimal_fs.Client.write_file env.client ~server:(Minimal_fs.service_port env.fsrv) name data
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write_file: %a" Minimal_fs.Client.pp_error e

let read_mem env addr len =
  match Syscalls.read_bytes env.client ~addr ~len () with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "memory read: %a" Access.pp_error e

let test_write_then_read () =
  with_fs (fun env ->
      expect_write env "hello.txt" (Bytes.of_string "file contents here");
      let addr, size = expect_read env "hello.txt" in
      check Alcotest.int "size" 18 size;
      check Alcotest.string "contents" "file contents here" (read_mem env addr size))

let test_missing_file () =
  with_fs (fun env ->
      match
        Minimal_fs.Client.read_file env.client ~server:(Minimal_fs.service_port env.fsrv) "nope"
      with
      | Error `No_such_file -> ()
      | Ok _ -> Alcotest.fail "expected failure"
      | Error e -> Alcotest.failf "wrong error: %a" Minimal_fs.Client.pp_error e)

let test_copy_on_write_isolation () =
  with_fs (fun env ->
      expect_write env "f" (Bytes.of_string "original!");
      let addr, size = expect_read env "f" in
      (* Client scribbles on its mapping (the §4.1 example's random
         changes)... *)
      (match Syscalls.write_bytes env.client ~addr (Bytes.of_string "SCRIBBLE") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "scribble: %a" Access.pp_error e);
      (* ...but a fresh read still sees the original contents. *)
      let addr2, size2 = expect_read env "f" in
      check Alcotest.int "size unchanged" size size2;
      check Alcotest.string "file unchanged" "original!" (read_mem env addr2 size2);
      check Alcotest.string "scribble visible privately" "SCRIBBLE!" (read_mem env addr size))

let test_write_back_visible () =
  with_fs (fun env ->
      expect_write env "f" (Bytes.of_string "version-1");
      let addr, size = expect_read env "f" in
      check Alcotest.string "v1" "version-1" (read_mem env addr size);
      expect_write env "f" (Bytes.of_string "version-2");
      let addr2, size2 = expect_read env "f" in
      check Alcotest.string "v2 after invalidation" "version-2" (read_mem env addr2 size2))

let test_multi_page_file () =
  with_fs (fun env ->
      let data = Bytes.init (3 * page) (fun i -> Char.chr (0x30 + (i / page))) in
      expect_write env "big" data;
      let addr, size = expect_read env "big" in
      check Alcotest.int "size" (3 * page) size;
      check Alcotest.string "page0" "0" (read_mem env addr 1);
      check Alcotest.string "page1" "1" (read_mem env (addr + page) 1);
      check Alcotest.string "page2" "2" (read_mem env (addr + (2 * page)) 1))

let test_cache_hit_second_read () =
  with_fs (fun env ->
      let data = Bytes.make (4 * page) 'x' in
      expect_write env "cached" data;
      let disk = Fs_layout.disk (Minimal_fs.fs env.fsrv) in
      let addr, _ = expect_read env "cached" in
      ignore (read_mem env addr (4 * page));
      let reads_after_first = Disk.reads disk in
      Syscalls.vm_deallocate env.client ~addr ~size:(4 * page);
      (* Second read of the same file: pages must come from the
         kernel's object cache, not the disk (§9). *)
      let addr2, _ = expect_read env "cached" in
      ignore (read_mem env addr2 (4 * page));
      check Alcotest.int "no new disk reads on re-read" reads_after_first (Disk.reads disk))

let test_disk_full_is_an_error_not_a_crash () =
  (* A tiny disk: the server must reply with an error, not die. *)
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"tiny" ~blocks:24 ~block_size:page () in
  let outcome = ref `Pending in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"client" () in
      ignore
        (Thread.spawn client ~name:"client.main" (fun () ->
             let server = Minimal_fs.service_port fsrv in
             match Minimal_fs.Client.write_file client ~server "huge" (Bytes.make (64 * page) 'x') with
             | Error (`Server_error _) -> (
               (* The server survived: a small write still works. *)
               match Minimal_fs.Client.write_file client ~server "small" (Bytes.of_string "ok") with
               | Ok () -> outcome := `Survived
               | Error _ -> outcome := `Server_broken)
             | Ok () -> outcome := `Unexpected_success
             | Error _ -> outcome := `Wrong_error)));
  Engine.run sys.Kernel.engine;
  match !outcome with
  | `Survived -> ()
  | `Pending -> Alcotest.fail "scenario did not finish (server crashed?)"
  | `Unexpected_success -> Alcotest.fail "huge write should fail"
  | `Server_broken -> Alcotest.fail "server unusable after disk-full error"
  | `Wrong_error -> Alcotest.fail "wrong error kind"

let test_map_file_roundtrip () =
  with_fs (fun env ->
      expect_write env "m" (Bytes.of_string "map-me");
      match Minimal_fs.Client.map_file env.client ~server:(Minimal_fs.service_port env.fsrv) "m" with
      | Ok (addr, size) ->
        check Alcotest.int "size" 6 size;
        check Alcotest.string "contents" "map-me" (read_mem env addr size)
      | Error e -> Alcotest.failf "map_file: %a" Minimal_fs.Client.pp_error e)

let test_list_files () =
  with_fs (fun env ->
      expect_write env "a" (Bytes.of_string "1");
      expect_write env "b" (Bytes.of_string "2");
      match Minimal_fs.Client.list_files env.client ~server:(Minimal_fs.service_port env.fsrv) with
      | Ok files -> check Alcotest.(list string) "listing" [ "a"; "b" ] files
      | Error e -> Alcotest.failf "list: %a" Minimal_fs.Client.pp_error e)

let () =
  Alcotest.run "minimal_fs"
    [
      ( "minimal-fs",
        [
          Alcotest.test_case "write then read" `Quick test_write_then_read;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "copy-on-write isolation" `Quick test_copy_on_write_isolation;
          Alcotest.test_case "write-back visible after flush" `Quick test_write_back_visible;
          Alcotest.test_case "multi-page file" `Quick test_multi_page_file;
          Alcotest.test_case "second read hits memory cache" `Quick test_cache_hit_second_read;
          Alcotest.test_case "list files" `Quick test_list_files;
          Alcotest.test_case "disk full is an error, not a crash" `Quick
            test_disk_full_is_an_error_not_a_crash;
          Alcotest.test_case "map_file roundtrip" `Quick test_map_file_roundtrip;
        ] );
    ]
