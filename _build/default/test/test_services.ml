(* Newer kernel services and API extensions: vm_wire, the name server,
   Minimal_fs.map_file, and the Memory_object_server skeleton itself. *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Mos = Memory_object_server

let check = Alcotest.check
let page = 4096

let with_system ?config f =
  let sys = Kernel.create_system ?config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore (Thread.spawn task ~name:"app.main" (fun () -> result := Some (f sys task))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "main thread did not complete (deadlock?)"

(* ---- vm_wire -------------------------------------------------------------- *)

let test_wired_pages_survive_pressure () =
  let config = { Kernel.default_config with Kernel.phys_frames = 64 } in
  with_system ~config (fun sys task ->
      let wired_pages = 4 in
      let wired = Syscalls.vm_allocate task ~size:(wired_pages * page) ~anywhere:true () in
      for i = 0 to wired_pages - 1 do
        ignore (Syscalls.write_bytes task ~addr:(wired + (i * page)) (Bytes.of_string "pinned") ())
      done;
      (match Syscalls.vm_wire task ~addr:wired ~size:(wired_pages * page) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "wire: %a" Access.pp_error e);
      (* Stream enough anonymous memory to evict everything evictable. *)
      let n = 150 in
      let churn = Syscalls.vm_allocate task ~size:(n * page) ~anywhere:true () in
      for i = 0 to n - 1 do
        ignore (Syscalls.write_bytes task ~addr:(churn + (i * page)) (Bytes.make 8 'c') ())
      done;
      (* The wired pages must never have been paged out: reading them
         causes no pageins. *)
      let before = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      for i = 0 to wired_pages - 1 do
        match Syscalls.read_bytes task ~addr:(wired + (i * page)) ~len:6 () with
        | Ok b -> check Alcotest.string "pinned data" "pinned" (Bytes.to_string b)
        | Error e -> Alcotest.failf "wired read: %a" Access.pp_error e
      done;
      let after = (Kernel.stats sys.Kernel.kernel).Vm_types.s_pageins in
      check Alcotest.int "no pageins for wired pages" 0 (after - before);
      (* After unwiring they become evictable again (no crash). *)
      Syscalls.vm_unwire task ~addr:wired ~size:(wired_pages * page))

let test_wire_faults_pages_in () =
  with_system (fun _sys task ->
      let addr = Syscalls.vm_allocate task ~size:(2 * page) ~anywhere:true () in
      (* Never touched: wiring itself must fault the pages in. *)
      (match Syscalls.vm_wire task ~addr ~size:(2 * page) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "wire: %a" Access.pp_error e);
      match Syscalls.read_bytes task ~addr ~len:4 () with
      | Ok b -> check Alcotest.string "zeroed" "\000\000\000\000" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e)

(* ---- name server ----------------------------------------------------------- *)

let test_name_server_check_in_look_up () =
  with_system (fun sys task ->
      let ns = Name_server.start sys.Kernel.kernel () in
      let server = Name_server.service_port ns in
      let my_name = Syscalls.port_allocate task () in
      let my_port = Port_space.lookup_exn (Task.space task) my_name in
      (match Name_server.Client.check_in task ~server "my-service" my_port with
      | Ok () -> ()
      | Error e -> Alcotest.failf "check_in: %a" Name_server.Client.pp_error e);
      check Alcotest.(list string) "registered" [ "my-service" ] (Name_server.registered ns);
      (* Another task finds it and talks to it. *)
      let other = Task.create sys.Kernel.kernel ~name:"other" () in
      let got = Ivar.create () in
      ignore
        (Thread.spawn other ~name:"other.main" (fun () ->
             match Name_server.Client.look_up other ~server "my-service" with
             | Ok port ->
               ignore
                 (Syscalls.msg_send other (Message.make ~dest:port [ Message.Data (Bytes.of_string "hi") ]));
               Ivar.fill got true
             | Error _ -> Ivar.fill got false));
      Alcotest.(check bool) "looked up" true (Ivar.read got);
      match Syscalls.msg_receive task ~from:(`Port my_name) () with
      | Ok msg -> check Alcotest.string "delivered" "hi" (Bytes.to_string (Message.data_exn msg))
      | Error _ -> Alcotest.fail "message not delivered")

let test_name_server_missing_and_checkout () =
  with_system (fun sys task ->
      let ns = Name_server.start sys.Kernel.kernel () in
      let server = Name_server.service_port ns in
      (match Name_server.Client.look_up task ~server "ghost" with
      | Error `Not_found -> ()
      | Ok _ -> Alcotest.fail "expected not found"
      | Error e -> Alcotest.failf "wrong error: %a" Name_server.Client.pp_error e);
      let n = Syscalls.port_allocate task () in
      let p = Port_space.lookup_exn (Task.space task) n in
      ignore (Name_server.Client.check_in task ~server "temp" p);
      ignore (Name_server.Client.check_out task ~server "temp");
      match Name_server.Client.look_up task ~server "temp" with
      | Error `Not_found -> ()
      | Ok _ -> Alcotest.fail "should be checked out"
      | Error e -> Alcotest.failf "wrong error: %a" Name_server.Client.pp_error e)

let test_name_server_reregistration_replaces () =
  with_system (fun sys task ->
      let ns = Name_server.start sys.Kernel.kernel () in
      let server = Name_server.service_port ns in
      let n1 = Syscalls.port_allocate task () in
      let p1 = Port_space.lookup_exn (Task.space task) n1 in
      let n2 = Syscalls.port_allocate task () in
      let p2 = Port_space.lookup_exn (Task.space task) n2 in
      ignore (Name_server.Client.check_in task ~server "svc" p1);
      ignore (Name_server.Client.check_in task ~server "svc" p2);
      match Name_server.Client.look_up task ~server "svc" with
      | Ok p -> Alcotest.(check bool) "latest wins" true (Mach_ipc.Port.equal p p2)
      | Error e -> Alcotest.failf "lookup: %a" Name_server.Client.pp_error e)

let test_name_server_dead_port_pruned () =
  with_system (fun sys task ->
      let ns = Name_server.start sys.Kernel.kernel () in
      let server = Name_server.service_port ns in
      let n = Syscalls.port_allocate task () in
      let p = Port_space.lookup_exn (Task.space task) n in
      ignore (Name_server.Client.check_in task ~server "mortal" p);
      Syscalls.port_deallocate task n;
      (* receive right gone: port dead *)
      match Name_server.Client.look_up task ~server "mortal" with
      | Error `Not_found -> ()
      | Ok _ -> Alcotest.fail "dead registration must not resolve"
      | Error e -> Alcotest.failf "wrong error: %a" Name_server.Client.pp_error e)

(* ---- map_file (footnote 7) -------------------------------------------------- *)

let test_map_file_direct_rw () =
  with_system (fun sys task ->
      let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:512 ~block_size:page () in
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      (match Minimal_fs.Client.write_file task ~server "f" (Bytes.of_string "disk-bytes") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %a" Minimal_fs.Client.pp_error e);
      let addr, size =
        match Minimal_fs.Client.map_file task ~server "f" with
        | Ok r -> r
        | Error e -> Alcotest.failf "map: %a" Minimal_fs.Client.pp_error e
      in
      check Alcotest.int "size" 10 size;
      (match Syscalls.read_bytes task ~addr ~len:size () with
      | Ok b -> check Alcotest.string "contents" "disk-bytes" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %a" Access.pp_error e);
      (* Direct write is allowed (no COW). *)
      match Syscalls.write_bytes task ~addr (Bytes.of_string "DIRECT") () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "direct write: %a" Access.pp_error e)

(* ---- Memory_object_server skeleton ------------------------------------------ *)

let test_mos_stop_and_on_other () =
  with_system (fun sys task ->
      let mgr = Task.create sys.Kernel.kernel ~name:"mgr" () in
      let others = ref 0 in
      let cb = { Mos.no_callbacks with Mos.on_other = (fun _ _ -> incr others) } in
      let srv = Mos.start mgr cb in
      let mo = Mos.create_memory_object srv () in
      (* Non-pager traffic reaches on_other. *)
      (match Syscalls.msg_send task (Message.make ~msg_id:777 ~dest:mo [ Message.Data (Bytes.create 1) ]) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "send failed");
      Engine.sleep 10_000.0;
      check Alcotest.int "routed to on_other" 1 !others;
      Mos.stop srv)

(* ---- task ports (§3.2) ------------------------------------------------------ *)

let test_thread_port_ops () =
  with_system (fun sys task ->
      let worker = Task.create sys.Kernel.kernel ~name:"worker" () in
      let progress = ref 0 in
      let th = ref None in
      th :=
        Some
          (Thread.spawn worker ~name:"worker.one" (fun () ->
               for _ = 1 to 100 do
                 Thread.checkpoint (Option.get !th);
                 incr progress;
                 Engine.sleep 50.0
               done));
      (* A second thread in the same task keeps running. *)
      let other_progress = ref 0 in
      ignore
        (Thread.spawn worker ~name:"worker.two" (fun () ->
             for _ = 1 to 100 do
               incr other_progress;
               Engine.sleep 50.0
             done));
      let target = Task_server.thread_port (Option.get !th) in
      Engine.sleep 500.0;
      (match Task_server.Client.suspend task ~target with
      | Ok () -> ()
      | Error e -> Alcotest.failf "suspend: %a" Task_server.Client.pp_error e);
      Engine.sleep 100.0;
      let frozen = !progress and other_before = !other_progress in
      Engine.sleep 2_000.0;
      check Alcotest.int "target thread frozen" frozen !progress;
      Alcotest.(check bool) "sibling thread unaffected" true (!other_progress > other_before);
      (match Task_server.Client.info task ~target with
      | Ok i -> Alcotest.(check bool) "reports suspended" true i.Task_server.Client.ti_suspended
      | Error e -> Alcotest.failf "info: %a" Task_server.Client.pp_error e);
      (match Task_server.Client.resume task ~target with
      | Ok () -> ()
      | Error e -> Alcotest.failf "resume: %a" Task_server.Client.pp_error e);
      Engine.sleep 2_000.0;
      Alcotest.(check bool) "target resumed" true (!progress > frozen))

let test_task_port_info_and_remote_alloc () =
  with_system (fun sys task ->
      let victim = Task.create sys.Kernel.kernel ~name:"victim" () in
      ignore (Syscalls.vm_allocate victim ~size:(3 * page) ~anywhere:true ());
      let target = Task_server.task_port victim in
      (match Task_server.Client.info task ~target with
      | Ok i ->
        check Alcotest.string "name" "victim" i.Task_server.Client.ti_name;
        check Alcotest.int "mapped" (3 * page) i.Task_server.Client.ti_mapped_bytes
      | Error e -> Alcotest.failf "info: %a" Task_server.Client.pp_error e);
      (* Allocate memory in the victim's space by message. *)
      (match Task_server.Client.vm_allocate task ~target ~size:page with
      | Ok addr -> Alcotest.(check bool) "address returned" true (addr > 0)
      | Error e -> Alcotest.failf "remote alloc: %a" Task_server.Client.pp_error e);
      match Task_server.Client.info task ~target with
      | Ok i -> check Alcotest.int "grew" (4 * page) i.Task_server.Client.ti_mapped_bytes
      | Error e -> Alcotest.failf "info 2: %a" Task_server.Client.pp_error e)

let test_task_port_terminate_notifies () =
  with_system (fun sys task ->
      let victim = Task.create sys.Kernel.kernel ~name:"victim" () in
      let target = Task_server.task_port victim in
      (* Hold a send right so we are notified of the port's death. *)
      ignore (Syscalls.port_insert task target Message.Send_right);
      (match Task_server.Client.terminate task ~target with
      | Ok () -> ()
      | Error e -> Alcotest.failf "terminate: %a" Task_server.Client.pp_error e);
      Alcotest.(check bool) "task dead" false (Task.alive victim);
      (* The representing port died with the task. *)
      match Port_space.next_notification (Task.space task) ~timeout:100_000.0 () with
      | Some (Port_space.Port_deleted _) -> ()
      | None -> Alcotest.fail "expected task-port death notification")

let test_cross_host_suspend () =
  (* §3.2: "a thread can suspend another thread by sending a suspend
     message to the port representing that other thread even if the
     request is initiated on another node in a network." *)
  let cluster = Kernel.create_cluster ~hosts:2 () in
  let progressed_while_suspended = ref (-1) in
  let finished = ref false in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let worker_task = Task.create cluster.Kernel.c_kernels.(0) ~name:"worker" () in
      let controller = Task.create cluster.Kernel.c_kernels.(1) ~name:"controller" () in
      let progress = ref 0 in
      let th = ref None in
      th :=
        Some
          (Thread.spawn worker_task ~name:"worker.loop" (fun () ->
               for _ = 1 to 1000 do
                 Thread.checkpoint (Option.get !th);
                 incr progress;
                 Engine.sleep 100.0
               done));
      ignore
        (Thread.spawn controller ~name:"controller.main" (fun () ->
             Engine.sleep 1_000.0;
             let target = Task_server.task_port worker_task in
             (match Task_server.Client.suspend controller ~target with
             | Ok () -> ()
             | Error e -> Alcotest.failf "suspend: %a" Task_server.Client.pp_error e);
             Engine.sleep 500.0;
             (* Allow in-flight step to finish, then observe stillness. *)
             let p0 = !progress in
             Engine.sleep 5_000.0;
             progressed_while_suspended := !progress - p0;
             (match Task_server.Client.resume controller ~target with
             | Ok () -> ()
             | Error e -> Alcotest.failf "resume: %a" Task_server.Client.pp_error e);
             Engine.sleep 5_000.0;
             Alcotest.(check bool) "progress after resume" true (!progress > p0);
             finished := true)));
  Engine.run ~until:2_000_000.0 cluster.Kernel.c_engine;
  check Alcotest.int "no progress while suspended" 0 !progressed_while_suspended;
  Alcotest.(check bool) "controller finished" true !finished

let () =
  Alcotest.run "services"
    [
      ( "vm_wire",
        [
          Alcotest.test_case "wired pages survive pressure" `Quick
            test_wired_pages_survive_pressure;
          Alcotest.test_case "wire faults pages in" `Quick test_wire_faults_pages_in;
        ] );
      ( "name-server",
        [
          Alcotest.test_case "check_in / look_up" `Quick test_name_server_check_in_look_up;
          Alcotest.test_case "missing and check_out" `Quick test_name_server_missing_and_checkout;
          Alcotest.test_case "re-registration replaces" `Quick
            test_name_server_reregistration_replaces;
          Alcotest.test_case "dead registrations pruned" `Quick test_name_server_dead_port_pruned;
        ] );
      ( "fs-map-file",
        [ Alcotest.test_case "direct read/write mapping" `Quick test_map_file_direct_rw ] );
      ( "mos-skeleton",
        [ Alcotest.test_case "on_other routing and stop" `Quick test_mos_stop_and_on_other ] );
      ( "task-ports",
        [
          Alcotest.test_case "thread port suspend/resume" `Quick test_thread_port_ops;
          Alcotest.test_case "info and remote allocation" `Quick
            test_task_port_info_and_remote_alloc;
          Alcotest.test_case "terminate via port, death notified" `Quick
            test_task_port_terminate_notifies;
          Alcotest.test_case "cross-host suspend/resume" `Quick test_cross_host_suspend;
        ] );
    ]
