(* §4.2: consistent network shared memory across two hosts with
   independent kernels. *)

open Mach
module Netmem = Mach_pagers.Netmem

let check = Alcotest.check
let page = 4096

type env = {
  cluster : Kernel.cluster;
  nm : Netmem.t;
  region : Message.port;
  a : task;  (** client on host 0 (the server's host) *)
  b : task;  (** client on host 1 *)
  a_addr : int;
  b_addr : int;
}

let with_shared_region ~size f =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  let result = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size in
      let a = Task.create cluster.Kernel.c_kernels.(0) ~name:"client-a" () in
      let b = Task.create cluster.Kernel.c_kernels.(1) ~name:"client-b" () in
      ignore
        (Thread.spawn a ~name:"client-a.main" (fun () ->
             (* Map at different addresses on the two clients, as the
                paper notes is allowed. *)
             let a_addr =
               Syscalls.vm_allocate_with_pager a ~size ~anywhere:true ~memory_object:region
                 ~offset:0 ()
             in
             let b_addr =
               Syscalls.vm_allocate_with_pager b ~size ~anywhere:true ~memory_object:region
                 ~offset:0 ()
             in
             result := Some (f { cluster; nm; region; a; b; a_addr; b_addr }))));
  Engine.run cluster.Kernel.c_engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "scenario did not complete (deadlock?)"

let read_str task ~addr ~len =
  match Syscalls.read_bytes task ~addr ~len () with
  | Ok b -> Bytes.to_string b
  | Error e -> Alcotest.failf "%s read: %a" (Task.name task) Access.pp_error e

let write_str task ~addr s =
  match Syscalls.write_bytes task ~addr (Bytes.of_string s) () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s write: %a" (Task.name task) Access.pp_error e

let test_read_sharing () =
  with_shared_region ~size:(2 * page) (fun env ->
      Netmem.write_initial env.nm ~region:env.region ~offset:0 (Bytes.of_string "shared-data");
      check Alcotest.string "A reads" "shared-data" (read_str env.a ~addr:env.a_addr ~len:11);
      check Alcotest.string "B reads" "shared-data" (read_str env.b ~addr:env.b_addr ~len:11);
      (* Both kernels now cache the page read-only. *)
      match Netmem.page_state env.nm ~region:env.region ~page:0 with
      | `Readers n -> check Alcotest.int "two reader kernels" 2 n
      | `Idle | `Writer -> Alcotest.fail "expected readers")

let test_write_invalidates_readers () =
  with_shared_region ~size:page (fun env ->
      Netmem.write_initial env.nm ~region:env.region ~offset:0 (Bytes.of_string "vvvvv");
      ignore (read_str env.a ~addr:env.a_addr ~len:5);
      ignore (read_str env.b ~addr:env.b_addr ~len:5);
      let inv_before = Netmem.invalidations env.nm in
      (* A writes: B (the other reader) must be invalidated first. *)
      write_str env.a ~addr:env.a_addr "AAAAA";
      Alcotest.(check bool) "invalidation happened" true (Netmem.invalidations env.nm > inv_before);
      check Alcotest.string "A sees own write" "AAAAA" (read_str env.a ~addr:env.a_addr ~len:5);
      (* B re-reads: must observe A's committed write (A's dirty page
         is pulled back by the server when B's read invalidates A). *)
      check Alcotest.string "B sees A's write" "AAAAA" (read_str env.b ~addr:env.b_addr ~len:5))

let test_ping_pong () =
  with_shared_region ~size:page (fun env ->
      (* Alternating writers force repeated ownership transfer. *)
      write_str env.a ~addr:env.a_addr "a1";
      check Alcotest.string "b sees a1" "a1" (read_str env.b ~addr:env.b_addr ~len:2);
      write_str env.b ~addr:env.b_addr "b2";
      check Alcotest.string "a sees b2" "b2" (read_str env.a ~addr:env.a_addr ~len:2);
      write_str env.a ~addr:env.a_addr "a3";
      check Alcotest.string "b sees a3" "a3" (read_str env.b ~addr:env.b_addr ~len:2);
      Alcotest.(check bool) "write grants issued" true (Netmem.grants env.nm >= 3))

let test_different_pages_no_conflict () =
  with_shared_region ~size:(2 * page) (fun env ->
      (* Writers on different pages should not invalidate each other. *)
      write_str env.a ~addr:env.a_addr "page0-by-a";
      write_str env.b ~addr:(env.b_addr + page) "page1-by-b";
      let inv = Netmem.invalidations env.nm in
      write_str env.a ~addr:env.a_addr "page0-again";
      write_str env.b ~addr:(env.b_addr + page) "page1-again";
      check Alcotest.int "no extra invalidations" inv (Netmem.invalidations env.nm);
      check Alcotest.string "b sees a's page0" "page0-again"
        (read_str env.b ~addr:env.b_addr ~len:11))

let test_unmap_cleans_up_client () =
  with_shared_region ~size:page (fun env ->
      Netmem.write_initial env.nm ~region:env.region ~offset:0 (Bytes.of_string "zzz");
      ignore (read_str env.a ~addr:env.a_addr ~len:3);
      ignore (read_str env.b ~addr:env.b_addr ~len:3);
      (* B drops its mapping entirely: its kernel terminates the object
         and the server hears the request port die. *)
      Syscalls.vm_deallocate env.b ~addr:env.b_addr ~size:page;
      Engine.sleep 50_000.0;
      (* A can still write without waiting on the departed kernel. *)
      write_str env.a ~addr:env.a_addr "AAA";
      check Alcotest.string "a still works" "AAA" (read_str env.a ~addr:env.a_addr ~len:3))

let test_write_back_on_unmap () =
  with_shared_region ~size:page (fun env ->
      (* A writes and unmaps without anyone else reading: the dirty page
         must flow back to the server (terminate cleans dirty pages). *)
      write_str env.a ~addr:env.a_addr "precious";
      Syscalls.vm_deallocate env.a ~addr:env.a_addr ~size:page;
      Engine.sleep 100_000.0;
      check Alcotest.string "server received the data" "precious"
        (Bytes.to_string (Netmem.read_authoritative env.nm ~region:env.region ~offset:0 ~len:8)))

let test_interleaved_stress () =
  with_shared_region ~size:(4 * page) (fun env ->
      (* Concurrent mixed traffic on disjoint pages, then a strict
         cross-check; coherence must hold page-by-page. *)
      let fin_a = Ivar.create () and fin_b = Ivar.create () in
      ignore
        (Thread.spawn env.a ~name:"stress-a" (fun () ->
             for round = 0 to 9 do
               write_str env.a ~addr:env.a_addr (Printf.sprintf "a%02d" round);
               ignore (read_str env.a ~addr:(env.a_addr + page) ~len:3)
             done;
             Ivar.fill fin_a ()));
      ignore
        (Thread.spawn env.b ~name:"stress-b" (fun () ->
             for round = 0 to 9 do
               write_str env.b ~addr:(env.b_addr + page) (Printf.sprintf "b%02d" round);
               ignore (read_str env.b ~addr:env.b_addr ~len:3)
             done;
             Ivar.fill fin_b ()));
      Ivar.read fin_a;
      Ivar.read fin_b;
      check Alcotest.string "b sees a's last" "a09" (read_str env.b ~addr:env.b_addr ~len:3);
      check Alcotest.string "a sees b's last" "b09" (read_str env.a ~addr:(env.a_addr + page) ~len:3))

(* Regression: a writer waiting for the manager's unlock while its page
   is flushed out from under it must refault, not time out (found by a
   3-host contention storm). *)
let test_three_host_contention_storm () =
  let pages = 4 in
  let cluster = Kernel.create_cluster ~hosts:3 () in
  let finished = ref 0 in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(pages * page) in
      for host = 0 to 2 do
        let task =
          Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "storm-%d" host) ()
        in
        ignore
          (Thread.spawn task ~name:(Printf.sprintf "storm-%d.main" host) (fun () ->
               let addr =
                 Syscalls.vm_allocate_with_pager task ~size:(pages * page) ~anywhere:true
                   ~memory_object:region ~offset:0 ()
               in
               let rng = Mach_util.Rng.create ((host * 7) + 3) in
               for _ = 0 to 199 do
                 let p = Mach_util.Rng.int rng pages in
                 let w = Mach_util.Rng.float rng 1.0 < 0.1 in
                 match
                   Syscalls.touch task ~addr:(addr + (p * page)) ~write:w
                     ~policy:(Fault.Abort_after 10_000_000.0) ()
                 with
                 | Ok () -> ()
                 | Error e -> Alcotest.failf "storm access: %a" Access.pp_error e
               done;
               incr finished))
      done);
  Engine.run cluster.Kernel.c_engine;
  check Alcotest.int "all three hosts completed" 3 !finished

let () =
  Alcotest.run "netmem"
    [
      ( "coherence",
        [
          Alcotest.test_case "read sharing across hosts" `Quick test_read_sharing;
          Alcotest.test_case "write invalidates readers" `Quick test_write_invalidates_readers;
          Alcotest.test_case "ownership ping-pong" `Quick test_ping_pong;
          Alcotest.test_case "distinct pages are independent" `Quick test_different_pages_no_conflict;
          Alcotest.test_case "unmap cleans up a client" `Quick test_unmap_cleans_up_client;
          Alcotest.test_case "dirty data written back on unmap" `Quick test_write_back_on_unmap;
          Alcotest.test_case "interleaved stress stays coherent" `Quick test_interleaved_stress;
          Alcotest.test_case "three-host contention storm" `Quick test_three_host_contention_storm;
        ] );
    ]
