(* §8.1 UNIX emulation library: descriptor semantics over mapped
   files. *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Unix_emu = Mach_unixemu.Unix_emu

let check = Alcotest.check
let page = 4096

let with_io f =
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:2048 ~block_size:page () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let app = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore
        (Thread.spawn app ~name:"app.main" (fun () ->
             let io = Unix_emu.init app ~server:(Minimal_fs.service_port fsrv) in
             result := Some (f io))));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "app thread did not complete (deadlock?)"

let test_create_write_read () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "f" in
      check Alcotest.int "write count" 5 (Unix_emu.write io fd (Bytes.of_string "hello"));
      Unix_emu.close io fd;
      let fd = Unix_emu.openf io "f" in
      check Alcotest.string "contents" "hello" (Bytes.to_string (Unix_emu.read io fd 100));
      check Alcotest.string "eof" "" (Bytes.to_string (Unix_emu.read io fd 100));
      Unix_emu.close io fd)

let test_open_missing () =
  with_io (fun io ->
      match Unix_emu.openf io "missing" with
      | exception Unix_emu.Unix_error _ -> ()
      | _ -> Alcotest.fail "expected Unix_error")

let test_lseek_whence () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "f" in
      ignore (Unix_emu.write io fd (Bytes.of_string "0123456789"));
      check Alcotest.int "set" 3 (Unix_emu.lseek io fd 3 `Set);
      check Alcotest.string "at 3" "345" (Bytes.to_string (Unix_emu.read io fd 3));
      check Alcotest.int "cur" 4 (Unix_emu.lseek io fd (-2) `Cur);
      check Alcotest.string "at 4" "45" (Bytes.to_string (Unix_emu.read io fd 2));
      check Alcotest.int "end" 8 (Unix_emu.lseek io fd (-2) `End);
      check Alcotest.string "tail" "89" (Bytes.to_string (Unix_emu.read io fd 10));
      (match Unix_emu.lseek io fd (-99) `Set with
      | exception Unix_emu.Unix_error _ -> ()
      | _ -> Alcotest.fail "negative seek must fail");
      Unix_emu.close io fd)

let test_overwrite_middle () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "f" in
      ignore (Unix_emu.write io fd (Bytes.of_string "aaaaaaaaaa"));
      ignore (Unix_emu.lseek io fd 4 `Set);
      ignore (Unix_emu.write io fd (Bytes.of_string "XY"));
      Unix_emu.close io fd;
      let fd = Unix_emu.openf io "f" in
      check Alcotest.string "spliced" "aaaaXYaaaa" (Bytes.to_string (Unix_emu.read io fd 10));
      Unix_emu.close io fd)

let test_growth_across_pages () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "big" in
      for i = 0 to 9 do
        ignore (Unix_emu.write io fd (Bytes.make 1000 (Char.chr (48 + i))))
      done;
      check Alcotest.int "size" 10_000 (Unix_emu.fstat_size io fd);
      Unix_emu.close io fd;
      let fd = Unix_emu.openf io "big" in
      ignore (Unix_emu.lseek io fd 8999 `Set);
      check Alcotest.string "boundary bytes" "89" (Bytes.to_string (Unix_emu.read io fd 2));
      Unix_emu.close io fd)

let test_dup_shares_offset () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "f" in
      ignore (Unix_emu.write io fd (Bytes.of_string "abcdef"));
      ignore (Unix_emu.lseek io fd 0 `Set);
      let fd2 = Unix_emu.dup io fd in
      check Alcotest.string "fd reads" "ab" (Bytes.to_string (Unix_emu.read io fd 2));
      check Alcotest.string "fd2 continues" "cd" (Bytes.to_string (Unix_emu.read io fd2 2));
      Unix_emu.close io fd;
      (* Still usable through fd2. *)
      check Alcotest.string "after close of twin" "ef" (Bytes.to_string (Unix_emu.read io fd2 2));
      Unix_emu.close io fd2;
      check Alcotest.int "all closed" 0 (Unix_emu.open_fds io))

let test_bad_fd () =
  with_io (fun io ->
      match Unix_emu.read io 42 1 with
      | exception Unix_emu.Unix_error _ -> ()
      | _ -> Alcotest.fail "expected bad descriptor error")

let test_dirty_flag_writeback_only_when_needed () =
  with_io (fun io ->
      let fd = Unix_emu.openf io ~create:true "f" in
      ignore (Unix_emu.write io fd (Bytes.of_string "v1"));
      Unix_emu.close io fd;
      (* Reopen read-only usage: close must not clobber. *)
      let fd = Unix_emu.openf io "f" in
      ignore (Unix_emu.read io fd 2);
      Unix_emu.close io fd;
      let fd = Unix_emu.openf io "f" in
      check Alcotest.string "still v1" "v1" (Bytes.to_string (Unix_emu.read io fd 2));
      Unix_emu.close io fd)

let () =
  Alcotest.run "unixemu"
    [
      ( "descriptors",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "open missing" `Quick test_open_missing;
          Alcotest.test_case "lseek whence" `Quick test_lseek_whence;
          Alcotest.test_case "overwrite middle" `Quick test_overwrite_middle;
          Alcotest.test_case "growth across pages" `Quick test_growth_across_pages;
          Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
          Alcotest.test_case "bad fd" `Quick test_bad_fd;
          Alcotest.test_case "clean close no clobber" `Quick
            test_dirty_flag_writeback_only_when_needed;
        ] );
    ]
