(* The external memory management wire protocol (Tables 3-4/3-5/3-6):
   encode/decode roundtrips, malformed input handling, and the default
   pager serving kernel-created objects. *)

module Engine = Mach_sim.Engine
module Net = Mach_hw.Net
module Prot = Mach_hw.Prot
module Context = Mach_ipc.Context
module Port = Mach_ipc.Port
module Message = Mach_ipc.Message
module Pager_iface = Mach_vm.Pager_iface


let make_ctx () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  Context.create eng net

let test_k2m_roundtrips () =
  let ctx = make_ctx () in
  let mo = Port.create ctx ~home:0 () in
  let rq = Port.create ctx ~home:0 () in
  let nm = Port.create ctx ~home:0 () in
  let calls =
    [
      Pager_iface.Init { memory_object = mo; request = rq; name = nm };
      Pager_iface.Data_request
        { memory_object = mo; request = rq; offset = 8192; length = 4096; desired_access = Prot.rw };
      Pager_iface.Data_write
        { memory_object = mo; offset = 12288; data = Bytes.of_string "pagedata"; write_id = 77 };
      Pager_iface.Data_unlock
        { memory_object = mo; request = rq; offset = 0; length = 4096; desired_access = Prot.write };
      Pager_iface.Create { new_memory_object = mo; request = rq; name = nm; size = 65536 };
      Pager_iface.Lock_completed { memory_object = mo; offset = 4096; length = 8192 };
    ]
  in
  List.iter
    (fun call ->
      let dest = match call with Pager_iface.Create _ -> nm | _ -> mo in
      let msg = Pager_iface.encode_k2m ~reply:None call ~dest in
      Alcotest.(check bool) "recognised" true (Pager_iface.is_pager_msg msg);
      let decoded = Pager_iface.decode_k2m msg in
      let matches =
        match (call, decoded) with
        | Pager_iface.Init a, Pager_iface.Init b ->
          Port.equal a.request b.request && Port.equal a.name b.name
        | Pager_iface.Data_request a, Pager_iface.Data_request b ->
          a.offset = b.offset && a.length = b.length
          && Prot.equal a.desired_access b.desired_access
          && Port.equal a.request b.request
        | Pager_iface.Data_write a, Pager_iface.Data_write b ->
          a.offset = b.offset && a.data = b.data && a.write_id = b.write_id
        | Pager_iface.Data_unlock a, Pager_iface.Data_unlock b ->
          a.offset = b.offset && a.length = b.length
          && Prot.equal a.desired_access b.desired_access
        | Pager_iface.Create a, Pager_iface.Create b ->
          Port.equal a.new_memory_object b.new_memory_object && a.size = b.size
        | Pager_iface.Lock_completed a, Pager_iface.Lock_completed b ->
          a.offset = b.offset && a.length = b.length
        | _ -> false
      in
      Alcotest.(check bool) "roundtrip" true matches)
    calls

let test_m2k_roundtrips () =
  let ctx = make_ctx () in
  let rq = Port.create ctx ~home:0 () in
  let calls =
    [
      Pager_iface.Data_provided
        { offset = 4096; data = Bytes.of_string "xyz"; lock_value = Prot.write };
      Pager_iface.Data_lock { offset = 0; length = 8192; lock_value = Prot.none };
      Pager_iface.Flush_request { offset = 4096; length = 4096 };
      Pager_iface.Clean_request { offset = 0; length = 16384 };
      Pager_iface.Cache { may_cache = true };
      Pager_iface.Data_unavailable { offset = 8192; size = 4096 };
      Pager_iface.Release_write { write_id = 42 };
    ]
  in
  List.iter
    (fun call ->
      let msg = Pager_iface.encode_m2k call ~request:rq in
      Alcotest.(check bool) "recognised" true (Pager_iface.is_pager_msg msg);
      let decoded = Pager_iface.decode_m2k msg in
      Alcotest.(check bool) "roundtrip" true
        (match (call, decoded) with
        | Pager_iface.Data_provided a, Pager_iface.Data_provided b ->
          a.offset = b.offset && a.data = b.data && Prot.equal a.lock_value b.lock_value
        | Pager_iface.Data_lock a, Pager_iface.Data_lock b ->
          a.offset = b.offset && a.length = b.length && Prot.equal a.lock_value b.lock_value
        | Pager_iface.Flush_request a, Pager_iface.Flush_request b ->
          a.offset = b.offset && a.length = b.length
        | Pager_iface.Clean_request a, Pager_iface.Clean_request b ->
          a.offset = b.offset && a.length = b.length
        | Pager_iface.Cache a, Pager_iface.Cache b -> a.may_cache = b.may_cache
        | Pager_iface.Data_unavailable a, Pager_iface.Data_unavailable b ->
          a.offset = b.offset && a.size = b.size
        | Pager_iface.Release_write a, Pager_iface.Release_write b -> a.write_id = b.write_id
        | _ -> false))
    calls

let test_malformed_rejected () =
  let ctx = make_ctx () in
  let p = Port.create ctx ~home:0 () in
  (* Unknown id. *)
  let bogus = Message.make ~msg_id:2199 ~dest:p [ Message.Data (Bytes.create 4) ] in
  Alcotest.check_raises "unknown k2m id"
    (Pager_iface.Malformed "unknown kernel-to-manager id 2199") (fun () ->
      ignore (Pager_iface.decode_k2m bogus));
  (* Data_request without capabilities. *)
  let truncated = Message.make ~msg_id:2101 ~dest:p [ Message.Data (Bytes.create 2) ] in
  (match Pager_iface.decode_k2m truncated with
  | exception Pager_iface.Malformed _ -> ()
  | _ -> Alcotest.fail "expected malformed");
  (* Non-pager ids are not claimed. *)
  let other = Message.make ~msg_id:3001 ~dest:p [ Message.Data (Bytes.create 1) ] in
  Alcotest.(check bool) "not a pager msg" false (Pager_iface.is_pager_msg other)

let m2k_prop =
  let open QCheck2 in
  Test.make ~name:"manager-to-kernel calls roundtrip" ~count:200
    Gen.(
      oneof
        [
          map3
            (fun off data lock ->
              `Provided (off land 0xfffff000, Bytes.of_string data, Prot.of_int (lock land 7)))
            small_nat string_small small_nat;
          map2 (fun off len -> `Lock (off land 0xfffff000, (len land 0xffff) + 1)) small_nat small_nat;
          map (fun b -> `Cache b) bool;
          map (fun id -> `Release id) small_nat;
        ])
    (fun call ->
      let eng = Engine.create () in
      let net = Net.create eng () in
      let ctx = Context.create eng net in
      let rq = Port.create ctx ~home:0 () in
      let m =
        match call with
        | `Provided (offset, data, lock_value) ->
          Pager_iface.Data_provided { offset; data; lock_value }
        | `Lock (offset, length) -> Pager_iface.Data_lock { offset; length; lock_value = Prot.rw }
        | `Cache may_cache -> Pager_iface.Cache { may_cache }
        | `Release write_id -> Pager_iface.Release_write { write_id }
      in
      let decoded = Pager_iface.decode_m2k (Pager_iface.encode_m2k m ~request:rq) in
      match (m, decoded) with
      | Pager_iface.Data_provided a, Pager_iface.Data_provided b ->
        a.offset = b.offset && a.data = b.data && Prot.equal a.lock_value b.lock_value
      | Pager_iface.Data_lock a, Pager_iface.Data_lock b ->
        a.offset = b.offset && a.length = b.length
      | Pager_iface.Cache a, Pager_iface.Cache b -> a.may_cache = b.may_cache
      | Pager_iface.Release_write a, Pager_iface.Release_write b -> a.write_id = b.write_id
      | _ -> false)

(* Default pager black-box behaviour through a real system. *)
open Mach

let test_default_pager_unavailable_then_stored () =
  let config = { Kernel.default_config with Kernel.phys_frames = 64 } in
  let sys = Kernel.create_system ~config () in
  let result = ref None in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore
        (Thread.spawn task ~name:"app.main" (fun () ->
             (* Force enough pressure that pages go to the default pager
                and come back. *)
             let npages = 120 in
             let page = 4096 in
             let addr = Syscalls.vm_allocate task ~size:(npages * page) ~anywhere:true () in
             for i = 0 to npages - 1 do
               ignore
                 (Syscalls.write_bytes task ~addr:(addr + (i * page))
                    (Bytes.of_string (Printf.sprintf "%08d" i))
                    ())
             done;
             let ok = ref true in
             for i = 0 to npages - 1 do
               match Syscalls.read_bytes task ~addr:(addr + (i * page)) ~len:8 () with
               | Ok b -> if Bytes.to_string b <> Printf.sprintf "%08d" i then ok := false
               | Error _ -> ok := false
             done;
             result := Some !ok)));
  Engine.run sys.Kernel.engine;
  match !result with
  | Some true -> ()
  | Some false -> Alcotest.fail "data corrupted through the default pager"
  | None -> Alcotest.fail "deadlocked"

let () =
  Alcotest.run "pager_protocol"
    [
      ( "wire-format",
        [
          Alcotest.test_case "kernel-to-manager roundtrips" `Quick test_k2m_roundtrips;
          Alcotest.test_case "manager-to-kernel roundtrips" `Quick test_m2k_roundtrips;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          QCheck_alcotest.to_alcotest m2k_prop;
        ] );
      ( "default-pager",
        [
          Alcotest.test_case "data integrity through paging file" `Quick
            test_default_pager_unavailable_then_stored;
        ] );
    ]
