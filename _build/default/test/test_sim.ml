(* Tests for the discrete-event engine and its synchronisation
   primitives. *)

module Engine = Mach_sim.Engine
module Ivar = Mach_sim.Ivar
module Mailbox = Mach_sim.Mailbox
module Semaphore = Mach_sim.Semaphore
module Waitq = Mach_sim.Waitq

let check = Alcotest.check

(* ---- engine ------------------------------------------------------------- *)

let test_event_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~at:30.0 (fun () -> log := 3 :: !log);
  Engine.schedule eng ~at:10.0 (fun () -> log := 1 :: !log);
  Engine.schedule eng ~at:20.0 (fun () -> log := 2 :: !log);
  Engine.run eng;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 30.0 (Engine.now eng)

let test_tie_break_by_sequence () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule eng ~at:5.0 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  check Alcotest.(list int) "fifo among equal times" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_sleep_advances_time () =
  let eng = Engine.create () in
  let seen = ref 0.0 in
  Engine.spawn eng (fun () ->
      Engine.sleep 123.0;
      Engine.sleep 77.0;
      seen := Engine.now eng);
  Engine.run eng;
  check (Alcotest.float 1e-9) "slept" 200.0 !seen

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule eng ~at:1000.0 (fun () -> fired := true);
  Engine.run ~until:500.0 eng;
  Alcotest.(check bool) "not yet" false !fired;
  check (Alcotest.float 1e-9) "clock clamped" 500.0 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "eventually" true !fired

let test_spawn_nested () =
  let eng = Engine.create () in
  let order = ref [] in
  Engine.spawn eng ~name:"outer" (fun () ->
      order := "outer-start" :: !order;
      Engine.spawn eng ~name:"inner" (fun () -> order := "inner" :: !order);
      Engine.sleep 1.0;
      order := "outer-end" :: !order);
  Engine.run eng;
  check Alcotest.(list string) "interleaving" [ "outer-start"; "inner"; "outer-end" ]
    (List.rev !order)

let test_exception_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> failwith "boom");
  Alcotest.check_raises "thread exception surfaces" (Failure "boom") (fun () -> Engine.run eng)

let test_deadlock_detection () =
  let eng = Engine.create () in
  let iv : unit Ivar.t = Ivar.create () in
  Engine.spawn eng ~name:"stuck-thread" (fun () -> Ivar.read iv);
  Engine.run eng;
  check Alcotest.int "one live blocked thread" 1 (Engine.live eng);
  check Alcotest.(list string) "named" [ "stuck-thread" ] (Engine.blocked_names eng)

let test_self_name () =
  let eng = Engine.create () in
  let name = ref "" in
  Engine.spawn eng ~name:"me" (fun () -> name := Engine.self_name ());
  Engine.run eng;
  check Alcotest.string "self name" "me" !name

let test_determinism_across_runs () =
  let run () =
    let eng = Engine.create () in
    let log = Buffer.create 64 in
    for i = 0 to 4 do
      Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
          Engine.sleep (float_of_int (10 - i));
          Buffer.add_string log (Printf.sprintf "%d@%.0f;" i (Engine.now eng));
          Engine.sleep (float_of_int i);
          Buffer.add_string log (Printf.sprintf "%d@%.0f;" i (Engine.now eng)))
    done;
    Engine.run eng;
    Buffer.contents log
  in
  check Alcotest.string "identical traces" (run ()) (run ())

(* qcheck: arbitrary programs of spawns/sleeps/sends produce identical
   traces on re-execution — the engine is deterministic by
   construction. *)
let determinism_prop =
  let open QCheck2 in
  let op_gen =
    Gen.(
      oneof
        [
          map (fun d -> `Sleep (float_of_int (d mod 50))) small_nat;
          map (fun v -> `Send v) small_nat;
          pure `Recv;
          map (fun d -> `Spawn_child (float_of_int (d mod 20))) small_nat;
        ])
  in
  Test.make ~name:"random programs replay identically" ~count:50
    Gen.(list_size (int_range 1 12) (small_list op_gen))
    (fun programs ->
      let run () =
        let eng = Engine.create () in
        let mb = Mailbox.create () in
        let trace = Buffer.create 256 in
        List.iteri
          (fun i ops ->
            Engine.spawn eng ~name:(Printf.sprintf "prog-%d" i) (fun () ->
                List.iter
                  (fun op ->
                    match op with
                    | `Sleep d -> Engine.sleep d
                    | `Send v ->
                      Mailbox.send mb v;
                      Buffer.add_string trace (Printf.sprintf "%d:s%d@%.0f;" i v (Engine.now eng))
                    | `Recv -> (
                      match Mailbox.recv_timeout mb ~timeout:100.0 with
                      | Some v ->
                        Buffer.add_string trace
                          (Printf.sprintf "%d:r%d@%.0f;" i v (Engine.now eng))
                      | None -> Buffer.add_string trace (Printf.sprintf "%d:rT@%.0f;" i (Engine.now eng)))
                    | `Spawn_child d ->
                      Engine.spawn eng ~name:(Printf.sprintf "child-%d" i) (fun () ->
                          Engine.sleep d;
                          Buffer.add_string trace (Printf.sprintf "%d:c@%.0f;" i (Engine.now eng))))
                  ops))
          programs;
        Engine.run eng;
        Buffer.contents trace
      in
      run () = run ())

(* ---- ivar --------------------------------------------------------------- *)

let test_ivar_fill_then_read () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Ivar.fill iv 42;
  Engine.spawn eng (fun () -> got := Ivar.read iv);
  Engine.run eng;
  check Alcotest.int "value" 42 !got

let test_ivar_read_then_fill () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        (* Bind before consing: [!got] must be read after the blocking
           call, not before (right-to-left evaluation). *)
        let v = Ivar.read iv in
        got := (i, v) :: !got)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 10.0;
      Ivar.fill iv 7);
  Engine.run eng;
  check Alcotest.int "all readers woken" 3 (List.length !got);
  List.iter (fun (_, v) -> check Alcotest.int "value" 7 v) !got

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "try_fill fails" false (Ivar.try_fill iv 2);
  check Alcotest.(option int) "first value kept" (Some 1) (Ivar.peek iv)

let test_ivar_timeout () =
  let eng = Engine.create () in
  let iv : int Ivar.t = Ivar.create () in
  let got = ref (Some 99) in
  let at = ref 0.0 in
  Engine.spawn eng (fun () ->
      got := Ivar.read_timeout iv ~timeout:50.0;
      at := Engine.now eng);
  Engine.run eng;
  check Alcotest.(option int) "timed out" None !got;
  check (Alcotest.float 1e-9) "at deadline" 50.0 !at

let test_ivar_timeout_beaten_by_fill () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref None in
  Engine.spawn eng (fun () -> got := Ivar.read_timeout iv ~timeout:100.0);
  Engine.spawn eng (fun () ->
      Engine.sleep 10.0;
      Ivar.fill iv 5);
  Engine.run eng;
  check Alcotest.(option int) "filled in time" (Some 5) !got

(* ---- mailbox ------------------------------------------------------------ *)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for i = 1 to 5 do
        Mailbox.send mb i
      done);
  Engine.spawn eng (fun () ->
      for _ = 1 to 5 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.run eng;
  check Alcotest.(list int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_mailbox_capacity_blocks_sender () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:2 () in
  let sent_all_at = ref 0.0 in
  Engine.spawn eng ~name:"producer" (fun () ->
      for i = 1 to 3 do
        Mailbox.send mb i
      done;
      sent_all_at := Engine.now eng);
  Engine.spawn eng ~name:"consumer" (fun () ->
      Engine.sleep 100.0;
      ignore (Mailbox.recv mb));
  Engine.run eng;
  (* The third send had to wait for the consumer at t=100. *)
  check (Alcotest.float 1e-9) "blocked until drain" 100.0 !sent_all_at

let test_mailbox_send_timeout () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 () in
  let second = ref true in
  Engine.spawn eng (fun () ->
      Mailbox.send mb 1;
      second := Mailbox.send_timeout mb 2 ~timeout:50.0);
  Engine.run eng;
  Alcotest.(check bool) "timed out" false !second;
  check Alcotest.int "only first queued" 1 (Mailbox.length mb)

let test_mailbox_recv_timeout () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let got = ref (Some 1) in
  Engine.spawn eng (fun () -> got := Mailbox.recv_timeout mb ~timeout:25.0);
  Engine.run eng;
  check Alcotest.(option int) "timeout" None !got

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  check Alcotest.(option int) "empty" None (Mailbox.try_recv mb);
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> Mailbox.send mb 9);
  Engine.run eng;
  check Alcotest.(option int) "nonempty" (Some 9) (Mailbox.try_recv mb)

let test_mailbox_direct_handoff () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:0 () in
  (* Zero capacity: transfer only via a waiting receiver. *)
  let got = ref 0 in
  Engine.spawn eng ~name:"rx" (fun () -> got := Mailbox.recv mb);
  Engine.spawn eng ~name:"tx" (fun () ->
      Engine.sleep 5.0;
      Mailbox.send mb 77);
  Engine.run eng;
  check Alcotest.int "handoff" 77 !got

let test_mailbox_raise_capacity_admits_senders () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 () in
  let done_ = ref false in
  Engine.spawn eng (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      (* blocks *)
      done_ := true);
  Engine.spawn eng (fun () ->
      Engine.sleep 10.0;
      Mailbox.set_capacity mb (Some 4));
  Engine.run eng;
  Alcotest.(check bool) "admitted after resize" true !done_;
  check Alcotest.int "both queued" 2 (Mailbox.length mb)

(* ---- semaphore ----------------------------------------------------------- *)

let test_semaphore_mutual_exclusion () =
  let eng = Engine.create () in
  let sem = Semaphore.create 1 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Engine.sleep 10.0;
            decr inside))
  done;
  Engine.run eng;
  check Alcotest.int "never two inside" 1 !max_inside;
  check (Alcotest.float 1e-9) "serialised" 40.0 (Engine.now eng)

let test_semaphore_parallelism () =
  let eng = Engine.create () in
  let sem = Semaphore.create 4 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () -> Semaphore.with_permit sem (fun () -> Engine.sleep 10.0))
  done;
  Engine.run eng;
  check (Alcotest.float 1e-9) "all parallel" 10.0 (Engine.now eng)

let test_semaphore_fifo_big_request () =
  let eng = Engine.create () in
  let sem = Semaphore.create 2 in
  let order = ref [] in
  Engine.spawn eng ~name:"small1" (fun () ->
      Semaphore.acquire sem;
      Engine.sleep 10.0;
      Semaphore.release sem);
  Engine.spawn eng ~name:"small2" (fun () ->
      Semaphore.acquire sem;
      Engine.sleep 20.0;
      Semaphore.release sem);
  Engine.spawn eng ~name:"big" (fun () ->
      Engine.sleep 1.0;
      Semaphore.acquire ~n:2 sem;
      order := "big" :: !order;
      Semaphore.release ~n:2 sem);
  Engine.spawn eng ~name:"small3" (fun () ->
      Engine.sleep 2.0;
      Semaphore.acquire sem;
      order := "small3" :: !order;
      Semaphore.release sem);
  Engine.run eng;
  (* The big request is at the queue head; small3 must not starve it. *)
  check Alcotest.(list string) "big not starved" [ "big"; "small3" ] (List.rev !order)

let test_try_acquire () =
  let sem = Semaphore.create 1 in
  Alcotest.(check bool) "first" true (Semaphore.try_acquire sem);
  Alcotest.(check bool) "second fails" false (Semaphore.try_acquire sem);
  Semaphore.release sem;
  Alcotest.(check bool) "after release" true (Semaphore.try_acquire sem)

(* ---- waitq ---------------------------------------------------------------- *)

let test_waitq_signal_wakes_one () =
  let eng = Engine.create () in
  let wq = Waitq.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Waitq.wait wq;
        incr woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 1.0;
      Waitq.signal wq);
  Engine.run eng;
  check Alcotest.int "one woken" 1 !woken;
  check Alcotest.int "two blocked" 2 (Engine.live eng - 0)

let test_waitq_broadcast_wakes_all () =
  let eng = Engine.create () in
  let wq = Waitq.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Waitq.wait wq;
        incr woken)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 1.0;
      Waitq.broadcast wq);
  Engine.run eng;
  check Alcotest.int "all woken" 3 !woken

let test_waitq_signal_fifo () =
  let eng = Engine.create () in
  let wq = Waitq.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Engine.sleep (float_of_int i);
        Waitq.wait wq;
        order := i :: !order)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 10.0;
      Waitq.signal wq;
      Engine.sleep 1.0;
      Waitq.signal wq;
      Engine.sleep 1.0;
      Waitq.signal wq);
  Engine.run eng;
  check Alcotest.(list int) "oldest waiter first" [ 1; 2; 3 ] (List.rev !order)

let test_waitq_timeout () =
  let eng = Engine.create () in
  let wq = Waitq.create () in
  let result = ref true in
  Engine.spawn eng (fun () -> result := Waitq.wait_timeout wq ~timeout:30.0);
  Engine.run eng;
  Alcotest.(check bool) "timed out" false !result

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "tie break by sequence" `Quick test_tie_break_by_sequence;
          Alcotest.test_case "sleep advances time" `Quick test_sleep_advances_time;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "nested spawn" `Quick test_spawn_nested;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "self name" `Quick test_self_name;
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
          QCheck_alcotest.to_alcotest determinism_prop;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read then fill wakes all" `Quick test_ivar_read_then_fill;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill;
          Alcotest.test_case "timeout" `Quick test_ivar_timeout;
          Alcotest.test_case "fill beats timeout" `Quick test_ivar_timeout_beaten_by_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "capacity blocks sender" `Quick test_mailbox_capacity_blocks_sender;
          Alcotest.test_case "send timeout" `Quick test_mailbox_send_timeout;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
          Alcotest.test_case "try recv" `Quick test_mailbox_try_recv;
          Alcotest.test_case "zero-capacity handoff" `Quick test_mailbox_direct_handoff;
          Alcotest.test_case "raising capacity admits senders" `Quick
            test_mailbox_raise_capacity_admits_senders;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_semaphore_mutual_exclusion;
          Alcotest.test_case "parallelism" `Quick test_semaphore_parallelism;
          Alcotest.test_case "fifo big request" `Quick test_semaphore_fifo_big_request;
          Alcotest.test_case "try acquire" `Quick test_try_acquire;
        ] );
      ( "waitq",
        [
          Alcotest.test_case "signal wakes one" `Quick test_waitq_signal_wakes_one;
          Alcotest.test_case "broadcast wakes all" `Quick test_waitq_broadcast_wakes_all;
          Alcotest.test_case "signal is FIFO" `Quick test_waitq_signal_fifo;
          Alcotest.test_case "timeout" `Quick test_waitq_timeout;
        ] );
    ]
