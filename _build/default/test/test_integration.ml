(* Cross-subsystem integration scenarios: concurrent filesystem
   clients, footnote-7 shared file mappings, three-host shared memory,
   paging pressure mixed with pager traffic, and shadow-chain collapse
   observed end-to-end. *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Netmem = Mach_pagers.Netmem

let check = Alcotest.check
let page = 4096

let test_concurrent_fs_clients () =
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:4096 ~block_size:page () in
  let finished = ref 0 in
  let nclients = 4 in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      for c = 0 to nclients - 1 do
        let client = Task.create sys.Kernel.kernel ~name:(Printf.sprintf "cl%d" c) () in
        ignore
          (Thread.spawn client ~name:(Printf.sprintf "cl%d.main" c) (fun () ->
               (* Each client repeatedly writes its own file and reads a
                  shared one. *)
               (match
                  Minimal_fs.Client.write_file client ~server "shared"
                    (Bytes.of_string "shared-contents")
                with
               | Ok () | Error _ -> ());
               for round = 0 to 4 do
                 let mine = Printf.sprintf "own-%d" c in
                 let payload = Printf.sprintf "client %d round %d" c round in
                 (match Minimal_fs.Client.write_file client ~server mine (Bytes.of_string payload) with
                 | Ok () -> ()
                 | Error e -> Alcotest.failf "write: %a" Minimal_fs.Client.pp_error e);
                 (match Minimal_fs.Client.read_file client ~server mine with
                 | Ok (addr, size) ->
                   (match Syscalls.read_bytes client ~addr ~len:size () with
                   | Ok b -> check Alcotest.string "own file intact" payload (Bytes.to_string b)
                   | Error e -> Alcotest.failf "own read: %a" Access.pp_error e);
                   Syscalls.vm_deallocate client ~addr ~size
                 | Error e -> Alcotest.failf "own open: %a" Minimal_fs.Client.pp_error e);
                 match Minimal_fs.Client.read_file client ~server "shared" with
                 | Ok (addr, size) ->
                   (match Syscalls.read_bytes client ~addr ~len:size () with
                   | Ok b ->
                     check Alcotest.string "shared stable" "shared-contents" (Bytes.to_string b)
                   | Error e -> Alcotest.failf "shared read: %a" Access.pp_error e);
                   Syscalls.vm_deallocate client ~addr ~size
                 | Error e -> Alcotest.failf "shared open: %a" Minimal_fs.Client.pp_error e
               done;
               incr finished))
      done);
  Engine.run sys.Kernel.engine;
  check Alcotest.int "all clients finished" nclients !finished

let test_map_file_is_shared () =
  (* Footnote 7: vm_allocate_with_pager gives access to the object, not
     a copy — two clients mapping the same file see each other. *)
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:1024 ~block_size:page () in
  let done_ = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let a = Task.create sys.Kernel.kernel ~name:"a" () in
      let b = Task.create sys.Kernel.kernel ~name:"b" () in
      ignore
        (Thread.spawn a ~name:"a.main" (fun () ->
             (match Minimal_fs.Client.write_file a ~server "f" (Bytes.of_string "original") with
             | Ok () -> ()
             | Error e -> Alcotest.failf "seed: %a" Minimal_fs.Client.pp_error e);
             let a_addr, _ =
               match Minimal_fs.Client.map_file a ~server "f" with
               | Ok r -> r
               | Error e -> Alcotest.failf "map a: %a" Minimal_fs.Client.pp_error e
             in
             let b_addr, _ =
               match Minimal_fs.Client.map_file b ~server "f" with
               | Ok r -> r
               | Error e -> Alcotest.failf "map b: %a" Minimal_fs.Client.pp_error e
             in
             (* a writes through the mapping; b must see it (same
                memory object, same kernel cache). *)
             (match Syscalls.write_bytes a ~addr:a_addr (Bytes.of_string "MUTATED!") () with
             | Ok () -> ()
             | Error e -> Alcotest.failf "a write: %a" Access.pp_error e);
             (match Syscalls.read_bytes b ~addr:b_addr ~len:8 () with
             | Ok bytes -> check Alcotest.string "b sees a's write" "MUTATED!" (Bytes.to_string bytes)
             | Error e -> Alcotest.failf "b read: %a" Access.pp_error e);
             (* read_file still returns a COW copy of the *original*
                disk contents? No — of the current object contents. *)
             (match Minimal_fs.Client.read_file b ~server "f" with
             | Ok (addr, size) -> (
               match Syscalls.read_bytes b ~addr ~len:size () with
               | Ok bytes ->
                 check Alcotest.string "copy sees object state" "MUTATED!" (Bytes.to_string bytes)
               | Error e -> Alcotest.failf "copy read: %a" Access.pp_error e)
             | Error e -> Alcotest.failf "copy open: %a" Minimal_fs.Client.pp_error e);
             done_ := true)));
  Engine.run sys.Kernel.engine;
  Alcotest.(check bool) "scenario completed" true !done_

let test_three_host_netmem () =
  let cluster = Kernel.create_cluster ~hosts:3 () in
  let done_count = ref 0 in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:page in
      (* Token-passing: each host increments a shared counter in turn,
         strictly serialised by ivars. *)
      let turns = Array.init 3 (fun _ -> Ivar.create ()) in
      let final = Ivar.create () in
      for host = 0 to 2 do
        let task =
          Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "h%d" host) ()
        in
        ignore
          (Thread.spawn task ~name:(Printf.sprintf "h%d.main" host) (fun () ->
               let addr =
                 Syscalls.vm_allocate_with_pager task ~size:page ~anywhere:true
                   ~memory_object:region ~offset:0 ()
               in
               if host > 0 then Ivar.read turns.(host - 1);
               let v =
                 match
                   Syscalls.read_bytes task ~addr ~len:1 ~policy:(Fault.Abort_after 30_000_000.0) ()
                 with
                 | Ok b -> Bytes.get_uint8 b 0
                 | Error e -> Alcotest.failf "h%d read: %a" host Access.pp_error e
               in
               check Alcotest.int (Printf.sprintf "host %d sees predecessor count" host) host v;
               (match
                  Syscalls.write_bytes task ~addr (Bytes.make 1 (Char.chr (v + 1)))
                    ~policy:(Fault.Abort_after 30_000_000.0) ()
                with
               | Ok () -> ()
               | Error e -> Alcotest.failf "h%d write: %a" host Access.pp_error e);
               incr done_count;
               Ivar.fill turns.(host) ();
               if host = 2 then Ivar.fill final ()))
      done;
      ignore final);
  Engine.run cluster.Kernel.c_engine;
  check Alcotest.int "all hosts took their turn" 3 !done_count

let test_fs_under_memory_pressure () =
  (* A small machine compiling against the fs server while also using
     more anonymous memory than exists: both must stay correct. *)
  let config = { Kernel.default_config with Kernel.phys_frames = 96 } in
  let sys = Kernel.create_system ~config () in
  let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:2048 ~block_size:page () in
  let ok = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let app = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore
        (Thread.spawn app ~name:"app.main" (fun () ->
             let file_data = Bytes.init (20 * page) (fun i -> Char.chr (33 + (i mod 90))) in
             (match Minimal_fs.Client.write_file app ~server "blob" file_data with
             | Ok () -> ()
             | Error e -> Alcotest.failf "write: %a" Minimal_fs.Client.pp_error e);
             (* Anonymous pressure. *)
             let anon = 100 in
             let addr = Syscalls.vm_allocate app ~size:(anon * page) ~anywhere:true () in
             for i = 0 to anon - 1 do
               ignore
                 (Syscalls.write_bytes app ~addr:(addr + (i * page))
                    (Bytes.of_string (Printf.sprintf "anon%04d" i))
                    ())
             done;
             (* File contents verified while paging. *)
             (match Minimal_fs.Client.read_file app ~server "blob" with
             | Ok (faddr, fsize) -> (
               match Syscalls.read_bytes app ~addr:faddr ~len:fsize () with
               | Ok b ->
                 Alcotest.(check bool) "file bytes intact" true (Bytes.equal b file_data);
                 Syscalls.vm_deallocate app ~addr:faddr ~size:fsize
               | Error e -> Alcotest.failf "file read: %a" Access.pp_error e)
             | Error e -> Alcotest.failf "file open: %a" Minimal_fs.Client.pp_error e);
             (* Anonymous contents verified after paging. *)
             for i = 0 to anon - 1 do
               match Syscalls.read_bytes app ~addr:(addr + (i * page)) ~len:8 () with
               | Ok b ->
                 check Alcotest.string
                   (Printf.sprintf "anon page %d" i)
                   (Printf.sprintf "anon%04d" i)
                   (Bytes.to_string b)
               | Error e -> Alcotest.failf "anon read: %a" Access.pp_error e
             done;
             ok := true)));
  Engine.run sys.Kernel.engine;
  Alcotest.(check bool) "completed under pressure" true !ok

let test_collapse_bounds_chains_end_to_end () =
  let sys = Kernel.create_system () in
  let depth = ref (-1) in
  let collapses = ref 0 in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let parent = Task.create sys.Kernel.kernel ~name:"p" () in
      ignore
        (Thread.spawn parent ~name:"p.main" (fun () ->
             let addr = Syscalls.vm_allocate parent ~size:page ~anywhere:true () in
             ignore (Syscalls.write_bytes parent ~addr (Bytes.of_string "x") ());
             for g = 1 to 10 do
               let child =
                 Task.create sys.Kernel.kernel ~parent ~name:(Printf.sprintf "g%d" g) ()
               in
               let fin = Ivar.create () in
               ignore
                 (Thread.spawn child ~name:(Printf.sprintf "g%d.main" g) (fun () ->
                      ignore (Syscalls.write_bytes child ~addr (Bytes.of_string "c") ());
                      Ivar.fill fin ()));
               Ivar.read fin;
               Task.terminate child;
               ignore (Syscalls.write_bytes parent ~addr (Bytes.of_string "p") ())
             done;
             let d =
               List.fold_left
                 (fun acc e ->
                   match e.Vm_map.backing with
                   | Vm_map.Direct dd -> max acc (Vm_object.chain_depth dd.Vm_map.d_obj)
                   | Vm_map.Shared _ -> acc)
                 0
                 (Vm_map.entries (Task.map parent))
             in
             depth := d;
             collapses := (Kernel.stats sys.Kernel.kernel).Vm_types.s_collapses)));
  Engine.run sys.Kernel.engine;
  Alcotest.(check bool) "chain depth bounded" true (!depth >= 0 && !depth <= 2);
  Alcotest.(check bool) "collapses happened" true (!collapses > 0)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "concurrent fs clients" `Quick test_concurrent_fs_clients;
          Alcotest.test_case "map_file is shared (footnote 7)" `Quick test_map_file_is_shared;
          Alcotest.test_case "three-host shared memory token ring" `Quick test_three_host_netmem;
          Alcotest.test_case "filesystem under memory pressure" `Quick
            test_fs_under_memory_pressure;
          Alcotest.test_case "shadow collapse bounds chains" `Quick
            test_collapse_bounds_chains_end_to_end;
        ] );
    ]
