(* Structural tests for the two-level address maps (§5.1) and memory
   object machinery — no external pagers here, just anonymous memory
   and the map algebra. *)

module Engine = Mach_sim.Engine
module Net = Mach_hw.Net
module Machine = Mach_hw.Machine
module Phys_mem = Mach_hw.Phys_mem
module Pmap = Mach_hw.Pmap
module Prot = Mach_hw.Prot
module Context = Mach_ipc.Context
module Kctx = Mach_vm.Kctx
module Vm_map = Mach_vm.Vm_map
module Vm_types = Mach_vm.Vm_types
module Vm_object = Mach_vm.Vm_object

let check = Alcotest.check
let page = 4096

let make_kctx ?(frames = 256) () =
  let eng = Engine.create () in
  let net = Net.create eng () in
  let ctx = Context.create eng net in
  let mem = Phys_mem.create ~frames ~page_size:page in
  let kctx = Kctx.create eng ctx ~host:0 ~params:Machine.uniprocessor ~mem () in
  Mach_vm.Pager_client.install kctx;
  kctx

let make_map kctx = Vm_map.create kctx ~pmap:(Some (Pmap.create kctx.Kctx.mem)) ()

let invariant_ok map =
  match Vm_map.check_invariants map with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant violated: %s" e

let test_allocate_anywhere () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a1 = Vm_map.allocate map ~size:(4 * page) ~anywhere:true () in
  let a2 = Vm_map.allocate map ~size:(2 * page) ~anywhere:true () in
  Alcotest.(check bool) "non-overlapping" true (a2 >= a1 + (4 * page) || a1 >= a2 + (2 * page));
  check Alcotest.int "total size" (6 * page) (Vm_map.size map);
  invariant_ok map

let test_allocate_fixed () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~addr:0x40000 ~size:page ~anywhere:false () in
  check Alcotest.int "exact placement" 0x40000 a;
  Alcotest.check_raises "collision" Vm_map.No_space (fun () ->
      ignore (Vm_map.allocate map ~addr:0x40000 ~size:page ~anywhere:false ()));
  invariant_ok map

let test_allocate_rounds_size () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  ignore (Vm_map.allocate map ~size:100 ~anywhere:true ());
  check Alcotest.int "rounded to a page" page (Vm_map.size map);
  invariant_ok map

let test_deallocate_whole () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(4 * page) ~anywhere:true () in
  Vm_map.deallocate map ~addr:a ~size:(4 * page);
  check Alcotest.int "empty" 0 (Vm_map.size map);
  check Alcotest.int "no entries" 0 (List.length (Vm_map.entries map));
  invariant_ok map

let test_deallocate_middle_clips () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(6 * page) ~anywhere:true () in
  (* Punch a 2-page hole in the middle. *)
  Vm_map.deallocate map ~addr:(a + (2 * page)) ~size:(2 * page);
  check Alcotest.int "size shrunk" (4 * page) (Vm_map.size map);
  check Alcotest.int "two entries" 2 (List.length (Vm_map.entries map));
  invariant_ok map;
  (* The hole is reusable. *)
  let b = Vm_map.allocate map ~addr:(a + (2 * page)) ~size:(2 * page) ~anywhere:false () in
  check Alcotest.int "hole reused" (a + (2 * page)) b;
  invariant_ok map

let test_protect () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(4 * page) ~anywhere:true () in
  Vm_map.protect map ~addr:(a + page) ~size:page ~set_max:false Prot.read;
  (* The middle page entry is clipped out with its own protection. *)
  let protections =
    List.map (fun e -> Prot.to_string e.Vm_map.protection) (Vm_map.entries map)
  in
  check Alcotest.(list string) "clipped protections" [ "rw-"; "r--"; "rw-" ] protections;
  invariant_ok map

let test_protect_max_caps_current () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:page ~anywhere:true () in
  Vm_map.protect map ~addr:a ~size:page ~set_max:true Prot.read;
  (match Vm_map.entries map with
  | [ e ] ->
    Alcotest.(check bool) "current reduced" true (Prot.equal e.Vm_map.protection Prot.read)
  | _ -> Alcotest.fail "expected one entry");
  (* Raising above max is rejected. *)
  Alcotest.check_raises "above max" (Vm_map.Bad_address a) (fun () ->
      Vm_map.protect map ~addr:a ~size:page ~set_max:false Prot.rw);
  invariant_ok map

let test_protect_hole_rejected () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:page ~anywhere:true () in
  let hole_start = a + page in
  Alcotest.check_raises "hole detected" (Vm_map.Bad_address hole_start) (fun () ->
      Vm_map.protect map ~addr:a ~size:(2 * page) ~set_max:false Prot.read)

let test_inheritance_attr () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(2 * page) ~anywhere:true () in
  Vm_map.set_inheritance map ~addr:a ~size:page Vm_types.Inherit_share;
  let inh = List.map (fun e -> e.Vm_map.inheritance) (Vm_map.entries map) in
  Alcotest.(check bool) "first shared, second copy" true
    (inh = [ Vm_types.Inherit_share; Vm_types.Inherit_copy ]);
  invariant_ok map

let test_regions_report () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(2 * page) ~anywhere:true () in
  match Vm_map.regions map with
  | [ r ] ->
    check Alcotest.int "start" a r.Vm_map.ri_start;
    check Alcotest.int "size" (2 * page) r.Vm_map.ri_size;
    Alcotest.(check bool) "not shared" false r.Vm_map.ri_shared;
    Alcotest.(check bool) "has object" true (r.Vm_map.ri_object_id <> None)
  | _ -> Alcotest.fail "expected one region"

let test_lookup_protection () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:page ~anywhere:true () in
  Vm_map.protect map ~addr:a ~size:page ~set_max:false Prot.read;
  (match Vm_map.lookup map ~addr:a ~write:false with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read allowed");
  (match Vm_map.lookup map ~addr:a ~write:true with
  | Error `Protection -> ()
  | Ok _ | Error `Invalid_address -> Alcotest.fail "write must be denied");
  match Vm_map.lookup map ~addr:0xdead000 ~write:false with
  | Error `Invalid_address -> ()
  | Ok _ | Error `Protection -> Alcotest.fail "unmapped must be invalid"

let test_fork_share_promotes_to_share_map () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:page ~anywhere:true () in
  Vm_map.set_inheritance map ~addr:a ~size:page Vm_types.Inherit_share;
  let child = Vm_map.fork map ~child_pmap:(Some (Pmap.create kctx.Kctx.mem)) in
  let shared_regions m = List.filter (fun r -> r.Vm_map.ri_shared) (Vm_map.regions m) in
  check Alcotest.int "parent promoted" 1 (List.length (shared_regions map));
  check Alcotest.int "child shares" 1 (List.length (shared_regions child));
  invariant_ok map;
  invariant_ok child

let test_fork_none_leaves_hole () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:page ~anywhere:true () in
  Vm_map.set_inheritance map ~addr:a ~size:page Vm_types.Inherit_none;
  let child = Vm_map.fork map ~child_pmap:(Some (Pmap.create kctx.Kctx.mem)) in
  check Alcotest.int "child empty" 0 (Vm_map.size child)

let test_fork_copy_sets_needs_copy () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  ignore (Vm_map.allocate map ~size:page ~anywhere:true ());
  let child = Vm_map.fork map ~child_pmap:(Some (Pmap.create kctx.Kctx.mem)) in
  let needs_copy m =
    List.for_all
      (fun e ->
        match e.Vm_map.backing with
        | Vm_map.Direct d -> d.Vm_map.needs_copy
        | Vm_map.Shared _ -> false)
      (Vm_map.entries m)
  in
  Alcotest.(check bool) "parent COW-pending" true (needs_copy map);
  Alcotest.(check bool) "child COW-pending" true (needs_copy child);
  (* Both sides reference the same frozen object. *)
  match (Vm_map.entries map, Vm_map.entries child) with
  | [ pe ], [ ce ] -> (
    match (pe.Vm_map.backing, ce.Vm_map.backing) with
    | Vm_map.Direct pd, Vm_map.Direct cd ->
      Alcotest.(check bool) "same object" true (pd.Vm_map.d_obj == cd.Vm_map.d_obj);
      check Alcotest.int "two references" 2 pd.Vm_map.d_obj.Vm_types.ref_count
    | _ -> Alcotest.fail "expected direct backings")
  | _ -> Alcotest.fail "expected single entries"

let test_copy_region_cow () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let src = Vm_map.allocate map ~size:(2 * page) ~anywhere:true () in
  let dst = Vm_map.copy_region ~src:map ~src_addr:src ~size:(2 * page) ~dst:map () in
  Alcotest.(check bool) "new address" true (dst <> src);
  check Alcotest.int "doubled size" (8 * page / 2) (Vm_map.size map);
  invariant_ok map

let test_object_refcount_on_deallocate () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  let a = Vm_map.allocate map ~size:(2 * page) ~anywhere:true () in
  let obj =
    match Vm_map.entries map with
    | [ { Vm_map.backing = Vm_map.Direct d; _ } ] -> d.Vm_map.d_obj
    | _ -> Alcotest.fail "expected one direct entry"
  in
  check Alcotest.int "one ref" 1 obj.Vm_types.ref_count;
  (* Clipping in half splits the reference. *)
  Vm_map.deallocate map ~addr:a ~size:page;
  check Alcotest.int "split then dropped" 1 obj.Vm_types.ref_count;
  Alcotest.(check bool) "still alive" true obj.Vm_types.obj_alive;
  Vm_map.deallocate map ~addr:(a + page) ~size:page;
  check Alcotest.int "no refs" 0 obj.Vm_types.ref_count;
  Alcotest.(check bool) "terminated" false obj.Vm_types.obj_alive

let test_destroy_releases_everything () =
  let kctx = make_kctx () in
  let map = make_map kctx in
  for _ = 1 to 5 do
    ignore (Vm_map.allocate map ~size:page ~anywhere:true ())
  done;
  Vm_map.destroy map;
  check Alcotest.int "empty" 0 (List.length (Vm_map.entries map))

(* qcheck: random structural operation sequences keep the invariants. *)
let map_invariant_prop =
  let open QCheck2 in
  let op_gen =
    Gen.(
      oneof
        [
          map2 (fun a s -> `Alloc (a, s)) (int_range 0 64) (int_range 1 8);
          map2 (fun a s -> `Dealloc (a, s)) (int_range 0 64) (int_range 1 8);
          map2 (fun a s -> `Protect (a, s)) (int_range 0 64) (int_range 1 8);
          pure `Fork;
          map2 (fun a s -> `Copy (a, s)) (int_range 0 64) (int_range 1 4);
        ])
  in
  Test.make ~name:"map invariants hold under random op sequences" ~count:100
    Gen.(list_size (int_range 1 25) op_gen)
    (fun ops ->
      let kctx = make_kctx ~frames:64 () in
      let map = make_map kctx in
      let ok = ref true in
      let verify m = match Vm_map.check_invariants m with Ok () -> () | Error _ -> ok := false in
      List.iter
        (fun op ->
          (match op with
          | `Alloc (a, s) -> (
            try ignore (Vm_map.allocate map ~addr:(a * page) ~size:(s * page) ~anywhere:true ())
            with Vm_map.No_space -> ())
          | `Dealloc (a, s) -> Vm_map.deallocate map ~addr:(a * page) ~size:(s * page)
          | `Protect (a, s) -> (
            try Vm_map.protect map ~addr:(a * page) ~size:(s * page) ~set_max:false Prot.read
            with Vm_map.Bad_address _ -> ())
          | `Fork ->
            let child = Vm_map.fork map ~child_pmap:None in
            verify child;
            Vm_map.destroy child
          | `Copy (a, s) -> (
            try ignore (Vm_map.copy_region ~src:map ~src_addr:(a * page) ~size:(s * page) ~dst:map ())
            with Vm_map.Bad_address _ | Vm_map.No_space -> ()));
          verify map)
        ops;
      !ok)

let () =
  Alcotest.run "vm_map"
    [
      ( "allocate",
        [
          Alcotest.test_case "anywhere" `Quick test_allocate_anywhere;
          Alcotest.test_case "fixed address" `Quick test_allocate_fixed;
          Alcotest.test_case "size rounding" `Quick test_allocate_rounds_size;
        ] );
      ( "deallocate",
        [
          Alcotest.test_case "whole region" `Quick test_deallocate_whole;
          Alcotest.test_case "middle clips" `Quick test_deallocate_middle_clips;
          Alcotest.test_case "destroy" `Quick test_destroy_releases_everything;
          Alcotest.test_case "object refcounts" `Quick test_object_refcount_on_deallocate;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "protect clips" `Quick test_protect;
          Alcotest.test_case "set_max caps current" `Quick test_protect_max_caps_current;
          Alcotest.test_case "protect across hole rejected" `Quick test_protect_hole_rejected;
          Alcotest.test_case "inheritance" `Quick test_inheritance_attr;
          Alcotest.test_case "regions report" `Quick test_regions_report;
        ] );
      ( "lookup-and-fork",
        [
          Alcotest.test_case "lookup protection" `Quick test_lookup_protection;
          Alcotest.test_case "fork share promotes" `Quick test_fork_share_promotes_to_share_map;
          Alcotest.test_case "fork none leaves hole" `Quick test_fork_none_leaves_hole;
          Alcotest.test_case "fork copy sets needs_copy" `Quick test_fork_copy_sets_needs_copy;
          Alcotest.test_case "copy_region" `Quick test_copy_region_cow;
          QCheck_alcotest.to_alcotest map_invariant_prop;
        ] );
    ]
