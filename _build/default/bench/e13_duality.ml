(* E13 — the thesis itself (§7): "a programmer has the option of
   choosing to use either shared memory or message-based communication
   ... depending on the kind of multiprocessor or network available".

   A producer/consumer exchanges items two ways on two machines:
   - tightly coupled (UMA MultiMax, one host): messages move bytes by
     copying; shared memory (inherited read/write region) moves them by
     cache access — no per-item kernel overhead;
   - loosely coupled (NORMA HyperCube, two hosts): messages ride the
     network natively; "shared memory" is the §4.2 coherence protocol,
     whose ownership ping-pong pays invalidation round trips per item. *)

open Mach
open Common
module Netmem = Mach_pagers.Netmem

let page = 4096

(* --- one host: messages vs inherited shared memory ----------------------- *)

let uma_messages ~items ~item_size =
  let config = { Kernel.default_config with Kernel.params = Machine.multimax } in
  run_system ~config (fun sys task ->
      let consumer = Task.create sys.Kernel.kernel ~name:"consumer" () in
      let svc = Syscalls.port_allocate consumer ~backlog:8 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space consumer) svc in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               ignore (Syscalls.msg_receive consumer ~from:(`Port svc) ())
             done;
             Ivar.fill done_ ()));
      let (), elapsed =
        timed sys.Kernel.engine (fun () ->
            for _ = 1 to items do
              ignore
                (Syscalls.msg_send task
                   (Message.make ~dest:svc_port [ Message.Data (Bytes.create item_size) ]))
            done;
            Ivar.read done_)
      in
      elapsed /. float_of_int items)

let uma_shared ~items ~item_size =
  let config = { Kernel.default_config with Kernel.params = Machine.multimax } in
  run_system ~config (fun sys parent ->
      (* A read/write-shared region between two children (§3.3
         inheritance). *)
      let buf = Syscalls.vm_allocate parent ~size:(2 * page + item_size) ~anywhere:true () in
      ignore (ok_exn "seed" (Syscalls.write_bytes parent ~addr:buf (Bytes.make 1 '\000') ()));
      Syscalls.vm_inherit parent ~addr:buf ~size:(2 * page + item_size) Vm_types.Inherit_share;
      let producer = Task.create sys.Kernel.kernel ~parent ~name:"producer" () in
      let consumer = Task.create sys.Kernel.kernel ~parent ~name:"consumer" () in
      let full = Mach_sim.Semaphore.create 0 in
      let empty = Mach_sim.Semaphore.create 1 in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               Mach_sim.Semaphore.acquire full;
               ignore (Syscalls.read_bytes consumer ~addr:buf ~len:item_size ());
               Mach_sim.Semaphore.release empty
             done;
             Ivar.fill done_ ()));
      let payload = Bytes.create item_size in
      let fin = Ivar.create () in
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               timed sys.Kernel.engine (fun () ->
                   for _ = 1 to items do
                     Mach_sim.Semaphore.acquire empty;
                     ignore (ok_exn "produce" (Syscalls.write_bytes producer ~addr:buf payload ()));
                     Mach_sim.Semaphore.release full
                   done;
                   Ivar.read done_)
             in
             Ivar.fill fin (elapsed /. float_of_int items)));
      Ivar.read fin)

(* --- two hosts: messages vs coherent shared memory ----------------------- *)

let norma_config =
  { Kernel.default_config with Kernel.params = Machine.hypercube }

let norma_messages ~items ~item_size =
  let cluster = Kernel.create_cluster ~hosts:2 ~config:norma_config () in
  let out = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let producer = Task.create cluster.Kernel.c_kernels.(0) ~name:"producer" () in
      let consumer = Task.create cluster.Kernel.c_kernels.(1) ~name:"consumer" () in
      let svc = Syscalls.port_allocate consumer ~backlog:8 () in
      let svc_port = Mach_ipc.Port_space.lookup_exn (Task.space consumer) svc in
      let done_ = Ivar.create () in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               ignore (Syscalls.msg_receive consumer ~from:(`Port svc) ())
             done;
             Ivar.fill done_ ()));
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               timed cluster.Kernel.c_engine (fun () ->
                   for _ = 1 to items do
                     ignore
                       (Syscalls.msg_send producer
                          (Message.make ~dest:svc_port [ Message.Data (Bytes.create item_size) ]))
                   done;
                   Ivar.read done_)
             in
             out := Some (elapsed /. float_of_int items))));
  Engine.run cluster.Kernel.c_engine;
  Option.get !out

let norma_shared ~items ~item_size =
  let cluster = Kernel.create_cluster ~hosts:2 ~config:norma_config () in
  let out = ref None in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(item_size + page) in
      let producer = Task.create cluster.Kernel.c_kernels.(0) ~name:"producer" () in
      let consumer = Task.create cluster.Kernel.c_kernels.(1) ~name:"consumer" () in
      let p_addr =
        Syscalls.vm_allocate_with_pager producer ~size:(item_size + page) ~anywhere:true
          ~memory_object:region ~offset:0 ()
      in
      let c_addr =
        Syscalls.vm_allocate_with_pager consumer ~size:(item_size + page) ~anywhere:true
          ~memory_object:region ~offset:0 ()
      in
      let full = Mach_sim.Semaphore.create 0 in
      let empty = Mach_sim.Semaphore.create 1 in
      let done_ = Ivar.create () in
      let policy = Fault.Abort_after 60_000_000.0 in
      ignore
        (Thread.spawn consumer ~name:"consumer.main" (fun () ->
             for _ = 1 to items do
               Mach_sim.Semaphore.acquire full;
               ignore (Syscalls.read_bytes consumer ~addr:c_addr ~len:item_size ~policy ());
               Mach_sim.Semaphore.release empty
             done;
             Ivar.fill done_ ()));
      let payload = Bytes.create item_size in
      ignore
        (Thread.spawn producer ~name:"producer.main" (fun () ->
             let (), elapsed =
               timed cluster.Kernel.c_engine (fun () ->
                   for _ = 1 to items do
                     Mach_sim.Semaphore.acquire empty;
                     ignore (ok_exn "produce" (Syscalls.write_bytes producer ~addr:p_addr payload ~policy ()));
                     Mach_sim.Semaphore.release full
                   done;
                   Ivar.read done_)
             in
             out := Some (elapsed /. float_of_int items))));
  Engine.run cluster.Kernel.c_engine;
  Option.get !out

let sizes = [ 64; 1024; 4096; 16384 ]

let run_body ~items ~sizes =
  List.map
    (fun s ->
      ( s,
        uma_messages ~items ~item_size:s,
        uma_shared ~items ~item_size:s,
        norma_messages ~items ~item_size:s,
        norma_shared ~items ~item_size:s ))
    sizes

let run () =
  let rows = run_body ~items:50 ~sizes in
  let t =
    Table.create
      ~title:
        "E13: producer/consumer, per-item cost — shared memory vs messages by machine class \
         (Section 7)"
      ~columns:
        [ "item size"; "UMA messages us"; "UMA shared mem us"; "NORMA messages us";
          "NORMA shared mem us" ]
  in
  List.iter
    (fun (s, um, us_, nm, ns) ->
      Table.row t
        [
          (if s >= 1024 then Printf.sprintf "%d KB" (s / 1024) else Printf.sprintf "%d B" s);
          us0 um;
          us0 us_;
          us0 nm;
          us0 ns;
        ])
    rows;
  [ t ]

let experiment =
  {
    id = "E13";
    title = "Duality by machine class";
    paper_claim =
      "All three multiprocessor classes can support either mechanism, but which one is cheap \
       depends on the machine: on a tightly-coupled UMA, shared memory avoids per-message \
       kernel overhead; on a NORMA, messages are native and coherent shared memory pays \
       ownership round trips per exchange (Section 7).";
    run;
    quick = (fun () -> ignore (run_body ~items:5 ~sizes:[ 1024 ]));
  }
