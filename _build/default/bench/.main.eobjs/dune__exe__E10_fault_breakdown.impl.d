bench/e10_fault_breakdown.ml: Bytes Common Ivar Kernel List Mach Mach_hw Memory_object_server Prot Syscalls Table Task Thread Vm_map
