bench/common.ml: Engine Kernel Mach Mach_util Printf Task Thread
