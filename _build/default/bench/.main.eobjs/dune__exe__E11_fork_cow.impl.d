bench/e11_fork_cow.ml: Bytes Common Ivar Kernel List Mach Machine Option Printf Syscalls Table Task Thread Vm_types
