bench/e13_duality.ml: Array Bytes Common Engine Fault Ivar Kernel List Mach Mach_ipc Mach_pagers Mach_sim Machine Message Option Printf Syscalls Table Task Thread Vm_types
