bench/e04_file_cache.ml: Common Disk Engine Kernel Ktypes List Mach Mach_baseline Mach_pagers Mach_workloads Printf Rng Table Task Thread
