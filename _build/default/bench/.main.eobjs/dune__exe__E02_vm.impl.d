bench/e02_vm.ml: Bytes Common Kernel List Mach Prot Syscalls Table Vm_types
