bench/main.mli:
