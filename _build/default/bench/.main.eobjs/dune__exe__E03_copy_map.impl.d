bench/e03_copy_map.ml: Bytes Common Ivar Kernel List Mach Mach_ipc Message Printf Syscalls Table Task Thread
