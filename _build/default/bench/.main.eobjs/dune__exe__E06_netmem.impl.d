bench/e06_netmem.ml: Array Common Engine Fault Ivar Kernel List Mach Mach_pagers Mach_workloads Printf Rng Syscalls Table Task Thread
