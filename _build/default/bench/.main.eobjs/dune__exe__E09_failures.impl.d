bench/e09_failures.ml: Bytes Common Engine Fault Kctx Kernel Ktypes Mach Memory_object_server Printf Prot Syscalls Table Task Vm_types
