bench/e08_camelot.ml: Bytes Common Disk Engine Kernel Mach Mach_fs Mach_pagers Printf Rng Syscalls Table Task Thread
