bench/e01_ipc.ml: Bytes Common Kernel List Mach Mach_ipc Message Syscalls Table Task Thread
