bench/e05_multiprocessor.ml: Array Bytes Common Engine Ivar Kernel List Mach Mach_ipc Machine Message Printf Syscalls Table Task Thread
