bench/e12_ablations.ml: Bytes Char Common Disk Engine Ivar Kctx Kernel Ktypes List Mach Mach_hw Mach_pagers Printf Syscalls Table Task Thread Vm_map Vm_object Vm_types
