bench/e07_migration.ml: Array Bytes Char Common Engine Fault Ivar Kernel List Mach Mach_pagers Printf Syscalls Table Task Thread
