(** ASCII table rendering for experiment output.

    Every bench target prints its results as one of these tables so that
    bench output can be diffed against EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t

val row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells, trimming whitespace. Convenient for numeric rows. *)

val render : t -> string
val print : t -> unit
