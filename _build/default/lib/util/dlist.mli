(** Intrusive doubly-linked lists.

    Used for the VM pageout queues (active / inactive / free), where a
    resident page must be removable from the middle of its queue in O(1)
    and must know whether it is currently enqueued (§5.4 of the paper).

    Each element owns a [node] that can be on at most one list at a time. *)

type 'a node
type 'a t

val create : unit -> 'a t
val node : 'a -> 'a node
(** A fresh unattached node carrying its payload. *)

val value : 'a node -> 'a
val length : 'a t -> int
val is_empty : 'a t -> bool

val attached : 'a node -> bool
(** Whether the node is currently on some list. *)

val push_back : 'a t -> 'a node -> unit
(** Enqueue at the tail. Raises [Invalid_argument] if already attached. *)

val push_front : 'a t -> 'a node -> unit

val pop_front : 'a t -> 'a node option
(** Dequeue from the head. *)

val peek_front : 'a t -> 'a node option

val remove : 'a t -> 'a node -> unit
(** Remove from the middle; raises [Invalid_argument] if the node is not
    on this list. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head-to-tail iteration. *)

val to_list : 'a t -> 'a list
