type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.row: cell count mismatch";
  t.rows <- cells :: t.rows

let rowf t fmt =
  Printf.ksprintf (fun s -> row t (List.map String.trim (String.split_on_char '|' s))) fmt

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun w r -> Stdlib.max w (String.length (List.nth r i))) (String.length col) rows)
      t.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line sep = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) sep) widths) ^ "+" in
  let render_row cells =
    "| " ^ String.concat " | " (List.map2 pad cells widths) ^ " |"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" t.title);
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (render t)
