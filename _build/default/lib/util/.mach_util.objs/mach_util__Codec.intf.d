lib/util/codec.mli:
