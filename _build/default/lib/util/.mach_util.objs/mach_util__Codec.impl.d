lib/util/codec.ml: Buffer Bytes Int64 String
