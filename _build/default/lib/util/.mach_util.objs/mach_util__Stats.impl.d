lib/util/stats.ml: Array Buffer Float Hashtbl List Printf Stdlib String
