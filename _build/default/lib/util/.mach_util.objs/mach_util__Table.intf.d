lib/util/table.mli:
