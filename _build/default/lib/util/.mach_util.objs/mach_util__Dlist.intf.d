lib/util/dlist.mli:
