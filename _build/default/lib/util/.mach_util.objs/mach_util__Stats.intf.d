lib/util/stats.mli:
