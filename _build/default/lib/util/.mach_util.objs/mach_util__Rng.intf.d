lib/util/rng.mli:
