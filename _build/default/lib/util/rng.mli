(** Deterministic pseudo-random number generation for reproducible
    simulation runs.

    The generator is splitmix64 (used for seeding) feeding xoshiro256**.
    All experiment randomness must come through this module so that a run
    is a pure function of its seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed rank in [\[0, n)]; [theta] near 1.0 gives a classic
    hot/cold skew. Uses the rejection-inversion-free CDF walk with a
    precomputed-free approximation suitable for n up to ~1e6. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
