type 'a t = { mutable head : 'a node option; mutable tail : 'a node option; mutable len : int; id : int }

and 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : int; (* id of the owning list, or -1 when detached *)
}

let next_id = ref 0

let create () =
  incr next_id;
  { head = None; tail = None; len = 0; id = !next_id }

let node value = { value; prev = None; next = None; owner = -1 }
let value n = n.value
let length t = t.len
let is_empty t = t.len = 0
let attached n = n.owner >= 0

let push_back t n =
  if attached n then invalid_arg "Dlist.push_back: node already attached";
  n.owner <- t.id;
  n.prev <- t.tail;
  n.next <- None;
  (match t.tail with Some tl -> tl.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n;
  t.len <- t.len + 1

let push_front t n =
  if attached n then invalid_arg "Dlist.push_front: node already attached";
  n.owner <- t.id;
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some hd -> hd.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n;
  t.len <- t.len + 1

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- -1;
  t.len <- t.len - 1

let pop_front t =
  match t.head with
  | None -> None
  | Some n ->
    unlink t n;
    Some n

let peek_front t = t.head

let remove t n =
  if n.owner <> t.id then invalid_arg "Dlist.remove: node not on this list";
  unlink t n

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.value;
      go next
  in
  go t.head

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc
