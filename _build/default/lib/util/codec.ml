module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 t v = Buffer.add_uint8 t (v land 0xff)
  let u16 t v = Buffer.add_uint16_le t (v land 0xffff)

  let u32 t v =
    Buffer.add_uint16_le t (v land 0xffff);
    Buffer.add_uint16_le t ((v lsr 16) land 0xffff)

  let i64 t v = Buffer.add_int64_le t v
  let int t v = i64 t (Int64.of_int v)
  let bool t v = u8 t (if v then 1 else 0)
  let float t v = i64 t (Int64.bits_of_float v)

  let bytes t b =
    u32 t (Bytes.length b);
    Buffer.add_bytes t b

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let to_bytes t = Buffer.to_bytes t
end

module Dec = struct
  type t = { data : bytes; mutable pos : int }

  exception Truncated
  exception Trailing_garbage

  let of_bytes data = { data; pos = 0 }

  let need t n = if t.pos + n > Bytes.length t.data then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let i64 t =
    need t 8;
    let v = Bytes.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let int t = Int64.to_int (i64 t)
  let bool t = u8 t <> 0
  let float t = Int64.float_of_bits (i64 t)

  let bytes t =
    let len = u32 t in
    need t len;
    let b = Bytes.sub t.data t.pos len in
    t.pos <- t.pos + len;
    b

  let string t = Bytes.to_string (bytes t)
  let finish t = if t.pos <> Bytes.length t.data then raise Trailing_garbage
end
