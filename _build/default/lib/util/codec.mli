(** Explicit binary encoding for message payloads.

    The external pager protocol (Tables 3-4/3-5/3-6) is carried over the
    ordinary IPC transport as typed byte payloads; this module is the
    hand-written equivalent of the Mach Interface Generator's marshalling.
    The format is little-endian and self-delimiting for variable-size
    fields. *)

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  (** 63-bit OCaml int as a signed 64-bit field. *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val bytes : t -> bytes -> unit
  (** Length-prefixed. *)

  val string : t -> string -> unit
  val to_bytes : t -> bytes
end

module Dec : sig
  type t

  exception Truncated
  exception Trailing_garbage

  val of_bytes : bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val bool : t -> bool
  val float : t -> float
  val bytes : t -> bytes
  val string : t -> string

  val finish : t -> unit
  (** Assert all input was consumed; raises {!Trailing_garbage} otherwise. *)
end
