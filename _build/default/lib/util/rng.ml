type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the seed into xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* Zipf via the standard power-law inversion approximation: accurate enough
   for workload skew and requires no O(n) table. *)
let zipf t ~n ~theta =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let alpha = 1.0 /. (1.0 -. theta) in
    let zetan =
      (* Two-point approximation of the generalized harmonic number. *)
      let z = ref 0.0 in
      let steps = min n 10_000 in
      for i = 1 to steps do
        z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      if n > steps then
        !z +. (Float.pow (float_of_int n) (1.0 -. theta) -. Float.pow (float_of_int steps) (1.0 -. theta)) /. (1.0 -. theta)
      else !z
    in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (1.0 +. Float.pow 2.0 (-.theta)) /. zetan)
    in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let r = int_of_float (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha) in
      if r >= n then n - 1 else if r < 0 then 0 else r
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
