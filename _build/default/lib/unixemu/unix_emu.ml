open Mach_kernel.Ktypes
module Syscalls = Mach_kernel.Syscalls
module Minimal_fs = Mach_pagers.Minimal_fs

exception Unix_error of string

type fd = int

(* An open file: the mapped image plus bookkeeping. Several descriptors
   may share one open file (dup). *)
type open_file = {
  of_name : string;
  mutable addr : int;
  mutable size : int;  (** current logical size *)
  mutable mapped : int;  (** bytes of mapping at [addr] (0 = none) *)
  mutable pos : int;
  mutable dirty : bool;
  mutable refs : int;
}

type t = {
  task : task;
  server : Mach_ipc.Message.port;
  fds : (fd, open_file) Hashtbl.t;
  mutable next_fd : fd;
}

let init task ~server = { task; server; fds = Hashtbl.create 16; next_fd = 3 }
let page = 4096

let file_exn t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some f -> f
  | None -> raise (Unix_error (Printf.sprintf "bad file descriptor %d" fd))

let fresh_fd t =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  fd

let openf t ?(create = false) name =
  match Minimal_fs.Client.read_file t.task ~server:t.server name with
  | Ok (addr, size) ->
    let fd = fresh_fd t in
    Hashtbl.replace t.fds fd
      { of_name = name; addr; size; mapped = (if size = 0 then 0 else size); pos = 0;
        dirty = false; refs = 1 };
    fd
  | Error `No_such_file when create -> (
    match Minimal_fs.Client.write_file t.task ~server:t.server name Bytes.empty with
    | Ok () ->
      let fd = fresh_fd t in
      Hashtbl.replace t.fds fd
        { of_name = name; addr = 0; size = 0; mapped = 0; pos = 0; dirty = false; refs = 1 };
      fd
    | Error e -> raise (Unix_error (Format.asprintf "create: %a" Minimal_fs.Client.pp_error e)))
  | Error e -> raise (Unix_error (Format.asprintf "open %s: %a" name Minimal_fs.Client.pp_error e))

let mem_read t f ~off ~len =
  match Syscalls.read_bytes t.task ~addr:(f.addr + off) ~len () with
  | Ok b -> b
  | Error e -> raise (Unix_error (Format.asprintf "read fault: %a" Mach_vm.Access.pp_error e))

let mem_write t f ~off data =
  match Syscalls.write_bytes t.task ~addr:(f.addr + off) data () with
  | Ok () -> ()
  | Error e -> raise (Unix_error (Format.asprintf "write fault: %a" Mach_vm.Access.pp_error e))

let read t fd len =
  let f = file_exn t fd in
  let len = min len (f.size - f.pos) in
  if len <= 0 then Bytes.empty
  else begin
    let b = mem_read t f ~off:f.pos ~len in
    f.pos <- f.pos + len;
    b
  end

(* Grow the mapping to hold [needed] bytes (whole-file remap: the §4.1
   server has read-whole/write-whole semantics). *)
let ensure_capacity t f needed =
  if needed > f.mapped then begin
    let new_cap = max needed (max page (2 * f.mapped)) in
    let fresh = Syscalls.vm_allocate t.task ~size:new_cap ~anywhere:true () in
    if f.size > 0 && f.mapped > 0 then begin
      let old = mem_read t f ~off:0 ~len:f.size in
      match Syscalls.write_bytes t.task ~addr:fresh old () with
      | Ok () -> ()
      | Error e -> raise (Unix_error (Format.asprintf "remap: %a" Mach_vm.Access.pp_error e))
    end;
    if f.mapped > 0 then Syscalls.vm_deallocate t.task ~addr:f.addr ~size:f.mapped;
    f.addr <- fresh;
    f.mapped <- new_cap
  end

let write t fd data =
  let f = file_exn t fd in
  let len = Bytes.length data in
  if len > 0 then begin
    ensure_capacity t f (f.pos + len);
    mem_write t f ~off:f.pos data;
    f.pos <- f.pos + len;
    if f.pos > f.size then f.size <- f.pos;
    f.dirty <- true
  end;
  len

let lseek t fd offset whence =
  let f = file_exn t fd in
  let base = match whence with `Set -> 0 | `Cur -> f.pos | `End -> f.size in
  let target = base + offset in
  if target < 0 then raise (Unix_error "lseek before start of file");
  f.pos <- target;
  target

let fstat_size t fd = (file_exn t fd).size

let dup t fd =
  let f = file_exn t fd in
  f.refs <- f.refs + 1;
  let fd2 = fresh_fd t in
  Hashtbl.replace t.fds fd2 f;
  fd2

let close t fd =
  let f = file_exn t fd in
  Hashtbl.remove t.fds fd;
  f.refs <- f.refs - 1;
  if f.refs = 0 then begin
    if f.dirty && f.size > 0 then begin
      let contents = mem_read t f ~off:0 ~len:f.size in
      match Minimal_fs.Client.write_file t.task ~server:t.server f.of_name contents with
      | Ok () -> ()
      | Error e ->
        raise (Unix_error (Format.asprintf "close writeback: %a" Minimal_fs.Client.pp_error e))
    end;
    if f.mapped > 0 then Syscalls.vm_deallocate t.task ~addr:f.addr ~size:f.mapped
  end

let open_fds t = Hashtbl.length t.fds
