lib/unixemu/unix_emu.ml: Bytes Format Hashtbl Mach_ipc Mach_kernel Mach_pagers Mach_vm Printf
