lib/unixemu/unix_emu.mli: Mach_ipc Mach_kernel
