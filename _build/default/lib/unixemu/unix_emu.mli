(** §8.1: emulating the UNIX filesystem interface outside the kernel.

    "UNIX filesystem I/O can be emulated by a library package that maps
    open and close calls to a filesystem server task. An open call would
    result in the file being mapped into memory. Subsequent read and
    write calls would operate directly on virtual memory."

    This is that library package: a user-state file-descriptor layer
    over the §4.1 filesystem server. No kernel buffer cache, no copyin
    of file data through `read(2)` — reads and writes touch the mapped
    pages, which the external pager fills from disk on demand and the
    kernel keeps cached. *)

open Mach_kernel.Ktypes

type t
(** The per-task emulation state (a descriptor table). *)

type fd = int

exception Unix_error of string

val init : task -> server:Mach_ipc.Message.port -> t
(** Bind the library to a task and a filesystem server. *)

val openf : t -> ?create:bool -> string -> fd
(** Open (optionally creating) a file; maps it into the task's address
    space. Raises {!Unix_error} if absent and [create] is false. *)

val close : t -> fd -> unit
(** Write back if dirty (whole-file store, §4.1 semantics), unmap, and
    release the descriptor. *)

val read : t -> fd -> int -> bytes
(** Read up to [len] bytes at the descriptor offset, advancing it.
    Short reads at EOF; empty at or past EOF. *)

val write : t -> fd -> bytes -> int
(** Write at the descriptor offset, advancing it and growing the file
    if needed; returns the byte count. *)

val lseek : t -> fd -> int -> [ `Set | `Cur | `End ] -> int
(** Reposition; returns the new offset. *)

val fstat_size : t -> fd -> int
val dup : t -> fd -> fd
(** A new descriptor sharing the same open file (and offset). *)

val open_fds : t -> int
