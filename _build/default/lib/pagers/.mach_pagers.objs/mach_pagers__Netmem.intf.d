lib/pagers/netmem.mli: Mach_ipc Mach_kernel
