lib/pagers/minimal_fs.mli: Format Mach_fs Mach_hw Mach_ipc Mach_kernel
