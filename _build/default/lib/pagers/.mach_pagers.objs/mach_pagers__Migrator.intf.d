lib/pagers/migrator.mli: Mach_kernel
