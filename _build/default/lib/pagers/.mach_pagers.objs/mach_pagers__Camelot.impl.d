lib/pagers/camelot.ml: Bytes Format Hashtbl List Mach Mach_fs Mach_hw Mach_ipc Mach_kernel Mach_sim Mach_util Mach_vm Option
