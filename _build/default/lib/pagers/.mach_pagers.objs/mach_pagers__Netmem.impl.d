lib/pagers/netmem.ml: Array Bytes Hashtbl List Mach Mach_hw Mach_ipc Mach_kernel Mach_vm Queue
