lib/pagers/minimal_fs.ml: Bytes Format Hashtbl List Mach Mach_fs Mach_hw Mach_ipc Mach_kernel Mach_util Option
