lib/pagers/camelot.mli: Format Mach_hw Mach_ipc Mach_kernel Mach_vm
