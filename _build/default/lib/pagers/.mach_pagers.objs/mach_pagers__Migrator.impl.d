lib/pagers/migrator.ml: Hashtbl List Mach Mach_hw Mach_ipc Mach_kernel Mach_sim Mach_util Mach_vm
