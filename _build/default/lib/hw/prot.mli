(** Page protection values (the paper's [vm_prot_t]).

    A protection is a subset of \{read, write, execute\}. *)

type t = private int

val none : t
val read : t
val write : t
val execute : t
val rw : t
val rx : t
val all : t

val make : ?r:bool -> ?w:bool -> ?x:bool -> unit -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] removes [b]'s permissions from [a]. *)

val subset : t -> t -> bool
(** [subset a b]: every permission in [a] is also in [b]. *)

val can_read : t -> bool
val can_write : t -> bool
val can_execute : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
(** e.g. ["rw-"]. *)

val to_int : t -> int
val of_int : int -> t
(** Inverse of {!to_int}; out-of-range bits are masked. *)
