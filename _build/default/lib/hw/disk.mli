(** Simulated block storage device.

    A single request stream with a seek + per-byte transfer latency
    model; concurrent requests queue (FIFO). Operation and byte counters
    feed the §9 "number of I/O operations" measurements. *)

type t

val create :
  Mach_sim.Engine.t ->
  name:string ->
  blocks:int ->
  block_size:int ->
  ?seek_us:float ->
  ?transfer_us_per_byte:float ->
  unit ->
  t
(** 1987-class defaults: 20 ms average seek, 1 µs/byte transfer
    (≈ 1 MB/s). *)

val name : t -> string
val blocks : t -> int
val block_size : t -> int

val reattach : t -> Mach_sim.Engine.t -> t
(** A view of the same platters on a new simulation engine — the
    crash-recovery story: the machine reboots, the disk contents
    persist. Stats start fresh; both views share the stored bytes. *)

val read : t -> block:int -> bytes
(** Blocking; charges simulated seek + transfer time. *)

val write : t -> block:int -> bytes -> unit
(** Blocking; data must be at most one block, shorter writes leave the
    block's tail unchanged. *)

val read_raw : t -> block:int -> bytes
(** Instantaneous, no time charge and no counter update — for crash
    recovery inspection in tests. *)

val write_raw : t -> block:int -> bytes -> unit

(** {2 Statistics} *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val ops : t -> int
val reset_stats : t -> unit
