type frame = int

type t = {
  page_size : int;
  frames : bytes array;
  free_list : int Queue.t;
  allocated : bool array;
  referenced : bool array;
  modified : bool array;
  mutable free_count : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~frames ~page_size =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  if not (is_power_of_two page_size) then invalid_arg "Phys_mem.create: page_size must be a power of two";
  let t =
    {
      page_size;
      frames = Array.init frames (fun _ -> Bytes.make page_size '\000');
      free_list = Queue.create ();
      allocated = Array.make frames false;
      referenced = Array.make frames false;
      modified = Array.make frames false;
      free_count = frames;
    }
  in
  for i = 0 to frames - 1 do
    Queue.add i t.free_list
  done;
  t

let page_size t = t.page_size
let total_frames t = Array.length t.frames
let free_frames t = t.free_count

let alloc t =
  match Queue.take_opt t.free_list with
  | None -> None
  | Some f ->
    t.allocated.(f) <- true;
    t.free_count <- t.free_count - 1;
    Some f

let check t f =
  if f < 0 || f >= Array.length t.frames then invalid_arg "Phys_mem: bad frame";
  if not t.allocated.(f) then invalid_arg "Phys_mem: frame not allocated"

let free t f =
  check t f;
  Bytes.fill t.frames.(f) 0 t.page_size '\000';
  t.allocated.(f) <- false;
  t.referenced.(f) <- false;
  t.modified.(f) <- false;
  t.free_count <- t.free_count + 1;
  Queue.add f t.free_list

let data t f =
  check t f;
  t.frames.(f)

let read t f ~off ~len =
  check t f;
  Bytes.sub t.frames.(f) off len

let write t f ~off b =
  check t f;
  Bytes.blit b 0 t.frames.(f) off (Bytes.length b)

let fill t f c =
  check t f;
  Bytes.fill t.frames.(f) 0 t.page_size c

let copy t ~src ~dst =
  check t src;
  check t dst;
  Bytes.blit t.frames.(src) 0 t.frames.(dst) 0 t.page_size

let referenced t f =
  check t f;
  t.referenced.(f)

let modified t f =
  check t f;
  t.modified.(f)

let set_referenced t f v =
  check t f;
  t.referenced.(f) <- v

let set_modified t f v =
  check t f;
  t.modified.(f) <- v
