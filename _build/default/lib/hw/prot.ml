type t = int

let none = 0
let read = 1
let write = 2
let execute = 4
let rw = 3
let rx = 5
let all = 7

let make ?(r = false) ?(w = false) ?(x = false) () =
  (if r then read else 0) lor (if w then write else 0) lor (if x then execute else 0)

let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b land all
let subset a b = a land b = a
let can_read t = t land read <> 0
let can_write t = t land write <> 0
let can_execute t = t land execute <> 0
let equal = Int.equal

let to_string t =
  Printf.sprintf "%c%c%c"
    (if can_read t then 'r' else '-')
    (if can_write t then 'w' else '-')
    (if can_execute t then 'x' else '-')

let to_int t = t
let of_int i = i land all
