lib/hw/prot.mli:
