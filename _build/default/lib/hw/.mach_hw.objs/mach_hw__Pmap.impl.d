lib/hw/pmap.ml: Hashtbl List Phys_mem Prot
