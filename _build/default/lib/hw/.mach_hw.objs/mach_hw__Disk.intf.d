lib/hw/disk.mli: Mach_sim
