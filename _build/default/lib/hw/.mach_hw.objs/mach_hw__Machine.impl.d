lib/hw/machine.ml:
