lib/hw/pmap.mli: Phys_mem Prot
