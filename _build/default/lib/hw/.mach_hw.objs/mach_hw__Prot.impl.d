lib/hw/prot.ml: Int Printf
