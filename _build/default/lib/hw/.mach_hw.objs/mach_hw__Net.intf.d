lib/hw/net.mli: Mach_sim
