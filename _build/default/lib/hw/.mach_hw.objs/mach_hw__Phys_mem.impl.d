lib/hw/phys_mem.ml: Array Bytes Queue
