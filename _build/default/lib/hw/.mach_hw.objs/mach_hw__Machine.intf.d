lib/hw/machine.mli:
