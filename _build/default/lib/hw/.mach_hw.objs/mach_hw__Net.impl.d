lib/hw/net.ml: Float Hashtbl Mach_sim
