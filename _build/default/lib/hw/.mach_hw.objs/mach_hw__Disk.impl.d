lib/hw/disk.ml: Array Bytes Mach_sim Printf
