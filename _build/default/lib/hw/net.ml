module Engine = Mach_sim.Engine

type t = {
  engine : Engine.t;
  latency_us : float;
  us_per_byte : float;
  mutable messages : int;
  mutable bytes : int;
  channels : (int * int, float ref) Hashtbl.t;
      (* per-(src,dst) link serialization: transmissions queue FIFO, so a
         small message cannot overtake a large one sent earlier (the
         netmsg server serializes per connection) *)
}

let create engine ?(latency_us = 300.0) ?(us_per_byte = 0.8) () =
  { engine; latency_us; us_per_byte; messages = 0; bytes = 0; channels = Hashtbl.create 16 }

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.channels (src, dst) r;
    r

(* Absolute arrival time for a message sent now: transmission occupies
   the channel serially, propagation latency pipelines. *)
let arrival_time t ~src ~dst ~bytes =
  let now = Engine.now t.engine in
  if src = dst then now
  else begin
    let busy = channel t ~src ~dst in
    let xmit_done = Float.max now !busy +. (float_of_int bytes *. t.us_per_byte) in
    busy := xmit_done;
    xmit_done +. t.latency_us
  end

let latency_us t = t.latency_us
let us_per_byte t = t.us_per_byte

let transit_us t ~src ~dst ~bytes =
  if src = dst then 0.0 else t.latency_us +. (float_of_int bytes *. t.us_per_byte)

let count t ~src ~dst ~bytes =
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes
  end

let deliver t ~src ~dst ~bytes callback =
  count t ~src ~dst ~bytes;
  if src = dst then callback ()
  else Engine.schedule t.engine ~at:(arrival_time t ~src ~dst ~bytes) callback

let transit t ~src ~dst ~bytes =
  count t ~src ~dst ~bytes;
  if src <> dst then begin
    let at = arrival_time t ~src ~dst ~bytes in
    let delay = at -. Engine.now t.engine in
    if delay > 0.0 then Engine.sleep delay
  end

let messages t = t.messages
let bytes_carried t = t.bytes

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0
