module Engine = Mach_sim.Engine
module Semaphore = Mach_sim.Semaphore

type t = {
  engine : Engine.t;
  name : string;
  block_size : int;
  store : bytes array;
  seek_us : float;
  transfer_us_per_byte : float;
  arm : Semaphore.t; (* one transfer at a time; queued requests wait *)
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create engine ~name ~blocks ~block_size ?(seek_us = 20_000.0) ?(transfer_us_per_byte = 1.0) () =
  if blocks <= 0 || block_size <= 0 then invalid_arg "Disk.create: bad geometry";
  {
    engine;
    name;
    block_size;
    store = Array.init blocks (fun _ -> Bytes.make block_size '\000');
    seek_us;
    transfer_us_per_byte;
    arm = Semaphore.create 1;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let name t = t.name
let blocks t = Array.length t.store
let block_size t = t.block_size

let reattach t engine =
  {
    t with
    engine;
    arm = Semaphore.create 1;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let check t block =
  if block < 0 || block >= Array.length t.store then
    invalid_arg (Printf.sprintf "Disk %s: block %d out of range" t.name block)

let transfer t nbytes =
  Semaphore.with_permit t.arm (fun () ->
      Engine.sleep (t.seek_us +. (float_of_int nbytes *. t.transfer_us_per_byte)))

let read t ~block =
  check t block;
  transfer t t.block_size;
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + t.block_size;
  Bytes.copy t.store.(block)

let write t ~block data =
  check t block;
  let len = Bytes.length data in
  if len > t.block_size then invalid_arg "Disk.write: data larger than a block";
  transfer t len;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + len;
  Bytes.blit data 0 t.store.(block) 0 len

let read_raw t ~block =
  check t block;
  Bytes.copy t.store.(block)

let write_raw t ~block data =
  check t block;
  let len = Bytes.length data in
  if len > t.block_size then invalid_arg "Disk.write_raw: data larger than a block";
  Bytes.blit data 0 t.store.(block) 0 len

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let ops t = t.reads + t.writes

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0
