(** Inter-host network fabric.

    Models the NORMA interconnect: point-to-point delivery with a fixed
    one-way latency plus a per-byte transfer cost. Intra-host "delivery"
    (src = dst) is free — the duality means local transfers go through
    memory instead. *)

type t

val create : Mach_sim.Engine.t -> ?latency_us:float -> ?us_per_byte:float -> unit -> t

val latency_us : t -> float
val us_per_byte : t -> float

val transit_us : t -> src:int -> dst:int -> bytes:int -> float
(** The simulated transit time for a payload of [bytes] between the two
    hosts; 0 when [src = dst]. *)

val deliver : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
(** Schedule [callback] after the transit time; the caller does not
    block (the wire is asynchronous). The callback must not block. *)

val transit : t -> src:int -> dst:int -> bytes:int -> unit
(** Blocking form: the calling thread sleeps for the transit time. *)

(** {2 Statistics} *)

val messages : t -> int
val bytes_carried : t -> int
val reset_stats : t -> unit
