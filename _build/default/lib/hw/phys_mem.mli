(** Simulated physical memory: an array of page frames.

    Each frame carries the hardware reference and modify bits that the
    paper's resident-page structures collect from the machine-dependent
    layer (§5.3). The VM system treats frame numbers as opaque. *)

type t
type frame = int

val create : frames:int -> page_size:int -> t
(** All frames start free and zero-filled. [page_size] must be a power
    of two. *)

val page_size : t -> int
val total_frames : t -> int
val free_frames : t -> int

val alloc : t -> frame option
(** Take a free frame (zeroed), or [None] when physical memory is
    exhausted. *)

val free : t -> frame -> unit
(** Return a frame; it is zeroed and its ref/mod bits cleared. Raises
    [Invalid_argument] if the frame is already free. *)

val data : t -> frame -> bytes
(** The frame's backing store, length [page_size]. Mutating it mutates
    the frame (this is how the simulation moves page contents). *)

val read : t -> frame -> off:int -> len:int -> bytes
val write : t -> frame -> off:int -> bytes -> unit
val fill : t -> frame -> char -> unit

val copy : t -> src:frame -> dst:frame -> unit
(** Copy a whole frame (used by copy-on-write resolution). *)

(** {2 Reference / modify bits (set by {!Pmap.access})} *)

val referenced : t -> frame -> bool
val modified : t -> frame -> bool
val set_referenced : t -> frame -> bool -> unit
val set_modified : t -> frame -> bool -> unit
