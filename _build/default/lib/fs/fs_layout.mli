(** A small on-disk filesystem: superblock, fixed inode table, block
    bitmap, data blocks with single-indirect addressing.

    This is the secondary-storage substrate shared by the Mach
    filesystem server (§4.1) and the traditional-UNIX baseline (§9), so
    both systems pay identical disk costs for identical data. Metadata
    is cached in memory after mount and written through; only data-block
    transfers and metadata write-through touch the simulated disk. *)

type t

exception Fs_error of string

val format : Mach_hw.Disk.t -> max_files:int -> t
(** Initialise an empty filesystem on the disk. The disk's block size
    is the filesystem block size. *)

val mount : Mach_hw.Disk.t -> t
(** Re-read the metadata of a previously formatted disk (crash-recovery
    entry point). *)

val disk : t -> Mach_hw.Disk.t
val block_size : t -> int
val max_file_size : t -> int

val exists : t -> string -> bool
val file_size : t -> string -> int option
val list_files : t -> string list

val create : t -> string -> unit
(** Create an empty file; no-op if it exists. Raises {!Fs_error} when
    the inode table is full or the name is too long (> 63 bytes). *)

val delete : t -> string -> unit

val read_file : t -> string -> bytes option
(** Whole-file read; charges disk time per data block. *)

val write_file : t -> string -> bytes -> unit
(** Whole-file (re)write, creating the file if needed. *)

val read_range : t -> string -> off:int -> len:int -> bytes option
(** Range read (short when crossing EOF). *)

val read_block : t -> string -> index:int -> bytes option
(** Read the [index]-th file block (zero-filled past EOF within the
    file's block span, [None] wholly outside). *)

val write_block : t -> string -> index:int -> bytes -> unit
(** Write one file block, extending the file if needed. *)

(** {2 Block-level access for external caching layers}

    The UNIX baseline's buffer cache sits between the file layer and
    the disk: it translates file blocks to disk blocks here and does
    its own {!Mach_hw.Disk} I/O. *)

val file_disk_block : t -> string -> index:int -> int option
(** The disk block holding the [index]-th file block; [None] if the
    file doesn't exist or the block was never allocated. *)

val ensure_disk_block : t -> string -> index:int -> int
(** Allocate (if needed) and return the disk block for a file block,
    creating the file too. Charges metadata write-through. *)

val note_file_size : t -> string -> int -> unit
(** Grow the recorded size to at least the given value. *)
