lib/fs/fs_layout.ml: Array Bytes Hashtbl List Mach_hw Mach_util String
