lib/fs/fs_layout.mli: Mach_hw
