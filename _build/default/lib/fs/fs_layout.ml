module Disk = Mach_hw.Disk
module Codec = Mach_util.Codec

exception Fs_error of string

let magic = 0x4D46_5331 (* "MFS1" *)
let name_max = 63
let direct_blocks = 20

type inode = {
  mutable used : bool;
  mutable name : string;
  mutable size : int;
  direct : int array;  (* data block numbers; 0 = unallocated *)
  mutable indirect : int;  (* block holding further pointers; 0 = none *)
}

type t = {
  disk : Disk.t;
  bs : int;
  inodes : inode array;
  itable_start : int;
  itable_blocks : int;
  mutable bitmap : Bytes.t;  (* one byte per data block: 0 free, 1 used *)
  bitmap_start : int;
  bitmap_blocks : int;
  data_start : int;
  by_name : (string, int) Hashtbl.t;
  ptrs_per_block : int;
}

let inode_size = 256
let disk t = t.disk
let block_size t = t.bs
let max_file_size t = (direct_blocks + t.ptrs_per_block) * t.bs

let encode_inode ino =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ino.used;
  Codec.Enc.string e ino.name;
  Codec.Enc.int e ino.size;
  Array.iter (fun b -> Codec.Enc.u32 e b) ino.direct;
  Codec.Enc.u32 e ino.indirect;
  let b = Codec.Enc.to_bytes e in
  if Bytes.length b > inode_size then raise (Fs_error "inode overflow");
  let out = Bytes.make inode_size '\000' in
  Bytes.blit b 0 out 0 (Bytes.length b);
  out

let decode_inode b =
  let d = Codec.Dec.of_bytes b in
  let used = Codec.Dec.bool d in
  let name = Codec.Dec.string d in
  let size = Codec.Dec.int d in
  let direct = Array.init direct_blocks (fun _ -> Codec.Dec.u32 d) in
  let indirect = Codec.Dec.u32 d in
  { used; name; size; direct; indirect }

let geometry disk ~max_files =
  let bs = Disk.block_size disk in
  let inodes_per_block = bs / inode_size in
  let itable_blocks = (max_files + inodes_per_block - 1) / inodes_per_block in
  let itable_start = 1 in
  let bitmap_start = itable_start + itable_blocks in
  (* One byte per data block; sized for the remaining disk. *)
  let remaining = Disk.blocks disk - bitmap_start in
  let bitmap_blocks = max 1 (remaining / (bs + 1)) in
  let data_start = bitmap_start + bitmap_blocks in
  (bs, itable_blocks, itable_start, bitmap_start, bitmap_blocks, data_start)

(* Superblock/metadata initialisation happens at boot, outside measured
   workloads, so it uses raw (uncharged) writes. *)
let flush_superblock t =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e magic;
  Codec.Enc.int e (Array.length t.inodes);
  Codec.Enc.int e t.itable_blocks;
  Codec.Enc.int e t.bitmap_blocks;
  Disk.write_raw t.disk ~block:0 (Codec.Enc.to_bytes e)

(* Metadata write-through is uncharged (modelled as asynchronous,
   batched metadata I/O): both the Mach server and the UNIX baseline
   use this layer, so experiments compare data movement, not inode
   bookkeeping. *)
let flush_inode t idx =
  let bs = t.bs in
  let inodes_per_block = bs / inode_size in
  let block = t.itable_start + (idx / inodes_per_block) in
  let slot = idx mod inodes_per_block in
  (* Read-modify-write the metadata block without charging a read: the
     table is cached in memory. *)
  let raw = Disk.read_raw t.disk ~block in
  Bytes.blit (encode_inode t.inodes.(idx)) 0 raw (slot * inode_size) inode_size;
  Disk.write_raw t.disk ~block raw

let flush_bitmap_byte t data_block =
  let block = t.bitmap_start + (data_block / t.bs) in
  let raw = Disk.read_raw t.disk ~block in
  Bytes.set raw (data_block mod t.bs) (Bytes.get t.bitmap data_block);
  Disk.write_raw t.disk ~block raw

let data_block_count t = t.bitmap_blocks * t.bs

let alloc_block t =
  let n = min (data_block_count t) (Disk.blocks t.disk - t.data_start) in
  let rec find i = if i >= n then raise (Fs_error "disk full") else if Bytes.get t.bitmap i = '\000' then i else find (i + 1) in
  let i = find 0 in
  Bytes.set t.bitmap i '\001';
  flush_bitmap_byte t i;
  t.data_start + i

let free_block t blk =
  let i = blk - t.data_start in
  if i >= 0 && i < Bytes.length t.bitmap then begin
    Bytes.set t.bitmap i '\000';
    flush_bitmap_byte t i
  end

let format disk ~max_files =
  let bs, itable_blocks, itable_start, bitmap_start, bitmap_blocks, data_start =
    geometry disk ~max_files
  in
  let inodes_per_block = bs / inode_size in
  let t =
    {
      disk;
      bs;
      inodes =
        Array.init (itable_blocks * inodes_per_block) (fun _ ->
            { used = false; name = ""; size = 0; direct = Array.make direct_blocks 0; indirect = 0 });
      itable_start;
      itable_blocks;
      bitmap = Bytes.make (bitmap_blocks * bs) '\000';
      bitmap_start;
      bitmap_blocks;
      data_start;
      by_name = Hashtbl.create 64;
      ptrs_per_block = bs / 4;
    }
  in
  flush_superblock t;
  for b = 0 to itable_blocks - 1 do
    Disk.write_raw t.disk ~block:(itable_start + b) (Bytes.make bs '\000')
  done;
  for b = 0 to bitmap_blocks - 1 do
    Disk.write_raw t.disk ~block:(bitmap_start + b) (Bytes.make bs '\000')
  done;
  t

let mount disk =
  let sb = Disk.read_raw disk ~block:0 in
  let d = Codec.Dec.of_bytes sb in
  if Codec.Dec.u32 d <> magic then raise (Fs_error "bad magic: not a filesystem");
  let n_inodes = Codec.Dec.int d in
  let itable_blocks = Codec.Dec.int d in
  let bitmap_blocks = Codec.Dec.int d in
  let bs = Disk.block_size disk in
  let itable_start = 1 in
  let bitmap_start = itable_start + itable_blocks in
  let data_start = bitmap_start + bitmap_blocks in
  let inodes =
    Array.init n_inodes (fun idx ->
        let inodes_per_block = bs / inode_size in
        let raw = Disk.read_raw disk ~block:(itable_start + (idx / inodes_per_block)) in
        let slot = idx mod inodes_per_block in
        decode_inode (Bytes.sub raw (slot * inode_size) inode_size))
  in
  let bitmap = Bytes.create (bitmap_blocks * bs) in
  for b = 0 to bitmap_blocks - 1 do
    Bytes.blit (Disk.read_raw disk ~block:(bitmap_start + b)) 0 bitmap (b * bs) bs
  done;
  let t =
    {
      disk;
      bs;
      inodes;
      itable_start;
      itable_blocks;
      bitmap;
      bitmap_start;
      bitmap_blocks;
      data_start;
      by_name = Hashtbl.create 64;
      ptrs_per_block = bs / 4;
    }
  in
  Array.iteri (fun idx ino -> if ino.used then Hashtbl.replace t.by_name ino.name idx) t.inodes;
  t

let lookup t name = Hashtbl.find_opt t.by_name name
let exists t name = lookup t name <> None

let file_size t name =
  match lookup t name with Some idx -> Some t.inodes.(idx).size | None -> None

let list_files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.by_name [] |> List.sort String.compare

let create t name =
  if String.length name > name_max then raise (Fs_error "name too long");
  if not (exists t name) then begin
    let rec find i =
      if i >= Array.length t.inodes then raise (Fs_error "inode table full")
      else if not t.inodes.(i).used then i
      else find (i + 1)
    in
    let idx = find 0 in
    let ino = t.inodes.(idx) in
    ino.used <- true;
    ino.name <- name;
    ino.size <- 0;
    Array.fill ino.direct 0 direct_blocks 0;
    ino.indirect <- 0;
    Hashtbl.replace t.by_name name idx;
    flush_inode t idx
  end

let indirect_ptrs t ino =
  if ino.indirect = 0 then Array.make t.ptrs_per_block 0
  else begin
    let raw = Disk.read_raw t.disk ~block:ino.indirect in
    Array.init t.ptrs_per_block (fun i -> Bytes.get_uint16_le raw (4 * i) lor (Bytes.get_uint16_le raw ((4 * i) + 2) lsl 16))
  end

let write_indirect t ino ptrs =
  if ino.indirect = 0 then ino.indirect <- alloc_block t;
  let raw = Bytes.make t.bs '\000' in
  Array.iteri
    (fun i p ->
      Bytes.set_uint16_le raw (4 * i) (p land 0xffff);
      Bytes.set_uint16_le raw ((4 * i) + 2) ((p lsr 16) land 0xffff))
    ptrs;
  Disk.write t.disk ~block:ino.indirect raw

(* The disk block holding file block [index], or 0. *)
let block_of t ino index =
  if index < direct_blocks then ino.direct.(index)
  else
    let i = index - direct_blocks in
    if i >= t.ptrs_per_block then raise (Fs_error "file too large")
    else (indirect_ptrs t ino).(i)

let ensure_block t idx ino index =
  let existing = block_of t ino index in
  if existing <> 0 then existing
  else begin
    let blk = alloc_block t in
    if index < direct_blocks then begin
      ino.direct.(index) <- blk;
      flush_inode t idx
    end
    else begin
      let ptrs = indirect_ptrs t ino in
      ptrs.(index - direct_blocks) <- blk;
      write_indirect t ino ptrs;
      flush_inode t idx
    end;
    blk
  end

let file_disk_block t name ~index =
  match lookup t name with
  | None -> None
  | Some idx -> (
    match block_of t t.inodes.(idx) index with 0 -> None | blk -> Some blk)

let ensure_disk_block t name ~index =
  create t name;
  match lookup t name with
  | None -> assert false
  | Some idx -> ensure_block t idx t.inodes.(idx) index

let note_file_size t name size =
  match lookup t name with
  | None -> ()
  | Some idx ->
    let ino = t.inodes.(idx) in
    if size > ino.size then begin
      ino.size <- size;
      flush_inode t idx
    end

let read_block t name ~index =
  match lookup t name with
  | None -> None
  | Some idx ->
    let ino = t.inodes.(idx) in
    if index < 0 || index * t.bs >= ino.size then None
    else
      let blk = block_of t ino index in
      if blk = 0 then Some (Bytes.make t.bs '\000') else Some (Disk.read t.disk ~block:blk)

let write_block t name ~index data =
  (match lookup t name with None -> create t name | Some _ -> ());
  match lookup t name with
  | None -> assert false
  | Some idx ->
    let ino = t.inodes.(idx) in
    let blk = ensure_block t idx ino index in
    Disk.write t.disk ~block:blk data;
    let upto = (index * t.bs) + Bytes.length data in
    if upto > ino.size then begin
      ino.size <- upto;
      flush_inode t idx
    end

let read_file t name =
  match lookup t name with
  | None -> None
  | Some idx ->
    let ino = t.inodes.(idx) in
    let out = Bytes.make ino.size '\000' in
    let nblocks = (ino.size + t.bs - 1) / t.bs in
    for i = 0 to nblocks - 1 do
      let blk = block_of t ino i in
      if blk <> 0 then begin
        let data = Disk.read t.disk ~block:blk in
        let len = min t.bs (ino.size - (i * t.bs)) in
        Bytes.blit data 0 out (i * t.bs) len
      end
    done;
    Some out

let rec delete t name =
  match lookup t name with
  | None -> ()
  | Some idx ->
    let ino = t.inodes.(idx) in
    (* Free from the allocation pointers, not the recorded size: a
       failed whole-file write rolls back before the size is set. *)
    Array.iter (fun blk -> if blk <> 0 then free_block t blk) ino.direct;
    if ino.indirect <> 0 then begin
      Array.iter (fun p -> if p <> 0 then free_block t p) (indirect_ptrs t ino);
      free_block t ino.indirect
    end;
    ino.used <- false;
    ino.name <- "";
    ino.size <- 0;
    Array.fill ino.direct 0 direct_blocks 0;
    ino.indirect <- 0;
    Hashtbl.remove t.by_name name;
    flush_inode t idx

and write_file t name data =
  (* Whole-file semantics: a failed write (disk full) must not leave
     half the disk consumed — the partial file is deleted and its
     blocks freed before the error propagates. *)
  try write_file_unchecked t name data
  with Fs_error _ as e ->
    delete t name;
    raise e

and write_file_unchecked t name data =
  create t name;
  match lookup t name with
  | None -> assert false
  | Some idx ->
    let ino = t.inodes.(idx) in
    (* Free blocks past the new end. *)
    let old_blocks = (ino.size + t.bs - 1) / t.bs in
    let new_blocks = (Bytes.length data + t.bs - 1) / t.bs in
    for i = new_blocks to old_blocks - 1 do
      let blk = block_of t ino i in
      if blk <> 0 then begin
        free_block t blk;
        if i < direct_blocks then ino.direct.(i) <- 0
      end
    done;
    for i = 0 to new_blocks - 1 do
      let blk = ensure_block t idx ino i in
      let len = min t.bs (Bytes.length data - (i * t.bs)) in
      Disk.write t.disk ~block:blk (Bytes.sub data (i * t.bs) len)
    done;
    ino.size <- Bytes.length data;
    flush_inode t idx

let read_range t name ~off ~len =
  match lookup t name with
  | None -> None
  | Some idx ->
    let ino = t.inodes.(idx) in
    if off >= ino.size then Some Bytes.empty
    else begin
      let len = min len (ino.size - off) in
      let out = Bytes.make len '\000' in
      let first = off / t.bs in
      let last = (off + len - 1) / t.bs in
      for i = first to last do
        let blk = block_of t ino i in
        let data = if blk = 0 then Bytes.make t.bs '\000' else Disk.read t.disk ~block:blk in
        let src_lo = max off (i * t.bs) in
        let src_hi = min (off + len) ((i + 1) * t.bs) in
        Bytes.blit data (src_lo - (i * t.bs)) out (src_lo - off) (src_hi - src_lo)
      done;
      Some out
    end
