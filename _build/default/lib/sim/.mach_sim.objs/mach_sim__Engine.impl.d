lib/sim/engine.ml: Array Effect Hashtbl List Printf String
