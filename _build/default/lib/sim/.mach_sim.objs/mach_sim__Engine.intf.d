lib/sim/engine.mli:
