lib/sim/semaphore.mli:
