lib/sim/mailbox.mli:
