lib/sim/ivar.mli:
