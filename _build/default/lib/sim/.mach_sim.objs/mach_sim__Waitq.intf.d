lib/sim/waitq.mli:
