(** Condition-variable-style wait queues.

    Threads wait for a state change guarded by the caller's own
    predicate; broadcasting wakes every waiter to re-check. The VM layer
    uses these for "page busy" waits in the fault handler. *)

type t

val create : unit -> t

val wait : t -> unit
(** Block until the next {!broadcast} or {!signal}. *)

val wait_timeout : t -> timeout:float -> bool
(** [true] if woken by a signal, [false] on timeout. *)

val signal : t -> unit
(** Wake at most one waiter. *)

val broadcast : t -> unit
(** Wake all current waiters. *)

val waiters : t -> int
