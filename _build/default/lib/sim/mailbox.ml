type 'a waiter = { mutable fired : bool; wake : 'a -> unit }

type 'a t = {
  queue : 'a Queue.t;
  mutable cap : int option;
  receivers : 'a option waiter Queue.t; (* woken with Some v, or None on timeout/close *)
  senders : ('a * bool waiter) Queue.t; (* woken with true when the value was accepted *)
  mutable closed : bool;
}

exception Closed

let check_open t = if t.closed then raise Closed

let create ?capacity () =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Mailbox.create: negative capacity"
  | _ -> ());
  { queue = Queue.create (); cap = capacity; receivers = Queue.create (); senders = Queue.create ();
    closed = false }

let capacity t = t.cap
let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue

let rec pop_live q =
  match Queue.take_opt q with
  | None -> None
  | Some ((_, w) as entry) -> if w.fired then pop_live q else Some entry

let rec pop_live_receiver q =
  match Queue.take_opt q with
  | None -> None
  | Some w -> if w.fired then pop_live_receiver q else Some w

let waiters t = Queue.fold (fun n w -> if w.fired then n else n + 1) 0 t.receivers

let has_room t =
  match t.cap with None -> true | Some c -> Queue.length t.queue < c

(* After removing a message, a blocked sender may now fit. *)
let admit_blocked_sender t =
  if has_room t then
    match pop_live t.senders with
    | None -> ()
    | Some (v, w) ->
      Queue.add v t.queue;
      w.fired <- true;
      w.wake true

let set_capacity t cap =
  (match cap with
  | Some c when c < 0 -> invalid_arg "Mailbox.set_capacity: negative capacity"
  | _ -> ());
  t.cap <- cap;
  (* A raised capacity may admit blocked senders. *)
  let continue_admitting = ref true in
  while !continue_admitting do
    if has_room t && not (Queue.is_empty t.senders) then begin
      match pop_live t.senders with
      | None -> continue_admitting := false
      | Some (v, w) ->
        Queue.add v t.queue;
        w.fired <- true;
        w.wake true
    end
    else continue_admitting := false
  done

let deliver_direct t v =
  match pop_live_receiver t.receivers with
  | Some w ->
    w.fired <- true;
    w.wake (Some v);
    true
  | None -> false

let send_timeout t v ~timeout =
  check_open t;
  if deliver_direct t v then true
  else if has_room t then begin
    Queue.add v t.queue;
    true
  end
  else if timeout <= 0.0 then false
  else begin
    let accepted =
      Engine.suspend (fun eng k ->
          let w = { fired = false; wake = k } in
          Queue.add (v, w) t.senders;
          Engine.schedule eng
            ~at:(Engine.now eng +. timeout)
            (fun () ->
              if not w.fired then begin
                w.fired <- true;
                w.wake false
              end))
    in
    if (not accepted) && t.closed then raise Closed;
    accepted
  end

let send t v =
  check_open t;
  if deliver_direct t v then ()
  else if has_room t then Queue.add v t.queue
  else
    let accepted =
      Engine.suspend (fun _eng k ->
          let w = { fired = false; wake = k } in
          Queue.add (v, w) t.senders)
    in
    if not accepted then begin
      (* Only a close can refuse an untimed send. *)
      assert t.closed;
      raise Closed
    end

let try_recv t =
  check_open t;
  match Queue.take_opt t.queue with
  | Some v ->
    admit_blocked_sender t;
    Some v
  | None -> (
    (* A blocked sender's message can bypass an empty queue. *)
    match pop_live t.senders with
    | Some (v, w) ->
      w.fired <- true;
      w.wake true;
      Some v
    | None -> None)

let recv t =
  match try_recv t with
  | Some v -> v
  | None -> (
    let r =
      Engine.suspend (fun _eng k ->
          let w = { fired = false; wake = k } in
          Queue.add w t.receivers)
    in
    match r with
    | Some v -> v
    | None ->
      assert t.closed;
      raise Closed)

let recv_timeout t ~timeout =
  match try_recv t with
  | Some v -> Some v
  | None ->
    if timeout <= 0.0 then None
    else
      match
        Engine.suspend (fun eng k ->
            let w = { fired = false; wake = k } in
            Queue.add w t.receivers;
            Engine.schedule eng
              ~at:(Engine.now eng +. timeout)
              (fun () ->
                if not w.fired then begin
                  w.fired <- true;
                  w.wake None
                end))
      with
      | Some v -> Some v
      | None -> if t.closed then raise Closed else None


let close t =
  if not t.closed then begin
    t.closed <- true;
    Queue.clear t.queue;
    Queue.iter
      (fun w ->
        if not w.fired then begin
          w.fired <- true;
          w.wake None
        end)
      t.receivers;
    Queue.clear t.receivers;
    Queue.iter
      (fun (_, w) ->
        if not w.fired then begin
          w.fired <- true;
          w.wake false
        end)
      t.senders;
    Queue.clear t.senders
  end

let is_closed t = t.closed
