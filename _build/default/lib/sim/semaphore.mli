(** Counting semaphores over the simulation engine.

    Used for CPU slots (a host with [n] processors is a semaphore of
    [n] permits around compute bursts) and for the kernel's reserved
    memory pool accounting (§6.2.3). *)

type t

val create : int -> t
(** [create permits]; [permits >= 0]. *)

val permits : t -> int
(** Currently available permits. *)

val acquire : ?n:int -> t -> unit
(** Take [n] (default 1) permits, blocking until available. Permits are
    granted FIFO, a single large request cannot be starved by a stream of
    small ones. *)

val try_acquire : ?n:int -> t -> bool
val release : ?n:int -> t -> unit

val with_permit : t -> (unit -> 'a) -> 'a
(** Acquire one permit around a callback, releasing on exception too. *)
