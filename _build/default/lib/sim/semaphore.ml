type waiter = { n : int; wake : unit -> unit }
type t = { mutable avail : int; waiting : waiter Queue.t }

let create permits =
  if permits < 0 then invalid_arg "Semaphore.create: negative permits";
  { avail = permits; waiting = Queue.create () }

let permits t = t.avail

(* FIFO grant: only the queue head may be served, preserving fairness for
   large requests. *)
let drain t =
  let continue_draining = ref true in
  while !continue_draining do
    match Queue.peek_opt t.waiting with
    | Some w when w.n <= t.avail ->
      ignore (Queue.take t.waiting);
      t.avail <- t.avail - w.n;
      w.wake ()
    | Some _ | None -> continue_draining := false
  done

let acquire ?(n = 1) t =
  if Queue.is_empty t.waiting && t.avail >= n then t.avail <- t.avail - n
  else
    Engine.suspend (fun _eng k -> Queue.add { n; wake = (fun () -> k ()) } t.waiting)

let try_acquire ?(n = 1) t =
  if Queue.is_empty t.waiting && t.avail >= n then begin
    t.avail <- t.avail - n;
    true
  end
  else false

let release ?(n = 1) t =
  t.avail <- t.avail + n;
  drain t

let with_permit t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
