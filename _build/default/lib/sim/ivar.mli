(** Write-once synchronisation cells (futures).

    The fault handler blocks on an ivar that is filled when the data
    manager's [pager_data_provided] arrives; the timeout variant
    implements the §6.2.1 "abort a memory request after a timeout"
    recovery option. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Fill the cell and wake all readers. Raises [Invalid_argument] if
    already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when full. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block the calling thread until the cell is filled. *)

val read_timeout : 'a t -> timeout:float -> 'a option
(** Block for at most [timeout] simulated microseconds; [None] on
    expiry. *)
