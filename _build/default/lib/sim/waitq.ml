type waiter = { mutable fired : bool; wake : bool -> unit }
type t = { queue : waiter Queue.t }

let create () = { queue = Queue.create () }
let waiters t = Queue.fold (fun n w -> if w.fired then n else n + 1) 0 t.queue

let wait t =
  let woken =
    Engine.suspend (fun _eng k ->
        let w = { fired = false; wake = k } in
        Queue.add w t.queue)
  in
  assert woken

let wait_timeout t ~timeout =
  Engine.suspend (fun eng k ->
      let w = { fired = false; wake = k } in
      Queue.add w t.queue;
      Engine.schedule eng
        ~at:(Engine.now eng +. timeout)
        (fun () ->
          if not w.fired then begin
            w.fired <- true;
            w.wake false
          end))

let rec signal t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some w ->
    if w.fired then signal t
    else begin
      w.fired <- true;
      w.wake true
    end

let broadcast t =
  let rec drain () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some w ->
      if not w.fired then begin
        w.fired <- true;
        w.wake true
      end;
      drain ()
  in
  drain ()
