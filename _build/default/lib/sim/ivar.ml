type 'a state = Empty of ('a -> unit) list | Full of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
    t.state <- Full v;
    List.iter (fun w -> w v) (List.rev waiters);
    true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"
let is_filled t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
    Engine.suspend (fun _eng k ->
        match t.state with
        | Full v -> k v
        | Empty waiters -> t.state <- Empty (k :: waiters))

let read_timeout t ~timeout =
  match t.state with
  | Full v -> Some v
  | Empty _ ->
    Engine.suspend (fun eng k ->
        let fired = ref false in
        let once v =
          if not !fired then begin
            fired := true;
            k v
          end
        in
        (match t.state with
        | Full v -> once (Some v)
        | Empty waiters -> t.state <- Empty ((fun v -> once (Some v)) :: waiters));
        Engine.schedule eng ~at:(Engine.now eng +. timeout) (fun () -> once None))
