(** Bounded blocking message queues.

    These are the substrate for IPC port queues: a port is "a finite
    length queue for messages protected by the kernel" (§3.2), and
    [port_set_backlog] maps to the mailbox capacity. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] bounds the number of queued messages; unbounded when
    omitted. *)

val capacity : 'a t -> int option
val set_capacity : 'a t -> int option -> unit
val length : 'a t -> int
val is_empty : 'a t -> bool

val send : 'a t -> 'a -> unit
(** Enqueue, blocking while the mailbox is full. *)

val send_timeout : 'a t -> 'a -> timeout:float -> bool
(** Like {!send} but gives up after [timeout] simulated microseconds,
    returning [false]. A zero timeout is a non-blocking try-send. *)

val recv : 'a t -> 'a
(** Dequeue, blocking while the mailbox is empty. *)

val recv_timeout : 'a t -> timeout:float -> 'a option
val try_recv : 'a t -> 'a option

val waiters : 'a t -> int
(** Number of threads blocked in [recv]. *)

exception Closed

val close : 'a t -> unit
(** Close the mailbox: queued messages are dropped, blocked receivers
    and senders are woken with {!Closed}, and all future operations
    raise {!Closed} (except [close] itself, which is idempotent).
    A destroyed IPC port closes its queue this way so blocked receivers
    learn of the death instead of waiting forever. *)

val is_closed : 'a t -> bool
