(** The page-replacement queues (§5.4): an active queue in LRU order,
    an inactive queue of pageout candidates. (Pages "not caching any
    data" — the paper's free queue — live in {!Mach_hw.Phys_mem}'s free
    frame list; a freed page's structure is discarded.) *)

open Vm_types

type t

val create : unit -> t
val active_count : t -> int
val inactive_count : t -> int

val activate : t -> page -> unit
(** Put the page at the tail of the active queue (most recently used),
    removing it from whatever queue it was on. Wired and busy pages may
    be activated; the pageout daemon skips them. *)

val deactivate : t -> page -> unit
(** Move to the tail of the inactive queue and clear the hardware
    reference bit so future use is detectable. *)

val remove : t -> page -> unit
(** Detach from any queue (page being freed or wired). *)

val oldest_active : t -> page option
val oldest_inactive : t -> page option

val iter_inactive : t -> (page -> unit) -> unit
(** Snapshot iteration, safe against removal during the walk. *)
