module Prot = Mach_hw.Prot
module Pmap = Mach_hw.Pmap
module Phys_mem = Mach_hw.Phys_mem
module Machine = Mach_hw.Machine

type error = Bad_address of int | Access_denied of int | Manager_failed of int

let pp_error fmt = function
  | Bad_address a -> Format.fprintf fmt "bad address %#x" a
  | Access_denied a -> Format.fprintf fmt "access denied at %#x" a
  | Manager_failed a -> Format.fprintf fmt "data manager failed at %#x" a

let touch kctx map ~addr ~write ?policy () =
  match Vm_map.pmap map with
  | None -> invalid_arg "Access.touch: map has no pmap"
  | Some pm ->
    let ps = kctx.Kctx.page_size in
    let vpn = addr / ps in
    (* A real CPU refaults the instruction indefinitely; the cap is a
       livelock guard, generous enough for heavily contended shared
       memory (each retry implies another kernel made progress). *)
    let rec go tries =
      if tries > 512 then Error (Manager_failed addr)
      else
        match Pmap.access pm ~vpn ~write with
        | Ok frame ->
          Kctx.charge kctx (Machine.access_us kctx.Kctx.params ~remote:false ~words:1);
          Ok frame
        | Error (Pmap.Missing | Pmap.Protection) -> (
          match Fault.handle kctx map ~addr ~write ?policy () with
          | Fault.Done -> go (tries + 1)
          | Fault.Invalid_address -> Error (Bad_address addr)
          | Fault.Protection_failure -> Error (Access_denied addr)
          | Fault.Pager_error -> Error (Manager_failed addr))
    in
    go 0

let read_bytes kctx map ~addr ~len ?policy () =
  let ps = kctx.Kctx.page_size in
  let out = Bytes.create len in
  let rec go pos =
    if pos >= len then Ok out
    else
      let a = addr + pos in
      let in_page = min (len - pos) (ps - (a land (ps - 1))) in
      match touch kctx map ~addr:a ~write:false ?policy () with
      | Error e -> Error e
      | Ok frame ->
        let chunk = Phys_mem.read kctx.Kctx.mem frame ~off:(a land (ps - 1)) ~len:in_page in
        Bytes.blit chunk 0 out pos in_page;
        (* Whole-chunk access time beyond the first word. *)
        Kctx.charge kctx
          (Machine.access_us kctx.Kctx.params ~remote:false ~words:(max 0 ((in_page / 8) - 1)));
        go (pos + in_page)
  in
  if len = 0 then Ok out else go 0

let write_bytes kctx map ~addr data ?policy () =
  let ps = kctx.Kctx.page_size in
  let len = Bytes.length data in
  let rec go pos =
    if pos >= len then Ok ()
    else
      let a = addr + pos in
      let in_page = min (len - pos) (ps - (a land (ps - 1))) in
      match touch kctx map ~addr:a ~write:true ?policy () with
      | Error e -> Error e
      | Ok frame ->
        Phys_mem.write kctx.Kctx.mem frame ~off:(a land (ps - 1)) (Bytes.sub data pos in_page);
        Kctx.charge kctx
          (Machine.access_us kctx.Kctx.params ~remote:false ~words:(max 0 ((in_page / 8) - 1)));
        go (pos + in_page)
  in
  if len = 0 then Ok () else go 0

let read_u8 kctx map ~addr =
  match read_bytes kctx map ~addr ~len:1 () with
  | Ok b -> Ok (Bytes.get_uint8 b 0)
  | Error e -> Error e

let write_u8 kctx map ~addr v =
  let b = Bytes.create 1 in
  Bytes.set_uint8 b 0 v;
  write_bytes kctx map ~addr b ()
