(** The pageout daemon (§5.4, §6.2.2, §6.2.3).

    Maintains the free-frame target by aging pages from the active queue
    to the inactive queue (clearing hardware reference bits so reuse is
    observable), freeing clean inactive pages, and writing dirty ones
    back to their data managers with [pager_data_write]. Anonymous
    memory being paged out for the first time is handed to the default
    pager with [pager_create]. *)

val start : Kctx.t -> unit
(** Spawn the daemon thread. It wakes when {!Kctx.alloc_frame} signals
    memory pressure, and also on a slow periodic tick. *)

val run_once : Kctx.t -> int
(** One reclamation pass (for deterministic unit tests): returns the
    number of frames freed or scheduled for freeing. *)
