module Message = Mach_ipc.Message
module Codec = Mach_util.Codec
module Prot = Mach_hw.Prot

type kernel_to_manager =
  | Init of { memory_object : Message.port; request : Message.port; name : Message.port }
  | Data_request of {
      memory_object : Message.port;
      request : Message.port;
      offset : int;
      length : int;
      desired_access : Prot.t;
    }
  | Data_write of { memory_object : Message.port; offset : int; data : bytes; write_id : int }
  | Data_unlock of {
      memory_object : Message.port;
      request : Message.port;
      offset : int;
      length : int;
      desired_access : Prot.t;
    }
  | Create of {
      new_memory_object : Message.port;
      request : Message.port;
      name : Message.port;
      size : int;
    }
  | Lock_completed of { memory_object : Message.port; offset : int; length : int }

type manager_to_kernel =
  | Data_provided of { offset : int; data : bytes; lock_value : Prot.t }
  | Data_lock of { offset : int; length : int; lock_value : Prot.t }
  | Flush_request of { offset : int; length : int }
  | Clean_request of { offset : int; length : int }
  | Cache of { may_cache : bool }
  | Data_unavailable of { offset : int; size : int }
  | Release_write of { write_id : int }

exception Malformed of string

(* Message ids. Kernel→manager in 21xx, manager→kernel in 22xx. *)
let id_init = 2100
let id_data_request = 2101
let id_data_write = 2102
let id_data_unlock = 2103
let id_create = 2104
let id_lock_completed = 2105
let id_data_provided = 2200
let id_data_lock = 2201
let id_flush_request = 2202
let id_clean_request = 2203
let id_cache = 2204
let id_data_unavailable = 2205
let id_release_write = 2206

let is_pager_msg (m : Message.t) =
  let id = m.header.msg_id in
  id >= 2100 && id <= 2206

let send_cap port = { Message.cap_port = port; cap_right = Message.Send_right }
let receive_cap port = { Message.cap_port = port; cap_right = Message.Receive_right }

let enc f =
  let e = Codec.Enc.create () in
  f e;
  Message.Data (Codec.Enc.to_bytes e)

let ool data = Message.Ool { ool_data = data; transfer = Message.Map_transfer }

let encode_k2m ~reply call ~dest =
  match call with
  | Init { memory_object = _; request; name } ->
    Message.make ?reply ~msg_id:id_init ~dest [ Message.Caps [ send_cap request; send_cap name ] ]
  | Data_request { memory_object = _; request; offset; length; desired_access } ->
    Message.make ?reply ~msg_id:id_data_request ~dest
      [
        Message.Caps [ send_cap request ];
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length;
            Codec.Enc.u8 e (Prot.to_int desired_access));
      ]
  | Data_write { memory_object = _; offset; data; write_id } ->
    Message.make ?reply ~msg_id:id_data_write ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e write_id);
        ool data;
      ]
  | Data_unlock { memory_object = _; request; offset; length; desired_access } ->
    Message.make ?reply ~msg_id:id_data_unlock ~dest
      [
        Message.Caps [ send_cap request ];
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length;
            Codec.Enc.u8 e (Prot.to_int desired_access));
      ]
  | Create { new_memory_object; request; name; size } ->
    Message.make ?reply ~msg_id:id_create ~dest
      [
        Message.Caps [ receive_cap new_memory_object; send_cap request; send_cap name ];
        enc (fun e -> Codec.Enc.int e size);
      ]
  | Lock_completed { memory_object = _; offset; length } ->
    Message.make ?reply ~msg_id:id_lock_completed ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length);
      ]

let encode_m2k call ~request =
  let dest = request in
  match call with
  | Data_provided { offset; data; lock_value } ->
    Message.make ~msg_id:id_data_provided ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.u8 e (Prot.to_int lock_value));
        ool data;
      ]
  | Data_lock { offset; length; lock_value } ->
    Message.make ~msg_id:id_data_lock ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length;
            Codec.Enc.u8 e (Prot.to_int lock_value));
      ]
  | Flush_request { offset; length } ->
    Message.make ~msg_id:id_flush_request ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length);
      ]
  | Clean_request { offset; length } ->
    Message.make ~msg_id:id_clean_request ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e length);
      ]
  | Cache { may_cache } -> Message.make ~msg_id:id_cache ~dest [ enc (fun e -> Codec.Enc.bool e may_cache) ]
  | Data_unavailable { offset; size } ->
    Message.make ~msg_id:id_data_unavailable ~dest
      [
        enc (fun e ->
            Codec.Enc.int e offset;
            Codec.Enc.int e size);
      ]
  | Release_write { write_id } ->
    Message.make ~msg_id:id_release_write ~dest [ enc (fun e -> Codec.Enc.int e write_id) ]

let payload m =
  match Message.data_exn m with
  | b -> Codec.Dec.of_bytes b
  | exception Not_found -> raise (Malformed "missing data item")

let first_ool m =
  match Message.ool_payloads m with
  | b :: _ -> b
  | [] -> raise (Malformed "missing out-of-line data")

let caps_exn m n =
  let caps = Message.caps m in
  if List.length caps < n then raise (Malformed "missing capabilities");
  caps

let wrap f = try f () with Codec.Dec.Truncated -> raise (Malformed "truncated payload")

let decode_k2m (m : Message.t) =
  let dest = m.header.dest in
  let id = m.header.msg_id in
  if id = id_init then begin
    match caps_exn m 2 with
    | [ r; n ] -> Init { memory_object = dest; request = r.cap_port; name = n.cap_port }
    | _ -> raise (Malformed "pager_init: bad capabilities")
  end
  else if id = id_data_request then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        let desired_access = Prot.of_int (Codec.Dec.u8 d) in
        match caps_exn m 1 with
        | r :: _ ->
          Data_request { memory_object = dest; request = r.cap_port; offset; length; desired_access }
        | [] -> raise (Malformed "pager_data_request: bad capabilities"))
  else if id = id_data_write then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let write_id = Codec.Dec.int d in
        Data_write { memory_object = dest; offset; data = first_ool m; write_id })
  else if id = id_data_unlock then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        let desired_access = Prot.of_int (Codec.Dec.u8 d) in
        match caps_exn m 1 with
        | r :: _ ->
          Data_unlock { memory_object = dest; request = r.cap_port; offset; length; desired_access }
        | [] -> raise (Malformed "pager_data_unlock: bad capabilities"))
  else if id = id_create then
    wrap (fun () ->
        let d = payload m in
        let size = Codec.Dec.int d in
        match caps_exn m 3 with
        | [ o; r; n ] ->
          Create { new_memory_object = o.cap_port; request = r.cap_port; name = n.cap_port; size }
        | _ -> raise (Malformed "pager_create: bad capabilities"))
  else if id = id_lock_completed then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        Lock_completed { memory_object = dest; offset; length })
  else raise (Malformed (Printf.sprintf "unknown kernel-to-manager id %d" id))

let decode_m2k (m : Message.t) =
  let id = m.header.msg_id in
  if id = id_data_provided then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let lock_value = Prot.of_int (Codec.Dec.u8 d) in
        Data_provided { offset; data = first_ool m; lock_value })
  else if id = id_data_lock then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        let lock_value = Prot.of_int (Codec.Dec.u8 d) in
        Data_lock { offset; length; lock_value })
  else if id = id_flush_request then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        Flush_request { offset; length })
  else if id = id_clean_request then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let length = Codec.Dec.int d in
        Clean_request { offset; length })
  else if id = id_cache then
    wrap (fun () ->
        let d = payload m in
        Cache { may_cache = Codec.Dec.bool d })
  else if id = id_data_unavailable then
    wrap (fun () ->
        let d = payload m in
        let offset = Codec.Dec.int d in
        let size = Codec.Dec.int d in
        Data_unavailable { offset; size })
  else if id = id_release_write then
    wrap (fun () ->
        let d = payload m in
        Release_write { write_id = Codec.Dec.int d })
  else raise (Malformed (Printf.sprintf "unknown manager-to-kernel id %d" id))
