(** Simulated memory accesses by task code.

    Every load/store goes through the pmap exactly like a CPU: a valid
    translation costs only the machine's memory access time; a missing
    or insufficient translation traps into {!Fault.handle} and retries.
    These functions power [vm_read]/[vm_write] (Table 3-3) and all the
    workload generators. *)

type error = Bad_address of int | Access_denied of int | Manager_failed of int

val pp_error : Format.formatter -> error -> unit

val touch :
  Kctx.t ->
  Vm_map.t ->
  addr:int ->
  write:bool ->
  ?policy:Fault.policy ->
  unit ->
  (Mach_hw.Phys_mem.frame, error) result
(** One word access at [addr]: returns the frame backing the page,
    after any faults resolve. Charges one local memory access. *)

val read_bytes :
  Kctx.t ->
  Vm_map.t ->
  addr:int ->
  len:int ->
  ?policy:Fault.policy ->
  unit ->
  (bytes, error) result
(** Copy [len] bytes out of the address space (faulting pages in). *)

val write_bytes :
  Kctx.t ->
  Vm_map.t ->
  addr:int ->
  bytes ->
  ?policy:Fault.policy ->
  unit ->
  (unit, error) result
(** Copy bytes into the address space (faulting and COW-resolving). *)

val read_u8 : Kctx.t -> Vm_map.t -> addr:int -> (int, error) result
val write_u8 : Kctx.t -> Vm_map.t -> addr:int -> int -> (unit, error) result
