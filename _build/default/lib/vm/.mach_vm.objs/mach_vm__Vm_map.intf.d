lib/vm/vm_map.mli: Kctx Mach_hw Vm_types
