lib/vm/vm_map.ml: Hashtbl Kctx List Mach_hw Printf Vm_object Vm_page Vm_types
