lib/vm/fault.ml: Hashtbl Kctx Mach_hw Mach_sim Page_queues Pager_client Vm_map Vm_object Vm_page Vm_types
