lib/vm/access.mli: Fault Format Kctx Mach_hw Vm_map
