lib/vm/pageout.ml: Kctx Mach_hw Mach_sim Page_queues Pager_client Vm_page Vm_types
