lib/vm/page_queues.mli: Vm_types
