lib/vm/vm_types.ml: Hashtbl Mach_hw Mach_ipc Mach_sim Mach_util
