lib/vm/kctx.mli: Hashtbl Mach_hw Mach_ipc Mach_sim Page_queues Vm_types
