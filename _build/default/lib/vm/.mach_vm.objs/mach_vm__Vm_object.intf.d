lib/vm/vm_object.mli: Format Kctx Vm_types
