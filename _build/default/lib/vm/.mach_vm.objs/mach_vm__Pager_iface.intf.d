lib/vm/pager_iface.mli: Mach_hw Mach_ipc
