lib/vm/pageout.mli: Kctx
