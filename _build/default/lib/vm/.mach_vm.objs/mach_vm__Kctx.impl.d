lib/vm/kctx.ml: Hashtbl List Mach_hw Mach_ipc Mach_sim Page_queues Vm_types
