lib/vm/vm_object.ml: Format Hashtbl Kctx List Mach_ipc Mach_sim Vm_page Vm_types
