lib/vm/pager_client.mli: Kctx Mach_hw Mach_ipc Vm_types
