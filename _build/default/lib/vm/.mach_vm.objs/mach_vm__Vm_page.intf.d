lib/vm/vm_page.mli: Kctx Mach_hw Vm_types
