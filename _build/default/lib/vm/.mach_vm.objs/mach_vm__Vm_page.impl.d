lib/vm/vm_page.ml: Hashtbl Kctx List Mach_hw Mach_sim Page_queues Vm_types
