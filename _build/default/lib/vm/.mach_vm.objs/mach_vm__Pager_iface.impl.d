lib/vm/pager_iface.ml: List Mach_hw Mach_ipc Mach_util Printf
