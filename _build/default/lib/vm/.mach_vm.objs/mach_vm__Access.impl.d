lib/vm/access.ml: Bytes Fault Format Kctx Mach_hw Vm_map
