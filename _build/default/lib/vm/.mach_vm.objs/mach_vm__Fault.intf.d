lib/vm/fault.mli: Kctx Vm_map
