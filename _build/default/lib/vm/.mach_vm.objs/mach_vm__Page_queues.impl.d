lib/vm/page_queues.ml: List Mach_util Option Vm_types
