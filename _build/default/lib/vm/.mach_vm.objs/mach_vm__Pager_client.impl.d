lib/vm/pager_client.ml: Bytes Hashtbl Kctx List Logs Mach_hw Mach_ipc Mach_sim Page_queues Pager_iface Vm_object Vm_page Vm_types
