open Vm_types
module Engine = Mach_sim.Engine
module Waitq = Mach_sim.Waitq
module Phys_mem = Mach_hw.Phys_mem

(* Move aged pages (reference bit clear) from the active queue to the
   inactive queue; referenced pages rotate back with their bit cleared,
   approximating LRU with a clock sweep. *)
let refill_inactive kctx ~want =
  let queues = kctx.Kctx.queues in
  let scanned = ref 0 in
  let moved = ref 0 in
  let budget = Page_queues.active_count queues in
  while !moved < want && !scanned < budget do
    match Page_queues.oldest_active queues with
    | None -> scanned := budget
    | Some page ->
      incr scanned;
      if page.wire_count > 0 || page.busy then Page_queues.activate queues page
      else if Phys_mem.referenced kctx.Kctx.mem page.frame then begin
        Phys_mem.set_referenced kctx.Kctx.mem page.frame false;
        Page_queues.activate queues page (* second chance *)
      end
      else begin
        Page_queues.deactivate queues page;
        incr moved
      end
  done;
  !moved

let reclaim_inactive kctx ~want =
  let queues = kctx.Kctx.queues in
  let freed = ref 0 in
  let scanned = ref 0 in
  let budget = Page_queues.inactive_count queues in
  while !freed < want && !scanned < budget do
    match Page_queues.oldest_inactive queues with
    | None -> scanned := budget
    | Some page ->
      incr scanned;
      if page.wire_count > 0 || page.busy then Page_queues.activate queues page
      else if Phys_mem.referenced kctx.Kctx.mem page.frame then begin
        (* Used while inactive: reactivate. *)
        kctx.Kctx.stats.s_reactivations <- kctx.Kctx.stats.s_reactivations + 1;
        Phys_mem.set_referenced kctx.Kctx.mem page.frame false;
        Page_queues.activate queues page
      end
      else begin
        Vm_page.harvest_bits kctx page;
        if page.dirty then begin
          (match page.p_obj.pager with
          | No_pager -> Pager_client.bind_to_default_pager kctx page.p_obj
          | Pager _ -> ());
          (match page.p_obj.pager with
          | Pager _ ->
            Pager_client.page_out kctx page ~flush:false;
            incr freed
          | No_pager ->
            (* No default pager registered: cannot clean; keep active. *)
            Page_queues.activate queues page)
        end
        else begin
          Vm_page.free kctx page;
          incr freed
        end
      end
  done;
  !freed

let run_once kctx =
  let target = Kctx.free_target kctx in
  let deficit = target - Phys_mem.free_frames kctx.Kctx.mem in
  if deficit <= 0 then 0
  else begin
    (* Keep the inactive queue at about a third of the active queue. *)
    let queues = kctx.Kctx.queues in
    let want_inactive =
      max deficit ((Page_queues.active_count queues / 3) - Page_queues.inactive_count queues)
    in
    ignore (refill_inactive kctx ~want:want_inactive);
    reclaim_inactive kctx ~want:deficit
  end

let start kctx =
  Engine.spawn kctx.Kctx.engine ~name:"pageout-daemon" (fun () ->
      let rec loop () =
        if Kctx.need_pageout kctx then begin
          let freed = run_once kctx in
          (* When nothing is reclaimable, block until an allocator or a
             release changes the world; a demand-driven daemon keeps the
             event queue empty at quiescence. *)
          if freed = 0 then Waitq.wait kctx.Kctx.pageout_wanted else Engine.sleep 50.0
        end
        else Waitq.wait kctx.Kctx.pageout_wanted;
        loop ()
      in
      loop ())
