open Vm_types
module Engine = Mach_sim.Engine
module Waitq = Mach_sim.Waitq
module Prot = Mach_hw.Prot
module Pmap = Mach_hw.Pmap
module Phys_mem = Mach_hw.Phys_mem
module Machine = Mach_hw.Machine

type policy = Wait_forever | Abort_after of float | Zero_fill_after of float
type outcome = Done | Invalid_address | Protection_failure | Pager_error

let handle kctx map ~addr ~write ?policy () =
  let policy = match policy with Some p -> p | None -> Abort_after kctx.Kctx.pager_timeout_us in
  let stats = kctx.Kctx.stats in
  let ps = kctx.Kctx.page_size in
  let engine = kctx.Kctx.engine in
  stats.s_faults <- stats.s_faults + 1;
  Kctx.charge kctx kctx.Kctx.params.Machine.fault_base_us;
  (* Timed wait helper: false when the policy's deadline passes first.
     Waits on the default pager are never aborted — it is "a trusted
     system component" (§6.2.2), merely slow under load. *)
  let wait_while page cond =
    let trusted =
      match page.p_obj.pager with Pager p -> p.is_default | No_pager -> false
    in
    match (if trusted then Wait_forever else policy) with
    | Wait_forever ->
      while cond () do
        Waitq.wait page.busy_wait
      done;
      true
    | Abort_after limit | Zero_fill_after limit ->
      let deadline = Engine.now engine +. limit in
      let rec loop () =
        if not (cond ()) then true
        else
          let remaining = deadline -. Engine.now engine in
          if remaining <= 0.0 then false
          else begin
            ignore (Waitq.wait_timeout page.busy_wait ~timeout:remaining);
            loop ()
          end
      in
      loop ()
  in
  let zero_fill_placeholder page =
    (* Substitute zeroes for data the manager failed to deliver; any
       late pager_data_provided for this page is dropped. *)
    Phys_mem.fill kctx.Kctx.mem page.frame '\000';
    page.absent <- false;
    page.p_error <- false;
    page.p_obj.paging_in_progress <- max 0 (page.p_obj.paging_in_progress - 1);
    stats.s_zero_fill <- stats.s_zero_fill + 1;
    Page_queues.activate kctx.Kctx.queues page;
    Vm_page.set_unbusy page
  in
  let rec attempt tries ~soft =
    if tries > 512 then Pager_error
    else
      match Vm_map.lookup map ~addr ~write with
      | Error `Invalid_address -> Invalid_address
      | Error `Protection -> Protection_failure
      | Ok lk -> (
        let first_obj = lk.Vm_map.lk_obj in
        let first_off = lk.Vm_map.lk_offset in
        match Vm_object.lookup_chain first_obj ~offset:first_off with
        | Some (page, _owner, depth) ->
          if page.busy then begin
            (* Data in transit: wait and retry the whole fault. *)
            if wait_while page (fun () -> page.busy) then attempt (tries + 1) ~soft:false
            else
              match policy with
              | Zero_fill_after _ when page.absent ->
                zero_fill_placeholder page;
                attempt (tries + 1) ~soft:false
              | _ -> Pager_error
          end
          else if page.p_error then begin
            match policy with
            | Zero_fill_after _ ->
              zero_fill_placeholder page;
              attempt (tries + 1) ~soft:false
            | Wait_forever | Abort_after _ -> Pager_error
          end
          else begin
            (* Manager-imposed lock (§3.4.1): if the lock forbids this
               access, ask for an unlock and wait for pager_data_lock. *)
            let still_resident () =
              match Vm_page.lookup page.p_obj ~offset:page.p_offset with
              | Some p -> p == page
              | None -> false
            in
            let forbidden () =
              (* The page may be flushed out from under us while we wait
                 for the manager's unlock; a dead page ends the wait and
                 the fault re-runs from scratch. *)
              still_resident ()
              && (if write then Prot.can_write page.page_lock else Prot.can_read page.page_lock)
            in
            if forbidden () then begin
              let owner = page.p_obj in
              (match owner.pager with
              | Pager _ when not page.unlock_requested ->
                page.unlock_requested <- true;
                Pager_client.send_unlock kctx owner ~offset:page.p_offset ~length:ps
                  ~desired_access:(if write then Prot.write else Prot.read)
              | Pager _ | No_pager -> ());
              if wait_while page forbidden then attempt (tries + 1) ~soft:false else Pager_error
            end
            else if depth > 0 && write then begin
              (* Copy-on-write: the page lives in a backing object; give
                 the first object its own copy (§5.5). *)
              let frame = Kctx.alloc_frame kctx ~privileged:false in
              (* The source may have been freed while we slept in
                 alloc_frame; retry if so. *)
              if page.busy || not (Hashtbl.mem page.p_obj.obj_pages page.p_offset) then begin
                Kctx.free_frame kctx frame;
                attempt (tries + 1) ~soft:false
              end
              else begin
                Phys_mem.copy kctx.Kctx.mem ~src:page.frame ~dst:frame;
                Kctx.charge kctx kctx.Kctx.params.Machine.page_copy_us;
                let fresh =
                  Vm_page.insert kctx first_obj ~offset:first_off ~frame ~busy:false ~absent:false
                in
                fresh.dirty <- true;
                stats.s_cow_faults <- stats.s_cow_faults + 1;
                Page_queues.activate kctx.Kctx.queues fresh;
                (* Any stale read-only translation of the source page
                   must refault so it resolves through its own chain
                   (sharers of this object must see the new copy). *)
                Vm_page.remove_all_mappings kctx page;
                (* The classic chain-length optimisation: if the frozen
                   object below is now only ours, merge it away. *)
                Vm_object.collapse kctx first_obj;
                validate fresh ~from_backing:false ~soft:false
              end
            end
            else begin
              if soft then stats.s_hits <- stats.s_hits + 1;
              Page_queues.activate kctx.Kctx.queues page;
              validate page ~from_backing:(depth > 0) ~soft
            end
          end
        | None -> (
          (* Not resident anywhere in the chain: ask the first pager in
             the chain, or zero-fill. *)
          match Vm_object.chain_has_pager first_obj ~offset:first_off with
          | Some (powner, poffset) ->
            let page = Pager_client.request_page kctx powner ~offset:poffset ~desired_access:(if write then Prot.rw else Prot.read) in
            if wait_while page (fun () -> page.busy) then attempt (tries + 1) ~soft:false
            else begin
              match policy with
              | Zero_fill_after _ ->
                zero_fill_placeholder page;
                attempt (tries + 1) ~soft:false
              | Wait_forever | Abort_after _ ->
                page.p_error <- true;
                Pager_error
            end
          | None ->
            let frame = Kctx.alloc_frame kctx ~privileged:false in
            if Hashtbl.mem first_obj.obj_pages first_off then begin
              (* Someone beat us to it while we waited for memory. *)
              Kctx.free_frame kctx frame;
              attempt (tries + 1) ~soft:false
            end
            else begin
              let page =
                Vm_page.insert kctx first_obj ~offset:first_off ~frame ~busy:false ~absent:false
              in
              stats.s_zero_fill <- stats.s_zero_fill + 1;
              Page_queues.activate kctx.Kctx.queues page;
              validate page ~from_backing:false ~soft:false
            end))
  and validate page ~from_backing ~soft =
    ignore soft;
    match Vm_map.pmap map with
    | None -> invalid_arg "Fault.handle: map has no pmap"
    | Some pm ->
      (* Hardware validation: entry protection, minus write when the
         page belongs to a backing object (a future write must fault to
         copy), minus the manager's lock. *)
      let lookup_again = Vm_map.lookup map ~addr ~write in
      (match lookup_again with
      | Ok lk ->
        let prot = lk.Vm_map.lk_entry_prot in
        let prot = if lk.Vm_map.lk_writable && not from_backing then prot else Prot.diff prot Prot.write in
        let prot = Prot.diff prot page.page_lock in
        let vpn = addr / ps in
        Pmap.enter pm ~vpn ~frame:page.frame ~prot;
        Vm_page.add_mapping page pm ~vpn;
        Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us
      | Error _ -> ());
      Done
  in
  attempt 0 ~soft:true
