open Vm_types
module Dlist = Mach_util.Dlist

type t = { active : page Dlist.t; inactive : page Dlist.t }

let create () = { active = Dlist.create (); inactive = Dlist.create () }
let active_count t = Dlist.length t.active
let inactive_count t = Dlist.length t.inactive

let node_of page =
  match page.q_node with
  | Some n -> n
  | None ->
    let n = Dlist.node page in
    page.q_node <- Some n;
    n

let remove t page =
  (match page.q_state with
  | Q_none -> ()
  | Q_active -> Dlist.remove t.active (node_of page)
  | Q_inactive -> Dlist.remove t.inactive (node_of page));
  page.q_state <- Q_none

let activate t page =
  remove t page;
  Dlist.push_back t.active (node_of page);
  page.q_state <- Q_active

let deactivate t page =
  remove t page;
  Dlist.push_back t.inactive (node_of page);
  page.q_state <- Q_inactive

let oldest_active t = Option.map Dlist.value (Dlist.peek_front t.active)
let oldest_inactive t = Option.map Dlist.value (Dlist.peek_front t.inactive)

let iter_inactive t f = List.iter f (Dlist.to_list t.inactive)
