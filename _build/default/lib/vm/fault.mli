(** The page fault handler (§5.5).

    Responsibilities, in the paper's order: validity and protection
    (address map lookup), page lookup (resident hash, then the shadow
    chain, then a [pager_data_request] to the data manager), copy-on-
    write resolution, and hardware validation (pmap entry).

    Waiting for an external data manager follows §6.2.1: the options for
    communication failure apply to memory failure — wait forever, abort
    after a timeout, or substitute zero-filled memory after a timeout. *)

type policy =
  | Wait_forever
  | Abort_after of float  (** microseconds *)
  | Zero_fill_after of float
      (** §6.2.1 "providing (zero-filled) memory backed by the default
          pager" *)

type outcome =
  | Done  (** translation validated; retry the access *)
  | Invalid_address
  | Protection_failure
  | Pager_error  (** the data manager failed to provide data in time *)

val handle :
  Kctx.t -> Vm_map.t -> addr:int -> write:bool -> ?policy:policy -> unit -> outcome
(** Handle a fault at [addr]. [policy] defaults to
    [Abort_after kctx.pager_timeout_us]. The map must belong to [kctx]
    and have a pmap. *)
