(** The traditional UNIX file I/O path (§9's baseline): [read]/[write]
    system calls moving data between the user buffer and a fixed-size
    kernel buffer cache with an explicit copy — "accessed by user
    programs through read and write kernel-to-user and user-to-kernel
    copy operations".

    Compare with the Mach path, where the file is mapped and the bulk
    of physical memory caches it with no copies. *)

type t

val create :
  Mach_hw.Machine.params ->
  disk:Mach_hw.Disk.t ->
  cache_buffers:int ->
  format:bool ->
  t
(** [cache_buffers] is the fixed buffer-cache size in blocks (pick 10%
    of the machine's page frames for the classic configuration). *)

val fs : t -> Mach_fs.Fs_layout.t
val cache : t -> Buffer_cache.t

val read : t -> string -> off:int -> len:int -> bytes option
(** [read] syscall: cache lookup per block plus a kernel-to-user copy
    of every byte. [None] if the file does not exist. *)

val write : t -> string -> off:int -> bytes -> unit
(** [write] syscall: user-to-kernel copy, then delayed writes through
    the cache. *)

val read_file : t -> string -> bytes option
val write_file : t -> string -> bytes -> unit
val file_size : t -> string -> int option
val sync : t -> unit
