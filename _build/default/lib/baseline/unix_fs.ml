module Machine = Mach_hw.Machine
module Engine = Mach_sim.Engine
module Fs_layout = Mach_fs.Fs_layout

type t = {
  params : Machine.params;
  layout : Fs_layout.t;
  bcache : Buffer_cache.t;
  bs : int;
  copy_us_per_byte : float;
}

let create params ~disk ~cache_buffers ~format =
  let layout = if format then Fs_layout.format disk ~max_files:256 else Fs_layout.mount disk in
  let bs = Fs_layout.block_size layout in
  {
    params;
    layout;
    bcache = Buffer_cache.create ~disk ~buffers:cache_buffers;
    bs;
    copy_us_per_byte = params.Machine.page_copy_us /. float_of_int bs;
  }

let fs t = t.layout
let cache t = t.bcache
let file_size t name = Fs_layout.file_size t.layout name
let sync t = Buffer_cache.sync t.bcache

let charge_copy t bytes =
  let us = float_of_int bytes *. t.copy_us_per_byte in
  if us > 0.0 then Engine.sleep us

let syscall_entry () = Engine.sleep 10.0

let read t name ~off ~len =
  syscall_entry ();
  match Fs_layout.file_size t.layout name with
  | None -> None
  | Some size ->
    if off >= size then Some Bytes.empty
    else begin
      let len = min len (size - off) in
      let out = Bytes.make len '\000' in
      let first = off / t.bs in
      let last = (off + len - 1) / t.bs in
      for i = first to last do
        let data =
          match Fs_layout.file_disk_block t.layout name ~index:i with
          | Some blk -> Buffer_cache.bread t.bcache ~block:blk
          | None -> Bytes.make t.bs '\000' (* hole *)
        in
        let lo = max off (i * t.bs) in
        let hi = min (off + len) ((i + 1) * t.bs) in
        Bytes.blit data (lo - (i * t.bs)) out (lo - off) (hi - lo)
      done;
      (* Kernel-to-user copy of the payload. *)
      charge_copy t len;
      Some out
    end

let write t name ~off data =
  syscall_entry ();
  let len = Bytes.length data in
  if len > 0 then begin
    (* User-to-kernel copy. *)
    charge_copy t len;
    let first = off / t.bs in
    let last = (off + len - 1) / t.bs in
    for i = first to last do
      let blk = Fs_layout.ensure_disk_block t.layout name ~index:i in
      let lo = max off (i * t.bs) in
      let hi = min (off + len) ((i + 1) * t.bs) in
      if hi - lo = t.bs then
        Buffer_cache.bwrite t.bcache ~block:blk (Bytes.sub data (lo - off) t.bs)
      else begin
        (* Partial block: read-modify-write through the cache. *)
        let cur = Bytes.copy (Buffer_cache.bread t.bcache ~block:blk) in
        Bytes.blit data (lo - off) cur (lo - (i * t.bs)) (hi - lo);
        Buffer_cache.bwrite t.bcache ~block:blk cur
      end
    done;
    Fs_layout.note_file_size t.layout name (off + len)
  end

let read_file t name =
  match Fs_layout.file_size t.layout name with
  | None -> None
  | Some size -> read t name ~off:0 ~len:size

let write_file t name data = write t name ~off:0 data
