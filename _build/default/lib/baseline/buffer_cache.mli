(** The traditional UNIX block buffer cache (§9's comparison system):
    a fixed pool of block buffers — "normally 10% of physical memory in
    a Berkeley UNIX system" — managed LRU, with delayed writes flushed
    on eviction or [sync]. *)

type t

val create : disk:Mach_hw.Disk.t -> buffers:int -> t
(** [buffers] fixed cache slots of one disk block each. *)

val buffers : t -> int

val bread : t -> block:int -> bytes
(** Read through the cache; charges disk time only on a miss. The
    returned bytes are the cache buffer itself — treat as read-only. *)

val bwrite : t -> block:int -> bytes -> unit
(** Delayed write: dirty the cached buffer; disk I/O happens at
    eviction or {!sync}. *)

val sync : t -> unit
(** Flush all dirty buffers. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val reset_stats : t -> unit
