lib/baseline/unix_fs.ml: Buffer_cache Bytes Mach_fs Mach_hw Mach_sim
