lib/baseline/buffer_cache.ml: Bytes Hashtbl Mach_hw Mach_util
