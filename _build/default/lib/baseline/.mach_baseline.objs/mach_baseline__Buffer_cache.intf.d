lib/baseline/buffer_cache.mli: Mach_hw
