lib/baseline/unix_fs.mli: Buffer_cache Mach_fs Mach_hw
