module Disk = Mach_hw.Disk
module Dlist = Mach_util.Dlist

type buf = { block : int; data : bytes; mutable dirty : bool; mutable node : int Dlist.node option }

type t = {
  disk : Disk.t;
  capacity : int;
  table : (int, buf) Hashtbl.t;
  lru : int Dlist.t;  (* block numbers, LRU at front *)
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create ~disk ~buffers =
  if buffers <= 0 then invalid_arg "Buffer_cache.create: need at least one buffer";
  { disk; capacity = buffers; table = Hashtbl.create (2 * buffers); lru = Dlist.create ();
    hits = 0; misses = 0; writebacks = 0 }

let buffers t = t.capacity

let touch t buf =
  (match buf.node with
  | Some n when Dlist.attached n -> Dlist.remove t.lru n
  | Some _ | None -> ());
  let n = Dlist.node buf.block in
  buf.node <- Some n;
  Dlist.push_back t.lru n

let evict_one t =
  match Dlist.pop_front t.lru with
  | None -> ()
  | Some n -> (
    let block = Dlist.value n in
    match Hashtbl.find_opt t.table block with
    | None -> ()
    | Some buf ->
      if buf.dirty then begin
        t.writebacks <- t.writebacks + 1;
        Disk.write t.disk ~block buf.data
      end;
      Hashtbl.remove t.table block)

let make_room t = while Hashtbl.length t.table >= t.capacity do evict_one t done

let bread t ~block =
  match Hashtbl.find_opt t.table block with
  | Some buf ->
    t.hits <- t.hits + 1;
    touch t buf;
    buf.data
  | None ->
    t.misses <- t.misses + 1;
    make_room t;
    let data = Disk.read t.disk ~block in
    let buf = { block; data; dirty = false; node = None } in
    Hashtbl.replace t.table block buf;
    touch t buf;
    data

let bwrite t ~block data =
  match Hashtbl.find_opt t.table block with
  | Some buf ->
    Bytes.blit data 0 buf.data 0 (min (Bytes.length data) (Bytes.length buf.data));
    buf.dirty <- true;
    touch t buf
  | None ->
    make_room t;
    let full = Bytes.make (Disk.block_size t.disk) '\000' in
    Bytes.blit data 0 full 0 (min (Bytes.length data) (Bytes.length full));
    let buf = { block; data = full; dirty = true; node = None } in
    Hashtbl.replace t.table block buf;
    touch t buf

let sync t =
  Hashtbl.iter
    (fun block buf ->
      if buf.dirty then begin
        buf.dirty <- false;
        t.writebacks <- t.writebacks + 1;
        Disk.write t.disk ~block buf.data
      end)
    t.table

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
