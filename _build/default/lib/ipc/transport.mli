(** The primitive message operations of Table 3-1: [msg_send],
    [msg_receive], [msg_rpc].

    Cost model (charged in simulated time to the calling thread):
    - a fixed per-message software overhead ([msg_overhead_us]);
    - inline and [Copy_transfer] out-of-line bytes cost a physical copy
      (derived from the machine's page-copy rate);
    - [Map_transfer] out-of-line regions cost one map operation per page
      — the duality's win for large messages;
    - cross-host destinations add network transit (latency + bytes/BW);
      the sender does not wait for remote queueing. *)

type node = {
  node_host : int;  (** host id of the calling task *)
  node_params : Mach_hw.Machine.params;
  node_page_size : int;
}

type send_error =
  | Send_invalid_port  (** destination is dead *)
  | Send_timed_out  (** queue stayed full past the timeout *)

type recv_error =
  | Recv_timed_out
  | Recv_invalid_port  (** no receive right / port dead with empty queue *)

val send :
  node -> ?timeout:float -> Message.t -> (unit, send_error) result
(** Blocks while the destination queue is full (unless [timeout],
    in microseconds, is given; [timeout] = 0 is a non-blocking try). *)

val receive :
  node ->
  Port_space.t ->
  from:[ `Port of Port_space.name | `Any ] ->
  ?timeout:float ->
  unit ->
  (Message.t, recv_error) result
(** [`Any] receives from the space's enabled default group (§3.2,
    [port_enable]); ports are scanned in name order. Port capabilities
    carried in the message are inserted into the receiving space. *)

val rpc :
  node ->
  Port_space.t ->
  Message.t ->
  ?send_timeout:float ->
  ?recv_timeout:float ->
  unit ->
  (Message.t, [ `Send of send_error | `Recv of recv_error ]) result
(** [msg_rpc]: send, then receive on the message's reply port (which
    must be present and held with receive rights in [space]). *)

val send_cost_us : node -> Message.t -> float
(** The simulated CPU cost {!send} would charge (excluding queueing and
    network time) — exposed for the E3 bench. *)
