(** Shared state of one simulated IPC universe: the event engine, the
    inter-host network, and the id allocator. Every port and port space
    belongs to exactly one context, so runs are deterministic and two
    simulations never interfere. *)

type t

val create : Mach_sim.Engine.t -> Mach_hw.Net.t -> t
val engine : t -> Mach_sim.Engine.t
val net : t -> Mach_hw.Net.t
val fresh_id : t -> int
