(** Messages: "a fixed length header and a variable-size collection of
    typed data objects", which may include port capabilities and
    out-of-line memory (§3.2). *)

type t = { header : header; body : item list }

and header = {
  dest : port;
  reply : port option;
  msg_id : int;  (** operation identifier, like Mach's msgh_id *)
}

and item =
  | Data of bytes  (** inline typed data: moved by copying *)
  | Caps of cap list  (** port capabilities *)
  | Ool of ool  (** out-of-line memory region (payload carried) *)
  | Ool_region of ool_region
      (** out-of-line *address-space region*: transferred by mapping
          (copy-on-write) when the receiver asks the kernel to map it —
          the pure duality path. The ints identify the source task and
          range; the kernel resolves them at receive time. *)

and ool_region = { src_task : int; src_addr : int; region_size : int }

and cap = { cap_port : port; cap_right : right }
and right = Send_right | Receive_right

and ool = {
  ool_data : bytes;
  transfer : transfer_mode;
}

and transfer_mode =
  | Copy_transfer  (** physical copy: cost scales with size *)
  | Map_transfer
      (** virtual (copy-on-write) transfer: constant mapping cost per
          page; this is the memory/communication duality applied to
          large messages *)

and port = t Port.t

val make : ?reply:port -> ?msg_id:int -> dest:port -> item list -> t

val inline_bytes : t -> int
(** Bytes that must be physically copied to transfer this message
    (inline data plus [Copy_transfer] out-of-line regions). *)

val mapped_bytes : t -> int
(** Bytes moved by mapping ([Map_transfer] regions). *)

val total_bytes : t -> int

val data_exn : t -> bytes
(** The first [Data] item; raises [Not_found] if none. *)

val caps : t -> cap list
(** All capabilities in body order. *)

val ool_payloads : t -> bytes list
val ool_regions : t -> ool_region list

val pp : Format.formatter -> t -> unit
