type t = { engine : Mach_sim.Engine.t; net : Mach_hw.Net.t; mutable next_id : int }

let create engine net = { engine; net; next_id = 1 }
let engine t = t.engine
let net t = t.net

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id
