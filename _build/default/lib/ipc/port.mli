(** Kernel port objects.

    "A port is a communication channel. Logically, a port is a finite
    length queue for messages protected by the kernel. A port may have
    any number of senders but only one receiver." (§3.2)

    The type is polymorphic in the message payload so that {!Message}
    (which itself contains ports) can instantiate it recursively. *)

type 'msg t

val create : Context.t -> home:int -> ?backlog:int -> unit -> 'msg t
(** [home] is the host id where the receive right lives; [backlog]
    bounds the queue (default 32, matching a small kernel queue). *)

val id : 'msg t -> int
(** Globally unique within the context; stable identity for hashing. *)

val context : 'msg t -> Context.t
val home : 'msg t -> int
val set_home : 'msg t -> int -> unit
(** Receive-right migration (used when a task with a receive right is
    migrated between hosts). *)

val alive : 'msg t -> bool

val backlog : 'msg t -> int
val set_backlog : 'msg t -> int -> unit
(** Table 3-2's [port_set_backlog]. *)

val queued : 'msg t -> int
(** Messages currently waiting. *)

val queue : 'msg t -> 'msg Mach_sim.Mailbox.t
(** The underlying mailbox (transport use only). *)

val destroy : 'msg t -> unit
(** Destroy the port (receive right death): runs death hooks, drops
    queued messages. Idempotent. *)

val on_death : 'msg t -> (unit -> unit) -> int
(** Register a callback run at {!destroy}; returns a hook id. Fires
    immediately if the port is already dead. *)

val cancel_on_death : 'msg t -> int -> unit

val on_arrival : 'msg t -> (unit -> unit) -> int
(** Register a callback run whenever a message is enqueued (used by
    port-set receive). *)

val cancel_on_arrival : 'msg t -> int -> unit

val notify_arrival : 'msg t -> unit
(** Transport use only: fire arrival hooks. *)

val equal : 'msg t -> 'msg t -> bool
val compare : 'msg t -> 'msg t -> int
val pp : Format.formatter -> 'msg t -> unit
