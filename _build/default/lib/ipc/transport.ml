module Engine = Mach_sim.Engine
module Mailbox = Mach_sim.Mailbox
module Waitq = Mach_sim.Waitq
module Machine = Mach_hw.Machine
module Net = Mach_hw.Net

type node = { node_host : int; node_params : Machine.params; node_page_size : int }
type send_error = Send_invalid_port | Send_timed_out
type recv_error = Recv_timed_out | Recv_invalid_port

let pages_of node bytes = (bytes + node.node_page_size - 1) / node.node_page_size

let send_cost_us node msg =
  let p = node.node_params in
  let copy_us_per_byte = p.Machine.page_copy_us /. float_of_int node.node_page_size in
  let inline = Message.inline_bytes msg in
  let mapped_pages = pages_of node (Message.mapped_bytes msg) in
  p.Machine.msg_overhead_us
  +. (float_of_int inline *. copy_us_per_byte)
  +. (float_of_int mapped_pages *. p.Machine.map_op_us)

let enqueue_local ?timeout port msg =
  match
    match timeout with
    | None ->
      Mailbox.send (Port.queue port) msg;
      true
    | Some t -> Mailbox.send_timeout (Port.queue port) msg ~timeout:t
  with
  | true ->
    Port.notify_arrival port;
    Ok ()
  | false -> Error Send_timed_out
  | exception Mailbox.Closed -> Error Send_invalid_port

let send node ?timeout msg =
  let dest = msg.Message.header.dest in
  if not (Port.alive dest) then Error Send_invalid_port
  else begin
    Engine.sleep (send_cost_us node msg);
    (* The port may have died while we were copying. *)
    if not (Port.alive dest) then Error Send_invalid_port
    else if Port.home dest = node.node_host then enqueue_local ?timeout dest msg
    else begin
      (* Remote destination: hand the message to the network; the
         sender does not wait for remote queueing (netmsg-server
         style). Queue-full blocking happens at the remote side in a
         detached delivery thread. *)
      let ctx = Port.context dest in
      let net = Context.net ctx in
      let bytes = Message.total_bytes msg in
      Net.deliver net ~src:node.node_host ~dst:(Port.home dest) ~bytes (fun () ->
          Engine.spawn (Context.engine ctx) ~name:"net-delivery" (fun () ->
              if Port.alive dest then
                match enqueue_local dest msg with Ok () | Error _ -> ()));
      Ok ()
    end
  end

let insert_caps space msg =
  List.iter
    (fun { Message.cap_port; cap_right } -> ignore (Port_space.insert space cap_port cap_right))
    (Message.caps msg)

let charge_receive node = Engine.sleep node.node_params.Machine.context_switch_us

let receive_one node space port ?timeout () =
  let result =
    match timeout with
    | None -> (
      match Mailbox.recv (Port.queue port) with
      | msg -> Ok msg
      | exception Mailbox.Closed -> Error Recv_invalid_port)
    | Some t -> (
      match Mailbox.recv_timeout (Port.queue port) ~timeout:t with
      | Some msg -> Ok msg
      | None -> if Port.alive port then Error Recv_timed_out else Error Recv_invalid_port
      | exception Mailbox.Closed -> Error Recv_invalid_port)
  in
  match result with
  | Ok msg ->
    charge_receive node;
    insert_caps space msg;
    Ok msg
  | Error e -> Error e

let receive_any node space ?timeout () =
  let engine = Context.engine (Port_space.context space) in
  let deadline = Option.map (fun t -> Engine.now engine +. t) timeout in
  let rec scan () =
    let ports = Port_space.enabled_ports space in
    let rec try_ports = function
      | [] -> None
      | (_, port) :: rest -> (
        match Mailbox.try_recv (Port.queue port) with
        | Some msg -> Some msg
        | None | (exception Mailbox.Closed) -> try_ports rest)
    in
    match try_ports ports with
    | Some msg ->
      charge_receive node;
      insert_caps space msg;
      Ok msg
    | None -> (
      match deadline with
      | None ->
        Waitq.wait (Port_space.activity space);
        scan ()
      | Some d ->
        let remaining = d -. Engine.now engine in
        if remaining <= 0.0 then Error Recv_timed_out
        else if Waitq.wait_timeout (Port_space.activity space) ~timeout:remaining then scan ()
        else Error Recv_timed_out)
  in
  scan ()

let receive node space ~from ?timeout () =
  match from with
  | `Any -> receive_any node space ?timeout ()
  | `Port name -> (
    if not (Port_space.has_receive space name) then Error Recv_invalid_port
    else
      match Port_space.lookup space name with
      | None -> Error Recv_invalid_port
      | Some port -> receive_one node space port ?timeout ())

let rpc node space msg ?send_timeout ?recv_timeout () =
  match msg.Message.header.reply with
  | None -> invalid_arg "Transport.rpc: message has no reply port"
  | Some reply_port -> (
    match Port_space.name_of space reply_port with
    | None -> invalid_arg "Transport.rpc: reply port not in caller's space"
    | Some reply_name -> (
      match send node ?timeout:send_timeout msg with
      | Error e -> Error (`Send e)
      | Ok () -> (
        match receive node space ~from:(`Port reply_name) ?timeout:recv_timeout () with
        | Ok reply -> Ok reply
        | Error e -> Error (`Recv e))))
