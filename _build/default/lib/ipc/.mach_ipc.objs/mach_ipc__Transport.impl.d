lib/ipc/transport.ml: Context List Mach_hw Mach_sim Message Option Port Port_space
