lib/ipc/context.mli: Mach_hw Mach_sim
