lib/ipc/context.ml: Mach_hw Mach_sim
