lib/ipc/port.mli: Context Format Mach_sim
