lib/ipc/port.ml: Context Format Int List Mach_sim
