lib/ipc/port_space.ml: Context Hashtbl List Mach_sim Message Port
