lib/ipc/transport.mli: Mach_hw Message Port_space
