lib/ipc/message.mli: Format Port
