lib/ipc/message.ml: Bytes Format List Port
