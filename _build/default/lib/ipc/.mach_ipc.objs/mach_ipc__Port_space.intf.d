lib/ipc/port_space.mli: Context Mach_sim Message
