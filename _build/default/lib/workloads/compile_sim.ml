module Rng = Mach_util.Rng
module Engine = Mach_sim.Engine
module Disk = Mach_hw.Disk
module Syscalls = Mach_kernel.Syscalls
module Minimal_fs = Mach_pagers.Minimal_fs
module Unix_fs = Mach_baseline.Unix_fs

type project = {
  sources : (string * int) list;
  headers : (string * int) list;
  headers_per_source : int;
}

let generate rng ~sources ~source_bytes ~headers ~header_bytes ~headers_per_source =
  let jitter base = max 256 (base + Rng.int_in rng (-(base / 4)) (base / 4)) in
  {
    sources = List.init sources (fun i -> (Printf.sprintf "src%03d.c" i, jitter source_bytes));
    headers = List.init headers (fun i -> (Printf.sprintf "hdr%03d.h" i, jitter header_bytes));
    headers_per_source;
  }

let project_bytes p =
  List.fold_left (fun a (_, s) -> a + s) 0 p.sources
  + List.fold_left (fun a (_, s) -> a + s) 0 p.headers

type ops = {
  read_file : string -> int;
  write_file : string -> bytes -> unit;
  compute : float -> unit;
  io_ops : unit -> int;
}

let populate ops rng p =
  let fill (name, size) =
    let data = Bytes.init size (fun _ -> Char.chr (Rng.int_in rng 32 126)) in
    ops.write_file name data
  in
  List.iter fill p.sources;
  List.iter fill p.headers

(* Which headers a source includes: deterministic spread so every build
   re-reads the same shared set. *)
let headers_of p idx =
  let n = List.length p.headers in
  List.init (min p.headers_per_source n) (fun k -> List.nth p.headers ((idx + (k * 7)) mod n))

(* 1987-grade compiler: ~2 µs of CPU per byte of program text consumed. *)
let compute_us_per_byte = 2.0

let build ops p =
  List.iteri
    (fun idx (src, _) ->
      let consumed = ref 0 in
      consumed := !consumed + ops.read_file src;
      List.iter (fun (h, _) -> consumed := !consumed + ops.read_file h) (headers_of p idx);
      ops.compute (float_of_int !consumed *. compute_us_per_byte);
      let obj_size = max 512 (!consumed / 10) in
      ops.write_file (Filename.remove_extension src ^ ".o") (Bytes.make obj_size 'O'))
    p.sources

type measurement = { elapsed_us : float; disk_ops : int }

let measure_build engine ops p =
  let t0 = Engine.now engine in
  let io0 = ops.io_ops () in
  build ops p;
  { elapsed_us = Engine.now engine -. t0; disk_ops = ops.io_ops () - io0 }

(* --- Mach: mapped files through the §4.1 server ------------------------- *)

let mach_ops task ~server ~disk =
  let read_file name =
    match Minimal_fs.Client.read_file task ~server name with
    | Error _ -> 0
    | Ok (addr, size) ->
      (* The compiler walks the text: touch every byte (faulting pages
         in from the server / the kernel's object cache). *)
      (match Syscalls.read_bytes task ~addr ~len:size () with Ok _ | Error _ -> ());
      if size > 0 then Syscalls.vm_deallocate task ~addr ~size;
      size
  in
  let write_file name data =
    match Minimal_fs.Client.write_file task ~server name data with Ok () | Error _ -> ()
  in
  {
    read_file;
    write_file;
    compute = (fun us -> Mach_kernel.Cpu.compute (Mach_kernel.Task.kernel task) us);
    io_ops = (fun () -> Disk.ops disk);
  }

(* --- UNIX: read/write through the buffer cache -------------------------- *)

let unix_ops ufs =
  let read_file name =
    match Unix_fs.read_file ufs name with Some b -> Bytes.length b | None -> 0
  in
  let write_file name data = Unix_fs.write_file ufs name data in
  {
    read_file;
    write_file;
    compute = (fun us -> Engine.sleep us);
    io_ops = (fun () -> Disk.ops (Mach_fs.Fs_layout.disk (Unix_fs.fs ufs)));
  }
