module Rng = Mach_util.Rng

type op = { ap_page : int; ap_write : bool }

let is_write rng write_ratio = Rng.float rng 1.0 < write_ratio

let sequential ~pages ~ops ~write_ratio rng =
  List.init ops (fun i -> { ap_page = i mod pages; ap_write = is_write rng write_ratio })

let uniform ~pages ~ops ~write_ratio rng =
  List.init ops (fun _ -> { ap_page = Rng.int rng pages; ap_write = is_write rng write_ratio })

let zipf ~pages ~ops ~write_ratio ~theta rng =
  List.init ops (fun _ ->
      { ap_page = Rng.zipf rng ~n:pages ~theta; ap_write = is_write rng write_ratio })

let working_set ~pages ~ops ~write_ratio ~hot_fraction ~hot_bias rng =
  let hot = max 1 (int_of_float (float_of_int pages *. hot_fraction)) in
  List.init ops (fun _ ->
      let page =
        if Rng.float rng 1.0 < hot_bias then Rng.int rng hot
        else hot + if pages > hot then Rng.int rng (pages - hot) else 0
      in
      { ap_page = min page (pages - 1); ap_write = is_write rng write_ratio })
