lib/workloads/access_patterns.ml: List Mach_util
