lib/workloads/access_patterns.mli: Mach_util
