lib/workloads/compile_sim.ml: Bytes Char Filename List Mach_baseline Mach_fs Mach_hw Mach_kernel Mach_pagers Mach_sim Mach_util Printf
