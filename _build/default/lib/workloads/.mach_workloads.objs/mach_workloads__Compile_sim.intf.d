lib/workloads/compile_sim.mli: Mach_baseline Mach_hw Mach_ipc Mach_kernel Mach_sim Mach_util
