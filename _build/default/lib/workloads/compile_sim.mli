(** The §9 compilation workload: a synthetic multi-file build whose
    file-access pattern (every compilation unit re-reads a shared set
    of headers; rebuilds re-read everything) is what makes a large
    unified page cache beat a small fixed buffer cache.

    The workload is expressed against an abstract file-operations
    record, so the identical build runs on the Mach mapped-file path
    ({!mach_ops}) and on the traditional UNIX read/write path
    ({!unix_ops}); the two implementations pay their own I/O costs
    while compute costs are charged identically. *)

type project = {
  sources : (string * int) list;  (** name, bytes *)
  headers : (string * int) list;
  headers_per_source : int;
}

val generate :
  Mach_util.Rng.t ->
  sources:int ->
  source_bytes:int ->
  headers:int ->
  header_bytes:int ->
  headers_per_source:int ->
  project

val project_bytes : project -> int

type ops = {
  read_file : string -> int;
      (** read the whole file and "use" its contents; returns size *)
  write_file : string -> bytes -> unit;
  compute : float -> unit;  (** charge pure CPU time *)
  io_ops : unit -> int;  (** cumulative disk operations *)
}

val populate : ops -> Mach_util.Rng.t -> project -> unit
(** Create every source and header with synthetic contents. *)

val build : ops -> project -> unit
(** One full build: for each source, read it and its headers, compute
    (proportional to bytes consumed), write the object file. *)

type measurement = { elapsed_us : float; disk_ops : int }

val measure_build : Mach_sim.Engine.t -> ops -> project -> measurement

(** {2 The two systems under test} *)

val mach_ops :
  Mach_kernel.Ktypes.task ->
  server:Mach_ipc.Message.port ->
  disk:Mach_hw.Disk.t ->
  ops
(** Mapped files through the §4.1 filesystem server: [read_file] maps
    the file and touches every page, [write_file] stores back. *)

val unix_ops : Mach_baseline.Unix_fs.t -> ops
(** [read]/[write] through the fixed-size buffer cache with
    kernel/user copies. *)
