(** Page-reference generators for the migration (E7) and shared-memory
    (E6) experiments. *)

type op = { ap_page : int; ap_write : bool }

val sequential : pages:int -> ops:int -> write_ratio:float -> Mach_util.Rng.t -> op list
(** Cyclic sweep through the pages; every [1/write_ratio]-th access is
    a write. *)

val uniform : pages:int -> ops:int -> write_ratio:float -> Mach_util.Rng.t -> op list
val zipf : pages:int -> ops:int -> write_ratio:float -> theta:float -> Mach_util.Rng.t -> op list

val working_set :
  pages:int -> ops:int -> write_ratio:float -> hot_fraction:float -> hot_bias:float ->
  Mach_util.Rng.t -> op list
(** Accesses hit a hot subset of [hot_fraction]·pages with probability
    [hot_bias] (read/write locality in the Li & Hudak sense). *)
