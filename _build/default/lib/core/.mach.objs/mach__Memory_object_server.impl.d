lib/core/memory_object_server.ml: Mach_hw Mach_ipc Mach_kernel Mach_sim Mach_vm Printf
