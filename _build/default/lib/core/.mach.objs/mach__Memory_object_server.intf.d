lib/core/memory_object_server.mli: Mach_hw Mach_ipc Mach_kernel
