lib/core/mach.ml: Mach_hw Mach_ipc Mach_kernel Mach_sim Mach_vm Memory_object_server
