(** A netname-style name service.

    The paper leaves service rendezvous out of scope ("how it specifies
    that region … is not important to the example"), but a real Mach
    site ran a name server for exactly this: servers check in a send
    right under a string name; clients look the right up. Ports being
    location-independent, a single name server serves a whole cluster. *)

open Ktypes

type t

val start : kernel -> ?name:string -> unit -> t
val service_port : t -> Mach_ipc.Message.port
val registered : t -> string list

module Client : sig
  type error = [ `Not_found | `Ipc_failure | `Malformed ]

  val pp_error : Format.formatter -> error -> unit

  val check_in :
    task -> server:Mach_ipc.Message.port -> string -> Mach_ipc.Message.port -> (unit, error) result
  (** Register (or replace) a send right under [name]. *)

  val look_up :
    task -> server:Mach_ipc.Message.port -> string -> (Mach_ipc.Message.port, error) result

  val check_out : task -> server:Mach_ipc.Message.port -> string -> (unit, error) result
  (** Remove a registration. *)
end
