open Ktypes
module Engine = Mach_sim.Engine
module Semaphore = Mach_sim.Semaphore
module Machine = Mach_hw.Machine

let syscall_overhead_us = 10.0

let compute k us =
  if us > 0.0 then Semaphore.with_permit k.k_cpus (fun () -> Engine.sleep us)

let compute_words k ~words ~remote = compute k (Machine.access_us k.k_params ~remote ~words)
