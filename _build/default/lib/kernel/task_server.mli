(** The kernel as a server (§3.2): "The kernel task acts as a server
    which in turn implements tasks and threads. The act of creating a
    task or thread returns send access rights to a port that represents
    the new task... Messages sent to such a port result in operations
    being performed on the object it represents."

    Every task gets a task port; this module is the kernel thread that
    receives on all of them and performs the requested operation. The
    indirection is location-independent: "a thread can suspend another
    thread by sending a suspend message... even if the request is
    initiated on another node in a network." *)

open Ktypes

type t

val start : kernel -> t
(** Spawn the dispatcher and install the port maker so subsequent
    {!Task.create} calls get task ports. Called from {!Kernel.boot}. *)

val task_port : task -> Mach_ipc.Message.port
(** The port representing a task; raises [Invalid_argument] for tasks
    created before the server started. *)

val thread_port : thread -> Mach_ipc.Message.port
(** The port representing a thread; [suspend]/[resume]/[info] work on
    it exactly as on task ports, affecting just that thread. *)

(** Remote procedure calls on task ports (usable from any host). *)
module Client : sig
  type error = [ `Dead_task | `Ipc_failure | `Malformed ]

  val pp_error : Format.formatter -> error -> unit

  type info = { ti_name : string; ti_threads : int; ti_mapped_bytes : int; ti_suspended : bool }

  val suspend : task -> target:Mach_ipc.Message.port -> (unit, error) result
  (** Suspend every thread of the target task (parks at the next
      checkpoint, like [task_suspend]). *)

  val resume : task -> target:Mach_ipc.Message.port -> (unit, error) result
  val terminate : task -> target:Mach_ipc.Message.port -> (unit, error) result
  val info : task -> target:Mach_ipc.Message.port -> (info, error) result

  val vm_allocate : task -> target:Mach_ipc.Message.port -> size:int -> (int, error) result
  (** Allocate memory in the *target* task's address space. *)
end
