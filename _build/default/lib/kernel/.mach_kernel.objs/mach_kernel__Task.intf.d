lib/kernel/task.mli: Ktypes Mach_ipc Mach_vm
