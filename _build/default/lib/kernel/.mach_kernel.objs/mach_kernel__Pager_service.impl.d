lib/kernel/pager_service.ml: Mach_ipc Mach_sim Mach_vm
