lib/kernel/pager_service.mli: Mach_vm
