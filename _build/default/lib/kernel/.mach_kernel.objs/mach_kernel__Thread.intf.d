lib/kernel/thread.mli: Ktypes
