lib/kernel/default_pager.ml: Bytes Hashtbl Mach_hw Mach_ipc Mach_sim Mach_vm Queue
