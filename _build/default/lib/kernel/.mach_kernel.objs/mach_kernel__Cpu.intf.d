lib/kernel/cpu.mli: Ktypes
