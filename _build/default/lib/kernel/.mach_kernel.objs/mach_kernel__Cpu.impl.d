lib/kernel/cpu.ml: Ktypes Mach_hw Mach_sim
