lib/kernel/ktypes.ml: Default_pager Mach_hw Mach_ipc Mach_sim Mach_vm
