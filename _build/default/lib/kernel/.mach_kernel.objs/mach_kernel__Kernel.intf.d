lib/kernel/kernel.mli: Ktypes Mach_hw Mach_ipc Mach_sim Mach_vm
