lib/kernel/thread.ml: Ktypes List Mach_sim Printf
