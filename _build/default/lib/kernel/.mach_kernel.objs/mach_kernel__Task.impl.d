lib/kernel/task.ml: Ktypes List Mach_hw Mach_ipc Mach_vm
