lib/kernel/task_server.mli: Format Ktypes Mach_ipc
