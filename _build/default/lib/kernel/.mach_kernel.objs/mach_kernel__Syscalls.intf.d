lib/kernel/syscalls.mli: Ktypes Mach_hw Mach_ipc Mach_vm
