lib/kernel/task_server.ml: Format Hashtbl Ktypes List Mach_ipc Mach_sim Mach_util Mach_vm Syscalls Task Thread
