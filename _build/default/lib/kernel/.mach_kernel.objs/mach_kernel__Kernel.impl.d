lib/kernel/kernel.ml: Array Default_pager Ktypes Mach_hw Mach_ipc Mach_sim Mach_vm Pager_service Printf Task_server
