lib/kernel/name_server.ml: Format Hashtbl Ktypes List Mach_ipc Mach_sim Mach_util String Syscalls Task
