lib/kernel/default_pager.mli: Mach_hw Mach_vm
