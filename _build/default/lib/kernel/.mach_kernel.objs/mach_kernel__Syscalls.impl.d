lib/kernel/syscalls.ml: Cpu Ktypes List Mach_hw Mach_ipc Mach_vm Thread
