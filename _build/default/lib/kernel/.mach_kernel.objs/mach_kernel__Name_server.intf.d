lib/kernel/name_server.mli: Format Ktypes Mach_ipc
