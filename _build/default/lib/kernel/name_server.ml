open Ktypes
module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Codec = Mach_util.Codec
module Engine = Mach_sim.Engine

let id_check_in = 3301
let id_look_up = 3302
let id_check_out = 3303
let id_reply = 3390

type t = {
  ns_task : task;
  ns_service : Message.port;
  table : (string, Message.port) Hashtbl.t;
}

let service_port t = t.ns_service

let registered t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare

let reply t (msg : Message.t) items =
  match msg.Message.header.reply with
  | None -> ()
  | Some r -> (
    match Syscalls.msg_send t.ns_task (Message.make ~msg_id:id_reply ~dest:r items) with
    | Ok () | Error _ -> ())

let status ok =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Message.Data (Codec.Enc.to_bytes e)

let handle t (msg : Message.t) =
  let id = msg.Message.header.msg_id in
  match Message.data_exn msg with
  | exception Not_found -> ()
  | payload -> (
    let d = Codec.Dec.of_bytes payload in
    match Codec.Dec.string d with
    | exception Codec.Dec.Truncated -> reply t msg [ status false ]
    | name ->
      if id = id_check_in then begin
        match Message.caps msg with
        | { Message.cap_port; _ } :: _ ->
          (* Drop any dead stale entry, then (re)register. *)
          Hashtbl.replace t.table name cap_port;
          reply t msg [ status true ]
        | [] -> reply t msg [ status false ]
      end
      else if id = id_look_up then begin
        match Hashtbl.find_opt t.table name with
        | Some port when Port.alive port ->
          reply t msg
            [ status true; Message.Caps [ { Message.cap_port = port; cap_right = Message.Send_right } ] ]
        | Some _ ->
          Hashtbl.remove t.table name;
          reply t msg [ status false ]
        | None -> reply t msg [ status false ]
      end
      else if id = id_check_out then begin
        Hashtbl.remove t.table name;
        reply t msg [ status true ]
      end
      else reply t msg [ status false ])

let start kernel ?(name = "name-server") () =
  let ns_task = Task.create kernel ~name () in
  let svc = Syscalls.port_allocate ns_task ~backlog:128 () in
  Syscalls.port_enable ns_task svc;
  let ns_service = Port_space.lookup_exn ns_task.t_space svc in
  let t = { ns_task; ns_service; table = Hashtbl.create 32 } in
  Engine.spawn kernel.k_engine ~name:(name ^ ".main") (fun () ->
      let rec loop () =
        (match Syscalls.msg_receive ns_task ~from:(`Port svc) () with
        | Ok msg -> handle t msg
        | Error _ -> ());
        loop ()
      in
      loop ());
  t

module Client = struct
  type error = [ `Not_found | `Ipc_failure | `Malformed ]

  let pp_error fmt = function
    | `Not_found -> Format.fprintf fmt "name not found"
    | `Ipc_failure -> Format.fprintf fmt "ipc failure"
    | `Malformed -> Format.fprintf fmt "malformed reply"

  let rpc task ~server ~msg_id name extra =
    let reply_name = Syscalls.port_allocate task () in
    let reply_port = Port_space.lookup_exn task.t_space reply_name in
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    let msg =
      Message.make ~reply:reply_port ~msg_id ~dest:server (Message.Data (Codec.Enc.to_bytes e) :: extra)
    in
    let r = Syscalls.msg_rpc task msg () in
    Syscalls.port_deallocate task reply_name;
    match r with Ok reply -> Ok reply | Error _ -> Error `Ipc_failure

  let parse_ok (reply : Message.t) =
    match reply.Message.body with
    | Message.Data st :: rest -> (
      match Codec.Dec.bool (Codec.Dec.of_bytes st) with
      | true -> Ok rest
      | false -> Error `Not_found
      | exception Codec.Dec.Truncated -> Error `Malformed)
    | _ -> Error `Malformed

  let check_in task ~server name port =
    match
      rpc task ~server ~msg_id:id_check_in name
        [ Message.Caps [ { Message.cap_port = port; cap_right = Message.Send_right } ] ]
    with
    | Error _ as e -> e
    | Ok reply -> ( match parse_ok reply with Ok _ -> Ok () | Error _ as e -> e)

  let look_up task ~server name =
    match rpc task ~server ~msg_id:id_look_up name [] with
    | Error _ as e -> e
    | Ok reply -> (
      match parse_ok reply with
      | Error _ as e -> e
      | Ok (Message.Caps [ cap ] :: _) -> Ok cap.Message.cap_port
      | Ok _ -> Error `Malformed)

  let check_out task ~server name =
    match rpc task ~server ~msg_id:id_check_out name [] with
    | Error _ as e -> e
    | Ok reply -> ( match parse_ok reply with Ok _ -> Ok () | Error _ as e -> e)
end
