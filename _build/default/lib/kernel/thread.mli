(** Threads: the basic unit of computation, "a lightweight process
    operating within a task" (§3.1).

    A thread body is an ordinary OCaml function running as a simulated
    coroutine. Suspension is cooperative, as in any coroutine system:
    a suspended thread stops at its next {!checkpoint} (the syscall and
    compute paths call it implicitly). *)

open Ktypes

val spawn : task -> ?name:string -> (unit -> unit) -> thread
(** Start a thread in the task. *)

val suspend : thread -> unit
(** Increment the suspend count; the thread parks at its next
    checkpoint. *)

val resume : thread -> unit
(** Decrement the suspend count; at zero the thread continues. *)

val checkpoint : thread -> unit
(** Park here while the thread is suspended. *)

val self_checkpoint : task -> unit
(** Checkpoint for the calling thread, located by name. No-op if the
    caller is not a registered thread of [task]. *)

val is_done : thread -> bool
val thread_name : thread -> string
