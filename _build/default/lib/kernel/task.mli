(** Tasks: the basic unit of resource allocation — "a paged virtual
    address space and protected access to system resources" (§3.1). *)

open Ktypes

val create : kernel -> ?parent:task -> name:string -> unit -> task
(** Create a task. With [parent], the child's address space is built
    from the parent's inheritance attributes (share / copy / none,
    §3.3); without, it starts empty. *)

val terminate : task -> unit
(** Destroy the address space and port space (ports whose receive rights
    live here die; senders are notified). *)

val kernel : task -> kernel
val map : task -> Mach_vm.Vm_map.t
val space : task -> Mach_ipc.Port_space.t
val node : task -> Mach_ipc.Transport.node
val name : task -> string
val alive : task -> bool
val self_port_pattern : task -> int
(** A stable integer identity (stand-in for the task's kernel port). *)
