(** The kernel thread that services manager→kernel pager traffic.

    Pager request ports (the kernel holds their receive rights) are
    enabled in the kernel's port space; this thread receives from that
    default group and dispatches each message to
    {!Mach_vm.Pager_client.handle_manager_message}. *)

val start : Mach_vm.Kctx.t -> unit
