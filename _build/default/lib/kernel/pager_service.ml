module Engine = Mach_sim.Engine
module Transport = Mach_ipc.Transport
module Kctx = Mach_vm.Kctx

let start (kctx : Kctx.t) =
  Engine.spawn kctx.Kctx.engine ~name:"pager-service" (fun () ->
      let rec loop () =
        (match Transport.receive kctx.Kctx.node kctx.Kctx.kspace ~from:`Any () with
        | Ok msg -> Mach_vm.Pager_client.handle_manager_message kctx msg
        | Error _ -> ());
        loop ()
      in
      loop ())
