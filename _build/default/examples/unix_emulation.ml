(* §8.1: emulating the UNIX filesystem interface outside the kernel,
   using the Mach_unixemu library: open() maps the file via the
   filesystem server; read()/write()/lseek() operate on virtual memory;
   close() stores dirty files back.

   Run with: dune exec examples/unix_emulation.exe *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Unix_emu = Mach_unixemu.Unix_emu

let page = 4096

let () =
  let sys = Kernel.create_system () in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:2048 ~block_size:page () in
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let app = Task.create sys.Kernel.kernel ~name:"unix-app" () in
      ignore
        (Thread.spawn app ~name:"unix-app.main" (fun () ->
             let io = Unix_emu.init app ~server in
             (* Classic open/write/close, then open/lseek/read. *)
             let fd = Unix_emu.openf io ~create:true "notes.txt" in
             ignore (Unix_emu.write io fd (Bytes.of_string "The quick brown fox jumps over the lazy dog.\n"));
             ignore (Unix_emu.write io fd (Bytes.of_string "Second line written through mapped memory.\n"));
             Unix_emu.close io fd;
             Printf.printf "wrote notes.txt via emulated write()\n";
             let fd = Unix_emu.openf io "notes.txt" in
             ignore (Unix_emu.lseek io fd 4 `Set);
             Printf.printf "lseek(4); read(15) = %S\n" (Bytes.to_string (Unix_emu.read io fd 15));
             ignore (Unix_emu.lseek io fd 0 `Set);
             let all = Unix_emu.read io fd 4096 in
             Printf.printf "whole file (%d bytes, fstat says %d):\n%s" (Bytes.length all)
               (Unix_emu.fstat_size io fd) (Bytes.to_string all);
             (* dup shares the offset. *)
             let fd2 = Unix_emu.dup io fd in
             ignore (Unix_emu.lseek io fd (-44) `End);
             Printf.printf "dup'd descriptor reads: %S\n" (Bytes.to_string (Unix_emu.read io fd2 11));
             Unix_emu.close io fd;
             Unix_emu.close io fd2;
             let stats = Kernel.stats sys.Kernel.kernel in
             Printf.printf
               "no buffer cache involved: %d pageins via the external pager, %d disk ops\n"
               stats.Vm_types.s_pageins (Disk.ops disk))));
  Engine.run sys.Kernel.engine;
  print_endline "\nunix_emulation finished."
