(* §8.3: a bank built on Camelot-style recoverable virtual memory.
   Accounts live in a mapped recoverable segment; transfers are
   failure-atomic transactions; a crash is simulated and recovery
   restores exactly the committed state.

   Run with: dune exec examples/camelot_txn.exe *)

open Mach
module Camelot = Mach_pagers.Camelot
module Codec = Mach_util.Codec

let page = 4096
let accounts = 8
let slot i = i * 16

let read_balance task base i =
  match Syscalls.read_bytes task ~addr:(base + slot i) ~len:8 () with
  | Ok b -> Codec.Dec.i64 (Codec.Dec.of_bytes b) |> Int64.to_int
  | Error e -> failwith (Format.asprintf "read balance: %a" Access.pp_error e)

let encode_balance v =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e (Int64.of_int v);
  Codec.Enc.to_bytes e

let ok = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "camelot: %a" Camelot.Client.pp_error e)

let transfer client ~server ~base ~from_acct ~to_acct ~amount =
  let tid = ok (Camelot.Client.begin_txn client ~server) in
  let a = read_balance client base from_acct in
  let b = read_balance client base to_acct in
  ok
    (Camelot.Client.store client ~server tid ~segment:"bank" ~base ~offset:(slot from_acct)
       (encode_balance (a - amount)));
  ok
    (Camelot.Client.store client ~server tid ~segment:"bank" ~base ~offset:(slot to_acct)
       (encode_balance (b + amount)));
  (tid, fun () -> ok (Camelot.Client.commit client ~server tid))

let total client base = List.init accounts (read_balance client base) |> List.fold_left ( + ) 0

let () =
  let scratch = Engine.create () in
  let log_disk = Disk.create scratch ~name:"log" ~blocks:512 ~block_size:page () in
  let data_disk = Disk.create scratch ~name:"data" ~blocks:512 ~block_size:page () in
  (* Epoch 1: set up accounts, run transfers, crash mid-transaction. *)
  let sys = Kernel.create_system () in
  let ld = Disk.reattach log_disk sys.Kernel.engine in
  let dd = Disk.reattach data_disk sys.Kernel.engine in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys.Kernel.kernel ~log_disk:ld ~data_disk:dd ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"teller" () in
      ignore
        (Thread.spawn client ~name:"teller.main" (fun () ->
             let server = Camelot.service_port cam in
             let base = ok (Camelot.Client.map_segment client ~server "bank" ~size:page) in
             (* Seed: every account gets 1000, committed. *)
             let tid = ok (Camelot.Client.begin_txn client ~server) in
             for i = 0 to accounts - 1 do
               ok
                 (Camelot.Client.store client ~server tid ~segment:"bank" ~base ~offset:(slot i)
                    (encode_balance 1000))
             done;
             ok (Camelot.Client.commit client ~server tid);
             Printf.printf "seeded %d accounts with 1000 each (total %d)\n" accounts
               (total client base);
             (* Committed transfer. *)
             let _, commit1 = transfer client ~server ~base ~from_acct:0 ~to_acct:1 ~amount:250 in
             commit1 ();
             Printf.printf "transfer 1 committed: acct0=%d acct1=%d\n" (read_balance client base 0)
               (read_balance client base 1);
             (* In-flight transfer that will be lost in the crash: the
                updates are applied in memory but never committed. *)
             let _tid, _never_committed =
               transfer client ~server ~base ~from_acct:2 ~to_acct:3 ~amount:999
             in
             Printf.printf "transfer 2 applied but NOT committed: acct2=%d acct3=%d\n"
               (read_balance client base 2) (read_balance client base 3);
             Printf.printf "... crash! ...\n")));
  Engine.run sys.Kernel.engine;
  (* Epoch 2: reboot, recover, audit. *)
  let sys2 = Kernel.create_system () in
  let ld2 = Disk.reattach log_disk sys2.Kernel.engine in
  let dd2 = Disk.reattach data_disk sys2.Kernel.engine in
  Engine.spawn sys2.Kernel.engine ~name:"setup" (fun () ->
      let cam = Camelot.start sys2.Kernel.kernel ~log_disk:ld2 ~data_disk:dd2 ~format:false () in
      let client = Task.create sys2.Kernel.kernel ~name:"auditor" () in
      ignore
        (Thread.spawn client ~name:"auditor.main" (fun () ->
             Printf.printf "recovery: %d records redone, %d undone\n" (Camelot.recovered_redo cam)
               (Camelot.recovered_undo cam);
             let server = Camelot.service_port cam in
             let base = ok (Camelot.Client.map_segment client ~server "bank" ~size:page) in
             for i = 0 to 3 do
               Printf.printf "acct%d = %d\n" i (read_balance client base i)
             done;
             let t = total client base in
             Printf.printf "audit total = %d (%s)\n" t
               (if t = accounts * 1000 then "balanced — committed transfer kept, lost one rolled back"
                else "IMBALANCED"))));
  Engine.run sys2.Kernel.engine;
  print_endline "\ncamelot_txn finished."
