(* Quickstart: boot a simulated Mach kernel, run the §4.1 filesystem
   scenario from the paper's own example code:

     fs_read_file("filename", &file_data, file_size);
     ... randomly change contents ...
     fs_write_file("filename", file_data, file_size/2);
     vm_deallocate(task_self(), file_data, file_size);

   Run with: dune exec examples/quickstart.exe *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Rng = Mach_util.Rng

let page = 4096

let () =
  let sys = Kernel.create_system () in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      (* A user-level filesystem server: the data manager for every
         file's memory object. *)
      let disk = Disk.create sys.Kernel.engine ~name:"fsdisk" ~blocks:2048 ~block_size:page () in
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let app = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore
        (Thread.spawn app ~name:"app.main" (fun () ->
             Printf.printf "[%8.3f ms] app task started\n" (Engine.now sys.Kernel.engine /. 1e3);
             (* Create a file. *)
             (match
                Minimal_fs.Client.write_file app ~server "filename"
                  (Bytes.of_string (String.concat "" (List.init 100 (fun i -> Printf.sprintf "line %02d of the original file contents\n" i))))
              with
             | Ok () -> ()
             | Error e -> failwith (Format.asprintf "write: %a" Minimal_fs.Client.pp_error e));
             (* fs_read_file: returns NEW virtual memory, mapped
                copy-on-write — faults are served by the fs server. *)
             let file_data, file_size =
               match Minimal_fs.Client.read_file app ~server "filename" with
               | Ok r -> r
               | Error e -> failwith (Format.asprintf "read: %a" Minimal_fs.Client.pp_error e)
             in
             Printf.printf "[%8.3f ms] fs_read_file mapped %d bytes at %#x\n"
               (Engine.now sys.Kernel.engine /. 1e3)
               file_size file_data;
             (* Randomly change contents: private copy-on-write pages;
                other tasks keep seeing the original. *)
             let rng = Rng.create 42 in
             for _ = 1 to 64 do
               let off = Rng.int rng file_size in
               match Syscalls.read_bytes app ~addr:(file_data + off) ~len:1 () with
               | Ok b ->
                 let c = (Bytes.get_uint8 b 0 + 1) land 0xff in
                 ignore (Syscalls.write_bytes app ~addr:(file_data + off) (Bytes.make 1 (Char.chr c)) ())
               | Error _ -> ()
             done;
             let stats = Kernel.stats sys.Kernel.kernel in
             Printf.printf "[%8.3f ms] scribbled on the mapping: %d faults so far (%d COW)\n"
               (Engine.now sys.Kernel.engine /. 1e3)
               stats.Vm_types.s_faults stats.Vm_types.s_cow_faults;
             (* Write back some results. *)
             (match
                Syscalls.read_bytes app ~addr:file_data ~len:(file_size / 2) ()
              with
             | Ok half -> (
               match Minimal_fs.Client.write_file app ~server "filename" half with
               | Ok () ->
                 Printf.printf "[%8.3f ms] fs_write_file stored %d bytes back\n"
                   (Engine.now sys.Kernel.engine /. 1e3)
                   (file_size / 2)
               | Error e -> failwith (Format.asprintf "write-back: %a" Minimal_fs.Client.pp_error e))
             | Error _ -> failwith "read for write-back failed");
             (* Throw away the working copy. *)
             Syscalls.vm_deallocate app ~addr:file_data ~size:file_size;
             Printf.printf "[%8.3f ms] vm_deallocate done; disk did %d ops total\n"
               (Engine.now sys.Kernel.engine /. 1e3)
               (Disk.ops disk);
             let vs = Syscalls.vm_statistics app in
             Printf.printf "\nvm_statistics:\n";
             List.iter
               (fun (k, v) -> if v > 0 then Printf.printf "  %-24s %d\n" k v)
               (Vm_types.stats_to_list vs.Syscalls.vs_stats))));
  Engine.run sys.Kernel.engine;
  print_endline "\nquickstart finished."
