(* A parallel make: the paper's motivating combination — many threads of
   control (§3.1) on a shared-memory multiprocessor, coordinating by
   messages (§3.2), with all file I/O through mapped memory objects
   served by a user-level filesystem (§4.1, §9).

   A coordinator task farms compilation jobs to N worker tasks over a
   job port; each worker maps the source and headers from the fs server,
   burns CPU proportional to the bytes consumed (contending for the
   MultiMax's 16 processors), and stores the object file back.

   The cold build is bound by the single disk arm no matter how many
   workers run; once the kernel's page cache holds the tree (§9), the
   warm build is compute-bound and scales with processors.

   Run with: dune exec examples/parallel_make.exe *)

open Mach
module Minimal_fs = Mach_pagers.Minimal_fs
module Compile_sim = Mach_workloads.Compile_sim
module Rng = Mach_util.Rng

let page = 4096

let build_once ~workers =
  let config =
    { Kernel.default_config with Kernel.params = Machine.multimax; phys_frames = 2048 }
  in
  let sys = Kernel.create_system ~config () in
  let disk = Disk.create sys.Kernel.engine ~name:"src-disk" ~blocks:4096 ~block_size:page () in
  let results = ref [] in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~service_threads:4 ~disk ~format:true () in
      let server = Minimal_fs.service_port fsrv in
      let proj =
        Compile_sim.generate (Rng.create 77) ~sources:32 ~source_bytes:(10 * 1024) ~headers:16
          ~header_bytes:(12 * 1024) ~headers_per_source:6
      in
      let coordinator = Task.create sys.Kernel.kernel ~name:"make" () in
      ignore
        (Thread.spawn coordinator ~name:"make.main" (fun () ->
             (* Populate the tree. *)
             let setup_ops = Compile_sim.mach_ops coordinator ~server ~disk in
             Compile_sim.populate setup_ops (Rng.create 7) proj;
             Disk.reset_stats disk;
             (* Job and completion ports. *)
             let jobs_name = Syscalls.port_allocate coordinator ~backlog:64 () in
             let jobs = Port_space.lookup_exn (Task.space coordinator) jobs_name in
             let done_name = Syscalls.port_allocate coordinator ~backlog:64 () in
             let done_port = Port_space.lookup_exn (Task.space coordinator) done_name in
             (* Workers. *)
             for w = 0 to workers - 1 do
               let wt = Task.create sys.Kernel.kernel ~name:(Printf.sprintf "cc-%d" w) () in
               let wjobs = Syscalls.port_insert wt jobs Message.Send_right in
               ignore wjobs;
               ignore
                 (Thread.spawn wt ~name:(Printf.sprintf "cc-%d.main" w) (fun () ->
                      let jobs_local = Syscalls.port_insert wt jobs Message.Receive_right in
                      ignore jobs_local;
                      let ops = Compile_sim.mach_ops wt ~server ~disk in
                      let continue_working = ref true in
                      while !continue_working do
                        (* All workers receive from the one job port:
                           a single-queue work pool. *)
                        match
                          Mach_ipc.Transport.receive (Task.node wt) (Task.space coordinator)
                            ~from:(`Port jobs_name) ~timeout:1_000_000.0 ()
                        with
                        | Ok msg -> (
                          let payload = Bytes.to_string (Message.data_exn msg) in
                          if payload = "stop" then continue_working := false
                          else begin
                            let idx = int_of_string payload in
                            let src, _ = List.nth proj.Compile_sim.sources idx in
                            let consumed = ref 0 in
                            consumed := !consumed + ops.Compile_sim.read_file src;
                            List.iter
                              (fun (h, _) -> consumed := !consumed + ops.Compile_sim.read_file h)
                              (List.filteri (fun k _ -> k < proj.Compile_sim.headers_per_source)
                                 proj.Compile_sim.headers);
                            ops.Compile_sim.compute (float_of_int !consumed *. 2.0);
                            ops.Compile_sim.write_file
                              (Filename.remove_extension src ^ ".o")
                              (Bytes.make (max 512 (!consumed / 10)) 'O');
                            match
                              Syscalls.msg_send wt
                                (Message.make ~dest:done_port [ Message.Data (Bytes.of_string src) ])
                            with
                            | Ok () -> ()
                            | Error _ -> continue_working := false
                          end)
                        | Error _ -> continue_working := false
                      done))
             done;
             (* Two builds: cold (disk-bound) then warm (cache-bound). *)
             for _build = 1 to 2 do
               let t0 = Engine.now sys.Kernel.engine in
               let ops0 = Disk.ops disk in
               List.iteri
                 (fun i _ ->
                   ignore
                     (Syscalls.msg_send coordinator
                        (Message.make ~dest:jobs [ Message.Data (Bytes.of_string (string_of_int i)) ])))
                 proj.Compile_sim.sources;
               for _ = 1 to List.length proj.Compile_sim.sources do
                 ignore (Syscalls.msg_receive coordinator ~from:(`Port done_name) ())
               done;
               results :=
                 (Engine.now sys.Kernel.engine -. t0, Disk.ops disk - ops0) :: !results
             done;
             (* Dismiss the workers. *)
             for _ = 1 to workers do
               ignore
                 (Syscalls.msg_send coordinator
                    (Message.make ~dest:jobs [ Message.Data (Bytes.of_string "stop") ]))
             done)));
  Engine.run sys.Kernel.engine;
  match List.rev !results with
  | [ cold; warm ] -> (cold, warm)
  | _ -> failwith "expected two builds"

let () =
  Printf.printf "parallel make of 32 units on a 16-CPU MultiMax, files via the fs server\n\n";
  Printf.printf "%8s | %12s %10s | %12s %10s %9s\n" "workers" "cold build s" "disk ops"
    "warm build s" "disk ops" "speedup";
  let warm_base = ref 0.0 in
  List.iter
    (fun workers ->
      let (cold_s, cold_ops), (warm_s, warm_ops) = build_once ~workers in
      if workers = 1 then warm_base := warm_s;
      Printf.printf "%8d | %12.2f %10d | %12.2f %10d %8.2fx\n" workers (cold_s /. 1e6) cold_ops
        (warm_s /. 1e6) warm_ops (!warm_base /. warm_s))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "\ncold builds sit on the one disk arm regardless of workers; warm builds read entirely\n\
     from the kernel's page cache (s9) and scale with processors until the object-file\n\
     writes serialise on that same disk arm.\n";
  print_endline "\nparallel_make finished."
