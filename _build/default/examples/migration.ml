(* §8.2: migrate a running task between hosts with copy-on-reference
   paging, and compare against eager copy.

   Run with: dune exec examples/migration.exe *)

open Mach
module Migrator = Mach_pagers.Migrator

let page = 4096
let pages = 64

let show cluster fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "[%8.3f ms] %s\n" (Engine.now cluster.Kernel.c_engine /. 1e3) s)
    fmt

let () =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let src = Task.create cluster.Kernel.c_kernels.(0) ~name:"worker" () in
      let ready = Ivar.create () in
      ignore
        (Thread.spawn src ~name:"worker.init" (fun () ->
             (* The worker builds up 256 KB of state on host 0. *)
             let addr = Syscalls.vm_allocate src ~size:(pages * page) ~anywhere:true () in
             for i = 0 to pages - 1 do
               ignore
                 (Syscalls.write_bytes src ~addr:(addr + (i * page))
                    (Bytes.of_string (Printf.sprintf "state-%02d" i))
                    ())
             done;
             Ivar.fill ready addr));
      ignore
        (Thread.spawn src ~name:"migration-driver" (fun () ->
             let addr = Ivar.read ready in
             show cluster "worker has %d pages of state on host 0" pages;
             let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
             let t0 = Engine.now cluster.Kernel.c_engine in
             let mg =
               Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1)
                 Migrator.Copy_on_reference
             in
             show cluster "copy-on-reference migration set up in %.2f ms — restart is immediate"
               ((Engine.now cluster.Kernel.c_engine -. t0) /. 1e3);
             let dst = mg.Migrator.mg_task in
             let finished = Ivar.create () in
             ignore
               (Thread.spawn dst ~name:"worker-migrated.main" (fun () ->
                    (* The migrated worker touches a few pages: each
                       first touch is a network paging request on the
                       migration manager. *)
                    List.iter
                      (fun i ->
                        match Syscalls.read_bytes dst ~addr:(addr + (i * page)) ~len:8 () with
                        | Ok b ->
                          show cluster "migrated worker reads page %2d on host 1: %S" i
                            (Bytes.to_string b)
                        | Error e ->
                          failwith (Format.asprintf "migrated read: %a" Access.pp_error e))
                      [ 0; 17; 63 ];
                    Ivar.fill finished ()));
             Ivar.read finished;
             show cluster "only %d of %d pages crossed the network" (Migrator.pages_transferred mgr)
               pages;
             Migrator.finish mgr mg;
             show cluster "source task reclaimed; migration complete")));
  Engine.run cluster.Kernel.c_engine;
  print_endline "\nmigration finished."
