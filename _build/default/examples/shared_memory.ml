(* The §4.2 walkthrough, frame by frame: two clients on different hosts
   share a memory region served by a consistent network shared memory
   manager. Frame 1: both map the object. Frame 2: both take read
   faults on the same page. Frame 3: one writes — the other's cached
   copy is invalidated before write access is granted.

   Run with: dune exec examples/shared_memory.exe *)

open Mach
module Netmem = Mach_pagers.Netmem

let page = 4096

let show cluster fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "[%8.3f ms] %s\n" (Engine.now cluster.Kernel.c_engine /. 1e3) s)
    fmt

let () =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      (* The shared memory server may live on either client's host, or
         a third one; here it runs on host 0. *)
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(4 * page) in
      Netmem.write_initial nm ~region ~offset:0 (Bytes.of_string "initial shared state");
      let a = Task.create cluster.Kernel.c_kernels.(0) ~name:"client-1" () in
      let b = Task.create cluster.Kernel.c_kernels.(1) ~name:"client-2" () in
      ignore
        (Thread.spawn a ~name:"client-1.main" (fun () ->
             (* Frame 1: each client maps the object X; each kernel
                makes its own pager_init call. *)
             let a_addr =
               Syscalls.vm_allocate_with_pager a ~size:(4 * page) ~anywhere:true
                 ~memory_object:region ~offset:0 ()
             in
             let b_addr =
               Syscalls.vm_allocate_with_pager b ~size:(4 * page) ~anywhere:true
                 ~memory_object:region ~offset:0 ()
             in
             show cluster "frame 1: mapped on host 0 at %#x, on host 1 at %#x (different addresses are fine)"
               a_addr b_addr;
             (* Frame 2: both take read faults on the same page; the
                server provides the data write-locked to each kernel. *)
             let read task addr =
               match Syscalls.read_bytes task ~addr ~len:20 () with
               | Ok bytes -> Bytes.to_string bytes
               | Error e -> failwith (Format.asprintf "read: %a" Access.pp_error e)
             in
             show cluster "frame 2: client-1 reads %S" (read a a_addr);
             show cluster "frame 2: client-2 reads %S" (read b b_addr);
             (match Netmem.page_state nm ~region ~page:0 with
             | `Readers n -> show cluster "         server records %d reader kernels, page write-locked" n
             | `Idle | `Writer -> ());
             (* Frame 3: client-1 writes. Its kernel holds the data but
                not write access, so it sends pager_data_unlock; the
                server flushes client-2's kernel first, then grants the
                lock. *)
             (match Syscalls.write_bytes a ~addr:a_addr (Bytes.of_string "client-1 was here!!!") () with
             | Ok () -> ()
             | Error e -> failwith (Format.asprintf "write: %a" Access.pp_error e));
             show cluster "frame 3: client-1 wrote; invalidations so far: %d, write grants: %d"
               (Netmem.invalidations nm) (Netmem.grants nm);
             (* Client-2 reads again: its kernel refetches — and the
                writer is flushed back so the data is current. *)
             show cluster "frame 3: client-2 re-reads %S (coherent)" (read b b_addr);
             show cluster "totals: %d invalidations, %d write grants"
               (Netmem.invalidations nm) (Netmem.grants nm))));
  Engine.run cluster.Kernel.c_engine;
  print_endline "\nshared_memory finished."
