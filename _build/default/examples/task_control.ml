(* §3.2: "operations on Mach objects are invoked through message
   passing… a thread can suspend another thread by sending a suspend
   message to the port representing that other thread even if the
   request is initiated on another node in a network."

   A worker runs on host 0; a controller on host 1 finds the worker's
   task port through the name server and drives it — info, suspend,
   resume, remote allocation, terminate — entirely by messages.

   Run with: dune exec examples/task_control.exe *)

open Mach

let show cluster fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "[%8.3f ms] %s\n" (Engine.now cluster.Kernel.c_engine /. 1e3) s)
    fmt

let () =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let ns = Name_server.start cluster.Kernel.c_kernels.(0) () in
      let ns_port = Name_server.service_port ns in
      (* The worker: an endless job on host 0, checked in by name. *)
      let worker = Task.create cluster.Kernel.c_kernels.(0) ~name:"number-cruncher" () in
      let steps = ref 0 in
      let th = ref None in
      th :=
        Some
          (Thread.spawn worker ~name:"number-cruncher.loop" (fun () ->
               let continue_crunching = ref true in
               while !continue_crunching do
                 Thread.checkpoint (Option.get !th);
                 incr steps;
                 Engine.sleep 250.0;
                 if not (Task.alive worker) then continue_crunching := false
               done));
      ignore
        (Name_server.Client.check_in worker ~server:ns_port "number-cruncher"
           (Task_server.task_port worker));
      (* The controller on the other host. *)
      let controller = Task.create cluster.Kernel.c_kernels.(1) ~name:"controller" () in
      ignore
        (Thread.spawn controller ~name:"controller.main" (fun () ->
             Engine.sleep 5_000.0;
             let target =
               match Name_server.Client.look_up controller ~server:ns_port "number-cruncher" with
               | Ok p -> p
               | Error e -> failwith (Format.asprintf "lookup: %a" Name_server.Client.pp_error e)
             in
             show cluster "controller (host 1) found the worker's task port by name";
             (match Task_server.Client.info controller ~target with
             | Ok i ->
               show cluster "task_info: name=%S threads=%d mapped=%d bytes"
                 i.Task_server.Client.ti_name i.Task_server.Client.ti_threads
                 i.Task_server.Client.ti_mapped_bytes
             | Error e -> failwith (Format.asprintf "info: %a" Task_server.Client.pp_error e));
             show cluster "worker has crunched %d steps; suspending it across the network" !steps;
             ignore (Task_server.Client.suspend controller ~target);
             Engine.sleep 1_000.0;
             let frozen = !steps in
             Engine.sleep 10_000.0;
             show cluster "10 ms later: still %d steps (frozen at %d) — suspended" !steps frozen;
             ignore (Task_server.Client.resume controller ~target);
             Engine.sleep 10_000.0;
             show cluster "after resume: %d steps — running again" !steps;
             (match Task_server.Client.vm_allocate controller ~target ~size:65536 with
             | Ok addr -> show cluster "allocated 64 KB in the worker's space at %#x, by message" addr
             | Error e -> failwith (Format.asprintf "remote alloc: %a" Task_server.Client.pp_error e));
             ignore (Task_server.Client.terminate controller ~target);
             show cluster "terminated the worker remotely; task alive = %b" (Task.alive worker))));
  Engine.run ~until:10_000_000.0 cluster.Kernel.c_engine;
  print_endline "\ntask_control finished."
