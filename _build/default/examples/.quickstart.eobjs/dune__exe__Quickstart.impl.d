examples/quickstart.ml: Bytes Char Disk Engine Format Kernel List Mach Mach_pagers Mach_util Printf String Syscalls Task Thread Vm_types
