examples/unix_emulation.ml: Bytes Disk Engine Kernel Mach Mach_pagers Mach_unixemu Printf Task Thread Vm_types
