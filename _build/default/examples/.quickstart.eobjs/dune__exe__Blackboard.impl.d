examples/blackboard.ml: Array Bytes Engine Int64 Ivar Kernel List Mach Mach_pagers Mach_util Mailbox Message Port_space Printf Syscalls Task Thread
