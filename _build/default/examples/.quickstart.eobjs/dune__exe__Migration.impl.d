examples/migration.ml: Access Array Bytes Engine Format Ivar Kernel List Mach Mach_pagers Printf Syscalls Task Thread
