examples/camelot_txn.mli:
