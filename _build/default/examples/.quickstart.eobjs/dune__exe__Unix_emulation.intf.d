examples/unix_emulation.mli:
