examples/task_control.mli:
