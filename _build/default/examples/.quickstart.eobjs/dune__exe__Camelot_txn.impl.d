examples/camelot_txn.ml: Access Disk Engine Format Int64 Kernel List Mach Mach_pagers Mach_util Printf Syscalls Task Thread
