examples/task_control.ml: Array Engine Format Kernel Mach Name_server Option Printf Task Task_server Thread
