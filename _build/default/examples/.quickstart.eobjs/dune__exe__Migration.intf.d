examples/migration.mli:
