examples/shared_memory.ml: Access Array Bytes Engine Format Kernel Mach Mach_pagers Printf Syscalls Task Thread
