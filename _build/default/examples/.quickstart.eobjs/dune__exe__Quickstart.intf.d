examples/quickstart.mli:
