examples/parallel_make.ml: Bytes Disk Engine Filename Kernel List Mach Mach_ipc Mach_pagers Mach_util Mach_workloads Machine Message Port_space Printf Syscalls Task Thread
