examples/blackboard.mli:
