(* §8.4: an Agora-style blackboard. Hypotheses are posted and scored by
   cooperating agents. Agents on the blackboard's host modify it through
   shared memory; loosely-coupled agents on other hosts interact by
   message passing — both through one procedural interface, exactly the
   mixed structure the speech system used.

   Run with: dune exec examples/blackboard.exe *)

open Mach
module Netmem = Mach_pagers.Netmem
module Codec = Mach_util.Codec

let page = 4096
let max_hyps = 32
let slot_size = 64

(* Blackboard layout in the shared region:
   [0..7]   count of hypotheses
   slots of 64 bytes: score (8 bytes) + text (56 bytes) *)
module Board = struct
  let count task base =
    match Syscalls.read_bytes task ~addr:base ~len:8 () with
    | Ok b -> Int64.to_int (Codec.Dec.i64 (Codec.Dec.of_bytes b))
    | Error _ -> 0

  let set_count task base n =
    let e = Codec.Enc.create () in
    Codec.Enc.i64 e (Int64.of_int n);
    ignore (Syscalls.write_bytes task ~addr:base (Codec.Enc.to_bytes e) ())

  let slot base i = base + 8 + (i * slot_size)

  let post task base text =
    let n = count task base in
    if n < max_hyps then begin
      let e = Codec.Enc.create () in
      Codec.Enc.i64 e 0L;
      Codec.Enc.string e text;
      ignore (Syscalls.write_bytes task ~addr:(slot base n) (Codec.Enc.to_bytes e) ());
      set_count task base (n + 1);
      Some n
    end
    else None

  let score task base i points =
    match Syscalls.read_bytes task ~addr:(slot base i) ~len:8 () with
    | Ok b ->
      let cur = Codec.Dec.i64 (Codec.Dec.of_bytes b) in
      let e = Codec.Enc.create () in
      Codec.Enc.i64 e (Int64.add cur (Int64.of_int points));
      ignore (Syscalls.write_bytes task ~addr:(slot base i) (Codec.Enc.to_bytes e) ())
    | Error _ -> ()

  let read_hyp task base i =
    match Syscalls.read_bytes task ~addr:(slot base i) ~len:slot_size () with
    | Ok b ->
      let d = Codec.Dec.of_bytes b in
      let score = Int64.to_int (Codec.Dec.i64 d) in
      let text = Codec.Dec.string d in
      Some (score, text)
    | Error _ -> None
end

let () =
  let cluster = Kernel.create_cluster ~hosts:2 () in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      (* The blackboard physically resides on host 0 (the paper's
         multiprocessor host). *)
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:page in
      (* Tightly-coupled agents on host 0 share the blackboard memory
         directly; a remote sensor on host 1 talks by message. *)
      let poster = Task.create cluster.Kernel.c_kernels.(0) ~name:"hypothesizer" () in
      let scorer = Task.create cluster.Kernel.c_kernels.(0) ~name:"scorer" () in
      let sensor = Task.create cluster.Kernel.c_kernels.(1) ~name:"remote-sensor" () in
      let inbox_name = Syscalls.port_allocate poster ~backlog:16 () in
      let inbox = Port_space.lookup_exn (Task.space poster) inbox_name in
      let posted = Mailbox.create () in
      let done_scoring = Ivar.create () in
      ignore
        (Thread.spawn poster ~name:"hypothesizer.main" (fun () ->
             let base =
               Syscalls.vm_allocate_with_pager poster ~size:page ~anywhere:true
                 ~memory_object:region ~offset:0 ()
             in
             (* Local hypotheses straight into shared memory. *)
             List.iter
               (fun h -> Mailbox.send posted (Board.post poster base h))
               [ "the utterance starts with 'mach'"; "speaker is asking a question" ];
             (* Remote observations arrive as messages and are posted
                on the senders' behalf. *)
             for _ = 1 to 2 do
               match Syscalls.msg_receive poster ~from:(`Port inbox_name) () with
               | Ok msg ->
                 let text = Bytes.to_string (Message.data_exn msg) in
                 Mailbox.send posted (Board.post poster base text)
               | Error _ -> ()
             done;
             Ivar.read done_scoring;
             let n = Board.count poster base in
             Printf.printf "\nblackboard after all agents ran (%d hypotheses):\n" n;
             for i = 0 to n - 1 do
               match Board.read_hyp poster base i with
               | Some (score, text) -> Printf.printf "  score %3d | %s\n" score text
               | None -> ()
             done));
      ignore
        (Thread.spawn sensor ~name:"remote-sensor.main" (fun () ->
             (* Loosely-coupled component: signal processing results
                cross the network as messages. *)
             List.iter
               (fun obs ->
                 ignore
                   (Syscalls.msg_send sensor
                      (Message.make ~dest:inbox [ Message.Data (Bytes.of_string obs) ])))
               [ "low-level: energy burst at 1.2s"; "low-level: formant matches vowel 'a'" ]));
      ignore
        (Thread.spawn scorer ~name:"scorer.main" (fun () ->
             let base =
               Syscalls.vm_allocate_with_pager scorer ~size:page ~anywhere:true
                 ~memory_object:region ~offset:0 ()
             in
             (* Score each hypothesis as it appears, via shared memory. *)
             for _ = 1 to 4 do
               match Mailbox.recv posted with
               | Some i -> Board.score scorer base i (10 + (i * 5))
               | None -> ()
             done;
             Ivar.fill done_scoring ())));
  Engine.run cluster.Kernel.c_engine;
  print_endline "\nblackboard finished."
