(* machsim: run parameterised scenarios on the simulated Mach kernel.

   Subcommands:
     machsim compile  --sources 48 --builds 3 --frames 1024 --cache-pct 10
     machsim netmem   --pages 32 --ops 400 --write-ratio 0.1 [--drop 0.1 --dup 0.05 --seed 7]
     machsim migrate  --pages 128 --strategy cor --touched 0.5
     machsim machines
     machsim stat     [--json]
     machsim trace    [--filter vm] [--span N] [--limit 40]
*)

open Mach
module Table = Mach_util.Table
module Rng = Mach_util.Rng
module Compile_sim = Mach_workloads.Compile_sim
module Access_patterns = Mach_workloads.Access_patterns
module Minimal_fs = Mach_pagers.Minimal_fs
module Netmem = Mach_pagers.Netmem
module Migrator = Mach_pagers.Migrator
module Unix_fs = Mach_baseline.Unix_fs
module Chaos = Mach_sim.Chaos

let page = 4096

(* ---- compile ----------------------------------------------------------- *)

let run_compile sources builds frames cache_pct =
  let proj =
    Compile_sim.generate (Rng.create 0x4D414348) ~sources ~source_bytes:(12 * 1024) ~headers:24
      ~header_bytes:(16 * 1024) ~headers_per_source:8
  in
  Printf.printf "project: %d sources + 24 headers = %d KB; memory %d KB; UNIX cache %d%%\n\n"
    sources
    (Compile_sim.project_bytes proj / 1024)
    (frames * page / 1024) cache_pct;
  (* UNIX baseline. *)
  let unix_results = ref [] in
  let sys = Kernel.create_system () in
  let disk = Disk.create sys.Kernel.engine ~name:"unix-disk" ~blocks:8192 ~block_size:page () in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let ufs =
        Unix_fs.create sys.Kernel.kernel.Ktypes.k_params ~disk
          ~cache_buffers:(max 1 (frames * cache_pct / 100))
          ~format:true
      in
      let ops = Compile_sim.unix_ops ufs in
      Compile_sim.populate ops (Rng.create 7) proj;
      Unix_fs.sync ufs;
      Disk.reset_stats disk;
      for _ = 1 to builds do
        unix_results := Compile_sim.measure_build sys.Kernel.engine ops proj :: !unix_results
      done);
  Engine.run sys.Kernel.engine;
  (* Mach. *)
  let mach_results = ref [] in
  let config = { Kernel.default_config with Kernel.phys_frames = frames } in
  let sys = Kernel.create_system ~config () in
  let mdisk = Disk.create sys.Kernel.engine ~name:"mach-disk" ~blocks:8192 ~block_size:page () in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let fsrv = Minimal_fs.start sys.Kernel.kernel ~disk:mdisk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"cc" () in
      ignore
        (Thread.spawn client ~name:"cc.main" (fun () ->
             let ops = Compile_sim.mach_ops client ~server:(Minimal_fs.service_port fsrv) ~disk:mdisk in
             Compile_sim.populate ops (Rng.create 7) proj;
             Disk.reset_stats mdisk;
             for _ = 1 to builds do
               mach_results := Compile_sim.measure_build sys.Kernel.engine ops proj :: !mach_results
             done)));
  Engine.run sys.Kernel.engine;
  let t =
    Table.create ~title:"compile workload"
      ~columns:[ "build"; "UNIX s"; "Mach s"; "speedup"; "UNIX I/Os"; "Mach I/Os" ]
  in
  List.iteri
    (fun i (u, m) ->
      let open Compile_sim in
      Table.row t
        [
          string_of_int (i + 1);
          Printf.sprintf "%.2f" (u.elapsed_us /. 1e6);
          Printf.sprintf "%.2f" (m.elapsed_us /. 1e6);
          Printf.sprintf "%.2fx" (u.elapsed_us /. m.elapsed_us);
          string_of_int u.disk_ops;
          string_of_int m.disk_ops;
        ])
    (List.combine (List.rev !unix_results) (List.rev !mach_results));
  Table.print t;
  0

(* ---- netmem ------------------------------------------------------------ *)

let run_netmem pages ops write_ratio hosts drop dup seed =
  let chaos =
    if drop > 0.0 || dup > 0.0 then begin
      let c = Chaos.create ~seed () in
      Chaos.set_default_plan c
        { Chaos.perfect with Chaos.drop; duplicate = dup };
      Some c
    end
    else None
  in
  let cluster = Kernel.create_cluster ~hosts ?chaos () in
  let done_count = ref 0 in
  let t_done = ref 0.0 in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let nm = Netmem.start cluster.Kernel.c_kernels.(0) () in
      let region = Netmem.create_region nm ~size:(pages * page) in
      for host = 0 to hosts - 1 do
        let task =
          Task.create cluster.Kernel.c_kernels.(host) ~name:(Printf.sprintf "client-%d" host) ()
        in
        ignore
          (Thread.spawn task ~name:(Printf.sprintf "client-%d.main" host) (fun () ->
               let addr =
                 Syscalls.vm_allocate_with_pager task ~size:(pages * page) ~anywhere:true
                   ~memory_object:region ~offset:0 ()
               in
               let rng = Rng.create (host + 100) in
               let trace =
                 Access_patterns.working_set ~pages ~ops ~write_ratio ~hot_fraction:0.25
                   ~hot_bias:0.8 rng
               in
               List.iter
                 (fun { Access_patterns.ap_page; ap_write } ->
                   ignore
                     (Syscalls.touch task
                        ~addr:(addr + (ap_page * page))
                        ~write:ap_write
                        ~policy:(Fault.Abort_after 30_000_000.0) ()))
                 trace;
               incr done_count;
               if !done_count = hosts then begin
                 t_done := Engine.now cluster.Kernel.c_engine;
                 Printf.printf
                   "%d hosts x %d ops, write ratio %.2f: %.2f ms total, %.1f us/access, %d \
                    invalidations, %d write grants\n"
                   hosts ops write_ratio (!t_done /. 1e3)
                   (!t_done /. float_of_int (hosts * ops))
                   (Netmem.invalidations nm) (Netmem.grants nm)
               end))
      done);
  Engine.run cluster.Kernel.c_engine;
  (match cluster.Kernel.c_chaos with
  | None -> ()
  | Some c ->
    Printf.printf "chaos (seed %d): %s; %d retransmits recovered the losses\n" seed
      (String.concat ", "
         (List.filter_map
            (fun (k, v) -> if v > 0 then Some (Printf.sprintf "%d %s" v k) else None)
            (Chaos.stats_to_list c)))
      (Mach_hw.Net.retransmits cluster.Kernel.c_net));
  if !done_count = hosts then 0 else 1

(* ---- migrate ----------------------------------------------------------- *)

let run_migrate pages strategy touched =
  let strategy =
    match strategy with
    | "eager" -> Migrator.Eager_copy
    | "cor" -> Migrator.Copy_on_reference
    | s when String.length s > 3 && String.sub s 0 3 = "pre" ->
      Migrator.Pre_paging (int_of_string (String.sub s 3 (String.length s - 3)))
    | s -> failwith ("unknown strategy: " ^ s ^ " (use eager | cor | preN)")
  in
  let cluster = Kernel.create_cluster ~hosts:2 () in
  let ok = ref false in
  Engine.spawn cluster.Kernel.c_engine ~name:"setup" (fun () ->
      let src = Task.create cluster.Kernel.c_kernels.(0) ~name:"job" () in
      let ready = Ivar.create () in
      ignore
        (Thread.spawn src ~name:"job.init" (fun () ->
             let addr = Syscalls.vm_allocate src ~size:(pages * page) ~anywhere:true () in
             for i = 0 to pages - 1 do
               ignore (Syscalls.write_bytes src ~addr:(addr + (i * page)) (Bytes.make 32 'd') ())
             done;
             Ivar.fill ready addr));
      ignore
        (Thread.spawn src ~name:"driver" (fun () ->
             let addr = Ivar.read ready in
             let mgr = Migrator.start cluster.Kernel.c_kernels.(0) () in
             let t0 = Engine.now cluster.Kernel.c_engine in
             let mg = Migrator.migrate mgr ~src ~dst_kernel:cluster.Kernel.c_kernels.(1) strategy in
             let setup_ms = (Engine.now cluster.Kernel.c_engine -. t0) /. 1e3 in
             let dst = mg.Migrator.mg_task in
             let n_touch = max 1 (int_of_float (float_of_int pages *. touched)) in
             let fin = Ivar.create () in
             ignore
               (Thread.spawn dst ~name:"job-migrated" (fun () ->
                    let t1 = Engine.now cluster.Kernel.c_engine in
                    for i = 0 to n_touch - 1 do
                      let p = i * pages / n_touch in
                      ignore
                        (Syscalls.read_bytes dst ~addr:(addr + (p * page)) ~len:8
                           ~policy:(Fault.Abort_after 60_000_000.0) ())
                    done;
                    Ivar.fill fin ((Engine.now cluster.Kernel.c_engine -. t1) /. 1e3)));
             let run_ms = Ivar.read fin in
             Printf.printf
               "%d pages, strategy %s, touched %.0f%%: setup %.2f ms, run %.2f ms, total %.2f ms, \
                %d pages shipped\n"
               pages
               (match strategy with
               | Migrator.Eager_copy -> "eager"
               | Migrator.Copy_on_reference -> "copy-on-reference"
               | Migrator.Pre_paging n -> Printf.sprintf "pre-paging(%d)" n)
               (touched *. 100.0) setup_ms run_ms (setup_ms +. run_ms)
               (Migrator.pages_transferred mgr);
             ok := true)));
  Engine.run cluster.Kernel.c_engine;
  if !ok then 0 else 1

(* ---- camelot ----------------------------------------------------------- *)

let run_camelot txns updates =
  let sys = Kernel.create_system () in
  let log_disk = Disk.create sys.Kernel.engine ~name:"log" ~blocks:4096 ~block_size:page () in
  let data_disk = Disk.create sys.Kernel.engine ~name:"data" ~blocks:4096 ~block_size:page () in
  let ok = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let cam = Mach_pagers.Camelot.start sys.Kernel.kernel ~log_disk ~data_disk ~format:true () in
      let client = Task.create sys.Kernel.kernel ~name:"txn" () in
      ignore
        (Thread.spawn client ~name:"txn.main" (fun () ->
             let module C = Mach_pagers.Camelot in
             let server = C.service_port cam in
             let base =
               match C.Client.map_segment client ~server "db" ~size:(256 * page) with
               | Ok b -> b
               | Error _ -> failwith "map failed"
             in
             let rng = Rng.create 1 in
             let t0 = Engine.now sys.Kernel.engine in
             for _ = 1 to txns do
               match C.Client.begin_txn client ~server with
               | Error _ -> failwith "begin failed"
               | Ok tid ->
                 for _ = 1 to updates do
                   let offset = 16 * Rng.int rng (256 * page / 16) in
                   ignore (C.Client.store client ~server tid ~segment:"db" ~base ~offset (Bytes.make 8 'u'))
                 done;
                 ignore (C.Client.commit client ~server tid)
             done;
             let dt = (Engine.now sys.Kernel.engine -. t0) /. 1e6 in
             Printf.printf
               "%d txns x %d updates: %.2f s simulated, %.1f txn/s, %d log forces, %d WAL \
                violations, %d data-disk ops\n"
               txns updates dt
               (float_of_int txns /. dt)
               (C.log_forces cam) (C.wal_violations cam) (Disk.ops data_disk);
             ok := true)));
  Engine.run sys.Kernel.engine;
  if !ok then 0 else 1

(* ---- failures ----------------------------------------------------------- *)

let run_failures timeout_ms =
  let timeout = float_of_int timeout_ms *. 1000.0 in
  let sys = Kernel.create_system () in
  let ok = ref false in
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let mgr = Task.create sys.Kernel.kernel ~name:"silent-mgr" () in
      let srv = Memory_object_server.start mgr Memory_object_server.no_callbacks in
      let memory_object = Memory_object_server.create_memory_object srv () in
      let app = Task.create sys.Kernel.kernel ~name:"app" () in
      ignore
        (Thread.spawn app ~name:"app.main" (fun () ->
             let addr =
               Syscalls.vm_allocate_with_pager app ~size:(2 * page) ~anywhere:true ~memory_object
                 ~offset:0 ()
             in
             let t0 = Engine.now sys.Kernel.engine in
             (match Syscalls.read_bytes app ~addr ~len:8 ~policy:(Fault.Abort_after timeout) () with
             | Error e ->
               Printf.printf "abort policy: fault aborted after %.0f ms (%s)\n"
                 ((Engine.now sys.Kernel.engine -. t0) /. 1e3)
                 (Format.asprintf "%a" Access.pp_error e)
             | Ok _ -> Printf.printf "abort policy: UNEXPECTED success\n");
             let t1 = Engine.now sys.Kernel.engine in
             (match
                Syscalls.read_bytes app ~addr:(addr + page) ~len:8
                  ~policy:(Fault.Zero_fill_after timeout) ()
              with
             | Ok b ->
               Printf.printf "zero-fill policy: got %s after %.0f ms, thread continues\n"
                 (if Bytes.for_all (fun c -> c = '\000') b then "zeroes" else "garbage")
                 ((Engine.now sys.Kernel.engine -. t1) /. 1e3)
             | Error _ -> Printf.printf "zero-fill policy: UNEXPECTED failure\n");
             ok := true)));
  Engine.run sys.Kernel.engine;
  if !ok then 0 else 1

(* ---- stat / trace ------------------------------------------------------- *)

(* The canned workload behind `machsim stat` and `machsim trace`: a
   fault storm touching all the observability surfaces — anonymous
   zero-fill, soft refaults after pmap eviction, and external-pager
   faults that ride IPC to a user-level manager. Runs with tracing on
   and returns the kernel for reduction. *)
let run_storm ~rounds =
  let sys = Kernel.create_system () in
  let kernel = sys.Kernel.kernel in
  Trace.set_enabled (Kernel.trace kernel) true;
  Engine.spawn sys.Kernel.engine ~name:"setup" (fun () ->
      let task = Task.create kernel ~name:"storm" () in
      ignore
        (Thread.spawn task ~name:"storm.main" (fun () ->
             let addr = Syscalls.vm_allocate task ~size:(rounds * page) ~anywhere:true () in
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:true ())
             done;
             (match Vm_map.pmap (Task.map task) with
             | Some pm ->
               for i = 0 to rounds - 1 do
                 Mach_hw.Pmap.remove pm ~vpn:((addr + (i * page)) / page)
               done
             | None -> ());
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(addr + (i * page)) ~write:false ())
             done;
             let mgr = Task.create kernel ~name:"file-mgr" () in
             let policy =
               {
                 Pager_runtime.default_policy with
                 Pager_runtime.p_read =
                   (fun _ _ ~request:_ ~page:_ ~desired_access:_ ->
                     Pager_runtime.Data (Bytes.make page 'f'));
               }
             in
             let rt, srv = Pager_runtime.serve mgr policy in
             let memory_object = Memory_object_server.create_memory_object srv () in
             ignore (Pager_runtime.register rt ~memory_object ());
             let ext =
               Syscalls.vm_allocate_with_pager task ~size:(rounds * page) ~anywhere:true
                 ~memory_object ~offset:0 ()
             in
             for i = 0 to rounds - 1 do
               ignore (Syscalls.touch task ~addr:(ext + (i * page)) ~write:false ())
             done)));
  Engine.run sys.Kernel.engine;
  kernel

let run_stat rounds as_json =
  let kernel = run_storm ~rounds in
  if as_json then print_string (Metrics.to_json (Metrics.snapshot (Kernel.metrics kernel)))
  else begin
    let t =
      Table.create ~title:"host metrics registry (vm_statistics superset)"
        ~columns:[ "metric"; "value" ]
    in
    List.iter
      (fun (k, v) ->
        Table.row t
          [ k; (if Float.is_integer v then Printf.sprintf "%.0f" v else Printf.sprintf "%.3f" v) ])
      (Metrics.snapshot (Kernel.metrics kernel));
    Table.print t
  end;
  0

let run_trace rounds filter span limit =
  let kernel = run_storm ~rounds in
  let tr = Kernel.trace kernel in
  let events =
    List.filter
      (fun ev ->
        (match filter with Some sub -> ev.Trace.ev_sub = sub | None -> true)
        && match span with Some id -> ev.Trace.ev_span = id | None -> true)
      (Trace.events tr)
  in
  let total = List.length events in
  let shown = match limit with Some n -> n | None -> total in
  List.iteri
    (fun i ev ->
      if i < shown then
        Printf.printf "%10.1f  cpu%d  span%-4d  %-6s %-5s %s\n" ev.Trace.ev_time
          ev.Trace.ev_cpu ev.Trace.ev_span ev.Trace.ev_sub
          (Trace.kind_to_string ev.Trace.ev_kind)
          ev.Trace.ev_label)
    events;
  if shown < total then Printf.printf "... (%d more events; raise --limit)\n" (total - shown);
  let opens, closes = Trace.balance tr in
  Printf.printf "\n%d events buffered (%d dropped by ring), %d spans opened / %d closed\n"
    (List.length (Trace.events tr))
    (Trace.dropped tr) opens closes;
  (* Per-fault latency percentiles, reduced from the vm fault spans. *)
  let lat = Mach_util.Stats.create () in
  List.iter
    (fun sp ->
      if sp.Trace.sp_sub = "vm" && sp.Trace.sp_label = "fault" then
        Mach_util.Stats.add lat (Trace.span_duration sp))
    (Trace.spans tr);
  if Mach_util.Stats.count lat > 0 then
    Printf.printf "fault latency (us): n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f\n"
      (Mach_util.Stats.count lat) (Mach_util.Stats.mean lat)
      (Mach_util.Stats.percentile lat 50.0)
      (Mach_util.Stats.percentile lat 90.0)
      (Mach_util.Stats.percentile lat 99.0)
      (Mach_util.Stats.max lat);
  0

(* ---- machines ---------------------------------------------------------- *)

let run_machines () =
  let t =
    Table.create ~title:"machine models (Section 7)"
      ~columns:[ "class"; "model"; "cpus"; "local us"; "remote us"; "net latency us" ]
  in
  List.iter
    (fun p ->
      Table.row t
        [
          Machine.class_to_string p.Machine.mp_class;
          p.Machine.model;
          string_of_int p.Machine.cpus;
          Printf.sprintf "%.2f" p.Machine.local_access_us;
          (match p.Machine.remote_access_us with
          | Some r -> Printf.sprintf "%.2f" r
          | None -> "-");
          Printf.sprintf "%.0f" p.Machine.net_latency_us;
        ])
    [ Machine.uniprocessor; Machine.vax_8800; Machine.multimax; Machine.butterfly; Machine.hypercube ];
  Table.print t;
  0

(* ---- cmdliner ---------------------------------------------------------- *)

open Cmdliner

let compile_cmd =
  let sources = Arg.(value & opt int 48 & info [ "sources" ] ~doc:"Number of source files.") in
  let builds = Arg.(value & opt int 3 & info [ "builds" ] ~doc:"Consecutive builds to run.") in
  let frames = Arg.(value & opt int 1024 & info [ "frames" ] ~doc:"Physical memory, in pages.") in
  let cache = Arg.(value & opt int 10 & info [ "cache-pct" ] ~doc:"UNIX buffer cache, % of memory.") in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compilation workload: Mach mapped files vs UNIX buffer cache (E4)")
    Term.(const run_compile $ sources $ builds $ frames $ cache)

let netmem_cmd =
  let pages = Arg.(value & opt int 32 & info [ "pages" ] ~doc:"Shared region size in pages.") in
  let ops = Arg.(value & opt int 400 & info [ "ops" ] ~doc:"Accesses per client.") in
  let wr = Arg.(value & opt float 0.1 & info [ "write-ratio" ] ~doc:"Fraction of writes.") in
  let hosts = Arg.(value & opt int 2 & info [ "hosts" ] ~doc:"Number of hosts (>= 2).") in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Probability an inter-host message is lost.")
  in
  let dup =
    Arg.(
      value & opt float 0.0 & info [ "dup" ] ~doc:"Probability an inter-host message is duplicated.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Fault-plan RNG seed.") in
  Cmd.v
    (Cmd.info "netmem" ~doc:"Consistent network shared memory workload (E6)")
    Term.(const run_netmem $ pages $ ops $ wr $ hosts $ drop $ dup $ seed)

let migrate_cmd =
  let pages = Arg.(value & opt int 128 & info [ "pages" ] ~doc:"Task address-space size in pages.") in
  let strategy =
    Arg.(value & opt string "cor" & info [ "strategy" ] ~doc:"eager | cor | preN (e.g. pre4).")
  in
  let touched = Arg.(value & opt float 0.5 & info [ "touched" ] ~doc:"Fraction of pages referenced.") in
  Cmd.v
    (Cmd.info "migrate" ~doc:"Task migration strategies (E7)")
    Term.(const run_migrate $ pages $ strategy $ touched)

let machines_cmd =
  Cmd.v (Cmd.info "machines" ~doc:"Show the machine models") Term.(const run_machines $ const ())

let camelot_cmd =
  let txns = Arg.(value & opt int 50 & info [ "txns" ] ~doc:"Transactions to commit.") in
  let updates = Arg.(value & opt int 20 & info [ "updates" ] ~doc:"Updates per transaction.") in
  Cmd.v
    (Cmd.info "camelot" ~doc:"Recoverable-memory transaction workload (E8)")
    Term.(const run_camelot $ txns $ updates)

let failures_cmd =
  let timeout = Arg.(value & opt int 300 & info [ "timeout-ms" ] ~doc:"Fault timeout in ms.") in
  Cmd.v
    (Cmd.info "failures" ~doc:"Inject an unresponsive data manager and show the s6 policies")
    Term.(const run_failures $ timeout)

let stat_cmd =
  let rounds = Arg.(value & opt int 40 & info [ "rounds" ] ~doc:"Pages touched per fault phase.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry snapshot as JSON.") in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Run a canned fault storm and dump the host's unified metrics registry (every \
          subsystem.counter the vm, ipc and scheduler blocks export, plus each pager's stats)")
    Term.(const run_stat $ rounds $ json)

let trace_cmd =
  let rounds = Arg.(value & opt int 40 & info [ "rounds" ] ~doc:"Pages touched per fault phase.") in
  let filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~doc:"Only events of this subsystem (vm | ipc | sched | bench)."
          ~docv:"SUBSYSTEM")
  in
  let span =
    Arg.(value & opt (some int) None & info [ "span" ] ~doc:"Only events of this span id.")
  in
  let limit =
    Arg.(value & opt (some int) (Some 40) & info [ "limit" ] ~doc:"Max events to print.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a canned fault storm with the causal trace enabled, dump the event spine \
          (filterable by subsystem or span id) and reduce per-fault latency percentiles from \
          the fault spans")
    Term.(const run_trace $ rounds $ filter $ span $ limit)

let main =
  let doc = "scenario runner for the simulated Mach kernel" in
  Cmd.group (Cmd.info "machsim" ~doc)
    [
      compile_cmd; netmem_cmd; migrate_cmd; machines_cmd; camelot_cmd; failures_cmd; stat_cmd;
      trace_cmd;
    ]

let () = exit (Cmd.eval' main)
