module Engine = Mach_sim.Engine
module Transport = Mach_ipc.Transport
module Kctx = Mach_vm.Kctx

let start (kctx : Kctx.t) =
  Engine.spawn kctx.Kctx.engine ~name:"pager-service" (fun () ->
      let rec loop () =
        (match Transport.receive kctx.Kctx.node kctx.Kctx.kspace ~from:`Any () with
        | Ok msg ->
          (* Process the manager's reply under the fault's span so the
             resolution leg of the duality path stays causally linked. *)
          Mach_sim.Trace.adopt kctx.Kctx.trace msg.Mach_ipc.Message.header.Mach_ipc.Message.trace_span
            (fun () -> Mach_vm.Pager_client.handle_manager_message kctx msg)
        | Error _ -> ());
        loop ()
      in
      loop ())
