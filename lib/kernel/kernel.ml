open Ktypes
module Engine = Mach_sim.Engine
module Machine = Mach_hw.Machine
module Phys_mem = Mach_hw.Phys_mem
module Disk = Mach_hw.Disk
module Net = Mach_hw.Net
module Kctx = Mach_vm.Kctx

type config = {
  params : Machine.params;
  phys_frames : int;
  page_size : int;
  paging_blocks : int;
  reserved_frames : int option;
  pager_timeout_us : float;
}

let default_config =
  {
    params = Machine.uniprocessor;
    phys_frames = 1024;
    page_size = 4096;
    paging_blocks = 4096;
    reserved_frames = None;
    pager_timeout_us = 2_000_000.0;
  }

let boot engine ctx net ?trace ~host config =
  let mem = Phys_mem.create ~frames:config.phys_frames ~page_size:config.page_size in
  let kctx =
    Kctx.create engine ctx ~host ~params:config.params ~mem
      ?reserved_frames:config.reserved_frames ~pager_timeout_us:config.pager_timeout_us
      ?trace ()
  in
  Mach_vm.Pager_client.install kctx;
  let paging_disk =
    Disk.create engine
      ~name:(Printf.sprintf "paging%d" host)
      ~blocks:config.paging_blocks ~block_size:config.page_size ()
  in
  let k =
    {
      k_host = host;
      k_engine = engine;
      k_ctx = ctx;
      k_net = net;
      k_kctx = kctx;
      k_params = config.params;
      k_sched = kctx.Kctx.sched;
      k_paging_disk = paging_disk;
      k_tasks = [];
      k_next_task_id = 1;
      k_next_thread_id = 1;
      k_task_port_maker = None;
      k_thread_port_maker = None;
      k_default_pager = None;
    }
  in
  (* Fabric-wide stats (net, reliable channels, chaos) are shared by
     every host; register them once, on host 0, so merged cluster
     snapshots don't multiply them. *)
  if host = 0 then begin
    let metrics = kctx.Kctx.metrics in
    Mach_util.Metrics.register_source metrics ~subsystem:"net"
      ~reset:(fun () -> Net.reset_stats net)
      (fun () -> Net.stats_to_list net);
    Mach_util.Metrics.register_source metrics ~subsystem:"chan"
      ~reset:(fun () -> Mach_ipc.Context.reset_chan_stats ctx)
      (fun () -> Mach_ipc.Context.chan_stats_to_list ctx);
    Mach_util.Metrics.register_source metrics ~subsystem:"chaos"
      ~reset:(fun () ->
        match Net.chaos net with Some c -> Mach_sim.Chaos.reset_stats c | None -> ())
      (fun () ->
        match Net.chaos net with Some c -> Mach_sim.Chaos.stats_to_list c | None -> [])
  end;
  Pager_service.start kctx;
  Mach_vm.Pageout.start kctx;
  k.k_default_pager <- Some (Default_pager.start kctx ~disk:paging_disk);
  ignore (Task_server.start k);
  k

type system = {
  engine : Engine.t;
  ipc_ctx : Mach_ipc.Context.t;
  net : Net.t;
  kernel : kernel;
}

let create_system ?(config = default_config) () =
  let engine = Engine.create () in
  let net = Net.create engine () in
  let ipc_ctx = Mach_ipc.Context.create engine net in
  let kernel = boot engine ipc_ctx net ~host:0 config in
  { engine; ipc_ctx; net; kernel }

type cluster = {
  c_engine : Engine.t;
  c_ctx : Mach_ipc.Context.t;
  c_net : Net.t;
  c_kernels : kernel array;
  c_chaos : Mach_sim.Chaos.t option;
}

(* Attach a chaos oracle to a cluster's fabric: faulty wire, reliable
   channels on, fault events on the shared trace, and failure hooks
   wired so a crash kills the host's ports (proxy-port death at every
   remote holder) and a heal/restart resynchronizes the channels. *)
let attach_chaos ctx net trace chaos =
  Net.set_chaos net (Some chaos);
  Mach_ipc.Context.set_reliable ctx true;
  Mach_sim.Chaos.set_trace chaos (Some trace);
  Mach_sim.Chaos.on_crash chaos (fun host ->
      ignore (Mach_ipc.Context.crash_host ctx ~host));
  Mach_sim.Chaos.on_restart chaos (fun host -> Mach_ipc.Context.restart_host ctx ~host);
  Mach_sim.Chaos.on_heal chaos (fun a b -> Mach_ipc.Context.reset_link ctx a b)

let create_cluster ~hosts ?(config = default_config) ?net_latency_us ?net_us_per_byte
    ?chaos () =
  let engine = Engine.create () in
  let latency =
    match net_latency_us with Some l -> l | None -> config.params.Machine.net_latency_us
  in
  let per_byte =
    match net_us_per_byte with Some c -> c | None -> config.params.Machine.net_us_per_byte
  in
  let net = Net.create engine ~latency_us:latency ~us_per_byte:per_byte () in
  let ctx = Mach_ipc.Context.create engine net in
  (* One trace for the whole cluster: spans that cross hosts (NORMA
     faults served by a remote manager) land in one buffer in causal
     order. Each host keeps its own metrics registry. *)
  let trace = Mach_sim.Trace.create engine in
  (* MACH_CHAOS lets any existing cluster workload run under a fault
     plan without changing its code, e.g.
     MACH_CHAOS="seed=7,drop=0.1,dup=0.05,reorder=0.1,jitter=500". *)
  let chaos =
    match chaos with
    | Some _ -> chaos
    | None -> (
      match Sys.getenv_opt "MACH_CHAOS" with
      | Some spec when spec <> "" -> Some (Mach_sim.Chaos.of_spec spec)
      | Some _ | None -> None)
  in
  Option.iter (attach_chaos ctx net trace) chaos;
  let kernels = Array.init hosts (fun host -> boot engine ctx net ~trace ~host config) in
  { c_engine = engine; c_ctx = ctx; c_net = net; c_kernels = kernels; c_chaos = chaos }

let kctx k = k.k_kctx
let stats k = k.k_kctx.Kctx.stats
let engine k = k.k_engine
let free_frames k = Phys_mem.free_frames k.k_kctx.Kctx.mem
let metrics k = k.k_kctx.Kctx.metrics
let trace k = k.k_kctx.Kctx.trace
