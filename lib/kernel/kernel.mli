(** Kernel boot: assemble physical memory, the VM context, the pageout
    daemon, the pager service thread and the default pager into a
    running per-host kernel — and wire several such hosts into a
    NORMA cluster. *)

open Ktypes

type config = {
  params : Mach_hw.Machine.params;
  phys_frames : int;
  page_size : int;
  paging_blocks : int;  (** default pager backing store, in pages *)
  reserved_frames : int option;
  pager_timeout_us : float;
}

val default_config : config
(** VAX 11/780-class host: 1024 frames of 4 KB (4 MB), 4096-page paging
    area, 2 s manager timeout. *)

val boot :
  Mach_sim.Engine.t ->
  Mach_ipc.Context.t ->
  Mach_hw.Net.t ->
  ?trace:Mach_sim.Trace.t ->
  host:int ->
  config ->
  kernel
(** [trace] lets several hosts share one causal trace spine;
    {!create_cluster} passes the same trace to every boot. *)

(** A self-contained single-host system (most tests and examples). *)
type system = {
  engine : Mach_sim.Engine.t;
  ipc_ctx : Mach_ipc.Context.t;
  net : Mach_hw.Net.t;
  kernel : kernel;
}

val create_system : ?config:config -> unit -> system

(** A multi-host cluster sharing one network — the NORMA configuration
    of §7. *)
type cluster = {
  c_engine : Mach_sim.Engine.t;
  c_ctx : Mach_ipc.Context.t;
  c_net : Mach_hw.Net.t;
  c_kernels : kernel array;
  c_chaos : Mach_sim.Chaos.t option;
}

val create_cluster :
  hosts:int ->
  ?config:config ->
  ?net_latency_us:float ->
  ?net_us_per_byte:float ->
  ?chaos:Mach_sim.Chaos.t ->
  unit ->
  cluster
(** [chaos] attaches a fault oracle to the cluster fabric: the wire
    drops/duplicates/reorders per the plan, remote delivery switches to
    the reliable channel layer, fault events land on the shared trace,
    and crash/heal hooks are wired into the IPC context. When [chaos]
    is absent the [MACH_CHAOS] environment variable (a
    {!Mach_sim.Chaos.of_spec} string) is consulted, so any cluster
    workload can run under a fault plan unmodified. *)

val kctx : kernel -> Mach_vm.Kctx.t
val stats : kernel -> Mach_vm.Vm_types.stats
val engine : kernel -> Mach_sim.Engine.t
val free_frames : kernel -> int

val metrics : kernel -> Mach_util.Metrics.registry
(** The host's unified metrics registry (vm/ipc/sched sources plus any
    pagers started on this host). *)

val trace : kernel -> Mach_sim.Trace.t
(** The causal trace spine (shared across a cluster's kernels). *)
