(** The Mach system call interface: every operation of Tables 3-1
    (messages), 3-2 (ports), 3-3 (virtual memory) and 3-4
    ([vm_allocate_with_pager]). All calls act on behalf of a [task] and
    charge kernel-entry time. *)

open Ktypes

module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Prot = Mach_hw.Prot

(** {2 Table 3-1: primitive message operations} *)

val msg_send : task -> ?timeout:float -> Message.t -> (unit, Transport.send_error) result
(** [Ool_region] items naming the caller's address space are resolved
    into kernel copy objects before the send ([vm_map_copyin]): the
    sender's pages are COW-protected at O(pages) map cost and the
    message carries only a handle. Remote destinations get a
    netmem-style memory-object export instead, paged over the wire on
    demand. *)

val msg_receive :
  task ->
  ?from:[ `Port of Port_space.name | `Any ] ->
  ?timeout:float ->
  unit ->
  (Message.t, Transport.recv_error) result

val msg_rpc :
  task ->
  Message.t ->
  ?send_timeout:float ->
  ?recv_timeout:float ->
  unit ->
  (Message.t, [ `Send of Transport.send_error | `Recv of Transport.recv_error ]) result

(** {2 Table 3-2: port operations} *)

val port_allocate : task -> ?backlog:int -> unit -> Port_space.name
val port_deallocate : task -> Port_space.name -> unit
val port_enable : task -> Port_space.name -> unit
val port_disable : task -> Port_space.name -> unit
val port_messages : task -> Port_space.name list
val port_status : task -> Port_space.name -> Port_space.status option
val port_set_backlog : task -> Port_space.name -> int -> unit
val port_lookup : task -> Port_space.name -> Message.port option
val port_insert : task -> Message.port -> Message.right -> Port_space.name

(** {2 Table 3-3: virtual memory operations} *)

val vm_allocate : task -> ?addr:int -> size:int -> anywhere:bool -> unit -> int
val vm_deallocate : task -> addr:int -> size:int -> unit
val vm_inherit : task -> addr:int -> size:int -> Mach_vm.Vm_types.inheritance -> unit
val vm_protect : task -> addr:int -> size:int -> set_max:bool -> Prot.t -> unit

val vm_read :
  task -> ?target:task -> addr:int -> size:int -> unit -> (bytes, Mach_vm.Access.error) result

val vm_write :
  task -> ?target:task -> addr:int -> bytes -> unit -> (unit, Mach_vm.Access.error) result

val vm_copy :
  task -> src_addr:int -> size:int -> dst_addr:int -> (unit, Mach_vm.Access.error) result

val vm_regions : task -> Mach_vm.Vm_map.region_info list

val vm_wire : task -> addr:int -> size:int -> (unit, Mach_vm.Access.error) result
(** Fault in and wire the pages of a range: wired pages are never
    chosen by the pageout daemon (servers pin hot structures with
    this). *)

val vm_unwire : task -> addr:int -> size:int -> unit

type vm_statistics = {
  vs_page_size : int;
  vs_free_count : int;
  vs_active_count : int;
  vs_inactive_count : int;
  vs_stats : Mach_vm.Vm_types.stats;
}

val vm_statistics : task -> vm_statistics

val host_statistics : task -> Mach_util.Metrics.snapshot
(** The unified observability syscall: a flat snapshot of the host's
    whole metrics registry — every "subsystem.counter" the vm, ipc and
    scheduler blocks export, plus each running pager's stats block. *)

(** {2 Table 3-4: external memory management} *)

val vm_allocate_with_pager :
  task ->
  ?addr:int ->
  size:int ->
  anywhere:bool ->
  memory_object:Message.port ->
  offset:int ->
  unit ->
  int
(** Map a manager-provided memory object. The kernel performs the
    [pager_init] call before this returns (§3.4.1), but does not wait
    for the manager. Mapping this way gives direct read/write access to
    the object, not a copy (footnote 7). *)

(** {2 Kernel-mediated region transfer}

    The mechanism behind out-of-line data in messages: a virtual
    (copy-on-write) transfer of whole pages between two tasks on the
    same host, costing one map operation per page instead of a copy.
    Senders put the returned address in their reply message
    (exactly how [fs_read_file] returns file contents, §4.1). *)

val transfer_region : from_task:task -> to_task:task -> addr:int -> size:int -> int

val ool_region : task -> addr:int -> size:int -> Message.item
(** Build a message item that transfers [addr, addr+size) of the
    sender's address space by mapping. *)

val map_ool : task -> Message.t -> (int * int) list
(** Map every out-of-line region of a received message into the calling
    task's address space; returns (address, size) pairs in body order.
    [Ool_copy] handles go through lazy [vm_map_copyout] (local) or a
    demand-paged mapping of the sender's export (remote [Net_copy]);
    legacy unresolved [Ool_region] items are transferred eagerly and
    require sender and receiver to share a host kernel. *)

(** {2 Memory access (simulated loads/stores by task code)} *)

val touch :
  task ->
  addr:int ->
  write:bool ->
  ?policy:Mach_vm.Fault.policy ->
  unit ->
  (unit, Mach_vm.Access.error) result

val read_bytes :
  task ->
  addr:int ->
  len:int ->
  ?policy:Mach_vm.Fault.policy ->
  unit ->
  (bytes, Mach_vm.Access.error) result

val write_bytes :
  task ->
  addr:int ->
  bytes ->
  ?policy:Mach_vm.Fault.policy ->
  unit ->
  (unit, Mach_vm.Access.error) result
