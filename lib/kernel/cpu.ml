open Ktypes
module Sched = Mach_sim.Sched
module Machine = Mach_hw.Machine

let syscall_overhead_us = 10.0

let compute k us = if us > 0.0 then Sched.compute k.k_sched us

let compute_words k ~words ~remote = compute k (Machine.access_us k.k_params ~remote ~words)
