(** The default pager (§6.2.2): a trusted data manager for kernel-created
    memory objects — zero-filled [vm_allocate] memory, shadow objects and
    temporary pageout objects.

    It is deliberately implemented against the same external interface as
    any user data manager ("there are no fundamental assumptions made
    about the nature of secondary storage"): it receives [pager_create]
    on its public port, then serves [pager_data_request] /
    [pager_data_write] on the memory-object ports it is handed, backing
    them with blocks of a paging disk. Pages never written out are
    answered with [pager_data_unavailable] so the kernel zero-fills. *)

type t

val start : Mach_vm.Kctx.t -> disk:Mach_hw.Disk.t -> t
(** Spawn the default pager task, register its public port in
    [kctx.default_pager_port], and install the §6.2.2 rescue writer. *)

val objects_managed : t -> int
val pages_stored : t -> int
val blocks_free : t -> int

val runtime_stats : t -> Mach_vm.Pager_runtime.Stats.t
(** The shared per-pager counters (requests, pages served, …). *)
