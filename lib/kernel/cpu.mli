(** Processor accounting: compute bursts run on the host's scheduler
    ({!Mach_sim.Sched}) — a 16-CPU MultiMax runs 16 bursts in parallel;
    a VAX 11/780 runs one at a time, with run-queue waits, quantum
    preemption and context-switch charges in between. *)

val syscall_overhead_us : float
(** Flat kernel-entry cost charged by every Table 3-2/3-3 operation. *)

val compute : Ktypes.kernel -> float -> unit
(** Occupy one CPU for the given number of simulated microseconds. *)

val compute_words : Ktypes.kernel -> words:int -> remote:bool -> unit
(** Occupy one CPU for the time to touch [words] memory words at
    local/remote latency (the §7 access model). *)
