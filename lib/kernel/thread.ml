open Ktypes
module Engine = Mach_sim.Engine
module Waitq = Mach_sim.Waitq

let spawn task ?name body =
  let k = task.t_kernel in
  let id = k.k_next_thread_id in
  k.k_next_thread_id <- id + 1;
  let th_name =
    match name with Some n -> n | None -> Printf.sprintf "%s.thread-%d" task.t_name id
  in
  let th =
    { th_id = id; th_name; th_task = task; th_suspend_count = 0; th_resume = Waitq.create ();
      th_done = false; th_port = None }
  in
  (match k.k_thread_port_maker with
  | Some make -> th.th_port <- Some (make th)
  | None -> ());
  task.t_threads <- th :: task.t_threads;
  Hashtbl.replace task.t_threads_by_name th_name th;
  Engine.spawn k.k_engine ~name:th_name (fun () ->
      body ();
      th.th_done <- true);
  th

let suspend th = th.th_suspend_count <- th.th_suspend_count + 1

let resume th =
  if th.th_suspend_count > 0 then begin
    th.th_suspend_count <- th.th_suspend_count - 1;
    if th.th_suspend_count = 0 then Waitq.broadcast th.th_resume
  end

let checkpoint th =
  while th.th_suspend_count > 0 do
    Waitq.wait th.th_resume
  done

let self_checkpoint task =
  match Hashtbl.find_opt task.t_threads_by_name (Engine.self_name ()) with
  | Some th -> checkpoint th
  | None -> ()

let is_done th = th.th_done
let thread_name th = th.th_name
