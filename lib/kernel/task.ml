open Ktypes
module Pmap = Mach_hw.Pmap
module Port_space = Mach_ipc.Port_space
module Vm_map = Mach_vm.Vm_map

let create k ?parent ~name () =
  let id = k.k_next_task_id in
  k.k_next_task_id <- id + 1;
  let pmap = Pmap.create k.k_kctx.Mach_vm.Kctx.mem in
  let map =
    match parent with
    | Some p -> Vm_map.fork p.t_map ~child_pmap:(Some pmap)
    | None -> Vm_map.create k.k_kctx ~pmap:(Some pmap) ()
  in
  let task =
    {
      t_id = id;
      t_name = name;
      t_kernel = k;
      t_map = map;
      t_space = Port_space.create k.k_ctx ~home:k.k_host;
      (* Share the kernel's node: per-host IPC counters aggregate in one
         place instead of scattering across per-task records. *)
      t_node = k.k_kctx.Mach_vm.Kctx.node;
      t_threads = [];
      t_threads_by_name = Hashtbl.create 8;
      t_alive = true;
      t_port = None;
    }
  in
  (* Creating a task returns send rights to the port representing it
     (§3.2); the kernel's task server owns the receive right. *)
  (match k.k_task_port_maker with
  | Some make -> task.t_port <- Some (make task)
  | None -> ());
  k.k_tasks <- task :: k.k_tasks;
  task

let terminate t =
  if t.t_alive then begin
    t.t_alive <- false;
    Vm_map.destroy t.t_map;
    Port_space.destroy t.t_space;
    (match t.t_port with Some p -> Mach_ipc.Port.destroy p | None -> ());
    t.t_kernel.k_tasks <- List.filter (fun x -> x != t) t.t_kernel.k_tasks
  end

let kernel t = t.t_kernel
let map t = t.t_map
let space t = t.t_space
let node t = t.t_node
let name t = t.t_name
let alive t = t.t_alive
let self_port_pattern t = t.t_id
