(** Kernel-level records: one [kernel] per host, tasks and threads
    within it. Tasks and the kernel reference each other, so the records
    share this module; operations live in {!Kernel}, {!Task},
    {!Thread} and {!Syscalls}. *)

module Engine = Mach_sim.Engine
module Sched = Mach_sim.Sched
module Waitq = Mach_sim.Waitq

type kernel = {
  k_host : int;
  k_engine : Engine.t;
  k_ctx : Mach_ipc.Context.t;
  k_net : Mach_hw.Net.t;
  k_kctx : Mach_vm.Kctx.t;
  k_params : Mach_hw.Machine.params;
  k_sched : Sched.t;
      (** the host's processors (shared with [k_kctx.sched]): per-CPU
          run queues, soft affinity, work stealing, handoff *)
  k_paging_disk : Mach_hw.Disk.t;
  mutable k_tasks : task list;
  mutable k_next_task_id : int;
  mutable k_next_thread_id : int;
  mutable k_task_port_maker : (task -> Mach_ipc.Message.port) option;
      (** installed by the task-port server at boot; gives every new
          task the kernel port that represents it (§3.2) *)
  mutable k_thread_port_maker : (thread -> Mach_ipc.Message.port) option;
  mutable k_default_pager : Default_pager.t option;
}

and task = {
  t_id : int;
  t_name : string;
  t_kernel : kernel;
  t_map : Mach_vm.Vm_map.t;
  t_space : Mach_ipc.Port_space.t;
  t_node : Mach_ipc.Transport.node;
  mutable t_threads : thread list;
  t_threads_by_name : (string, thread) Hashtbl.t;
      (** by-name index over [t_threads]; keeps the per-checkpoint
          self-lookup O(1) once preemption makes checkpoints hot *)
  mutable t_alive : bool;
  mutable t_port : Mach_ipc.Message.port option;
      (** the kernel port representing this task; messages to it invoke
          operations on the task *)
}

and thread = {
  th_id : int;
  th_name : string;
  th_task : task;
  mutable th_suspend_count : int;
  th_resume : Waitq.t;
  mutable th_done : bool;
  mutable th_port : Mach_ipc.Message.port option;
      (** the kernel port representing this thread (§3.2) *)
}
