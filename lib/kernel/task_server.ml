open Ktypes
module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Codec = Mach_util.Codec
module Engine = Mach_sim.Engine

let id_suspend = 3401
let id_resume = 3402
let id_terminate = 3403
let id_info = 3404
let id_vm_allocate = 3405
let id_reply = 3490

type target = Task_target of task | Thread_target of thread

type t = {
  kernel : kernel;
  space : Port_space.t;  (** holds receive rights on every task/thread port *)
  node : Transport.node;
  by_port : (int, target) Hashtbl.t;
}

let task_port task =
  match task.t_port with
  | Some p -> p
  | None -> invalid_arg "Task_server.task_port: task has no port (created before boot?)"

let thread_port th =
  match th.th_port with
  | Some p -> p
  | None -> invalid_arg "Task_server.thread_port: thread has no port"

let reply t (msg : Message.t) items =
  match msg.Message.header.reply with
  | None -> ()
  | Some r -> (
    match Transport.send t.node ~timeout:0.0 (Message.make ~msg_id:id_reply ~dest:r items) with
    | Ok () -> ()
    | Error _ ->
      (* Full queue: retry from a detached thread so the kernel's
         dispatcher never blocks. *)
      Engine.spawn t.kernel.k_engine ~name:"task-server-reply" (fun () ->
          match Transport.send t.node (Message.make ~msg_id:id_reply ~dest:r items) with
          | Ok () | Error _ -> ()))

let status ok =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Message.Data (Codec.Enc.to_bytes e)

let all_suspended task =
  task.t_threads <> [] && List.for_all (fun th -> th.th_suspend_count > 0) task.t_threads

let handle_thread t (msg : Message.t) th =
  let id = msg.Message.header.msg_id in
  if th.th_done then reply t msg [ status false ]
  else if id = id_suspend then begin
    Thread.suspend th;
    reply t msg [ status true ]
  end
  else if id = id_resume then begin
    Thread.resume th;
    reply t msg [ status true ]
  end
  else if id = id_info then begin
    let e = Codec.Enc.create () in
    Codec.Enc.string e th.th_name;
    Codec.Enc.int e 1;
    Codec.Enc.int e 0;
    Codec.Enc.bool e (th.th_suspend_count > 0);
    reply t msg [ status true; Message.Data (Codec.Enc.to_bytes e) ]
  end
  else reply t msg [ status false ]

let handle t (msg : Message.t) =
  match Hashtbl.find_opt t.by_port (Port.id msg.Message.header.dest) with
  | None -> reply t msg [ status false ]
  | Some (Thread_target th) -> handle_thread t msg th
  | Some (Task_target task) ->
    let id = msg.Message.header.msg_id in
    if not task.t_alive then reply t msg [ status false ]
    else if id = id_suspend then begin
      List.iter Thread.suspend task.t_threads;
      reply t msg [ status true ]
    end
    else if id = id_resume then begin
      List.iter Thread.resume task.t_threads;
      reply t msg [ status true ]
    end
    else if id = id_terminate then begin
      Task.terminate task;
      reply t msg [ status true ]
    end
    else if id = id_info then begin
      let e = Codec.Enc.create () in
      Codec.Enc.string e task.t_name;
      Codec.Enc.int e (List.length task.t_threads);
      Codec.Enc.int e (Mach_vm.Vm_map.size task.t_map);
      Codec.Enc.bool e (all_suspended task);
      reply t msg [ status true; Message.Data (Codec.Enc.to_bytes e) ]
    end
    else if id = id_vm_allocate then begin
      match Message.data_exn msg with
      | exception Not_found -> reply t msg [ status false ]
      | payload -> (
        match Codec.Dec.int (Codec.Dec.of_bytes payload) with
        | exception Codec.Dec.Truncated -> reply t msg [ status false ]
        | size ->
          let addr = Mach_vm.Vm_map.allocate task.t_map ~size ~anywhere:true () in
          let e = Codec.Enc.create () in
          Codec.Enc.int e addr;
          reply t msg [ status true; Message.Data (Codec.Enc.to_bytes e) ])
    end
    else reply t msg [ status false ]

let start kernel =
  let space = Port_space.create kernel.k_ctx ~home:kernel.k_host in
  let t =
    {
      kernel;
      space;
      node = kernel.k_kctx.Mach_vm.Kctx.node;
      by_port = Hashtbl.create 32;
    }
  in
  let make_port target =
    let name = Port_space.allocate space ~backlog:64 () in
    Port_space.enable space name;
    let port = Port_space.lookup_exn space name in
    Hashtbl.replace t.by_port (Port.id port) target;
    port
  in
  kernel.k_task_port_maker <- Some (fun task -> make_port (Task_target task));
  kernel.k_thread_port_maker <- Some (fun th -> make_port (Thread_target th));
  Engine.spawn kernel.k_engine ~name:"task-server" (fun () ->
      let rec loop () =
        (match Transport.receive t.node t.space ~from:`Any () with
        | Ok msg -> handle t msg
        | Error _ -> ());
        loop ()
      in
      loop ());
  t

module Client = struct
  type error = [ `Dead_task | `Ipc_failure | `Malformed ]

  let pp_error fmt = function
    | `Dead_task -> Format.fprintf fmt "task is dead"
    | `Ipc_failure -> Format.fprintf fmt "ipc failure"
    | `Malformed -> Format.fprintf fmt "malformed reply"

  type info = { ti_name : string; ti_threads : int; ti_mapped_bytes : int; ti_suspended : bool }

  let rpc caller ~target ~msg_id items =
    let reply_name = Syscalls.port_allocate caller () in
    let reply_port = Port_space.lookup_exn caller.t_space reply_name in
    let msg = Message.make ~reply:reply_port ~msg_id ~dest:target items in
    let r = Syscalls.msg_rpc caller msg () in
    Syscalls.port_deallocate caller reply_name;
    match r with Ok reply -> Ok reply | Error _ -> Error `Ipc_failure

  let parse_ok (reply : Message.t) =
    match reply.Message.body with
    | Message.Data st :: rest -> (
      match Codec.Dec.bool (Codec.Dec.of_bytes st) with
      | true -> Ok rest
      | false -> Error `Dead_task
      | exception Codec.Dec.Truncated -> Error `Malformed)
    | _ -> Error `Malformed

  let unit_op msg_id caller ~target =
    match rpc caller ~target ~msg_id [] with
    | Error _ as e -> e
    | Ok reply -> ( match parse_ok reply with Ok _ -> Ok () | Error _ as e -> e)

  let suspend caller ~target = unit_op id_suspend caller ~target
  let resume caller ~target = unit_op id_resume caller ~target
  let terminate caller ~target = unit_op id_terminate caller ~target

  let info caller ~target =
    match rpc caller ~target ~msg_id:id_info [] with
    | Error _ as e -> e
    | Ok reply -> (
      match parse_ok reply with
      | Error _ as e -> e
      | Ok (Message.Data payload :: _) -> (
        let d = Codec.Dec.of_bytes payload in
        try
          let ti_name = Codec.Dec.string d in
          let ti_threads = Codec.Dec.int d in
          let ti_mapped_bytes = Codec.Dec.int d in
          let ti_suspended = Codec.Dec.bool d in
          Ok { ti_name; ti_threads; ti_mapped_bytes; ti_suspended }
        with Codec.Dec.Truncated -> Error `Malformed)
      | Ok _ -> Error `Malformed)

  let vm_allocate caller ~target ~size =
    let e = Codec.Enc.create () in
    Codec.Enc.int e size;
    match rpc caller ~target ~msg_id:id_vm_allocate [ Message.Data (Codec.Enc.to_bytes e) ] with
    | Error _ as e -> e
    | Ok reply -> (
      match parse_ok reply with
      | Error _ as e -> e
      | Ok (Message.Data payload :: _) -> (
        match Codec.Dec.int (Codec.Dec.of_bytes payload) with
        | addr -> Ok addr
        | exception Codec.Dec.Truncated -> Error `Malformed)
      | Ok _ -> Error `Malformed)
end
