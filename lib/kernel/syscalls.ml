open Ktypes
module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Prot = Mach_hw.Prot
module Phys_mem = Mach_hw.Phys_mem
module Kctx = Mach_vm.Kctx
module Vm_map = Mach_vm.Vm_map
module Access = Mach_vm.Access
module Page_queues = Mach_vm.Page_queues

let enter t =
  Thread.self_checkpoint t;
  Cpu.compute t.t_kernel Cpu.syscall_overhead_us

(* --- Table 3-1 ---------------------------------------------------------- *)

(* Resolve out-of-line regions named by the sending task into kernel
   copy objects (vm_map_copyin) at send time: the message leaves with a
   handle, never the bytes. Local destinations carry the vm_copy
   directly; remote ones carry a netmem-style memory-object export that
   the receiving kernel pages on demand. *)
let resolve_ool t msg =
  let is_mine = function
    | Message.Ool_region r -> r.Message.src_task = t.t_id
    | Message.Data _ | Message.Caps _ | Message.Ool _ | Message.Ool_copy _ -> false
  in
  if not (List.exists is_mine msg.Message.body) then msg
  else begin
    let kctx = t.t_kernel.k_kctx in
    let dest = msg.Message.header.dest in
    let local = Mach_ipc.Port.home dest = t.t_node.Transport.node_host in
    let resolve item =
      if not (is_mine item) then item
      else
        match item with
        | Message.Ool_region { Message.src_addr; region_size; _ } ->
          let copy = Vm_map.copyin t.t_map ~addr:src_addr ~size:region_size in
          let size = Vm_map.copy_size copy in
          let payload =
            if local then Vm_map.Vm_copy_handle copy
            else Message.Net_copy { nc_object = Mach_vm.Copy_server.export kctx copy }
          in
          Message.Ool_copy { Message.cp_size = size; cp_payload = payload }
        | item -> item
    in
    { msg with Message.body = List.map resolve msg.Message.body }
  end

let msg_send t ?timeout msg =
  enter t;
  Transport.send t.t_node ?timeout (resolve_ool t msg)

let msg_receive t ?(from = `Any) ?timeout () =
  enter t;
  Transport.receive t.t_node t.t_space ~from ?timeout ()

let msg_rpc t msg ?send_timeout ?recv_timeout () =
  enter t;
  Transport.rpc t.t_node t.t_space msg ?send_timeout ?recv_timeout ()

(* --- Table 3-2 ---------------------------------------------------------- *)

let port_allocate t ?backlog () =
  enter t;
  Port_space.allocate t.t_space ?backlog ()

let port_deallocate t name =
  enter t;
  Port_space.deallocate t.t_space name

let port_enable t name =
  enter t;
  Port_space.enable t.t_space name

let port_disable t name =
  enter t;
  Port_space.disable t.t_space name

let port_messages t =
  enter t;
  Port_space.messages_waiting t.t_space

let port_status t name =
  enter t;
  Port_space.status t.t_space name

let port_set_backlog t name backlog =
  enter t;
  Port_space.set_backlog t.t_space name backlog

let port_lookup t name = Port_space.lookup t.t_space name
let port_insert t port right = Port_space.insert t.t_space port right

(* --- Table 3-3 ---------------------------------------------------------- *)

let vm_allocate t ?addr ~size ~anywhere () =
  enter t;
  Vm_map.allocate t.t_map ?addr ~size ~anywhere ()

let vm_deallocate t ~addr ~size =
  enter t;
  Vm_map.deallocate t.t_map ~addr ~size

let vm_inherit t ~addr ~size inh =
  enter t;
  Vm_map.set_inheritance t.t_map ~addr ~size inh

let vm_protect t ~addr ~size ~set_max prot =
  enter t;
  Vm_map.protect t.t_map ~addr ~size ~set_max prot

let vm_read t ?target ~addr ~size () =
  enter t;
  let target = match target with Some x -> x | None -> t in
  Access.read_bytes t.t_kernel.k_kctx target.t_map ~addr ~len:size ()

let vm_write t ?target ~addr data () =
  enter t;
  let target = match target with Some x -> x | None -> t in
  Access.write_bytes t.t_kernel.k_kctx target.t_map ~addr data ()

let vm_copy t ~src_addr ~size ~dst_addr =
  enter t;
  let kctx = t.t_kernel.k_kctx in
  match Access.read_bytes kctx t.t_map ~addr:src_addr ~len:size () with
  | Error e -> Error e
  | Ok data -> Access.write_bytes kctx t.t_map ~addr:dst_addr data ()

let vm_regions t =
  enter t;
  Vm_map.regions t.t_map

(* Walk the range page by page: fault each page in, then adjust its
   wire count through the map lookup (the resident page is reachable by
   the same path the fault handler used). *)
let adjust_wiring t ~addr ~size delta =
  let kctx = t.t_kernel.k_kctx in
  let ps = kctx.Kctx.page_size in
  let lo = addr land lnot (ps - 1) in
  let hi = addr + size in
  let rec go va =
    if va >= hi then Ok ()
    else
      match Access.touch kctx t.t_map ~addr:va ~write:false () with
      | Error e -> Error e
      | Ok _ -> (
        match Vm_map.lookup t.t_map ~addr:va ~write:false with
        | Error `Invalid_address -> Error (Access.Bad_address va)
        | Error `Protection -> Error (Access.Access_denied va)
        | Ok lk -> (
          match
            Mach_vm.Vm_object.lookup_chain lk.Vm_map.lk_obj ~offset:lk.Vm_map.lk_offset
          with
          | Some (page, _, _) ->
            page.Mach_vm.Vm_types.wire_count <-
              max 0 (page.Mach_vm.Vm_types.wire_count + delta);
            (* Wired pages leave the replacement queues; unwired ones
               return to the active queue. *)
            if page.Mach_vm.Vm_types.wire_count > 0 then
              Page_queues.remove kctx.Kctx.queues page
            else Page_queues.activate kctx.Kctx.queues page;
            go (va + ps)
          | None -> go (va + ps)))
  in
  go lo

let vm_wire t ~addr ~size =
  enter t;
  adjust_wiring t ~addr ~size 1

let vm_unwire t ~addr ~size =
  enter t;
  match adjust_wiring t ~addr ~size (-1) with Ok () | Error _ -> ()

type vm_statistics = {
  vs_page_size : int;
  vs_free_count : int;
  vs_active_count : int;
  vs_inactive_count : int;
  vs_stats : Mach_vm.Vm_types.stats;
}

let vm_statistics t =
  enter t;
  let kctx = t.t_kernel.k_kctx in
  {
    vs_page_size = kctx.Kctx.page_size;
    vs_free_count = Phys_mem.free_frames kctx.Kctx.mem;
    vs_active_count = Page_queues.active_count kctx.Kctx.queues;
    vs_inactive_count = Page_queues.inactive_count kctx.Kctx.queues;
    vs_stats = kctx.Kctx.stats;
  }

(* The registry-backed superset of [vm_statistics]: one flat snapshot
   covering every subsystem the host registers (vm, ipc, sched, each
   pager). Charged like any other syscall. *)
let host_statistics t =
  enter t;
  Mach_util.Metrics.snapshot t.t_kernel.k_kctx.Kctx.metrics

(* --- Table 3-4 ---------------------------------------------------------- *)

let vm_allocate_with_pager t ?addr ~size ~anywhere ~memory_object ~offset () =
  enter t;
  let kctx = t.t_kernel.k_kctx in
  let obj = Mach_vm.Vm_object.create_external kctx ~memory_object ~size:(offset + size) in
  Mach_vm.Pager_client.ensure_initialized kctx obj;
  Vm_map.allocate_with_object t.t_map ?addr ~size ~anywhere ~obj ~offset ()

(* --- region transfer ---------------------------------------------------- *)

let transfer_region ~from_task ~to_task ~addr ~size =
  enter from_task;
  if from_task.t_kernel != to_task.t_kernel then
    invalid_arg "Syscalls.transfer_region: tasks on different hosts";
  let kctx = from_task.t_kernel.k_kctx in
  let pages = Kctx.pages_of_bytes kctx size in
  Cpu.compute from_task.t_kernel
    (float_of_int pages *. from_task.t_kernel.k_params.Mach_hw.Machine.map_op_us);
  Vm_map.copy_region ~src:from_task.t_map ~src_addr:addr ~size ~dst:to_task.t_map ()

let ool_region t ~addr ~size =
  Message.Ool_region { Message.src_task = t.t_id; src_addr = addr; region_size = size }

let map_ool t msg =
  let kctx = t.t_kernel.k_kctx in
  List.filter_map
    (fun item ->
      match item with
      | Message.Ool_copy { Message.cp_size; cp_payload = Vm_map.Vm_copy_handle copy } ->
        if copy.Vm_map.vc_kctx != kctx then
          invalid_arg "Syscalls.map_ool: local copy handle from another host";
        (* Lazy copy-out: O(pieces) map manipulation now, pages
           materialize through the fault path on first touch. *)
        let addr = Vm_map.copyout t.t_map copy () in
        Some (addr, cp_size)
      | Message.Ool_copy { Message.cp_size; cp_payload = Message.Net_copy { nc_object } } ->
        (* Remote copy object: map the sender's export like any
           manager-backed region; pages cross the wire on demand.
           needs_copy keeps local writes in a shadow so they can never
           leak back to the exporter. *)
        let obj = Mach_vm.Vm_object.create_external kctx ~memory_object:nc_object ~size:cp_size in
        Mach_vm.Pager_client.ensure_initialized kctx obj;
        let addr =
          Vm_map.allocate_with_object t.t_map ~size:cp_size ~anywhere:true ~obj ~offset:0
            ~needs_copy:true ~from_copy:true ()
        in
        Some (addr, cp_size)
      | Message.Ool_copy _ -> invalid_arg "Syscalls.map_ool: unknown copy payload"
      | Message.Ool_region { Message.src_task; src_addr; region_size } -> (
        (* Legacy eager path: the region was never resolved at send
           time; both tasks must share this kernel. *)
        match List.find_opt (fun x -> x.t_id = src_task) t.t_kernel.k_tasks with
        | None -> invalid_arg "Syscalls.map_ool: source task not on this host (or dead)"
        | Some src ->
          let addr = transfer_region ~from_task:src ~to_task:t ~addr:src_addr ~size:region_size in
          Some (addr, region_size))
      | Message.Data _ | Message.Caps _ | Message.Ool _ -> None)
    msg.Message.body

(* --- memory access ------------------------------------------------------ *)

let touch t ~addr ~write ?policy () =
  Thread.self_checkpoint t;
  match Access.touch t.t_kernel.k_kctx t.t_map ~addr ~write ?policy () with
  | Ok _ -> Ok ()
  | Error e -> Error e

let read_bytes t ~addr ~len ?policy () =
  Thread.self_checkpoint t;
  Access.read_bytes t.t_kernel.k_kctx t.t_map ~addr ~len ?policy ()

let write_bytes t ~addr data ?policy () =
  Thread.self_checkpoint t;
  Access.write_bytes t.t_kernel.k_kctx t.t_map ~addr data ?policy ()
