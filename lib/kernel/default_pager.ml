module Engine = Mach_sim.Engine
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Message = Mach_ipc.Message
module Transport = Mach_ipc.Transport
module Disk = Mach_hw.Disk
module Kctx = Mach_vm.Kctx
module Pager_iface = Mach_vm.Pager_iface
module Rt = Mach_vm.Pager_runtime

(* The default pager is a policy module over the shared pager runtime,
   like every other manager — the runtime owns the object registry and
   the request/write splitting; this file only maps pages to paging-disk
   blocks. It differs from the user-level managers in transport alone:
   being part of the kernel image it pumps its own receive loop instead
   of going through [Memory_object_server]. *)

type managed = { blocks : (int, int) Hashtbl.t  (** object offset → disk block *) }

type t = {
  kctx : Kctx.t;
  disk : Disk.t;
  space : Port_space.t;
  node : Transport.node;
  rt : managed Rt.t;
  free_blocks : int Queue.t;
  mutable stored : int;
}

let alloc_block t =
  match Queue.take_opt t.free_blocks with
  | Some b -> b
  | None -> failwith "default pager: paging disk full"

(* Paging blocks of a dead object go back to the free pool. *)
let release_blocks t (o : managed Rt.obj) =
  Hashtbl.iter
    (fun _ block ->
      t.stored <- t.stored - 1;
      Queue.add block t.free_blocks)
    o.Rt.o_data.blocks;
  Hashtbl.reset o.Rt.o_data.blocks;
  Rt.unregister t.rt o

let policy get =
  {
    Rt.default_policy with
    Rt.p_read =
      (fun rt o ~request:_ ~page ~desired_access:_ ->
        let t = get () in
        let ps = Rt.page_size rt in
        match Hashtbl.find_opt o.Rt.o_data.blocks (page * ps) with
        | Some block ->
          let data = Disk.read t.disk ~block in
          Rt.Data (Bytes.sub data 0 (min ps (Bytes.length data)))
        | None ->
          (* Never paged out: the kernel zero-fills. *)
          Rt.Unavailable);
    p_write =
      (fun rt o ~page ~data ->
        let t = get () in
        let off = page * Rt.page_size rt in
        let block =
          match Hashtbl.find_opt o.Rt.o_data.blocks off with
          | Some b -> b
          | None ->
            let b = alloc_block t in
            Hashtbl.replace o.Rt.o_data.blocks off b;
            t.stored <- t.stored + 1;
            b
        in
        Disk.write t.disk ~block data);
    p_death = (fun _ o _ -> release_blocks (get ()) o);
  }

let adopt t ~memory_object ~request =
  (* When the kernel terminates the object it destroys the request
     port; reclaim this object's paging blocks at that point. *)
  ignore (Port.on_death request (fun () -> Rt.handle_port_death t.rt request));
  let o = Rt.register t.rt ~memory_object { blocks = Hashtbl.create 16 } in
  Rt.add_request o request

let handle t (msg : Message.t) =
  match Pager_iface.decode_k2m msg with
  | exception Pager_iface.Malformed _ -> ()
  | Pager_iface.Create { new_memory_object; request; name = _; size = _ } ->
    let name_in_space = Port_space.insert t.space new_memory_object Message.Receive_right in
    Port_space.enable t.space name_in_space;
    adopt t ~memory_object:new_memory_object ~request
  | Pager_iface.Init { memory_object; request; name = _ } ->
    (* A default pager can also be used as an ordinary manager. *)
    adopt t ~memory_object ~request
  | Pager_iface.Data_request { memory_object; request; offset; length; desired_access } ->
    Rt.handle_data_request t.rt ~memory_object ~request ~offset ~length ~desired_access
  | Pager_iface.Data_write { memory_object; offset; data; write_id } ->
    (* Route the release to the kernel that shipped the run; an object
       already gone (terminated mid-write) still releases so the
       kernel's holding frames come back promptly (§6.2.2). *)
    let target =
      match msg.Message.header.reply with
      | Some r -> Some r
      | None -> (
        match Rt.find t.rt memory_object with
        | Some o -> ( match Rt.requests o with r :: _ -> Some r | [] -> None)
        | None -> None)
    in
    let release =
      match target with
      | Some request -> fun () -> Rt.release_write t.rt ~request ~write_id
      | None -> fun () -> ()
    in
    Rt.handle_data_write t.rt ~memory_object ~offset ~data ~release
  | Pager_iface.Data_unlock { memory_object; request; offset; length; desired_access } ->
    Rt.handle_data_unlock t.rt ~memory_object ~request ~offset ~length ~desired_access
  | Pager_iface.Lock_completed { memory_object; offset; length } ->
    Rt.handle_lock_completed t.rt ~memory_object ~request:msg.Message.header.reply ~offset
      ~length

let start kctx ~disk =
  let ctx = kctx.Kctx.ctx in
  let space = Port_space.create ctx ~home:kctx.Kctx.host in
  let node = kctx.Kctx.node in
  (* Replies must not block the pager loop; a full queue retries in a
     detached thread, a dead port is a dropped reply the runtime
     counts. *)
  let send msg =
    match Transport.send node ~timeout:0.0 msg with
    | Ok () -> Ok ()
    | Error Transport.Send_timed_out ->
      Engine.spawn kctx.Kctx.engine ~name:"default-pager-send" (fun () ->
          match Transport.send node msg with Ok () | Error _ -> ());
      Ok ()
    | Error Transport.Send_invalid_port -> Error ()
  in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let rt =
    Rt.create ~name:"default-pager" ~page_size:kctx.Kctx.page_size ~send (policy get)
  in
  let t =
    { kctx; disk; space; node; rt; free_blocks = Queue.create (); stored = 0 }
  in
  t_ref := Some t;
  Mach_util.Metrics.register_source kctx.Kctx.metrics ~subsystem:"pager.default-pager"
    ~reset:(fun () -> Rt.Stats.reset (Rt.stats rt))
    (fun () -> Rt.Stats.to_list (Rt.stats rt));
  for b = 0 to Disk.blocks disk - 1 do
    Queue.add b t.free_blocks
  done;
  (* Public port: the kernel sends pager_create here. *)
  let public_name = Port_space.allocate space ~backlog:256 () in
  Port_space.enable space public_name;
  let public_port = Port_space.lookup_exn space public_name in
  kctx.Kctx.default_pager_port <- Some public_port;
  (* §6.2.2 rescue: unreleased pageout data is written to the paging
     disk in a detached thread (the scheduler callback must not block).
     The data is unreachable afterwards (the errant manager holds the
     only reference), so one scratch block absorbs all rescues — we pay
     the I/O, we don't leak the paging area. *)
  let scratch_block = alloc_block t in
  kctx.Kctx.rescue_writer <-
    Some
      (fun data ->
        Engine.spawn kctx.Kctx.engine ~name:"default-pager-rescue" (fun () ->
            (* Rescued runs span several pages; pay the I/O per page,
               reusing the scratch block for each. *)
            let ps = kctx.Kctx.page_size in
            let npages = max 1 ((Bytes.length data + ps - 1) / ps) in
            for i = 0 to npages - 1 do
              let len = min ps (Bytes.length data - (i * ps)) in
              Disk.write t.disk ~block:scratch_block (Bytes.sub data (i * ps) len)
            done));
  Engine.spawn kctx.Kctx.engine ~name:"default-pager" (fun () ->
      let rec loop () =
        (match Transport.receive t.node t.space ~from:`Any () with
        | Ok msg ->
          Mach_sim.Trace.adopt kctx.Kctx.trace
            msg.Message.header.Message.trace_span (fun () -> handle t msg)
        | Error _ -> ());
        loop ()
      in
      loop ());
  t

let objects_managed t = Rt.objects t.rt
let pages_stored t = t.stored
let blocks_free t = Queue.length t.free_blocks
let runtime_stats t = Rt.stats t.rt
