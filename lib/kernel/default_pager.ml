module Engine = Mach_sim.Engine
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Message = Mach_ipc.Message
module Transport = Mach_ipc.Transport
module Disk = Mach_hw.Disk
module Prot = Mach_hw.Prot
module Kctx = Mach_vm.Kctx
module Pager_iface = Mach_vm.Pager_iface

type managed = {
  request : Message.port;  (** where our manager→kernel calls go *)
  blocks : (int, int) Hashtbl.t;  (** object offset → disk block *)
  memory_object : Message.port;
}

type t = {
  kctx : Kctx.t;
  disk : Disk.t;
  space : Port_space.t;
  node : Transport.node;
  objects : (int, managed) Hashtbl.t;  (** memory-object port id → state *)
  free_blocks : int Queue.t;
  mutable stored : int;
}

let alloc_block t =
  match Queue.take_opt t.free_blocks with
  | Some b -> b
  | None -> failwith "default pager: paging disk full"

let send t msg =
  Engine.spawn t.kctx.Kctx.engine ~name:"default-pager-send" (fun () ->
      match Transport.send t.node msg with Ok () | Error _ -> ())

(* Paging blocks of a dead object go back to the free pool. *)
let release_blocks t object_port_id =
  match Hashtbl.find_opt t.objects object_port_id with
  | None -> ()
  | Some m ->
    Hashtbl.iter
      (fun _ block ->
        t.stored <- t.stored - 1;
        Queue.add block t.free_blocks)
      m.blocks;
    Hashtbl.reset m.blocks;
    Hashtbl.remove t.objects object_port_id

let handle t (msg : Message.t) =
  match Pager_iface.decode_k2m msg with
  | exception Pager_iface.Malformed _ -> ()
  | Pager_iface.Create { new_memory_object; request; name = _; size = _ } ->
    let name_in_space = Port_space.insert t.space new_memory_object Message.Receive_right in
    Port_space.enable t.space name_in_space;
    (* When the kernel terminates the object it destroys the request
       port; reclaim this object's paging blocks at that point. *)
    ignore
      (Port.on_death request (fun () -> release_blocks t (Port.id new_memory_object)));
    Hashtbl.replace t.objects (Port.id new_memory_object)
      { request; blocks = Hashtbl.create 16; memory_object = new_memory_object }
  | Pager_iface.Init { memory_object; request; name = _ } ->
    (* A default pager can also be used as an ordinary manager. *)
    ignore (Port.on_death request (fun () -> release_blocks t (Port.id memory_object)));
    Hashtbl.replace t.objects (Port.id memory_object)
      { request; blocks = Hashtbl.create 16; memory_object }
  | Pager_iface.Data_request { memory_object; request; offset; length; desired_access = _ } -> (
    match Hashtbl.find_opt t.objects (Port.id memory_object) with
    | None -> ()
    | Some m ->
      (* The kernel may ask for several pages at once (cluster-in).
         Walk the requested range page by page, coalescing adjacent
         stored pages into one Data_provided and adjacent holes into
         one Data_unavailable, so the reply traffic stays proportional
         to the number of runs, not pages. *)
      let ps = t.kctx.Kctx.page_size in
      let npages = max 1 ((length + ps - 1) / ps) in
      let flush_hole ~start ~stop =
        if stop > start then
          send t
            (Pager_iface.encode_m2k
               (Pager_iface.Data_unavailable { offset = start; size = stop - start })
               ~request)
      in
      let flush_run ~start chunks =
        match chunks with
        | [] -> ()
        | _ ->
          let data = Bytes.concat Bytes.empty (List.rev chunks) in
          send t
            (Pager_iface.encode_m2k
               (Pager_iface.Data_provided { offset = start; data; lock_value = Prot.none })
               ~request)
      in
      let run_start = ref offset and run = ref [] in
      let hole_start = ref offset in
      for i = 0 to npages - 1 do
        let off = offset + (i * ps) in
        match Hashtbl.find_opt m.blocks off with
        | Some block ->
          flush_hole ~start:!hole_start ~stop:off;
          hole_start := off + ps;
          if !run = [] then run_start := off;
          let data = Disk.read t.disk ~block in
          run := Bytes.sub data 0 (min ps (Bytes.length data)) :: !run
        | None ->
          (* Never paged out: the kernel zero-fills. *)
          flush_run ~start:!run_start !run;
          run := []
      done;
      flush_run ~start:!run_start !run;
      flush_hole ~start:!hole_start ~stop:(offset + (npages * ps)))
  | Pager_iface.Data_write { memory_object; offset; data; write_id } -> (
    match Hashtbl.find_opt t.objects (Port.id memory_object) with
    | None -> (
      (* Object already gone (terminated while this write was in
         flight): the data is dead, but the kernel's holding frame must
         still be released. *)
      match msg.Message.header.reply with
      | Some request ->
        send t (Pager_iface.encode_m2k (Pager_iface.Release_write { write_id }) ~request)
      | None -> ())
    | Some m ->
      (* A write may carry a whole run of adjacent pages: store one
         block per page, then release the entire run with one
         Release_write (§6.2.2). *)
      let ps = t.kctx.Kctx.page_size in
      let npages = max 1 ((Bytes.length data + ps - 1) / ps) in
      for i = 0 to npages - 1 do
        let off = offset + (i * ps) in
        let block =
          match Hashtbl.find_opt m.blocks off with
          | Some b -> b
          | None ->
            let b = alloc_block t in
            Hashtbl.replace m.blocks off b;
            t.stored <- t.stored + 1;
            b
        in
        let len = min ps (Bytes.length data - (i * ps)) in
        Disk.write t.disk ~block (Bytes.sub data (i * ps) len)
      done;
      (* Promptly release the kernel's holding frames (§6.2.2). *)
      send t (Pager_iface.encode_m2k (Pager_iface.Release_write { write_id }) ~request:m.request))
  | Pager_iface.Data_unlock _ | Pager_iface.Lock_completed _ -> ()

let start kctx ~disk =
  let ctx = kctx.Kctx.ctx in
  let space = Port_space.create ctx ~home:kctx.Kctx.host in
  let t =
    {
      kctx;
      disk;
      space;
      node = kctx.Kctx.node;
      objects = Hashtbl.create 32;
      free_blocks = Queue.create ();
      stored = 0;
    }
  in
  for b = 0 to Disk.blocks disk - 1 do
    Queue.add b t.free_blocks
  done;
  (* Public port: the kernel sends pager_create here. *)
  let public_name = Port_space.allocate space ~backlog:256 () in
  Port_space.enable space public_name;
  let public_port = Port_space.lookup_exn space public_name in
  kctx.Kctx.default_pager_port <- Some public_port;
  (* §6.2.2 rescue: unreleased pageout data is written to the paging
     disk in a detached thread (the scheduler callback must not block).
     The data is unreachable afterwards (the errant manager holds the
     only reference), so one scratch block absorbs all rescues — we pay
     the I/O, we don't leak the paging area. *)
  let scratch_block = alloc_block t in
  kctx.Kctx.rescue_writer <-
    Some
      (fun data ->
        Engine.spawn kctx.Kctx.engine ~name:"default-pager-rescue" (fun () ->
            (* Rescued runs span several pages; pay the I/O per page,
               reusing the scratch block for each. *)
            let ps = kctx.Kctx.page_size in
            let npages = max 1 ((Bytes.length data + ps - 1) / ps) in
            for i = 0 to npages - 1 do
              let len = min ps (Bytes.length data - (i * ps)) in
              Disk.write t.disk ~block:scratch_block (Bytes.sub data (i * ps) len)
            done));
  Engine.spawn kctx.Kctx.engine ~name:"default-pager" (fun () ->
      let rec loop () =
        (match Transport.receive t.node t.space ~from:`Any () with
        | Ok msg -> handle t msg
        | Error _ -> ());
        loop ()
      in
      loop ());
  t

let objects_managed t = Hashtbl.length t.objects
let pages_stored t = t.stored
let blocks_free t = Queue.length t.free_blocks
