(** Deterministic discrete-event simulation engine.

    Simulated threads are OCaml-5 effect-based coroutines: a thread is an
    ordinary function that may call the blocking operations of this module
    ({!sleep}) and of the synchronisation modules ({!Ivar}, {!Mailbox},
    {!Semaphore}, {!Waitq}). Blocking suspends the coroutine and registers
    a wake-up; the engine runs ready events in (time, sequence) order, so a
    run is fully deterministic.

    Simulated time is in microseconds (float). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in microseconds. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] schedules a new simulated thread to start at the current
    time. May be called from inside or outside a running thread. An
    uncaught exception in [f] aborts the whole run ({!run} re-raises). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Low-level: run a callback (not a coroutine — it must not block) at the
    given absolute time. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or simulated time would exceed
    [until]. Returns normally on quiescence; re-raises the first exception
    escaping a thread. *)

val live : t -> int
(** Number of spawned threads that have not yet finished. If [run]
    returned and [live t > 0], those threads are blocked forever —
    a deadlock or a wait on an external wake-up that never came. *)

val blocked_names : t -> string list
(** Names of currently-suspended threads (diagnostic, sorted). *)

val self_name : unit -> string
(** Name of the calling simulated thread. *)

val self_name_opt : unit -> string option
(** Like {!self_name}, but [None] when called outside a simulated
    thread (e.g. from a {!schedule} timer callback) instead of
    raising. *)

val sleep : float -> unit
(** Block the calling thread for the given number of simulated
    microseconds. Must be called from inside a thread. *)

val yield : unit -> unit
(** Re-schedule the calling thread at the current time, letting other
    ready threads run first. *)

(** {2 Internal plumbing for synchronisation primitives} *)

type 'a resumer = 'a -> unit
(** Resuming schedules the suspended thread at the current simulated time.
    Must be called at most once. *)

val suspend : (t -> 'a resumer -> unit) -> 'a
(** [suspend register] blocks the calling thread; [register] receives the
    engine and a one-shot resumer. *)
