(* Processor scheduler for the discrete-event engine.

   A [t] models the processors of one host. Simulated threads do not
   occupy a CPU while blocked on I/O or IPC; they occupy one only for
   the duration of a compute burst ([compute]). A burst:

   - acquires a processor: the thread's *home* CPU (soft affinity: the
     one it last ran on) if idle, else any idle CPU (a migration), else
     it enqueues on its home CPU's run queue and blocks;
   - runs in quantum-sized slices; at each slice boundary, if the run
     queue of its CPU is non-empty, the burst is preempted: it requeues
     itself at the tail and the head waiter is dispatched;
   - on completion, dispatches the next local waiter, or *steals* the
     oldest waiter from the longest other run queue, so no processor
     idles while any thread is runnable.

   Every dispatch off a run queue (and every preemption resume) charges
   [context_switch_us] to the incoming thread; taking an idle processor
   directly is free — the idle loop has nothing to save.

   Handoff scheduling (Mach's message/scheduling duality): a sender
   that just delivered to a blocked receiver may [donate] its processor.
   The CPU is held in reserve — invisible to other acquirers — for one
   context-switch-time window; the receiver claims it via
   [claim_handoff] + its next [compute], entering without a run-queue
   round trip and without a context-switch charge. An unclaimed
   reservation expires and the CPU is re-dispatched. *)

type stats = {
  mutable s_switches : int;
  mutable s_preemptions : int;
  mutable s_migrations : int;
  mutable s_steals : int;
  mutable s_handoff_claims : int;
  mutable s_handoff_expired : int;
  mutable s_affinity_hits : int;
  mutable s_direct_dispatches : int;
  mutable s_enqueues : int;
  mutable s_queue_depth_peak : int;
  mutable s_queue_depth_sum : int;
  mutable s_idle_with_waiter : int;
}

let fresh_stats () =
  {
    s_switches = 0;
    s_preemptions = 0;
    s_migrations = 0;
    s_steals = 0;
    s_handoff_claims = 0;
    s_handoff_expired = 0;
    s_affinity_hits = 0;
    s_direct_dispatches = 0;
    s_enqueues = 0;
    s_queue_depth_peak = 0;
    s_queue_depth_sum = 0;
    s_idle_with_waiter = 0;
  }

let reset_stats s =
  s.s_switches <- 0;
  s.s_preemptions <- 0;
  s.s_migrations <- 0;
  s.s_steals <- 0;
  s.s_handoff_claims <- 0;
  s.s_handoff_expired <- 0;
  s.s_affinity_hits <- 0;
  s.s_direct_dispatches <- 0;
  s.s_enqueues <- 0;
  s.s_queue_depth_peak <- 0;
  s.s_queue_depth_sum <- 0;
  s.s_idle_with_waiter <- 0

let stats_to_list s =
  [
    ("switches", s.s_switches);
    ("preemptions", s.s_preemptions);
    ("migrations", s.s_migrations);
    ("steals", s.s_steals);
    ("handoff_claims", s.s_handoff_claims);
    ("handoff_expired", s.s_handoff_expired);
    ("affinity_hits", s.s_affinity_hits);
    ("direct_dispatches", s.s_direct_dispatches);
    ("enqueues", s.s_enqueues);
    ("queue_depth_peak", s.s_queue_depth_peak);
    ("queue_depth_sum", s.s_queue_depth_sum);
    ("idle_with_waiter", s.s_idle_with_waiter);
  ]

type reservation = { r_ticket : int; mutable r_for : string option }

type waiter = { w_name : string; w_wake : cpu -> unit }

and cpu = {
  c_id : int;
  mutable c_running : string option;
  mutable c_last : string;
  c_runq : waiter Queue.t;
  mutable c_reserved : reservation option;
  mutable c_busy_us : float;
}

type t = {
  eng : Engine.t;
  cpus : cpu array;
  affinity : (string, int) Hashtbl.t; (* thread name -> last CPU *)
  reservations : (int, cpu) Hashtbl.t; (* live handoff tickets *)
  pending_handoff : (string, cpu) Hashtbl.t; (* claimed, not yet entered *)
  mutable next_ticket : int;
  quantum_us : float;
  context_switch_us : float;
  stats : stats;
  mutable trace : Trace.t option;
}

let create eng ~cpus ?(quantum_us = 10_000.0) ~context_switch_us () =
  if cpus < 1 then invalid_arg "Sched.create: need at least one cpu";
  if quantum_us <= 0.0 then invalid_arg "Sched.create: quantum must be positive";
  {
    eng;
    cpus =
      Array.init cpus (fun i ->
          {
            c_id = i;
            c_running = None;
            c_last = "";
            c_runq = Queue.create ();
            c_reserved = None;
            c_busy_us = 0.0;
          });
    affinity = Hashtbl.create 64;
    reservations = Hashtbl.create 8;
    pending_handoff = Hashtbl.create 8;
    next_ticket = 0;
    quantum_us;
    context_switch_us;
    stats = fresh_stats ();
    trace = None;
  }

let cpu_count t = Array.length t.cpus
let stats t = t.stats
let set_trace t tr = t.trace <- tr

(* Which processor (if any) a named thread currently occupies — the
   trace's CPU-stamping hook. *)
let running_cpu t name =
  let found = ref None in
  Array.iter (fun c -> if !found = None && c.c_running = Some name then found := Some c.c_id) t.cpus;
  !found

let trace_point t label =
  match t.trace with
  | Some tr when Trace.enabled tr -> Trace.point tr ~subsystem:"sched" label
  | Some _ | None -> ()
let busy_us t = Array.fold_left (fun acc c -> acc +. c.c_busy_us) 0.0 t.cpus
let queued t = Array.fold_left (fun acc c -> acc + Queue.length c.c_runq) 0 t.cpus

let idle_cpus t =
  Array.fold_left
    (fun acc c -> if c.c_running = None && c.c_reserved = None then acc + 1 else acc)
    0 t.cpus

let free c = c.c_running = None && c.c_reserved = None

(* Oracle for the no-starvation invariant: once dispatch has run, a
   truly idle processor implies every run queue is empty (work stealing
   would otherwise have found it a thread). Violations are counted, not
   raised, so property tests can assert the counter stays zero. *)
let check_idle_invariant t =
  if Array.exists free t.cpus && queued t > 0 then
    t.stats.s_idle_with_waiter <- t.stats.s_idle_with_waiter + 1

let longest_runq t =
  let best = ref None in
  Array.iter
    (fun c ->
      let len = Queue.length c.c_runq in
      if len > 0 then
        match !best with
        | Some b when Queue.length b.c_runq >= len -> ()
        | _ -> best := Some c)
    t.cpus;
  !best

(* Give an idle CPU its next thread: local queue first, then steal the
   oldest waiter from the longest queue elsewhere. Both paths are run-
   queue dispatches and count a context switch (charged by the woken
   thread). Reserved CPUs are skipped — they are held for a handoff. *)
let dispatch t cpu =
  if cpu.c_reserved = None then begin
    match Queue.take_opt cpu.c_runq with
    | Some w ->
      cpu.c_running <- Some w.w_name;
      t.stats.s_switches <- t.stats.s_switches + 1;
      w.w_wake cpu
    | None -> (
      match longest_runq t with
      | Some victim ->
        let w = Queue.take victim.c_runq in
        cpu.c_running <- Some w.w_name;
        t.stats.s_switches <- t.stats.s_switches + 1;
        t.stats.s_steals <- t.stats.s_steals + 1;
        t.stats.s_migrations <- t.stats.s_migrations + 1;
        w.w_wake cpu
      | None -> check_idle_invariant t)
  end

let note_affinity t cpu name =
  cpu.c_last <- name;
  Hashtbl.replace t.affinity name cpu.c_id

(* A finished burst releases its processor. *)
let release t cpu name =
  note_affinity t cpu name;
  cpu.c_running <- None;
  dispatch t cpu

type entry = Entry_direct | Entry_queued | Entry_handoff

let take t cpu name =
  cpu.c_running <- Some name;
  t.stats.s_direct_dispatches <- t.stats.s_direct_dispatches + 1;
  if cpu.c_last = name then t.stats.s_affinity_hits <- t.stats.s_affinity_hits + 1

let first_free t =
  let found = ref None in
  Array.iter (fun c -> if !found = None && free c then found := Some c) t.cpus;
  !found

let shortest_runq t =
  let best = ref t.cpus.(0) in
  Array.iter (fun c -> if Queue.length c.c_runq < Queue.length !best.c_runq then best := c) t.cpus;
  !best

let consume_reservation t cpu =
  (match cpu.c_reserved with
  | Some r -> Hashtbl.remove t.reservations r.r_ticket
  | None -> ());
  cpu.c_reserved <- None

let acquire t name =
  let claimed =
    match Hashtbl.find_opt t.pending_handoff name with
    | Some cpu
      when (match cpu.c_reserved with Some r -> r.r_for = Some name | None -> false) ->
      Hashtbl.remove t.pending_handoff name;
      consume_reservation t cpu;
      cpu.c_running <- Some name;
      t.stats.s_handoff_claims <- t.stats.s_handoff_claims + 1;
      Some (cpu, Entry_handoff)
    | Some _ ->
      (* The reservation expired (or was re-issued) before we computed. *)
      Hashtbl.remove t.pending_handoff name;
      None
    | None -> None
  in
  match claimed with
  | Some r -> r
  | None -> (
    let home = Hashtbl.find_opt t.affinity name in
    match home with
    | Some h when free t.cpus.(h) ->
      take t t.cpus.(h) name;
      (t.cpus.(h), Entry_direct)
    | _ -> (
      match first_free t with
      | Some c ->
        take t c name;
        if home <> None then t.stats.s_migrations <- t.stats.s_migrations + 1;
        (c, Entry_direct)
      | None ->
        let target =
          match home with Some h -> t.cpus.(h) | None -> shortest_runq t
        in
        t.stats.s_enqueues <- t.stats.s_enqueues + 1;
        let depth = queued t + 1 in
        t.stats.s_queue_depth_sum <- t.stats.s_queue_depth_sum + depth;
        if depth > t.stats.s_queue_depth_peak then t.stats.s_queue_depth_peak <- depth;
        let cpu =
          Engine.suspend (fun _eng k -> Queue.add { w_name = name; w_wake = k } target.c_runq)
        in
        (cpu, Entry_queued)))

(* The context-switch cost of entering via a run queue, charged to the
   incoming thread on its new processor. *)
let charge_switch t cpu =
  if t.context_switch_us > 0.0 then begin
    Engine.sleep t.context_switch_us;
    cpu.c_busy_us <- cpu.c_busy_us +. t.context_switch_us
  end

let rec run_burst t cpu name remaining =
  let slice = if remaining > t.quantum_us then t.quantum_us else remaining in
  Engine.sleep slice;
  cpu.c_busy_us <- cpu.c_busy_us +. slice;
  let remaining = remaining -. slice in
  if remaining <= 0.0 then release t cpu name
  else if Queue.length cpu.c_runq > 0 then begin
    (* Quantum expired with local contention: preempt. Requeue at the
       tail first so the dispatch below picks the earlier waiter. *)
    t.stats.s_preemptions <- t.stats.s_preemptions + 1;
    trace_point t "preempt";
    note_affinity t cpu name;
    let cpu' =
      Engine.suspend (fun _eng k ->
          Queue.add { w_name = name; w_wake = k } cpu.c_runq;
          cpu.c_running <- None;
          dispatch t cpu)
    in
    charge_switch t cpu';
    run_burst t cpu' name remaining
  end
  else run_burst t cpu name remaining

let compute t us =
  if us > 0.0 then begin
    let name = Engine.self_name () in
    let cpu, entry = acquire t name in
    trace_point t
      (match entry with
      | Entry_direct -> "enter_direct"
      | Entry_queued -> "enter_queued"
      | Entry_handoff -> "enter_handoff");
    (match entry with
    | Entry_queued -> charge_switch t cpu
    | Entry_direct | Entry_handoff -> ());
    run_burst t cpu name us
  end

(* {2 Handoff} *)

(* How long a donated processor is held for its beneficiary. Holding it
   longer than a context switch would cost more than simply switching,
   so the reservation window is exactly one context-switch time. *)
let reserve_window t = t.context_switch_us

let donate t =
  let donor = Engine.self_name () in
  match Hashtbl.find_opt t.affinity donor with
  | None -> None
  | Some h ->
    let cpu = t.cpus.(h) in
    if not (free cpu) then None
    else begin
      let ticket = t.next_ticket in
      t.next_ticket <- ticket + 1;
      let r = { r_ticket = ticket; r_for = None } in
      cpu.c_reserved <- Some r;
      Hashtbl.replace t.reservations ticket cpu;
      trace_point t "donate";
      Engine.schedule t.eng
        ~at:(Engine.now t.eng +. reserve_window t)
        (fun () ->
          match cpu.c_reserved with
          | Some r' when r'.r_ticket = ticket ->
            (match r'.r_for with
            | Some name -> Hashtbl.remove t.pending_handoff name
            | None -> ());
            consume_reservation t cpu;
            t.stats.s_handoff_expired <- t.stats.s_handoff_expired + 1;
            dispatch t cpu
          | _ -> ());
      Some ticket
    end

let claim_handoff t ~ticket ~name =
  match Hashtbl.find_opt t.reservations ticket with
  | None -> ()
  | Some cpu -> (
    match cpu.c_reserved with
    | Some r when r.r_ticket = ticket && r.r_for = None ->
      r.r_for <- Some name;
      Hashtbl.replace t.pending_handoff name cpu
    | _ -> ())
