(** Deterministic network fault injection.

    A [Chaos.t] is a seeded oracle consulted by the network fabric for
    every inter-host message: it can drop it, duplicate it, delay it
    past its successors (reorder), refuse it outright (link partition,
    crashed host). All randomness comes from one [Mach_util.Rng]
    stream, so a given seed and workload replays the exact same fault
    schedule. Every injected fault is counted and, when a trace is
    attached, emitted as a ["chaos"] trace point. *)

type plan = {
  drop : float;  (** probability a message disappears *)
  duplicate : float;  (** probability a message arrives twice *)
  reorder : float;  (** probability a message is delayed past its successors *)
  jitter_us : float;  (** max extra delay applied to reordered messages *)
}

val perfect : plan
(** No faults: every field 0. *)

type stats = {
  mutable s_dropped : int;
  mutable s_duplicated : int;
  mutable s_reordered : int;
  mutable s_partition_drops : int;
  mutable s_crash_drops : int;
  mutable s_partitions : int;
  mutable s_heals : int;
  mutable s_crashes : int;
  mutable s_restarts : int;
}

type t

val create : ?seed:int -> unit -> t

val of_spec : string -> t
(** Parse a fault plan from a spec string, e.g.
    ["seed=7,drop=0.1,dup=0.05,reorder=0.1,jitter=500"]. Every key is
    optional; the plan becomes the default for all links. Raises
    [Invalid_argument] on unknown keys. *)

val set_trace : t -> Trace.t option -> unit

(** {1 Fault plans} *)

val set_plan : t -> src:int -> dst:int -> plan -> unit
val set_plan_between : t -> int -> int -> plan -> unit
val set_default_plan : t -> plan -> unit
val plan_for : t -> src:int -> dst:int -> plan

(** {1 Partitions and host failures} *)

val partition : t -> int -> int -> unit
(** Cut the (bidirectional) link between two hosts. *)

val heal : t -> int -> int -> unit
(** Restore a cut link and fire [on_heal] hooks. *)

val partitioned : t -> int -> int -> bool

val crash_host : t -> int -> unit
(** Take a host off the fabric and fire [on_crash] hooks. Hooks may
    destroy ports and run death callbacks that block, so call this
    from a simulated thread, never from an [Engine.schedule]
    callback. *)

val restart_host : t -> int -> unit
val host_up : t -> int -> bool

val on_crash : t -> (int -> unit) -> unit
val on_restart : t -> (int -> unit) -> unit
val on_heal : t -> (int -> int -> unit) -> unit

(** {1 The oracle} *)

type verdict =
  | Deliver of { copies : int; extra_delay_us : float }
  | Dropped of [ `Fault | `Partitioned | `Host_down ]

val judge : t -> src:int -> dst:int -> verdict
(** One verdict per fabric message; counts faults as a side effect. *)

(** {1 Accounting} *)

val stats : t -> stats
val stats_to_list : t -> (string * int) list
val faults_injected : t -> int
val reset_stats : t -> unit
