(* Causal trace spine: a bounded ring buffer of events stamped with
   simulated time, CPU and a span id.

   A *span* is an interval with a causal identity — one page fault, one
   bench phase. [span_open] allocates a fresh id (parented on the
   opener's current span) and pushes it on the opening fiber's span
   stack; [span_close] records the resolution label and pops. [point]
   marks an instant inside the current (or an explicit) span. Causality
   crosses fibers by carrying the id — the IPC transport stamps the
   sender's current span into the message header and the receiving
   service loop runs its handler under [adopt] — so one fault's id
   threads fault entry → pager request → IPC send/receive → manager →
   reply → resolution, across any number of threads and hosts sharing
   the engine.

   Tracing is an observability layer, not a simulation effect: it
   charges no simulated time, so a traced run and an untraced run have
   identical timings and counters. Disabled (the default), every entry
   point is one load and a branch; the ring keeps the newest [capacity]
   events when enabled ([dropped] counts the overwritten ones). *)

type kind = Open | Close | Point

type event = {
  ev_seq : int;  (** monotone over the run; reveals ring wraparound *)
  ev_time : float;  (** simulated microseconds *)
  ev_cpu : int;  (** processor of the recording fiber; -1 if unknown *)
  ev_span : int;  (** span id; -1 for points outside any span *)
  ev_parent : int;  (** on [Open]: enclosing span id, -1 for roots *)
  ev_sub : string;  (** subsystem namespace, e.g. "vm", "ipc", "sched" *)
  ev_kind : kind;
  ev_label : string;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_sub : string;
  sp_label : string;  (** the open label, e.g. "fault" *)
  sp_resolution : string;  (** the close label, e.g. "zero_fill" *)
  sp_start : float;
  sp_end : float;
  sp_cpu : int;  (** CPU at open *)
}

type t = {
  eng : Engine.t;
  mutable on : bool;
  buf : event array;
  mutable head : int;  (* next write slot *)
  mutable count : int;  (* valid events, <= capacity *)
  mutable total : int;  (* ever recorded *)
  mutable next_span : int;
  mutable cpu_hooks : (string -> int) list;
      (* thread name -> running CPU or -1; one hook per host scheduler *)
  stacks : (string, int list) Hashtbl.t;  (* fiber name -> open-span stack *)
}

let none = -1

let dummy_event =
  { ev_seq = 0; ev_time = 0.0; ev_cpu = none; ev_span = none; ev_parent = none;
    ev_sub = ""; ev_kind = Point; ev_label = "" }

let create ?(capacity = 65536) eng =
  if capacity < 2 then invalid_arg "Trace.create: capacity must be at least 2";
  { eng; on = false; buf = Array.make capacity dummy_event; head = 0; count = 0;
    total = 0; next_span = 0; cpu_hooks = []; stacks = Hashtbl.create 64 }

let enabled t = t.on
let set_enabled t b = t.on <- b
let capacity t = Array.length t.buf
let add_cpu_hook t f = t.cpu_hooks <- f :: t.cpu_hooks

let clear t =
  t.head <- 0;
  t.count <- 0;
  t.total <- 0;
  Hashtbl.reset t.stacks

let cpu_of t = function
  | None -> none
  | Some name ->
    let rec go = function
      | [] -> none
      | f :: rest -> ( match f name with -1 -> go rest | c -> c)
    in
    go t.cpu_hooks

let record t ~span ~parent ~sub ~kind ~label ~who =
  let ev =
    { ev_seq = t.total; ev_time = Engine.now t.eng; ev_cpu = cpu_of t who; ev_span = span;
      ev_parent = parent; ev_sub = sub; ev_kind = kind; ev_label = label }
  in
  t.buf.(t.head) <- ev;
  t.head <- (t.head + 1) mod Array.length t.buf;
  if t.count < Array.length t.buf then t.count <- t.count + 1;
  t.total <- t.total + 1

let top_of t who =
  match Hashtbl.find_opt t.stacks who with Some (s :: _) -> s | Some [] | None -> none

let current t =
  if not t.on then none
  else match Engine.self_name_opt () with None -> none | Some who -> top_of t who

let push t who span =
  Hashtbl.replace t.stacks who
    (span :: Option.value (Hashtbl.find_opt t.stacks who) ~default:[])

(* Pop the topmost occurrence; out-of-order closes (span kept across a
   structured retry) still unwind correctly. *)
let pop t who span =
  match Hashtbl.find_opt t.stacks who with
  | None -> ()
  | Some stack ->
    let removed = ref false in
    let stack' =
      List.filter
        (fun s ->
          if (not !removed) && s = span then begin
            removed := true;
            false
          end
          else true)
        stack
    in
    if stack' = [] then Hashtbl.remove t.stacks who else Hashtbl.replace t.stacks who stack'

let span_open t ~subsystem ~label =
  if not t.on then none
  else begin
    let who = Engine.self_name_opt () in
    let parent = match who with None -> none | Some w -> top_of t w in
    let id = t.next_span in
    t.next_span <- id + 1;
    record t ~span:id ~parent ~sub:subsystem ~kind:Open ~label ~who;
    (match who with Some w -> push t w id | None -> ());
    id
  end

let span_close t ~subsystem ~label span =
  if t.on && span >= 0 then begin
    let who = Engine.self_name_opt () in
    record t ~span ~parent:none ~sub:subsystem ~kind:Close ~label ~who;
    match who with Some w -> pop t w span | None -> ()
  end

let point ?span t ~subsystem label =
  if t.on then begin
    let who = Engine.self_name_opt () in
    let sp =
      match span with
      | Some s -> s
      | None -> ( match who with None -> none | Some w -> top_of t w)
    in
    record t ~span:sp ~parent:none ~sub:subsystem ~kind:Point ~label ~who
  end

let adopt t span f =
  if (not t.on) || span < 0 then f ()
  else
    match Engine.self_name_opt () with
    | None -> f ()
    | Some w ->
      push t w span;
      Fun.protect ~finally:(fun () -> pop t w span) f

(* {2 Reductions} *)

let events t =
  let n = Array.length t.buf in
  let start = (t.head - t.count + n) mod n in
  List.init t.count (fun i -> t.buf.((start + i) mod n))

let recorded t = t.total
let dropped t = t.total - t.count

let spans t =
  let opens = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun ev ->
      match ev.ev_kind with
      | Open -> Hashtbl.replace opens ev.ev_span ev
      | Close -> (
        match Hashtbl.find_opt opens ev.ev_span with
        | Some o ->
          Hashtbl.remove opens ev.ev_span;
          out :=
            { sp_id = ev.ev_span; sp_parent = o.ev_parent; sp_sub = o.ev_sub;
              sp_label = o.ev_label; sp_resolution = ev.ev_label; sp_start = o.ev_time;
              sp_end = ev.ev_time; sp_cpu = o.ev_cpu }
            :: !out
        | None -> ())
      | Point -> ())
    (events t);
  List.rev !out

let span_duration sp = sp.sp_end -. sp.sp_start
let find_span t id = List.find_opt (fun sp -> sp.sp_id = id) (spans t)

let balance t =
  List.fold_left
    (fun (o, c) ev ->
      match ev.ev_kind with Open -> (o + 1, c) | Close -> (o, c + 1) | Point -> (o, c))
    (0, 0) (events t)

let unclosed t =
  let opens = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev.ev_kind with
      | Open -> Hashtbl.replace opens ev.ev_span ()
      | Close -> Hashtbl.remove opens ev.ev_span
      | Point -> ())
    (events t);
  Hashtbl.length opens

let kind_to_string = function Open -> "open" | Close -> "close" | Point -> "point"
