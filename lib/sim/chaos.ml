module Rng = Mach_util.Rng

type plan = {
  drop : float;
  duplicate : float;
  reorder : float;
  jitter_us : float;
}

let perfect = { drop = 0.0; duplicate = 0.0; reorder = 0.0; jitter_us = 0.0 }

type stats = {
  mutable s_dropped : int;
  mutable s_duplicated : int;
  mutable s_reordered : int;
  mutable s_partition_drops : int;
  mutable s_crash_drops : int;
  mutable s_partitions : int;
  mutable s_heals : int;
  mutable s_crashes : int;
  mutable s_restarts : int;
}

let fresh_stats () =
  {
    s_dropped = 0;
    s_duplicated = 0;
    s_reordered = 0;
    s_partition_drops = 0;
    s_crash_drops = 0;
    s_partitions = 0;
    s_heals = 0;
    s_crashes = 0;
    s_restarts = 0;
  }

type t = {
  rng : Rng.t;
  plans : (int * int, plan) Hashtbl.t;
  mutable default_plan : plan;
  partitions : (int * int, unit) Hashtbl.t;
  crashed : (int, unit) Hashtbl.t;
  stats : stats;
  mutable trace : Trace.t option;
  mutable on_crash : (int -> unit) list;
  mutable on_restart : (int -> unit) list;
  mutable on_heal : (int -> int -> unit) list;
}

let create ?(seed = 0x43484F53) () =
  {
    rng = Rng.create seed;
    plans = Hashtbl.create 16;
    default_plan = perfect;
    partitions = Hashtbl.create 8;
    crashed = Hashtbl.create 4;
    stats = fresh_stats ();
    trace = None;
    on_crash = [];
    on_restart = [];
    on_heal = [];
  }

let set_trace t tr = t.trace <- tr
let stats t = t.stats

let point t label =
  match t.trace with
  | Some tr when Trace.enabled tr -> Trace.point tr ~subsystem:"chaos" label
  | Some _ | None -> ()

let set_plan t ~src ~dst plan = Hashtbl.replace t.plans (src, dst) plan

let set_plan_between t a b plan =
  set_plan t ~src:a ~dst:b plan;
  set_plan t ~src:b ~dst:a plan

let set_default_plan t plan = t.default_plan <- plan
let plan_for t ~src ~dst =
  match Hashtbl.find_opt t.plans (src, dst) with Some p -> p | None -> t.default_plan

let link a b = (min a b, max a b)

let partition t a b =
  if not (Hashtbl.mem t.partitions (link a b)) then begin
    Hashtbl.replace t.partitions (link a b) ();
    t.stats.s_partitions <- t.stats.s_partitions + 1;
    point t (Printf.sprintf "partition h%d|h%d" a b)
  end

let heal t a b =
  if Hashtbl.mem t.partitions (link a b) then begin
    Hashtbl.remove t.partitions (link a b);
    t.stats.s_heals <- t.stats.s_heals + 1;
    point t (Printf.sprintf "heal h%d|h%d" a b);
    List.iter (fun f -> f a b) (List.rev t.on_heal)
  end

let partitioned t a b = Hashtbl.mem t.partitions (link a b)
let host_up t h = not (Hashtbl.mem t.crashed h)

let crash_host t h =
  if host_up t h then begin
    Hashtbl.replace t.crashed h ();
    t.stats.s_crashes <- t.stats.s_crashes + 1;
    point t (Printf.sprintf "crash h%d" h);
    List.iter (fun f -> f h) (List.rev t.on_crash)
  end

let restart_host t h =
  if not (host_up t h) then begin
    Hashtbl.remove t.crashed h;
    t.stats.s_restarts <- t.stats.s_restarts + 1;
    point t (Printf.sprintf "restart h%d" h);
    List.iter (fun f -> f h) (List.rev t.on_restart)
  end

let on_crash t f = t.on_crash <- f :: t.on_crash
let on_restart t f = t.on_restart <- f :: t.on_restart
let on_heal t f = t.on_heal <- f :: t.on_heal

type verdict =
  | Deliver of { copies : int; extra_delay_us : float }
  | Dropped of [ `Fault | `Partitioned | `Host_down ]

(* One verdict per fabric message. RNG draws happen in a fixed order
   (drop, duplicate, reorder) so a run is a pure function of the seed
   and the message sequence. *)
let judge t ~src ~dst =
  if not (host_up t src && host_up t dst) then begin
    t.stats.s_crash_drops <- t.stats.s_crash_drops + 1;
    point t (Printf.sprintf "crash_drop h%d->h%d" src dst);
    Dropped `Host_down
  end
  else if partitioned t src dst then begin
    t.stats.s_partition_drops <- t.stats.s_partition_drops + 1;
    point t (Printf.sprintf "partition_drop h%d->h%d" src dst);
    Dropped `Partitioned
  end
  else begin
    let plan = plan_for t ~src ~dst in
    if plan.drop > 0.0 && Rng.float t.rng 1.0 < plan.drop then begin
      t.stats.s_dropped <- t.stats.s_dropped + 1;
      point t (Printf.sprintf "drop h%d->h%d" src dst);
      Dropped `Fault
    end
    else begin
      let copies =
        if plan.duplicate > 0.0 && Rng.float t.rng 1.0 < plan.duplicate then begin
          t.stats.s_duplicated <- t.stats.s_duplicated + 1;
          point t (Printf.sprintf "duplicate h%d->h%d" src dst);
          2
        end
        else 1
      in
      let extra_delay_us =
        if plan.reorder > 0.0 && Rng.float t.rng 1.0 < plan.reorder then begin
          t.stats.s_reordered <- t.stats.s_reordered + 1;
          point t (Printf.sprintf "reorder h%d->h%d" src dst);
          (* Enough delay to let later traffic overtake this message. *)
          Rng.float t.rng (Float.max plan.jitter_us 1.0)
        end
        else 0.0
      in
      Deliver { copies; extra_delay_us }
    end
  end

(* Fault-plan grammar: "seed=7,drop=0.1,dup=0.05,reorder=0.1,jitter=500"
   — every key optional, the resulting plan applies to every link. *)
let of_spec spec =
  let seed = ref 0x43484F53 in
  let plan = ref perfect in
  String.split_on_char ',' spec
  |> List.iter (fun kv ->
         match String.index_opt kv '=' with
         | None -> ()
         | Some i ->
           let k = String.trim (String.sub kv 0 i) in
           let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
           let f () = float_of_string v in
           (match k with
           | "seed" -> seed := int_of_string v
           | "drop" -> plan := { !plan with drop = f () }
           | "dup" | "duplicate" -> plan := { !plan with duplicate = f () }
           | "reorder" -> plan := { !plan with reorder = f () }
           | "jitter" | "jitter_us" -> plan := { !plan with jitter_us = f () }
           | _ -> invalid_arg ("Chaos.of_spec: unknown key " ^ k)));
  let t = create ~seed:!seed () in
  set_default_plan t !plan;
  t

let stats_to_list t =
  let s = t.stats in
  [
    ("dropped", s.s_dropped);
    ("duplicated", s.s_duplicated);
    ("reordered", s.s_reordered);
    ("partition_drops", s.s_partition_drops);
    ("crash_drops", s.s_crash_drops);
    ("partitions", s.s_partitions);
    ("heals", s.s_heals);
    ("crashes", s.s_crashes);
    ("restarts", s.s_restarts);
  ]

let faults_injected t =
  let s = t.stats in
  s.s_dropped + s.s_duplicated + s.s_reordered + s.s_partition_drops + s.s_crash_drops

let reset_stats t =
  let s = t.stats in
  s.s_dropped <- 0;
  s.s_duplicated <- 0;
  s.s_reordered <- 0;
  s.s_partition_drops <- 0;
  s.s_crash_drops <- 0;
  s.s_partitions <- 0;
  s.s_heals <- 0;
  s.s_crashes <- 0;
  s.s_restarts <- 0
