(** Processor scheduler: per-CPU run queues over the discrete-event
    engine.

    One [t] models the processors of one simulated host. A thread
    occupies a processor only while inside {!compute}; the burst is
    sliced into quanta and preempted at slice boundaries when the run
    queue is contended. Placement is soft-affine (a thread prefers the
    processor it last ran on), idle processors are taken directly, and
    a processor going idle steals the oldest waiter from the longest
    run queue — so no processor idles while a thread is runnable.

    Run-queue dispatches (including preemption resumes) charge the
    configured context-switch time to the incoming thread; acquiring an
    idle processor is free.

    Handoff scheduling: {!donate} reserves the caller's processor for a
    blocked-receiver IPC beneficiary; {!claim_handoff} (from the
    receive path) binds the reservation to the woken thread, whose next
    {!compute} then enters with no run-queue round trip and no
    context-switch charge. Unclaimed reservations expire after one
    context-switch window and the processor is re-dispatched. *)

type t

type stats = {
  mutable s_switches : int;  (** run-queue dispatches (each charged context-switch time) *)
  mutable s_preemptions : int;  (** quantum expiries that yielded the processor *)
  mutable s_migrations : int;  (** bursts begun on a different CPU than the thread's last *)
  mutable s_steals : int;  (** idle CPUs that took a waiter from another run queue *)
  mutable s_handoff_claims : int;  (** bursts entered on a donated processor, charge-free *)
  mutable s_handoff_expired : int;  (** donations the beneficiary never claimed *)
  mutable s_affinity_hits : int;  (** direct acquires of the thread's previous CPU *)
  mutable s_direct_dispatches : int;  (** acquires that found an idle CPU (no queueing) *)
  mutable s_enqueues : int;  (** acquires that had to wait on a run queue *)
  mutable s_queue_depth_peak : int;  (** max total queued threads at any enqueue *)
  mutable s_queue_depth_sum : int;  (** summed depth at enqueue (avg = sum/enqueues) *)
  mutable s_idle_with_waiter : int;  (** invariant oracle; stays 0 unless stealing is broken *)
}

val create :
  Engine.t -> cpus:int -> ?quantum_us:float -> context_switch_us:float -> unit -> t
(** [quantum_us] defaults to 10ms of simulated time. *)

val compute : t -> float -> unit
(** Occupy one processor for the given number of simulated
    microseconds (plus any queueing delay and context-switch charges).
    Must be called from inside a simulated thread; bursts of zero or
    negative length return immediately. *)

val donate : t -> int option
(** Reserve the calling thread's processor (the one it last ran on) for
    a handoff, if it is currently idle. Returns a ticket for
    {!claim_handoff}, or [None] if the processor is busy. *)

val claim_handoff : t -> ticket:int -> name:string -> unit
(** Bind a live reservation to thread [name]; its next {!compute}
    enters on the donated processor without queueing or switch charge.
    Expired or unknown tickets are ignored. *)

val cpu_count : t -> int
val stats : t -> stats
val stats_to_list : stats -> (string * int) list

val reset_stats : stats -> unit
(** Zero every counter (the registry's shared reset idiom). *)

val set_trace : t -> Trace.t option -> unit
(** Wire the host's trace: acquire entries ([enter_direct] /
    [enter_queued] / [enter_handoff]), preemptions and donations emit
    "sched" points attributed to the computing fiber's current span. *)

val running_cpu : t -> string -> int option
(** The processor a named thread currently occupies, if any — the
    trace's CPU-stamping hook. *)

val busy_us : t -> float
(** Total processor-busy time accumulated across all CPUs (compute
    slices plus charged context switches). Utilisation over a window of
    elapsed time [e] on [n] CPUs is [busy_us / (n * e)]. *)

val queued : t -> int
(** Threads currently waiting on run queues. *)

val idle_cpus : t -> int
