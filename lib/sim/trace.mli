(** Causal trace spine: a bounded ring buffer of span/point events
    stamped with simulated time and CPU.

    A span is an interval with a causal identity (one page fault, one
    bench phase); its id parents nested spans opened by the same fiber
    and rides across fibers and hosts inside message headers — the
    receiving service loop runs its handler under {!adopt}, so one
    fault's id threads fault entry → pager request → IPC send/receive →
    manager work → reply → resolution.

    Tracing charges no simulated time: traced and untraced runs have
    identical timings and counters. Disabled (the default), every
    entry point is one load and a branch; {!span_open} returns [-1] and
    {!span_close}/{!point}/{!adopt} on it are no-ops, so call sites
    need no guards of their own. *)

type t

type kind = Open | Close | Point

type event = {
  ev_seq : int;  (** monotone over the run; reveals ring wraparound *)
  ev_time : float;  (** simulated microseconds *)
  ev_cpu : int;  (** processor of the recording fiber; [-1] if unknown *)
  ev_span : int;  (** span id; [-1] for points outside any span *)
  ev_parent : int;  (** on [Open]: enclosing span id, [-1] for roots *)
  ev_sub : string;  (** subsystem namespace: "vm", "ipc", "sched", ... *)
  ev_kind : kind;
  ev_label : string;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_sub : string;
  sp_label : string;  (** the open label, e.g. ["fault"] *)
  sp_resolution : string;  (** the close label, e.g. ["zero_fill"] *)
  sp_start : float;
  sp_end : float;
  sp_cpu : int;  (** CPU at open *)
}

val create : ?capacity:int -> Engine.t -> t
(** [capacity] defaults to 65536 events; the ring keeps the newest. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val capacity : t -> int

val clear : t -> unit
(** Drop all events and open-span stacks (ids keep advancing). *)

val add_cpu_hook : t -> (string -> int) -> unit
(** Register a thread-name → running-CPU resolver (one per host
    scheduler); the first hook answering [>= 0] stamps the event. *)

val span_open : t -> subsystem:string -> label:string -> int
(** Open a span parented on the calling fiber's current span. Returns
    [-1] when tracing is disabled. *)

val span_close : t -> subsystem:string -> label:string -> int -> unit
(** Close a span with its resolution label. No-op on [-1]. *)

val point : ?span:int -> t -> subsystem:string -> string -> unit
(** Mark an instant, attributed to [span] (default: the calling fiber's
    current span). *)

val adopt : t -> int -> (unit -> 'a) -> 'a
(** Run a thunk with an existing span (one carried in a message header)
    as the fiber's current span — points and child spans inside
    attribute to it. Records no event; no-op on [-1] or when
    disabled. *)

val current : t -> int
(** The calling fiber's current span id, [-1] if none. *)

(** {2 Reductions over the buffered window} *)

val events : t -> event list
(** Oldest first. *)

val recorded : t -> int
(** Events ever recorded (beyond the ring's reach included). *)

val dropped : t -> int
(** Events overwritten by wraparound: [recorded - buffered]. *)

val spans : t -> span list
(** Spans whose [Open] and [Close] both sit in the buffered window, in
    close order. *)

val span_duration : span -> float
val find_span : t -> int -> span option

val balance : t -> int * int
(** [(opens, closes)] in the buffered window — equal (with
    {!unclosed} [= 0]) after a quiesced, wrap-free run. *)

val unclosed : t -> int
(** Spans opened but not closed within the buffered window. *)

val kind_to_string : kind -> string
