type event = { time : float; seq : int; action : unit -> unit }

(* Binary min-heap on (time, seq); seq breaks ties so runs are
   deterministic. *)
module Heap = struct
  type t = { mutable data : event array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; action = (fun () -> ()) }
  let create () = { data = Array.make 64 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let i = ref 0 in
      let continue_sifting = ref true in
      while !continue_sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_sifting := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end

  let peek h = if h.size = 0 then None else Some h.data.(0)
end

type t = {
  mutable now : float;
  mutable seq : int;
  heap : Heap.t;
  mutable live : int;
  suspended : (int, string) Hashtbl.t; (* suspension token -> thread name *)
  mutable next_token : int;
  mutable anon_count : int; (* per-engine, so names are deterministic *)
  mutable failure : exn option;
}

type 'a resumer = 'a -> unit

type _ Effect.t +=
  | Suspend : (t -> 'a resumer -> unit) -> 'a Effect.t
  | Self_name : string Effect.t

let create () =
  { now = 0.0; seq = 0; heap = Heap.create (); live = 0;
    suspended = Hashtbl.create 64; next_token = 0; anon_count = 0; failure = None }

let now t = t.now

let schedule t ~at action =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.heap { time = at; seq = t.seq; action }

let spawn t ?name f =
  let name =
    match name with
    | Some n -> n
    | None ->
      t.anon_count <- t.anon_count + 1;
      Printf.sprintf "thread-%d" t.anon_count
  in
  t.live <- t.live + 1;
  let fiber () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> t.live <- t.live - 1);
        exnc = (fun e -> if t.failure = None then t.failure <- Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let token = t.next_token in
                  t.next_token <- t.next_token + 1;
                  Hashtbl.replace t.suspended token name;
                  let resumer v =
                    Hashtbl.remove t.suspended token;
                    schedule t ~at:t.now (fun () -> continue k v)
                  in
                  register t resumer)
            | Self_name -> Some (fun (k : (a, unit) continuation) -> continue k name)
            | _ -> None);
      }
  in
  schedule t ~at:t.now fiber

let run ?until t =
  let stop = ref false in
  while not !stop do
    (match t.failure with
    | Some e ->
      t.failure <- None;
      raise e
    | None -> ());
    match Heap.peek t.heap with
    | None -> stop := true
    | Some e ->
      (match until with
      | Some limit when e.time > limit ->
        t.now <- limit;
        stop := true
      | _ ->
        (match Heap.pop t.heap with
        | None -> assert false
        | Some e ->
          t.now <- e.time;
          e.action ()))
  done;
  match t.failure with
  | Some e ->
    t.failure <- None;
    raise e
  | None -> ()

let live t = t.live

let blocked_names t =
  Hashtbl.fold (fun _ name acc -> name :: acc) t.suspended []
  |> List.sort_uniq String.compare

let suspend register = Effect.perform (Suspend register)
let self_name () = Effect.perform Self_name

(* Timer callbacks ([schedule]) and code outside [run] are not fibers;
   performing an effect there raises. Observability plumbing (Trace)
   wants "whoever is running, if anyone" without caring. *)
let self_name_opt () =
  match Effect.perform Self_name with
  | name -> Some name
  | exception Effect.Unhandled Self_name -> None
let sleep delay = suspend (fun t k -> schedule t ~at:(t.now +. delay) (fun () -> k ()))
let yield () = sleep 0.0
