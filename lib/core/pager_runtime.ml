(** The Mos-hosted face of the pager runtime.

    [Mach_vm.Pager_runtime] is the transport-agnostic engine; this
    module re-exports it and adds {!serve}, which plants the engine on
    top of {!Memory_object_server} — the layering every user-level
    manager shares:

    {v
      Memory_object_server   (receive/dispatch, port-death notify)
             |
        Pager_runtime        (registry, splitting, coalescing, stats)
             |
        policy module        (backing-store read/write + consistency)
    v} *)

open Mach_kernel.Ktypes
module Mos = Memory_object_server
include Mach_vm.Pager_runtime

(** Start serving a policy from [srv_task]: returns the runtime (for
    registering objects and reading stats) and the underlying server
    (for [create_memory_object], non-protocol RPC, [stop]). Failed
    replies — the runtime's own and any the policy sends through [Mos]
    directly — are counted as [s_dropped_replies]. *)
let serve ?service_threads
    ?(on_create = fun _ _ ~memory_object:_ ~request:_ ~name:_ ~size:_ -> ())
    ?(on_other = fun _ _ _ -> ()) srv_task policy =
  let send msg =
    match Mach_kernel.Syscalls.msg_send srv_task msg with
    | Ok () -> Ok ()
    | Error _ ->
      Mos.trace_dropped_reply srv_task msg;
      Error ()
  in
  let kctx = srv_task.t_kernel.k_kctx in
  let rt =
    create ~name:srv_task.t_name ~page_size:kctx.Mach_vm.Kctx.page_size ~send policy
  in
  (* Every user-level manager's stats block lands in the host registry
     under its own namespace, e.g. "pager.vnode-pager.requests". *)
  Mach_util.Metrics.register_source kctx.Mach_vm.Kctx.metrics
    ~subsystem:("pager." ^ srv_task.t_name)
    ~reset:(fun () -> Stats.reset (stats rt))
    (fun () -> Stats.to_list (stats rt));
  let cb =
    {
      Mos.on_init =
        (fun _ ~memory_object ~request ~name:_ -> handle_init rt ~memory_object ~request);
      on_data_request =
        (fun _ ~memory_object ~request ~offset ~length ~desired_access ->
          handle_data_request rt ~memory_object ~request ~offset ~length ~desired_access);
      on_data_write =
        (fun _ ~memory_object ~offset ~data ~release ->
          handle_data_write rt ~memory_object ~offset ~data ~release);
      on_data_unlock =
        (fun _ ~memory_object ~request ~offset ~length ~desired_access ->
          handle_data_unlock rt ~memory_object ~request ~offset ~length ~desired_access);
      on_lock_completed =
        (fun _ ~memory_object ~request ~offset ~length ->
          handle_lock_completed rt ~memory_object ~request ~offset ~length);
      on_port_death = (fun _ port -> handle_port_death rt port);
      on_create =
        (fun srv ~memory_object ~request ~name ~size ->
          on_create rt srv ~memory_object ~request ~name ~size);
      on_other = (fun srv msg -> on_other rt srv msg);
    }
  in
  let srv = Mos.start ?service_threads srv_task cb in
  Mos.set_send_error_hook srv (fun () -> note_dropped_reply rt);
  (rt, srv)
