(** Skeleton for writing user-level data managers.

    A data manager implements a memory object by receiving the kernel's
    Table 3-5 calls and replying with the Table 3-6 calls. This module
    is the receive/dispatch loop every pager in §4 and §8 shares: plug
    in callbacks, then create memory objects with {!create_memory_object}
    and hand them to clients. Callbacks run on the manager task's
    service thread and may block (e.g. on disk I/O); use multiple
    manager tasks or threads for deadlock-sensitive services (§6.1). *)

open Mach_kernel.Ktypes

module Message = Mach_ipc.Message
module Prot = Mach_hw.Prot

type t

type callbacks = {
  on_init : t -> memory_object:Message.port -> request:Message.port -> name:Message.port -> unit;
  on_data_request :
    t ->
    memory_object:Message.port ->
    request:Message.port ->
    offset:int ->
    length:int ->
    desired_access:Prot.t ->
    unit;
  on_data_write :
    t -> memory_object:Message.port -> offset:int -> data:bytes -> release:(unit -> unit) -> unit;
      (** Call [release] once the data is safe (written to backing
          store); forgetting to is the §6 "fails to free flushed data"
          failure, which the kernel survives by double paging. *)
  on_data_unlock :
    t ->
    memory_object:Message.port ->
    request:Message.port ->
    offset:int ->
    length:int ->
    desired_access:Prot.t ->
    unit;
  on_create :
    t -> memory_object:Message.port -> request:Message.port -> name:Message.port -> size:int -> unit;
  on_port_death : t -> Message.port -> unit;
      (** The kernel deallocated its rights (object terminated): release
          resources for that request/name port (§4.1 [port_death]). *)
  on_lock_completed :
    t -> memory_object:Message.port -> request:Message.port option -> offset:int -> length:int -> unit;
      (** A flush/clean the manager requested has been carried out by
          the kernel identified by [request]. *)
  on_other : t -> Message.t -> unit;
      (** Non-pager-protocol traffic (the manager's own RPC service),
          e.g. [fs_read_file] requests arriving at a filesystem
          server. *)
}

val no_callbacks : callbacks
(** Every handler a no-op, except [on_data_write] which releases
    immediately. Build real managers with [{ no_callbacks with ... }]. *)

val start : ?service_threads:int -> task -> callbacks -> t
(** Spawn [service_threads] service threads (default 1) receiving
    kernel calls on every enabled port of the task, plus the
    notification thread (port deaths). Multiple threads are the §6.1
    advice: they let one thread serve a data request while another is
    blocked, and remove the server as a serial bottleneck. *)

val task : t -> task

val create_memory_object : t -> ?backlog:int -> unit -> Message.port
(** Allocate and enable a port to serve as a new memory object. *)

val stop : t -> unit
(** Ask the service loops to exit at the next message. *)

val set_send_error_hook : t -> (unit -> unit) -> unit
(** Called whenever a manager→kernel send fails (the kernel-side
    request port died); the pager runtime counts these as dropped
    replies instead of silently discarding them. *)

val trace_dropped_reply : task -> Message.t -> unit
(** Emit a ["pager"] trace point naming the reply's destination port,
    so dropped replies are diagnosable from [machsim trace] and not
    just visible as a counter. *)

(** {2 Table 3-6 calls (manager → kernel)} *)

val data_provided :
  t -> request:Message.port -> offset:int -> data:bytes -> lock_value:Prot.t -> unit

val data_lock : t -> request:Message.port -> offset:int -> length:int -> lock_value:Prot.t -> unit
val flush_request : t -> request:Message.port -> offset:int -> length:int -> unit
val clean_request : t -> request:Message.port -> offset:int -> length:int -> unit
val cache : t -> request:Message.port -> may_cache:bool -> unit
val data_unavailable : t -> request:Message.port -> offset:int -> size:int -> unit
