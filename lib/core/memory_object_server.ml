open Mach_kernel.Ktypes
module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Prot = Mach_hw.Prot
module Engine = Mach_sim.Engine
module Syscalls = Mach_kernel.Syscalls
module Pager_iface = Mach_vm.Pager_iface

type t = {
  srv_task : task;
  mutable running : bool;
  mutable on_send_error : (unit -> unit) option;
}

type callbacks = {
  on_init : t -> memory_object:Message.port -> request:Message.port -> name:Message.port -> unit;
  on_data_request :
    t ->
    memory_object:Message.port ->
    request:Message.port ->
    offset:int ->
    length:int ->
    desired_access:Prot.t ->
    unit;
  on_data_write :
    t -> memory_object:Message.port -> offset:int -> data:bytes -> release:(unit -> unit) -> unit;
  on_data_unlock :
    t ->
    memory_object:Message.port ->
    request:Message.port ->
    offset:int ->
    length:int ->
    desired_access:Prot.t ->
    unit;
  on_create :
    t -> memory_object:Message.port -> request:Message.port -> name:Message.port -> size:int -> unit;
  on_port_death : t -> Message.port -> unit;
  on_lock_completed :
    t -> memory_object:Message.port -> request:Message.port option -> offset:int -> length:int -> unit;
  on_other : t -> Message.t -> unit;
}

let task t = t.srv_task

(* A failed reply is not ignorable: the kernel side it was meant for is
   gone (its request port died), and a manager that counts on the reply
   arriving would wait forever. Route the failure to the server's hook —
   the pager runtime counts it as a dropped reply. *)
let set_send_error_hook t f = t.on_send_error <- Some f

(* A dropped reply leaves no message behind to inspect: put the
   destination port name on the trace so `machsim trace` shows who the
   reply was for, not just that one vanished. *)
let trace_dropped_reply task (msg : Message.t) =
  let tr = task.t_kernel.k_kctx.Mach_vm.Kctx.trace in
  if Mach_sim.Trace.enabled tr then
    Mach_sim.Trace.point tr ~span:msg.header.trace_span ~subsystem:"pager"
      (Format.asprintf "dropped_reply:%a" Mach_ipc.Port.pp msg.header.dest)

let send t msg =
  match Syscalls.msg_send t.srv_task msg with
  | Ok () -> ()
  | Error _ ->
    trace_dropped_reply t.srv_task msg;
    (match t.on_send_error with Some f -> f () | None -> ())

let m2k t call ~request = send t (Pager_iface.encode_m2k call ~request)

let data_provided t ~request ~offset ~data ~lock_value =
  m2k t (Pager_iface.Data_provided { offset; data; lock_value }) ~request

let data_lock t ~request ~offset ~length ~lock_value =
  m2k t (Pager_iface.Data_lock { offset; length; lock_value }) ~request

let flush_request t ~request ~offset ~length =
  m2k t (Pager_iface.Flush_request { offset; length }) ~request

let clean_request t ~request ~offset ~length =
  m2k t (Pager_iface.Clean_request { offset; length }) ~request

let cache t ~request ~may_cache = m2k t (Pager_iface.Cache { may_cache }) ~request

let data_unavailable t ~request ~offset ~size =
  m2k t (Pager_iface.Data_unavailable { offset; size }) ~request

let no_callbacks =
  {
    on_init = (fun _ ~memory_object:_ ~request:_ ~name:_ -> ());
    on_data_request = (fun _ ~memory_object:_ ~request:_ ~offset:_ ~length:_ ~desired_access:_ -> ());
    on_data_write = (fun _ ~memory_object:_ ~offset:_ ~data:_ ~release -> release ());
    on_data_unlock = (fun _ ~memory_object:_ ~request:_ ~offset:_ ~length:_ ~desired_access:_ -> ());
    on_create = (fun _ ~memory_object:_ ~request:_ ~name:_ ~size:_ -> ());
    on_port_death = (fun _ _ -> ());
    on_lock_completed = (fun _ ~memory_object:_ ~request:_ ~offset:_ ~length:_ -> ());
    on_other = (fun _ _ -> ());
  }

let dispatch t cb (msg : Message.t) =
  if not (Pager_iface.is_pager_msg msg) then cb.on_other t msg
  else
    match Pager_iface.decode_k2m msg with
    | exception Pager_iface.Malformed _ -> ()
  | Pager_iface.Init { memory_object; request; name } ->
    cb.on_init t ~memory_object ~request ~name
  | Pager_iface.Data_request { memory_object; request; offset; length; desired_access } ->
    cb.on_data_request t ~memory_object ~request ~offset ~length ~desired_access
  | Pager_iface.Data_write { memory_object; offset; data; write_id } ->
    (* The kernel passes its request port as the reply port so the
       manager's release (modelling its vm_deallocate of the
       transferred region, §6.2.2) can be routed back. *)
    let release =
      match msg.Message.header.reply with
      | Some request ->
        let released = ref false in
        fun () ->
          if not !released then begin
            released := true;
            m2k t (Pager_iface.Release_write { write_id }) ~request
          end
      | None -> fun () -> ()
    in
    cb.on_data_write t ~memory_object ~offset ~data ~release
  | Pager_iface.Data_unlock { memory_object; request; offset; length; desired_access } ->
    cb.on_data_unlock t ~memory_object ~request ~offset ~length ~desired_access
  | Pager_iface.Create { new_memory_object; request; name; size } ->
    (* Accept the receive right and start serving the object. *)
    let n = Port_space.insert t.srv_task.t_space new_memory_object Message.Receive_right in
    Port_space.enable t.srv_task.t_space n;
    cb.on_create t ~memory_object:new_memory_object ~request ~name ~size
  | Pager_iface.Lock_completed { memory_object; offset; length } ->
    cb.on_lock_completed t ~memory_object ~request:msg.Message.header.reply ~offset ~length

let start ?(service_threads = 1) srv_task cb =
  let t = { srv_task; running = true; on_send_error = None } in
  for i = 1 to service_threads do
    Engine.spawn srv_task.t_kernel.k_engine
      ~name:(Printf.sprintf "%s.pager-service-%d" srv_task.t_name i)
      (fun () ->
        let trace = srv_task.t_kernel.k_kctx.Mach_vm.Kctx.trace in
        let rec loop () =
          if t.running then begin
            (match Syscalls.msg_receive srv_task ~from:`Any () with
            | Ok msg ->
              (* Serve the request under the faulting thread's span: the
                 manager's work is a leg of that fault's causal path. *)
              Mach_sim.Trace.adopt trace msg.Message.header.Message.trace_span (fun () ->
                  dispatch t cb msg)
            | Error _ -> ());
            loop ()
          end
        in
        loop ())
  done;
  Engine.spawn srv_task.t_kernel.k_engine ~name:(srv_task.t_name ^ ".notify") (fun () ->
      let rec loop () =
        if t.running then begin
          (match Port_space.next_notification srv_task.t_space () with
          | Some (Port_space.Port_deleted name) -> (
            match Port_space.port_of_name srv_task.t_space name with
            | Some port -> cb.on_port_death t port
            | None -> ())
          | None -> ());
          loop ()
        end
      in
      loop ());
  t

let create_memory_object t ?backlog () =
  let name = Syscalls.port_allocate t.srv_task ?backlog () in
  Syscalls.port_enable t.srv_task name;
  Port_space.lookup_exn t.srv_task.t_space name

let stop t = t.running <- false
