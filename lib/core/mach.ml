(** Public umbrella API for the Mach reproduction.

    [Mach] re-exports the pieces a client program needs: boot a system
    ({!Kernel.create_system} or {!Kernel.create_cluster}), create tasks
    and threads, use the Table 3-1..3-4 system calls ({!Syscalls}), and
    write data managers with {!Memory_object_server}.

    {[
      let sys = Mach.Kernel.create_system () in
      let task = Mach.Task.create sys.kernel ~name:"app" () in
      Mach.Thread.spawn task (fun () ->
          let addr = Mach.Syscalls.vm_allocate task ~size:65536 ~anywhere:true () in
          ...) |> ignore;
      Mach.run sys.engine
    ]} *)

module Engine = Mach_sim.Engine
module Trace = Mach_sim.Trace
module Metrics = Mach_util.Metrics
module Ivar = Mach_sim.Ivar
module Mailbox = Mach_sim.Mailbox
module Semaphore = Mach_sim.Semaphore
module Waitq = Mach_sim.Waitq
module Machine = Mach_hw.Machine
module Prot = Mach_hw.Prot
module Phys_mem = Mach_hw.Phys_mem
module Pmap = Mach_hw.Pmap
module Disk = Mach_hw.Disk
module Net = Mach_hw.Net
module Context = Mach_ipc.Context
module Port = Mach_ipc.Port
module Message = Mach_ipc.Message
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Vm_types = Mach_vm.Vm_types
module Vm_object = Mach_vm.Vm_object
module Vm_map = Mach_vm.Vm_map
module Fault = Mach_vm.Fault
module Access = Mach_vm.Access
module Pager_iface = Mach_vm.Pager_iface
module Pageout = Mach_vm.Pageout
module Kctx = Mach_vm.Kctx
module Ktypes = Mach_kernel.Ktypes
module Kernel = Mach_kernel.Kernel
module Task = Mach_kernel.Task
module Thread = Mach_kernel.Thread
module Cpu = Mach_kernel.Cpu
module Syscalls = Mach_kernel.Syscalls
module Default_pager = Mach_kernel.Default_pager
module Name_server = Mach_kernel.Name_server
module Task_server = Mach_kernel.Task_server
module Memory_object_server = Memory_object_server
module Pager_runtime = Pager_runtime

type task = Ktypes.task
type kernel = Ktypes.kernel

let run ?until engine = Engine.run ?until engine

let spawn_and_run ?until (sys : Kernel.system) ~name f =
  let task = Task.create sys.Kernel.kernel ~name () in
  ignore (Thread.spawn task ~name:(name ^ ".main") (fun () -> f task));
  run ?until sys.Kernel.engine
