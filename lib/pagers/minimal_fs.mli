(** The §4.1 minimal filesystem: a user-level server with
    read-whole-file / write-whole-file semantics built on the external
    memory management interface.

    [fs_read_file] returns new virtual memory, mapped copy-on-write into
    the client's address space; the client's changes are private until
    an explicit [fs_write_file]. The server is the data manager of one
    memory object per file: client page faults become
    [pager_data_request] messages answered from disk, and because the
    server permits caching ([pager_cache true]), file pages stay in the
    kernel's physical memory cache across uses — the §9 performance
    claim. The server never receives [pager_data_write] (client changes
    never reach the file object). *)

open Mach_kernel.Ktypes

type t

val start :
  kernel ->
  ?name:string ->
  ?enable_cache:bool ->
  ?service_threads:int ->
  disk:Mach_hw.Disk.t ->
  format:bool ->
  unit ->
  t
(** Spawn the filesystem server task on [kernel]. [format] initialises
    the disk; otherwise an existing filesystem is mounted.
    [enable_cache] (default true) controls whether the server issues
    [pager_cache true] — switching it off removes the kernel's
    permission to keep file pages cached after unmapping, which is the
    §9 ablation. *)

val service_port : t -> Mach_ipc.Message.port
(** Where clients send requests (hand this to client tasks). *)

val server_task : t -> task
val fs : t -> Mach_fs.Fs_layout.t
(** Direct access to the underlying layout (tests and workload setup —
    bypasses the server and charges disk time to the caller). *)

val file_object : t -> string -> Mach_ipc.Message.port
(** The file's memory-object port (registering the file with the pager
    runtime if needed) — conformance tests drive the protocol on it
    directly. *)

val runtime_stats : t -> Mach_vm.Pager_runtime.Stats.t
(** The shared per-pager counters (requests, pages served, …). *)

(** {2 Client library (the paper's [fs_read_file] / [fs_write_file])} *)

module Client : sig
  type error = [ `No_such_file | `Server_error of string | `Ipc_failure ]

  val pp_error : Format.formatter -> error -> unit

  val read_file :
    task -> server:Mach_ipc.Message.port -> string -> (int * int, error) result
  (** [read_file task ~server name] returns [(address, size)]: the file
      contents newly mapped (copy-on-write) into [task]'s address
      space. The client should [vm_deallocate] when done (§4.1). *)

  val map_file :
    task -> server:Mach_ipc.Message.port -> string -> (int * int, error) result
  (** Map the file's memory object directly ([vm_allocate_with_pager]):
      read/write access to the object itself, not a copy — the paper's
      footnote 7 distinction from {!read_file}. *)

  val write_file :
    task -> server:Mach_ipc.Message.port -> string -> bytes -> (unit, error) result
  (** Store back whole-file contents (creating the file); invalidates
      cached pages of the file's memory object everywhere. *)

  val list_files : task -> server:Mach_ipc.Message.port -> (string list, error) result
end
