(** Copy-on-reference task migration (§8.2, after Zayas).

    The migration manager creates a memory object representing each
    region of the source task's (frozen) address space and maps it into
    a new task on the destination host. The destination kernel treats
    page faults of the migrated task as paging requests on those
    objects, which the manager answers by reading the source task's
    memory — so pages cross the network only when referenced.

    Three strategies are provided for the E7 comparison:
    - [Eager_copy]: classic full-transfer before resume;
    - [Copy_on_reference]: pure demand paging;
    - [Pre_paging n]: demand paging, but each fault ships [n] extra
      trailing pages ("the migration manager may provide some data in
      advance for tasks with predictable access patterns"). *)

open Mach_kernel.Ktypes

type t

type strategy = Eager_copy | Copy_on_reference | Pre_paging of int

type migration = {
  mg_task : task;  (** the new task on the destination host *)
  mg_freeze_us : float;  (** simulated time the source was frozen before the
                             destination task could start (initial latency) *)
}

val start : kernel -> ?name:string -> unit -> t
(** The migration manager task; run it on the source task's host. *)

val server_task : t -> task

val migrate : t -> src:task -> dst_kernel:kernel -> strategy -> migration
(** Move [src]'s address space to a new task on [dst_kernel]. The
    source task must be frozen (no running threads); it is kept alive
    as the paging backing store until {!finish}. *)

val pages_transferred : t -> int
(** Pages shipped across so far (eager + demand + pre-paged). *)

val back_region :
  t ->
  src:task ->
  base:int ->
  size:int ->
  strategy ->
  Mach_ipc.Message.port
(** Create a memory object backed by [size] bytes at [base] in (frozen)
    [src] — the building block of {!migrate}, exposed so tests can drive
    the pager protocol on a single region. *)

val runtime_stats : t -> Mach_vm.Pager_runtime.Stats.t
(** The shared per-pager counters (requests, pages served, …). *)

val finish : t -> migration -> unit
(** Declare the migration over; terminates the source task backing the
    migrated regions (demand paging stops working after this). *)
