(** Consistent network shared memory (§4.2).

    A data manager serving one memory object to clients on multiple
    hosts with independent Mach kernels. Coherence follows the
    single-writer / multiple-reader invalidation protocol of the
    paper's walkthrough (after Li & Hudak):

    - read faults are answered with the data write-locked
      ([pager_data_provided] with a write lock value);
    - a write fault or upgrade triggers [pager_flush_request] to every
      other kernel caching the page; dirty copies come back as
      [pager_data_write]; once every invalidation is confirmed, the
      writer is granted access ([pager_data_lock] with no lock, or a
      fresh unlocked [pager_data_provided]).

    The server records each kernel by the pager request port it
    presented in [pager_init], exactly as §3.4.1 prescribes. *)

open Mach_kernel.Ktypes

type t

val start : kernel -> ?name:string -> unit -> t
(** Spawn the shared memory server task on [kernel] (clients may live
    on any host of the cluster). *)

val server_task : t -> task

val create_region : t -> size:int -> Mach_ipc.Message.port
(** Allocate a shared-memory region; returns its memory object, which
    any client task maps with [vm_allocate_with_pager] (how clients
    learn the port — a name service — is out of scope, as in the
    paper's example). *)

val write_initial : t -> region:Mach_ipc.Message.port -> offset:int -> bytes -> unit
(** Seed region contents before clients attach. *)

val read_authoritative : t -> region:Mach_ipc.Message.port -> offset:int -> len:int -> bytes
(** The server's current authoritative bytes (for tests: pages checked
    out to a writer may be newer in that kernel's cache). *)

(** {2 Introspection (tests, benches)} *)

type page_view = [ `Idle | `Readers of int | `Writer ]

val page_state : t -> region:Mach_ipc.Message.port -> page:int -> page_view
val invalidations : t -> int
(** Total flush requests issued. *)

val grants : t -> int
(** Total write grants issued. *)

val runtime_stats : t -> Mach_vm.Pager_runtime.Stats.t
(** The shared per-pager counters (requests, pages served, …). *)
