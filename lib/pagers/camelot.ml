module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Prot = Mach_hw.Prot
module Disk = Mach_hw.Disk
module Codec = Mach_util.Codec
module Engine = Mach_sim.Engine
module Task = Mach_kernel.Task
module Thread = Mach_kernel.Thread
module Syscalls = Mach_kernel.Syscalls
module Mos = Mach.Memory_object_server
module Fs_layout = Mach_fs.Fs_layout

type tid = int

(* ---- write-ahead log --------------------------------------------------- *)

module Log = struct
  type record =
    | Update of { lsn : int; tid : tid; segment : string; offset : int; old_v : bytes; new_v : bytes }
    | Commit of { lsn : int; tid : tid }
    | Abort of { lsn : int; tid : tid }

  let lsn_of = function Update { lsn; _ } | Commit { lsn; _ } | Abort { lsn; _ } -> lsn

  type t = {
    disk : Disk.t;
    mutable next_lsn : int;
    mutable next_block : int;
    mutable pending : record list;  (* newest first *)
    mutable forced_lsn : int;
    mutable forces : int;
  }

  let block_magic = 0x4C4F_4731 (* "LOG1" *)

  let create disk = { disk; next_lsn = 1; next_block = 0; pending = []; forced_lsn = 0; forces = 0 }

  let append t mk =
    let lsn = t.next_lsn in
    t.next_lsn <- lsn + 1;
    let r = mk lsn in
    t.pending <- r :: t.pending;
    lsn

  let encode_record r =
    let e = Codec.Enc.create () in
    (match r with
    | Update { lsn; tid; segment; offset; old_v; new_v } ->
      Codec.Enc.u8 e 1;
      Codec.Enc.int e lsn;
      Codec.Enc.int e tid;
      Codec.Enc.string e segment;
      Codec.Enc.int e offset;
      Codec.Enc.bytes e old_v;
      Codec.Enc.bytes e new_v
    | Commit { lsn; tid } ->
      Codec.Enc.u8 e 2;
      Codec.Enc.int e lsn;
      Codec.Enc.int e tid
    | Abort { lsn; tid } ->
      Codec.Enc.u8 e 3;
      Codec.Enc.int e lsn;
      Codec.Enc.int e tid);
    Codec.Enc.to_bytes e

  let decode_record b =
    let d = Codec.Dec.of_bytes b in
    match Codec.Dec.u8 d with
    | 1 ->
      let lsn = Codec.Dec.int d in
      let tid = Codec.Dec.int d in
      let segment = Codec.Dec.string d in
      let offset = Codec.Dec.int d in
      let old_v = Codec.Dec.bytes d in
      let new_v = Codec.Dec.bytes d in
      Update { lsn; tid; segment; offset; old_v; new_v }
    | 2 ->
      let lsn = Codec.Dec.int d in
      let tid = Codec.Dec.int d in
      Commit { lsn; tid }
    | 3 ->
      let lsn = Codec.Dec.int d in
      let tid = Codec.Dec.int d in
      Abort { lsn; tid }
    | _ -> failwith "bad log record"

  (* Pack pending records into blocks (whole records per block) and
     write them out. *)
  let force t ~upto =
    if upto > t.forced_lsn && t.pending <> [] then begin
      t.forces <- t.forces + 1;
      let bs = Disk.block_size t.disk in
      let records = List.rev t.pending in
      t.pending <- [];
      let flush_block recs =
        match recs with
        | [] -> ()
        | _ ->
          let e = Codec.Enc.create () in
          Codec.Enc.u32 e block_magic;
          Codec.Enc.u16 e (List.length recs);
          List.iter (fun r -> Codec.Enc.bytes e (encode_record r)) (List.rev recs);
          let b = Codec.Enc.to_bytes e in
          assert (Bytes.length b <= bs);
          Disk.write t.disk ~block:t.next_block b;
          t.next_block <- t.next_block + 1
      in
      let rec pack acc acc_size = function
        | [] -> flush_block acc
        | r :: rest ->
          let enc = encode_record r in
          let rsize = Bytes.length enc + 4 in
          if rsize + 6 > bs then failwith "log record larger than a log block"
          else if acc_size + rsize > bs then begin
            flush_block acc;
            pack [ r ] (6 + rsize) rest
          end
          else pack (r :: acc) (acc_size + rsize) rest
      in
      pack [] 6 records;
      t.forced_lsn <- t.next_lsn - 1
    end

  (* Recovery scan: every block that made it to disk, in order. *)
  let read_all disk =
    let rec go block acc =
      if block >= Disk.blocks disk then List.rev acc
      else begin
        let raw = Disk.read_raw disk ~block in
        let d = Codec.Dec.of_bytes raw in
        match Codec.Dec.u32 d with
        | m when m <> block_magic -> List.rev acc
        | _ ->
          let count = Codec.Dec.u16 d in
          let recs = List.init count (fun _ -> decode_record (Codec.Dec.bytes d)) in
          go (block + 1) (List.rev_append recs acc)
      end
    in
    go 0 []
end

(* ---- server ------------------------------------------------------------ *)

module Rt = Mach.Pager_runtime

type segment = {
  sg_name : string;
  mutable sg_size : int;
  mutable sg_mapping : int option;  (** server's own mapping, for undo *)
  sg_page_lsn : (int, int) Hashtbl.t;  (** page index → latest update LSN *)
}

type txn = { tx_id : tid; mutable tx_updates : (string * int * bytes) list (* seg, off, old *); mutable tx_open : bool }

type t = {
  rt : segment Rt.t;
  srv : Mos.t;
  service : Message.port;
  log : Log.t;
  fs : Fs_layout.t;  (** data disk *)
  page_size : int;
  by_name : (string, segment Rt.obj) Hashtbl.t;
  txns : (tid, txn) Hashtbl.t;
  mutable next_tid : int;
  mutable wal_violations : int;
  mutable recovered_redo : int;
  mutable recovered_undo : int;
}

let server_task t = Mos.task t.srv
let log_forces t = t.log.Log.forces
let wal_violations t = t.wal_violations
let recovered_redo t = t.recovered_redo
let recovered_undo t = t.recovered_undo
let runtime_stats t = Rt.stats t.rt

let id_map_segment = 3201
let id_begin = 3202
let id_log_write = 3203
let id_commit = 3204
let id_abort = 3205
let id_reply = 3290

let get_segment t name ~size =
  match Hashtbl.find_opt t.by_name name with
  | Some o ->
    let s = o.Rt.o_data in
    if size > s.sg_size then s.sg_size <- size;
    o
  | None ->
    Fs_layout.create t.fs name;
    let sg_object = Mos.create_memory_object t.srv () in
    let s = { sg_name = name; sg_size = size; sg_mapping = None; sg_page_lsn = Hashtbl.create 32 } in
    let o = Rt.register t.rt ~memory_object:sg_object s in
    Hashtbl.replace t.by_name name o;
    o

let segment_object t name ~size = (get_segment t name ~size).Rt.o_port

(* --- pager policy --------------------------------------------------------
   The runtime owns the request/write splitting; camelot contributes the
   recoverable-storage policy: pages live on the data disk, and the §8.3
   write-ahead rule is enforced once per write run. *)

(* The §8.3 rule: log records first, then the pages. A write may carry a
   run of adjacent pages; the log is forced ONCE, to the highest LSN any
   page in the run carries, before any of them reaches the data disk —
   run-sized writes amortise the force as well as the message. *)
let prepare_write t seg ~offset ~data =
  let ps = t.page_size in
  let first_idx = offset / ps in
  let npages = max 1 ((Bytes.length data + ps - 1) / ps) in
  let need = ref 0 in
  for i = 0 to npages - 1 do
    let lsn = Option.value ~default:0 (Hashtbl.find_opt seg.sg_page_lsn (first_idx + i)) in
    if lsn > !need then need := lsn
  done;
  if t.log.Log.forced_lsn < !need then Log.force t.log ~upto:!need;
  if t.log.Log.forced_lsn < !need then t.wal_violations <- t.wal_violations + 1

let policy get =
  {
    Rt.default_policy with
    Rt.p_read =
      (fun rt o ~request:_ ~page ~desired_access:_ ->
        let t = get () in
        let seg = o.Rt.o_data in
        let ps = Rt.page_size rt in
        let bs = Fs_layout.block_size t.fs in
        let first = page * ps / bs in
        let last = ((page * ps) + ps - 1) / bs in
        let any_stored = ref false in
        for i = first to last do
          if Fs_layout.read_block t.fs seg.sg_name ~index:i <> None then any_stored := true
        done;
        if not !any_stored then Rt.Unavailable (* never written: zero-fill *)
        else
          Rt.Data
            (Rt.Blocks.read_range ~block_size:bs
               ~read:(fun ~index -> Fs_layout.read_block t.fs seg.sg_name ~index)
               ~offset:(page * ps) ~len:ps));
    p_prepare_write =
      (fun _ o ~offset ~data -> prepare_write (get ()) o.Rt.o_data ~offset ~data);
    p_write =
      (fun rt o ~page ~data ->
        let t = get () in
        if Bytes.length data > 0 then
          Rt.Blocks.write_range
            ~block_size:(Fs_layout.block_size t.fs)
            ~read:(fun ~index -> Fs_layout.read_block t.fs o.Rt.o_data.sg_name ~index)
            ~write:(fun ~index b -> Fs_layout.write_block t.fs o.Rt.o_data.sg_name ~index b)
            ~offset:(page * Rt.page_size rt) ~data);
  }

(* --- transactions ------------------------------------------------------- *)

(* Apply an update to the data disk, splitting across block boundaries
   (log records may straddle pages). *)
let apply_to_disk t ~segment ~offset data =
  Rt.Blocks.write_range
    ~block_size:(Fs_layout.block_size t.fs)
    ~read:(fun ~index -> Fs_layout.read_block t.fs segment ~index)
    ~write:(fun ~index b -> Fs_layout.write_block t.fs segment ~index b)
    ~offset ~data

(* Undo through the server's own mapping so every cached copy sees it;
   §6.1's advice applies — this runs on a worker thread while the
   service thread stays free to answer the resulting data requests. *)
let server_mapping t (o : segment Rt.obj) =
  let seg = o.Rt.o_data in
  match seg.sg_mapping with
  | Some addr -> addr
  | None ->
    let addr =
      Syscalls.vm_allocate_with_pager (server_task t) ~size:seg.sg_size ~anywhere:true
        ~memory_object:o.Rt.o_port ~offset:0 ()
    in
    seg.sg_mapping <- Some addr;
    addr

let undo_txn t txn =
  List.iter
    (fun (seg_name, offset, old_v) ->
      match Hashtbl.find_opt t.by_name seg_name with
      | None -> ()
      | Some seg -> (
        let base = server_mapping t seg in
        match Syscalls.write_bytes (server_task t) ~addr:(base + offset) old_v () with
        | Ok () -> ()
        | Error _ ->
          (* Fall back to the disk image (mapping unavailable). *)
          apply_to_disk t ~segment:seg_name ~offset old_v))
    txn.tx_updates

(* --- RPC ---------------------------------------------------------------- *)

let reply_to t (msg : Message.t) items =
  match msg.Message.header.reply with
  | None -> ()
  | Some reply -> (
    match Syscalls.msg_send (server_task t) (Message.make ~msg_id:id_reply ~dest:reply items) with
    | Ok () | Error _ -> ())

let status_item ok detail =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Codec.Enc.string e detail;
  Message.Data (Codec.Enc.to_bytes e)

let int_item v =
  let e = Codec.Enc.create () in
  Codec.Enc.int e v;
  Message.Data (Codec.Enc.to_bytes e)

let on_other t (msg : Message.t) =
  let id = msg.Message.header.msg_id in
  match Message.data_exn msg with
  | exception Not_found -> ()
  | payload -> (
    let d = Codec.Dec.of_bytes payload in
    try
      if id = id_map_segment then begin
        let name = Codec.Dec.string d in
        let size = Codec.Dec.int d in
        let o = get_segment t name ~size in
        reply_to t msg
          [
            status_item true "";
            Message.Caps [ { Message.cap_port = o.Rt.o_port; cap_right = Message.Send_right } ];
            int_item o.Rt.o_data.sg_size;
          ]
      end
      else if id = id_begin then begin
        let tid = t.next_tid in
        t.next_tid <- tid + 1;
        Hashtbl.replace t.txns tid { tx_id = tid; tx_updates = []; tx_open = true };
        reply_to t msg [ status_item true ""; int_item tid ]
      end
      else if id = id_log_write then begin
        let tid = Codec.Dec.int d in
        let seg_name = Codec.Dec.string d in
        let offset = Codec.Dec.int d in
        let old_v = Codec.Dec.bytes d in
        let new_v = Codec.Dec.bytes d in
        match (Hashtbl.find_opt t.txns tid, Hashtbl.find_opt t.by_name seg_name) with
        | Some txn, Some seg when txn.tx_open ->
          let lsn =
            Log.append t.log (fun lsn ->
                Log.Update { lsn; tid; segment = seg_name; offset; old_v; new_v })
          in
          txn.tx_updates <- (seg_name, offset, old_v) :: txn.tx_updates;
          (* Every page the update touches carries the LSN. *)
          let first = offset / t.page_size in
          let last = (offset + Bytes.length new_v - 1) / t.page_size in
          for p = first to last do
            Hashtbl.replace seg.Rt.o_data.sg_page_lsn p lsn
          done;
          reply_to t msg [ status_item true "" ]
        | Some _, Some _ -> reply_to t msg [ status_item false "transaction closed" ]
        | None, _ -> reply_to t msg [ status_item false "unknown transaction" ]
        | _, None -> reply_to t msg [ status_item false "unknown segment" ]
      end
      else if id = id_commit then begin
        let tid = Codec.Dec.int d in
        match Hashtbl.find_opt t.txns tid with
        | Some txn when txn.tx_open ->
          txn.tx_open <- false;
          let lsn = Log.append t.log (fun lsn -> Log.Commit { lsn; tid }) in
          Log.force t.log ~upto:lsn;
          reply_to t msg [ status_item true "" ]
        | Some _ -> reply_to t msg [ status_item false "transaction closed" ]
        | None -> reply_to t msg [ status_item false "unknown transaction" ]
      end
      else if id = id_abort then begin
        let tid = Codec.Dec.int d in
        match Hashtbl.find_opt t.txns tid with
        | Some txn when txn.tx_open ->
          txn.tx_open <- false;
          ignore (Log.append t.log (fun lsn -> Log.Abort { lsn; tid }));
          (* Undo on a worker thread: the service loop must stay free to
             answer the data requests the undo writes will fault in. *)
          ignore
            (Thread.spawn (server_task t) ~name:"camelot.undo" (fun () ->
                 undo_txn t txn;
                 reply_to t msg [ status_item true "" ]))
        | Some _ -> reply_to t msg [ status_item false "transaction closed" ]
        | None -> reply_to t msg [ status_item false "unknown transaction" ]
      end
      else reply_to t msg [ status_item false "unknown operation" ]
    with
    | Codec.Dec.Truncated -> reply_to t msg [ status_item false "malformed request" ]
    | Fs_layout.Fs_error reason -> reply_to t msg [ status_item false reason ])

(* --- recovery ----------------------------------------------------------- *)

let recover t =
  let records = Log.read_all t.log.Log.disk in
  (* Resume LSN/block counters past what survived. *)
  List.iter
    (fun r ->
      if Log.lsn_of r >= t.log.Log.next_lsn then t.log.Log.next_lsn <- Log.lsn_of r + 1)
    records;
  t.log.Log.forced_lsn <- t.log.Log.next_lsn - 1;
  let rec count_blocks b =
    if b >= Disk.blocks t.log.Log.disk then b
    else
      let raw = Disk.read_raw t.log.Log.disk ~block:b in
      let d = Codec.Dec.of_bytes raw in
      if (try Codec.Dec.u32 d = Log.block_magic with _ -> false) then count_blocks (b + 1) else b
  in
  t.log.Log.next_block <- count_blocks 0;
  let winners = Hashtbl.create 16 in
  List.iter (function Log.Commit { tid; _ } -> Hashtbl.replace winners tid () | _ -> ()) records;
  (* Redo winners forward. *)
  List.iter
    (function
      | Log.Update { tid; segment; offset; new_v; _ } when Hashtbl.mem winners tid ->
        Fs_layout.create t.fs segment;
        apply_to_disk t ~segment ~offset new_v;
        t.recovered_redo <- t.recovered_redo + 1
      | _ -> ())
    records;
  (* Undo losers backward. *)
  List.iter
    (function
      | Log.Update { tid; segment; offset; old_v; _ } when not (Hashtbl.mem winners tid) ->
        Fs_layout.create t.fs segment;
        apply_to_disk t ~segment ~offset old_v;
        t.recovered_undo <- t.recovered_undo + 1
      | _ -> ())
    (List.rev records)

(* --- boot ---------------------------------------------------------------- *)

let start kernel ?(name = "camelot") ~log_disk ~data_disk ~format () =
  let srv_task = Task.create kernel ~name () in
  let service_name = Syscalls.port_allocate srv_task ~backlog:128 () in
  Syscalls.port_enable srv_task service_name;
  let service = Port_space.lookup_exn (Task.space srv_task) service_name in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let rt, srv =
    Rt.serve ~on_other:(fun _rt _srv msg -> on_other (get ()) msg) srv_task (policy get)
  in
  let fs = if format then Fs_layout.format data_disk ~max_files:128 else Fs_layout.mount data_disk in
  let t =
    {
      rt;
      srv;
      service;
      log = Log.create log_disk;
      fs;
      page_size = kernel.Mach_kernel.Ktypes.k_kctx.Mach_vm.Kctx.page_size;
      by_name = Hashtbl.create 16;
      txns = Hashtbl.create 32;
      next_tid = 1;
      wal_violations = 0;
      recovered_redo = 0;
      recovered_undo = 0;
    }
  in
  t_ref := Some t;
  if not format then recover t;
  t

let service_port t = t.service

let segment_bytes t name ~off ~len =
  Rt.Blocks.read_range
    ~block_size:(Fs_layout.block_size t.fs)
    ~read:(fun ~index -> Fs_layout.read_block t.fs name ~index)
    ~offset:off ~len

module Client = struct
  type error = [ `Server_error of string | `Ipc_failure | `Memory of Mach_vm.Access.error ]

  let pp_error fmt = function
    | `Server_error s -> Format.fprintf fmt "server error: %s" s
    | `Ipc_failure -> Format.fprintf fmt "ipc failure"
    | `Memory e -> Format.fprintf fmt "memory: %a" Mach_vm.Access.pp_error e

  let rpc task ~server ~msg_id payload =
    let reply_name = Syscalls.port_allocate task () in
    let reply_port = Port_space.lookup_exn (Task.space task) reply_name in
    let msg = Message.make ~reply:reply_port ~msg_id ~dest:server [ Message.Data payload ] in
    let result = Syscalls.msg_rpc task msg () in
    Syscalls.port_deallocate task reply_name;
    match result with Ok reply -> Ok reply | Error _ -> Error `Ipc_failure

  let parse_status (reply : Message.t) =
    match reply.Message.body with
    | Message.Data status :: rest ->
      let d = Codec.Dec.of_bytes status in
      let ok = Codec.Dec.bool d in
      let detail = Codec.Dec.string d in
      if ok then Ok rest else Error (`Server_error detail)
    | _ -> Error (`Server_error "malformed reply")

  let map_segment task ~server name ~size =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    Codec.Enc.int e size;
    match rpc task ~server ~msg_id:id_map_segment (Codec.Enc.to_bytes e) with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Caps [ cap ] :: Message.Data size_b :: _) ->
        let d = Codec.Dec.of_bytes size_b in
        let size = max size (Codec.Dec.int d) in
        let addr =
          Syscalls.vm_allocate_with_pager task ~size ~anywhere:true
            ~memory_object:cap.Message.cap_port ~offset:0 ()
        in
        Ok addr
      | Ok _ -> Error (`Server_error "malformed reply"))

  let simple_int_rpc task ~server ~msg_id payload =
    match rpc task ~server ~msg_id payload with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Data v :: _) -> Ok (Codec.Dec.int (Codec.Dec.of_bytes v))
      | Ok _ -> Error (`Server_error "malformed reply"))

  let begin_txn task ~server =
    let e = Codec.Enc.create () in
    Codec.Enc.string e "";
    simple_int_rpc task ~server ~msg_id:id_begin (Codec.Enc.to_bytes e)

  let unit_rpc task ~server ~msg_id payload =
    match rpc task ~server ~msg_id payload with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with Ok _ -> Ok () | Error _ as err -> err)

  let store task ~server tid ~segment ~base ~offset data =
    (* Read the old value, log, then update in place. *)
    match Syscalls.read_bytes task ~addr:(base + offset) ~len:(Bytes.length data) () with
    | Error e -> Error (`Memory e)
    | Ok old_v -> (
      let e = Codec.Enc.create () in
      Codec.Enc.int e tid;
      Codec.Enc.string e segment;
      Codec.Enc.int e offset;
      Codec.Enc.bytes e old_v;
      Codec.Enc.bytes e data;
      match unit_rpc task ~server ~msg_id:id_log_write (Codec.Enc.to_bytes e) with
      | Error _ as err -> err
      | Ok () -> (
        match Syscalls.write_bytes task ~addr:(base + offset) data () with
        | Ok () -> Ok ()
        | Error e -> Error (`Memory e)))

  let commit task ~server tid =
    let e = Codec.Enc.create () in
    Codec.Enc.int e tid;
    unit_rpc task ~server ~msg_id:id_commit (Codec.Enc.to_bytes e)

  let abort task ~server tid =
    let e = Codec.Enc.create () in
    Codec.Enc.int e tid;
    unit_rpc task ~server ~msg_id:id_abort (Codec.Enc.to_bytes e)
end
