open Mach_kernel.Ktypes
module Message = Mach_ipc.Message
module Engine = Mach_sim.Engine
module Task = Mach_kernel.Task
module Syscalls = Mach_kernel.Syscalls
module Vm_map = Mach_vm.Vm_map
module Access = Mach_vm.Access
module Mos = Mach.Memory_object_server
module Rt = Mach.Pager_runtime

type strategy = Eager_copy | Copy_on_reference | Pre_paging of int
type migration = { mg_task : task; mg_freeze_us : float }

type backed_region = {
  br_src : task;
  br_base : int;  (** address of the region in the source task *)
  br_size : int;
  br_strategy : strategy;
}

type t = {
  rt : backed_region Rt.t;
  srv : Mos.t;
  mutable shipped : int;  (** eager pages; demand pages are counted by the runtime *)
  mutable sources : (migration * task) list;
}

let server_task t = Mos.task t.srv
let runtime_stats t = Rt.stats t.rt

let pages_transferred t =
  t.shipped + (Rt.stats t.rt).Rt.Stats.s_pages_served

let page_size_of task =
  (Task.kernel task).Mach_kernel.Ktypes.k_kctx.Mach_vm.Kctx.page_size

(* How much data actually crosses the network is this manager's policy:
   migration pays per page shipped, so copy-on-reference reshapes every
   cluster down to the demanded page (the kernel re-requests a clustered
   neighbor if it is ever truly referenced) and pre-paging serves its own
   fixed lookahead ("advanced data managers may provide more data than
   requested"). The per-page reads come out of the frozen source task. *)
let policy =
  {
    Rt.default_policy with
    Rt.p_reshape =
      (fun rt o ~first ~npages:_ ->
        let br = o.Rt.o_data in
        let ps = Rt.page_size rt in
        match br.br_strategy with
        | Eager_copy | Copy_on_reference -> (first, 1)
        | Pre_paging n ->
          let region_pages = max 1 ((br.br_size + ps - 1) / ps) in
          (first, min (1 + n) (max 1 (region_pages - first))));
    p_read =
      (fun rt o ~request:_ ~page ~desired_access:_ ->
        let br = o.Rt.o_data in
        let ps = Rt.page_size rt in
        let off = page * ps in
        if off >= br.br_size then Rt.Unavailable
        else begin
          let len = min ps (br.br_size - off) in
          match
            Access.read_bytes
              (Task.kernel br.br_src).Mach_kernel.Ktypes.k_kctx (Task.map br.br_src)
              ~addr:(br.br_base + off) ~len ()
          with
          | Ok data -> Rt.Data data
          | Error _ -> Rt.Unavailable
        end);
  }

let start kernel ?(name = "migration-manager") () =
  let srv_task = Task.create kernel ~name () in
  let rt, srv = Rt.serve srv_task policy in
  { rt; srv; shipped = 0; sources = [] }

(* One memory object backed by a (frozen) source region. *)
let back_region t ~src ~base ~size strategy =
  let memory_object = Mos.create_memory_object t.srv () in
  ignore
    (Rt.register t.rt ~memory_object
       { br_src = src; br_base = base; br_size = size; br_strategy = strategy });
  memory_object

(* Ship the whole address space up front: the manager reads every source
   page and writes it into the destination task through a per-page
   message to a destination-side agent (charging the network for every
   byte, referenced or not). *)
let eager_copy t ~src ~dst regions =
  let src_kctx = (Task.kernel src).Mach_kernel.Ktypes.k_kctx in
  let dst_kernel = Task.kernel dst in
  let ps = page_size_of src in
  (* Destination-side agent that lands pages into the new task. *)
  let agent_task = Task.create dst_kernel ~name:"migration-agent" () in
  let landing_name = Syscalls.port_allocate agent_task ~backlog:8 () in
  Syscalls.port_enable agent_task landing_name;
  let landing = Mach_ipc.Port_space.lookup_exn (Task.space agent_task) landing_name in
  let total_pages =
    List.fold_left (fun acc r -> acc + ((r.Vm_map.ri_size + ps - 1) / ps)) 0 regions
  in
  let done_ = Mach_sim.Ivar.create () in
  ignore
    (Mach_kernel.Thread.spawn agent_task ~name:"migration-agent.main" (fun () ->
         let landed = ref 0 in
         while !landed < total_pages do
           match Syscalls.msg_receive agent_task ~from:(`Port landing_name) () with
           | Ok msg -> (
             match Message.data_exn msg with
             | header -> (
               let d = Mach_util.Codec.Dec.of_bytes header in
               let addr = Mach_util.Codec.Dec.int d in
               let data = Mach_util.Codec.Dec.bytes d in
               incr landed;
               match Syscalls.write_bytes dst ~addr data () with
               | Ok () -> ()
               | Error _ -> ())
             | exception Not_found -> ())
           | Error _ -> ()
         done;
         Mach_sim.Ivar.fill done_ ()));
  List.iter
    (fun r ->
      let base = r.Vm_map.ri_start in
      let npages = (r.Vm_map.ri_size + ps - 1) / ps in
      for i = 0 to npages - 1 do
        match Access.read_bytes src_kctx (Task.map src) ~addr:(base + (i * ps)) ~len:ps () with
        | Ok data ->
          t.shipped <- t.shipped + 1;
          let e = Mach_util.Codec.Enc.create () in
          Mach_util.Codec.Enc.int e (base + (i * ps));
          Mach_util.Codec.Enc.bytes e data;
          let msg =
            Message.make ~dest:landing [ Message.Data (Mach_util.Codec.Enc.to_bytes e) ]
          in
          (match Syscalls.msg_send (server_task t) msg with Ok () | Error _ -> ())
        | Error _ -> ()
      done)
    regions;
  Mach_sim.Ivar.read done_;
  Task.terminate agent_task

let migrate t ~src ~dst_kernel strategy =
  let t0 = Engine.now (Task.kernel src).Mach_kernel.Ktypes.k_engine in
  let regions =
    List.filter (fun r -> not r.Vm_map.ri_shared) (Vm_map.regions (Task.map src))
  in
  let dst = Task.create dst_kernel ~name:(Task.name src ^ "-migrated") () in
  (match strategy with
  | Eager_copy ->
    (* Allocate plain zero-fill memory and push every page across
       before the task may run. *)
    List.iter
      (fun r ->
        ignore
          (Syscalls.vm_allocate dst ~addr:r.Vm_map.ri_start ~size:r.Vm_map.ri_size
             ~anywhere:false ()))
      regions;
    eager_copy t ~src ~dst regions
  | Copy_on_reference | Pre_paging _ ->
    (* One memory object per region, backed by the frozen source. *)
    List.iter
      (fun r ->
        let memory_object =
          back_region t ~src ~base:r.Vm_map.ri_start ~size:r.Vm_map.ri_size strategy
        in
        ignore
          (Syscalls.vm_allocate_with_pager dst ~addr:r.Vm_map.ri_start ~size:r.Vm_map.ri_size
             ~anywhere:false ~memory_object ~offset:0 ()))
      regions);
  let mg =
    { mg_task = dst; mg_freeze_us = Engine.now (Task.kernel src).Mach_kernel.Ktypes.k_engine -. t0 }
  in
  t.sources <- (mg, src) :: t.sources;
  mg

let finish t mg =
  match List.assq_opt mg t.sources with
  | None -> ()
  | Some src ->
    t.sources <- List.filter (fun (m, _) -> m != mg) t.sources;
    Task.terminate src
