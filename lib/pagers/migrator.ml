open Mach_kernel.Ktypes
module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Prot = Mach_hw.Prot
module Engine = Mach_sim.Engine
module Task = Mach_kernel.Task
module Syscalls = Mach_kernel.Syscalls
module Vm_map = Mach_vm.Vm_map
module Access = Mach_vm.Access
module Mos = Mach.Memory_object_server

type strategy = Eager_copy | Copy_on_reference | Pre_paging of int
type migration = { mg_task : task; mg_freeze_us : float }

type backed_region = {
  br_src : task;
  br_base : int;  (** address of the region in the source task *)
  br_size : int;
  br_strategy : strategy;
}

type t = {
  srv : Mos.t;
  regions : (int, backed_region) Hashtbl.t;  (** memory-object port id → source region *)
  mutable shipped : int;
  mutable sources : (migration * task) list;
}

let server_task t = Mos.task t.srv
let pages_transferred t = t.shipped

let page_size_of task =
  (Task.kernel task).Mach_kernel.Ktypes.k_kctx.Mach_vm.Kctx.page_size

(* Serve one demand fault: read the frozen source pages and provide
   them. Pre-paging ships extra trailing pages in the same reply
   ("advanced data managers may provide more data than requested"). *)
let on_data_request t ~memory_object ~request ~offset ~length ~desired_access:_ =
  match Hashtbl.find_opt t.regions (Port.id memory_object) with
  | None -> ()
  | Some br ->
    let ps = page_size_of br.br_src in
    (* The kernel may ask for a multi-page cluster, but how much data
       actually crosses the network is this manager's policy: migration
       pays per page shipped, so copy-on-reference serves exactly the
       demanded page (the kernel re-requests a clustered neighbor if it
       is ever truly referenced) and pre-paging serves its own fixed
       lookahead. [length] is deliberately not honored beyond the first
       page. *)
    ignore length;
    let extra = match br.br_strategy with Pre_paging n -> n * ps | _ -> 0 in
    let want = min (ps + extra) (br.br_size - offset) in
    let want = max want 0 in
    if want = 0 then Mos.data_unavailable t.srv ~request ~offset ~size:length
    else begin
      match
        Access.read_bytes
          (Task.kernel br.br_src).Mach_kernel.Ktypes.k_kctx (Task.map br.br_src)
          ~addr:(br.br_base + offset) ~len:want ()
      with
      | Ok data ->
        t.shipped <- t.shipped + ((want + ps - 1) / ps);
        Mos.data_provided t.srv ~request ~offset ~data ~lock_value:Prot.none
      | Error _ -> Mos.data_unavailable t.srv ~request ~offset ~size:length
    end

let start kernel ?(name = "migration-manager") () =
  let srv_task = Task.create kernel ~name () in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let callbacks =
    {
      Mos.no_callbacks with
      Mos.on_data_request =
        (fun _ ~memory_object ~request ~offset ~length ~desired_access ->
          on_data_request (get ()) ~memory_object ~request ~offset ~length ~desired_access);
    }
  in
  let srv = Mos.start srv_task callbacks in
  let t = { srv; regions = Hashtbl.create 16; shipped = 0; sources = [] } in
  t_ref := Some t;
  t

(* Ship the whole address space up front: the manager reads every source
   page and writes it into the destination task through a per-page
   message to a destination-side agent (charging the network for every
   byte, referenced or not). *)
let eager_copy t ~src ~dst regions =
  let src_kctx = (Task.kernel src).Mach_kernel.Ktypes.k_kctx in
  let dst_kernel = Task.kernel dst in
  let ps = page_size_of src in
  (* Destination-side agent that lands pages into the new task. *)
  let agent_task = Task.create dst_kernel ~name:"migration-agent" () in
  let landing_name = Syscalls.port_allocate agent_task ~backlog:8 () in
  Syscalls.port_enable agent_task landing_name;
  let landing = Mach_ipc.Port_space.lookup_exn (Task.space agent_task) landing_name in
  let total_pages =
    List.fold_left (fun acc r -> acc + ((r.Vm_map.ri_size + ps - 1) / ps)) 0 regions
  in
  let done_ = Mach_sim.Ivar.create () in
  ignore
    (Mach_kernel.Thread.spawn agent_task ~name:"migration-agent.main" (fun () ->
         let landed = ref 0 in
         while !landed < total_pages do
           match Syscalls.msg_receive agent_task ~from:(`Port landing_name) () with
           | Ok msg -> (
             match Message.data_exn msg with
             | header -> (
               let d = Mach_util.Codec.Dec.of_bytes header in
               let addr = Mach_util.Codec.Dec.int d in
               let data = Mach_util.Codec.Dec.bytes d in
               incr landed;
               match Syscalls.write_bytes dst ~addr data () with
               | Ok () -> ()
               | Error _ -> ())
             | exception Not_found -> ())
           | Error _ -> ()
         done;
         Mach_sim.Ivar.fill done_ ()));
  List.iter
    (fun r ->
      let base = r.Vm_map.ri_start in
      let npages = (r.Vm_map.ri_size + ps - 1) / ps in
      for i = 0 to npages - 1 do
        match Access.read_bytes src_kctx (Task.map src) ~addr:(base + (i * ps)) ~len:ps () with
        | Ok data ->
          t.shipped <- t.shipped + 1;
          let e = Mach_util.Codec.Enc.create () in
          Mach_util.Codec.Enc.int e (base + (i * ps));
          Mach_util.Codec.Enc.bytes e data;
          let msg =
            Message.make ~dest:landing [ Message.Data (Mach_util.Codec.Enc.to_bytes e) ]
          in
          (match Syscalls.msg_send (server_task t) msg with Ok () | Error _ -> ())
        | Error _ -> ()
      done)
    regions;
  Mach_sim.Ivar.read done_;
  Task.terminate agent_task

let migrate t ~src ~dst_kernel strategy =
  let t0 = Engine.now (Task.kernel src).Mach_kernel.Ktypes.k_engine in
  let regions =
    List.filter (fun r -> not r.Vm_map.ri_shared) (Vm_map.regions (Task.map src))
  in
  let dst = Task.create dst_kernel ~name:(Task.name src ^ "-migrated") () in
  (match strategy with
  | Eager_copy ->
    (* Allocate plain zero-fill memory and push every page across
       before the task may run. *)
    List.iter
      (fun r ->
        ignore
          (Syscalls.vm_allocate dst ~addr:r.Vm_map.ri_start ~size:r.Vm_map.ri_size
             ~anywhere:false ()))
      regions;
    eager_copy t ~src ~dst regions
  | Copy_on_reference | Pre_paging _ ->
    (* One memory object per region, backed by the frozen source. *)
    List.iter
      (fun r ->
        let memory_object = Mos.create_memory_object t.srv () in
        Hashtbl.replace t.regions (Port.id memory_object)
          { br_src = src; br_base = r.Vm_map.ri_start; br_size = r.Vm_map.ri_size;
            br_strategy = strategy };
        ignore
          (Syscalls.vm_allocate_with_pager dst ~addr:r.Vm_map.ri_start ~size:r.Vm_map.ri_size
             ~anywhere:false ~memory_object ~offset:0 ()))
      regions);
  let mg =
    { mg_task = dst; mg_freeze_us = Engine.now (Task.kernel src).Mach_kernel.Ktypes.k_engine -. t0 }
  in
  t.sources <- (mg, src) :: t.sources;
  mg

let finish t mg =
  match List.assq_opt mg t.sources with
  | None -> ()
  | Some src ->
    t.sources <- List.filter (fun (m, _) -> m != mg) t.sources;
    Task.terminate src
