module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Prot = Mach_hw.Prot
module Codec = Mach_util.Codec
module Syscalls = Mach_kernel.Syscalls
module Task = Mach_kernel.Task
module Mos = Mach.Memory_object_server
module Fs_layout = Mach_fs.Fs_layout

(* RPC message ids. *)
let id_read_file = 3001
let id_write_file = 3002
let id_list_files = 3003
let id_open_object = 3004
let id_reply = 3100

type file_state = {
  f_name : string;
  f_object : Message.port;
  mutable f_requests : Message.port list;  (** one pager request port per kernel *)
  mutable f_mapping : (int * int) option;  (** server's own mapping (addr, size) *)
}

type t = {
  srv : Mos.t;
  fs : Fs_layout.t;
  service : Message.port;
  by_object : (int, file_state) Hashtbl.t;  (** memory-object port id → file *)
  by_name : (string, file_state) Hashtbl.t;
  enable_cache : bool;
}

let server_task t = Mos.task t.srv
let service_port t = t.service
let fs t = t.fs

(* --- pager side --------------------------------------------------------- *)

let on_init t _srv ~memory_object ~request ~name:_ =
  match Hashtbl.find_opt t.by_object (Port.id memory_object) with
  | None -> ()
  | Some file ->
    file.f_requests <- request :: file.f_requests;
    (* Let the kernel keep file pages cached after unmapping: the heart
       of the §9 claim (ablatable). *)
    if t.enable_cache then Mos.cache t.srv ~request ~may_cache:true

let on_data_request t _srv ~memory_object ~request ~offset ~length ~desired_access:_ =
  match Hashtbl.find_opt t.by_object (Port.id memory_object) with
  | None -> ()
  | Some file -> (
    let bs = Fs_layout.block_size t.fs in
    let nblocks = (length + bs - 1) / bs in
    let data = Bytes.make (nblocks * bs) '\000' in
    let have_file = Fs_layout.exists t.fs file.f_name in
    if not have_file then Mos.data_unavailable t.srv ~request ~offset ~size:length
    else begin
      for i = 0 to nblocks - 1 do
        match Fs_layout.read_block t.fs file.f_name ~index:((offset / bs) + i) with
        | Some b -> Bytes.blit b 0 data (i * bs) bs
        | None -> () (* past EOF: zeroes *)
      done;
      Mos.data_provided t.srv ~request ~offset ~data ~lock_value:Prot.none
    end)

(* Pageout of a directly-mapped file (footnote 7 mappings): persist the
   dirty pages. A write may carry a run of adjacent pages — split it
   into blocks. Without this callback, paged-out file modifications
   would silently vanish from the cache-object lifecycle. *)
let on_data_write t _srv ~memory_object ~offset ~data ~release =
  (match Hashtbl.find_opt t.by_object (Port.id memory_object) with
  | None -> ()
  | Some file ->
    let bs = Fs_layout.block_size t.fs in
    let nblocks = max 1 ((Bytes.length data + bs - 1) / bs) in
    (try
       for i = 0 to nblocks - 1 do
         let len = min bs (Bytes.length data - (i * bs)) in
         let block =
           if len = bs then Bytes.sub data (i * bs) bs
           else begin
             (* Partial trailing block: merge over what is stored. *)
             let b =
               match Fs_layout.read_block t.fs file.f_name ~index:((offset / bs) + i) with
               | Some b -> b
               | None -> Bytes.make bs '\000'
             in
             Bytes.blit data (i * bs) b 0 len;
             b
           end
         in
         Fs_layout.write_block t.fs file.f_name ~index:((offset / bs) + i) block
       done
     with Fs_layout.Fs_error _ -> ()));
  release ()

(* --- RPC side ----------------------------------------------------------- *)

let reply_to t (msg : Message.t) items =
  match msg.Message.header.reply with
  | None -> ()
  | Some reply -> (
    match Syscalls.msg_send (server_task t) (Message.make ~msg_id:id_reply ~dest:reply items) with
    | Ok () | Error _ -> ())

let status_item ok detail =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Codec.Enc.string e detail;
  Message.Data (Codec.Enc.to_bytes e)

let get_file t name =
  match Hashtbl.find_opt t.by_name name with
  | Some f -> f
  | None ->
    let f_object = Mos.create_memory_object t.srv () in
    let file = { f_name = name; f_object; f_requests = []; f_mapping = None } in
    Hashtbl.replace t.by_object (Port.id f_object) file;
    Hashtbl.replace t.by_name name file;
    file

(* The server maps the file's memory object into its own address space
   once and keeps the mapping; replies transfer it copy-on-write. *)
let server_mapping t file ~size =
  match file.f_mapping with
  | Some (addr, msize) when msize >= size -> addr
  | other ->
    (match other with
    | Some (addr, msize) -> Syscalls.vm_deallocate (server_task t) ~addr ~size:msize
    | None -> ());
    let addr =
      Syscalls.vm_allocate_with_pager (server_task t) ~size ~anywhere:true
        ~memory_object:file.f_object ~offset:0 ()
    in
    file.f_mapping <- Some (addr, size);
    addr

let handle_read_file t msg name =
  if not (Fs_layout.exists t.fs name) then reply_to t msg [ status_item false "no such file" ]
  else begin
    let size = Option.value ~default:0 (Fs_layout.file_size t.fs name) in
    let file = get_file t name in
    if size = 0 then
      reply_to t msg
        [
          status_item true "";
          Message.Data
            (let e = Codec.Enc.create () in
             Codec.Enc.int e 0;
             Codec.Enc.to_bytes e);
        ]
    else begin
      let addr = server_mapping t file ~size in
      let size_item =
        let e = Codec.Enc.create () in
        Codec.Enc.int e size;
        Message.Data (Codec.Enc.to_bytes e)
      in
      reply_to t msg
        [ status_item true ""; size_item; Syscalls.ool_region (server_task t) ~addr ~size ]
    end
  end

let handle_write_file t msg name data =
  match Fs_layout.write_file t.fs name data with
  | exception Fs_layout.Fs_error reason -> reply_to t msg [ status_item false reason ]
  | () ->
    (match Hashtbl.find_opt t.by_name name with
    | Some file ->
      (* Invalidate stale cached pages everywhere this object is known. *)
      let len = max (Bytes.length data) 1 in
      List.iter
        (fun request -> Mos.flush_request t.srv ~request ~offset:0 ~length:len)
        file.f_requests
    | None -> ());
    reply_to t msg [ status_item true "" ]

(* Hand the client the memory object itself: mapping it with
   vm_allocate_with_pager gives direct read/write access to the file
   object, not a copy (the paper's footnote 7). *)
let handle_open_object t msg name =
  if not (Fs_layout.exists t.fs name) then reply_to t msg [ status_item false "no such file" ]
  else begin
    let size = Option.value ~default:0 (Fs_layout.file_size t.fs name) in
    let file = get_file t name in
    let size_item =
      let e = Codec.Enc.create () in
      Codec.Enc.int e size;
      Message.Data (Codec.Enc.to_bytes e)
    in
    reply_to t msg
      [
        status_item true "";
        Message.Caps [ { Message.cap_port = file.f_object; cap_right = Message.Send_right } ];
        size_item;
      ]
  end

let handle_list t msg =
  let files = Fs_layout.list_files t.fs in
  let e = Codec.Enc.create () in
  Codec.Enc.int e (List.length files);
  List.iter (fun f -> Codec.Enc.string e f) files;
  reply_to t msg [ status_item true ""; Message.Data (Codec.Enc.to_bytes e) ]

let on_other t _srv (msg : Message.t) =
  let id = msg.Message.header.msg_id in
  match Message.data_exn msg with
  | exception Not_found -> ()
  | payload -> (
    let d = Codec.Dec.of_bytes payload in
    try
      if id = id_read_file then handle_read_file t msg (Codec.Dec.string d)
      else if id = id_write_file then begin
        let name = Codec.Dec.string d in
        let data = Codec.Dec.bytes d in
        handle_write_file t msg name data
      end
      else if id = id_list_files then handle_list t msg
      else if id = id_open_object then handle_open_object t msg (Codec.Dec.string d)
      else reply_to t msg [ status_item false "unknown operation" ]
    with
    | Codec.Dec.Truncated -> reply_to t msg [ status_item false "malformed request" ]
    | Fs_layout.Fs_error reason -> reply_to t msg [ status_item false reason ])

let start kernel ?(name = "fs-server") ?(enable_cache = true) ?(service_threads = 1) ~disk ~format
    () =
  let srv_task = Task.create kernel ~name () in
  let fs = if format then Fs_layout.format disk ~max_files:256 else Fs_layout.mount disk in
  let service_name = Syscalls.port_allocate srv_task ~backlog:128 () in
  Syscalls.port_enable srv_task service_name;
  let service = Port_space.lookup_exn (Task.space srv_task) service_name in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let callbacks =
    {
      Mos.no_callbacks with
      Mos.on_init = (fun srv ~memory_object ~request ~name -> on_init (get ()) srv ~memory_object ~request ~name);
      Mos.on_data_request =
        (fun srv ~memory_object ~request ~offset ~length ~desired_access ->
          on_data_request (get ()) srv ~memory_object ~request ~offset ~length ~desired_access);
      Mos.on_data_write =
        (fun srv ~memory_object ~offset ~data ~release ->
          on_data_write (get ()) srv ~memory_object ~offset ~data ~release);
      Mos.on_other = (fun srv msg -> on_other (get ()) srv msg);
    }
  in
  let srv = Mos.start ~service_threads srv_task callbacks in
  let t =
    { srv; fs; service; by_object = Hashtbl.create 64; by_name = Hashtbl.create 64; enable_cache }
  in
  t_ref := Some t;
  t

(* --- client ------------------------------------------------------------- *)

module Client = struct
  type error = [ `No_such_file | `Server_error of string | `Ipc_failure ]

  let pp_error fmt = function
    | `No_such_file -> Format.fprintf fmt "no such file"
    | `Server_error s -> Format.fprintf fmt "server error: %s" s
    | `Ipc_failure -> Format.fprintf fmt "ipc failure"

  let rpc task ~server ~msg_id payload extra_items =
    let reply_name = Syscalls.port_allocate task () in
    let reply_port = Port_space.lookup_exn (Task.space task) reply_name in
    let msg =
      Message.make ~reply:reply_port ~msg_id ~dest:server (Message.Data payload :: extra_items)
    in
    let result = Syscalls.msg_rpc task msg () in
    Syscalls.port_deallocate task reply_name;
    match result with
    | Ok reply -> Ok reply
    | Error _ -> Error `Ipc_failure

  let parse_status (reply : Message.t) =
    match reply.Message.body with
    | Message.Data status :: rest -> (
      let d = Codec.Dec.of_bytes status in
      let ok = Codec.Dec.bool d in
      let detail = Codec.Dec.string d in
      if ok then Ok rest
      else if detail = "no such file" then Error `No_such_file
      else Error (`Server_error detail))
    | _ -> Error (`Server_error "malformed reply")

  let read_file task ~server name =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    match rpc task ~server ~msg_id:id_read_file (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok rest -> (
        match rest with
        | Message.Data size_b :: _ -> (
          let d = Codec.Dec.of_bytes size_b in
          let size = Codec.Dec.int d in
          if size = 0 then Ok (0, 0)
          else
            match Syscalls.map_ool task reply with
            | [ (addr, _) ] -> Ok (addr, size)
            | _ -> Error (`Server_error "missing mapped data"))
        | _ -> Error (`Server_error "malformed reply")))

  let map_file task ~server name =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    match rpc task ~server ~msg_id:id_open_object (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Caps [ cap ] :: Message.Data size_b :: _) ->
        let d = Codec.Dec.of_bytes size_b in
        let size = Codec.Dec.int d in
        if size = 0 then Ok (0, 0)
        else
          let addr =
            Syscalls.vm_allocate_with_pager task ~size ~anywhere:true
              ~memory_object:cap.Message.cap_port ~offset:0 ()
          in
          Ok (addr, size)
      | Ok _ -> Error (`Server_error "malformed reply"))

  let write_file task ~server name data =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    Codec.Enc.bytes e data;
    match rpc task ~server ~msg_id:id_write_file (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with Ok _ -> Ok () | Error _ as err -> err)

  let list_files task ~server =
    let e = Codec.Enc.create () in
    Codec.Enc.string e "";
    match rpc task ~server ~msg_id:id_list_files (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Data listing :: _) ->
        let d = Codec.Dec.of_bytes listing in
        let n = Codec.Dec.int d in
        Ok (List.init n (fun _ -> Codec.Dec.string d))
      | Ok _ -> Error (`Server_error "malformed reply"))
end
