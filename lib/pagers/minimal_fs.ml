module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Prot = Mach_hw.Prot
module Codec = Mach_util.Codec
module Syscalls = Mach_kernel.Syscalls
module Task = Mach_kernel.Task
module Mos = Mach.Memory_object_server
module Fs_layout = Mach_fs.Fs_layout

(* RPC message ids. *)
let id_read_file = 3001
let id_write_file = 3002
let id_list_files = 3003
let id_open_object = 3004
let id_reply = 3100

type file = {
  f_name : string;
  mutable f_mapping : (int * int) option;  (** server's own mapping (addr, size) *)
}

module Rt = Mach.Pager_runtime

type t = {
  rt : file Rt.t;
  srv : Mos.t;
  fs : Fs_layout.t;
  service : Message.port;
  by_name : (string, file Rt.obj) Hashtbl.t;
}

let server_task t = Mos.task t.srv
let service_port t = t.service
let fs t = t.fs
let runtime_stats t = Rt.stats t.rt

(* --- pager policy --------------------------------------------------------
   The protocol plumbing (registry, request/write splitting, coalesced
   replies, request-port tracking) lives in the shared runtime; the
   filesystem contributes only block-backed page read/write. *)

let policy get ~enable_cache =
  {
    Rt.default_policy with
    (* Let the kernel keep file pages cached after unmapping: the heart
       of the Â§9 claim (ablatable via [enable_cache]). *)
    Rt.p_may_cache = (if enable_cache then Some true else None);
    p_read =
      (fun rt o ~request:_ ~page ~desired_access:_ ->
        let t = get () in
        let file = o.Rt.o_data in
        if not (Fs_layout.exists t.fs file.f_name) then Rt.Unavailable
        else
          let ps = Rt.page_size rt in
          Rt.Data
            (Rt.Blocks.read_range
               ~block_size:(Fs_layout.block_size t.fs)
               ~read:(fun ~index -> Fs_layout.read_block t.fs file.f_name ~index)
               ~offset:(page * ps) ~len:ps))
    (* Past-EOF blocks read as zeroes; a missing file is unavailable for
       the whole range (the runtime coalesces the holes). *);
    p_write =
      (fun rt o ~page ~data ->
        (* Pageout of a directly-mapped file (footnote 7 mappings):
           persist the dirty page, merging partial trailing blocks over
           what is stored. Without this, paged-out file modifications
           would silently vanish from the cache-object lifecycle. *)
        let t = get () in
        let file = o.Rt.o_data in
        if Bytes.length data > 0 then
          try
            Rt.Blocks.write_range
              ~block_size:(Fs_layout.block_size t.fs)
              ~read:(fun ~index -> Fs_layout.read_block t.fs file.f_name ~index)
              ~write:(fun ~index b -> Fs_layout.write_block t.fs file.f_name ~index b)
              ~offset:(page * Rt.page_size rt) ~data
          with Fs_layout.Fs_error _ -> ());
  }

(* --- RPC side ----------------------------------------------------------- *)

let reply_to t (msg : Message.t) items =
  match msg.Message.header.reply with
  | None -> ()
  | Some reply -> (
    match Syscalls.msg_send (server_task t) (Message.make ~msg_id:id_reply ~dest:reply items) with
    | Ok () | Error _ -> ())

let status_item ok detail =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Codec.Enc.string e detail;
  Message.Data (Codec.Enc.to_bytes e)

let get_file t name =
  match Hashtbl.find_opt t.by_name name with
  | Some o -> o
  | None ->
    let f_object = Mos.create_memory_object t.srv () in
    let o = Rt.register t.rt ~memory_object:f_object { f_name = name; f_mapping = None } in
    Hashtbl.replace t.by_name name o;
    o

let file_object t name = (get_file t name).Rt.o_port

(* The server maps the file's memory object into its own address space
   once and keeps the mapping; replies transfer it copy-on-write. *)
let server_mapping t (o : file Rt.obj) ~size =
  let file = o.Rt.o_data in
  match file.f_mapping with
  | Some (addr, msize) when msize >= size -> addr
  | other ->
    (match other with
    | Some (addr, msize) -> Syscalls.vm_deallocate (server_task t) ~addr ~size:msize
    | None -> ());
    let addr =
      Syscalls.vm_allocate_with_pager (server_task t) ~size ~anywhere:true
        ~memory_object:o.Rt.o_port ~offset:0 ()
    in
    file.f_mapping <- Some (addr, size);
    addr

let handle_read_file t msg name =
  if not (Fs_layout.exists t.fs name) then reply_to t msg [ status_item false "no such file" ]
  else begin
    let size = Option.value ~default:0 (Fs_layout.file_size t.fs name) in
    let file = get_file t name in
    if size = 0 then
      reply_to t msg
        [
          status_item true "";
          Message.Data
            (let e = Codec.Enc.create () in
             Codec.Enc.int e 0;
             Codec.Enc.to_bytes e);
        ]
    else begin
      let addr = server_mapping t file ~size in
      let size_item =
        let e = Codec.Enc.create () in
        Codec.Enc.int e size;
        Message.Data (Codec.Enc.to_bytes e)
      in
      reply_to t msg
        [ status_item true ""; size_item; Syscalls.ool_region (server_task t) ~addr ~size ]
    end
  end

let handle_write_file t msg name data =
  match Fs_layout.write_file t.fs name data with
  | exception Fs_layout.Fs_error reason -> reply_to t msg [ status_item false reason ]
  | () ->
    (match Hashtbl.find_opt t.by_name name with
    | Some o ->
      (* Invalidate stale cached pages everywhere this object is known. *)
      let len = max (Bytes.length data) 1 in
      List.iter
        (fun request -> Rt.flush_request t.rt ~request ~offset:0 ~length:len)
        (Rt.requests o)
    | None -> ());
    reply_to t msg [ status_item true "" ]

(* Hand the client the memory object itself: mapping it with
   vm_allocate_with_pager gives direct read/write access to the file
   object, not a copy (the paper's footnote 7). *)
let handle_open_object t msg name =
  if not (Fs_layout.exists t.fs name) then reply_to t msg [ status_item false "no such file" ]
  else begin
    let size = Option.value ~default:0 (Fs_layout.file_size t.fs name) in
    let o = get_file t name in
    let size_item =
      let e = Codec.Enc.create () in
      Codec.Enc.int e size;
      Message.Data (Codec.Enc.to_bytes e)
    in
    reply_to t msg
      [
        status_item true "";
        Message.Caps [ { Message.cap_port = o.Rt.o_port; cap_right = Message.Send_right } ];
        size_item;
      ]
  end

let handle_list t msg =
  let files = Fs_layout.list_files t.fs in
  let e = Codec.Enc.create () in
  Codec.Enc.int e (List.length files);
  List.iter (fun f -> Codec.Enc.string e f) files;
  reply_to t msg [ status_item true ""; Message.Data (Codec.Enc.to_bytes e) ]

let on_other t _srv (msg : Message.t) =
  let id = msg.Message.header.msg_id in
  match Message.data_exn msg with
  | exception Not_found -> ()
  | payload -> (
    let d = Codec.Dec.of_bytes payload in
    try
      if id = id_read_file then handle_read_file t msg (Codec.Dec.string d)
      else if id = id_write_file then begin
        let name = Codec.Dec.string d in
        let data = Codec.Dec.bytes d in
        handle_write_file t msg name data
      end
      else if id = id_list_files then handle_list t msg
      else if id = id_open_object then handle_open_object t msg (Codec.Dec.string d)
      else reply_to t msg [ status_item false "unknown operation" ]
    with
    | Codec.Dec.Truncated -> reply_to t msg [ status_item false "malformed request" ]
    | Fs_layout.Fs_error reason -> reply_to t msg [ status_item false reason ])

let start kernel ?(name = "fs-server") ?(enable_cache = true) ?(service_threads = 1) ~disk ~format
    () =
  let srv_task = Task.create kernel ~name () in
  let fs = if format then Fs_layout.format disk ~max_files:256 else Fs_layout.mount disk in
  let service_name = Syscalls.port_allocate srv_task ~backlog:128 () in
  Syscalls.port_enable srv_task service_name;
  let service = Port_space.lookup_exn (Task.space srv_task) service_name in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let rt, srv =
    Rt.serve ~service_threads
      ~on_other:(fun _rt srv msg -> on_other (get ()) srv msg)
      srv_task
      (policy get ~enable_cache)
  in
  let t = { rt; srv; fs; service; by_name = Hashtbl.create 64 } in
  t_ref := Some t;
  t

(* --- client ------------------------------------------------------------- *)

module Client = struct
  type error = [ `No_such_file | `Server_error of string | `Ipc_failure ]

  let pp_error fmt = function
    | `No_such_file -> Format.fprintf fmt "no such file"
    | `Server_error s -> Format.fprintf fmt "server error: %s" s
    | `Ipc_failure -> Format.fprintf fmt "ipc failure"

  let rpc task ~server ~msg_id payload extra_items =
    let reply_name = Syscalls.port_allocate task () in
    let reply_port = Port_space.lookup_exn (Task.space task) reply_name in
    let msg =
      Message.make ~reply:reply_port ~msg_id ~dest:server (Message.Data payload :: extra_items)
    in
    let result = Syscalls.msg_rpc task msg () in
    Syscalls.port_deallocate task reply_name;
    match result with
    | Ok reply -> Ok reply
    | Error _ -> Error `Ipc_failure

  let parse_status (reply : Message.t) =
    match reply.Message.body with
    | Message.Data status :: rest -> (
      let d = Codec.Dec.of_bytes status in
      let ok = Codec.Dec.bool d in
      let detail = Codec.Dec.string d in
      if ok then Ok rest
      else if detail = "no such file" then Error `No_such_file
      else Error (`Server_error detail))
    | _ -> Error (`Server_error "malformed reply")

  let read_file task ~server name =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    match rpc task ~server ~msg_id:id_read_file (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok rest -> (
        match rest with
        | Message.Data size_b :: _ -> (
          let d = Codec.Dec.of_bytes size_b in
          let size = Codec.Dec.int d in
          if size = 0 then Ok (0, 0)
          else
            match Syscalls.map_ool task reply with
            | [ (addr, _) ] -> Ok (addr, size)
            | _ -> Error (`Server_error "missing mapped data"))
        | _ -> Error (`Server_error "malformed reply")))

  let map_file task ~server name =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    match rpc task ~server ~msg_id:id_open_object (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Caps [ cap ] :: Message.Data size_b :: _) ->
        let d = Codec.Dec.of_bytes size_b in
        let size = Codec.Dec.int d in
        if size = 0 then Ok (0, 0)
        else
          let addr =
            Syscalls.vm_allocate_with_pager task ~size ~anywhere:true
              ~memory_object:cap.Message.cap_port ~offset:0 ()
          in
          Ok (addr, size)
      | Ok _ -> Error (`Server_error "malformed reply"))

  let write_file task ~server name data =
    let e = Codec.Enc.create () in
    Codec.Enc.string e name;
    Codec.Enc.bytes e data;
    match rpc task ~server ~msg_id:id_write_file (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with Ok _ -> Ok () | Error _ as err -> err)

  let list_files task ~server =
    let e = Codec.Enc.create () in
    Codec.Enc.string e "";
    match rpc task ~server ~msg_id:id_list_files (Codec.Enc.to_bytes e) [] with
    | Error _ as err -> err
    | Ok reply -> (
      match parse_status reply with
      | Error _ as err -> err
      | Ok (Message.Data listing :: _) ->
        let d = Codec.Dec.of_bytes listing in
        let n = Codec.Dec.int d in
        Ok (List.init n (fun _ -> Codec.Dec.string d))
      | Ok _ -> Error (`Server_error "malformed reply"))
end
