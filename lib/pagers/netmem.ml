module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Prot = Mach_hw.Prot
module Task = Mach_kernel.Task
module Mos = Mach.Memory_object_server
module Rt = Mach.Pager_runtime

(* The coherence state machine is the policy; everything else — object
   registry, request splitting, reply accounting — lives in the shared
   pager runtime. Every [p_read] returns [Defer]: grants are issued by
   the state machine itself, possibly much later (after invalidations
   confirm), through the runtime's counted send helpers. *)

type grant = Provide of { g_request : Message.port; g_write : bool } | Unlock of { g_request : Message.port }

type state =
  | Idle
  | Readers of Message.port list
  | Writer of Message.port
  | Transition of transition

and transition = {
  mutable awaiting : int list;
  flushed : int list;  (* kernels whose copies this transition revoked *)
  queued : grant Queue.t;
}

type page_rec = { mutable data : bytes; mutable state : state }

type region = {
  rg_pages : page_rec array;
  mutable rg_kernels : Message.port list;  (** request ports, one per kernel *)
}

type t = {
  rt : region Rt.t;
  srv : Mos.t;
  page_size : int;
  mutable invalidations : int;
  mutable grants : int;
}

let server_task t = Mos.task t.srv
let runtime_stats t = Rt.stats t.rt

let region_exn t port =
  match Rt.find_data t.rt port with
  | Some r -> r
  | None -> invalid_arg "Netmem: unknown region"

(* --- protocol actions --------------------------------------------------- *)

let flush t page_idx ~request =
  t.invalidations <- t.invalidations + 1;
  Rt.flush_request t.rt ~request ~offset:(page_idx * t.page_size) ~length:t.page_size

let execute_grant t page page_idx = function
  | Provide { g_request; g_write } ->
    if g_write then begin
      t.grants <- t.grants + 1;
      Rt.data_provided t.rt ~request:g_request ~offset:(page_idx * t.page_size)
        ~data:(Bytes.copy page.data) ~lock_value:Prot.none;
      page.state <- Writer g_request
    end
    else begin
      Rt.data_provided t.rt ~request:g_request ~offset:(page_idx * t.page_size)
        ~data:(Bytes.copy page.data) ~lock_value:Prot.write;
      page.state <- Readers [ g_request ]
    end
  | Unlock { g_request } ->
    t.grants <- t.grants + 1;
    Rt.data_lock t.rt ~request:g_request ~offset:(page_idx * t.page_size)
      ~length:t.page_size ~lock_value:Prot.none;
    page.state <- Writer g_request

(* Begin invalidating [targets] and run [g] when they all confirm. *)
let start_transition t page page_idx targets g =
  let ids = List.map Port.id targets in
  let tr = { awaiting = ids; flushed = ids; queued = Queue.create () } in
  Queue.add g tr.queued;
  page.state <- Transition tr;
  List.iter (fun request -> flush t page_idx ~request) targets

let same_port a b = Port.id a = Port.id b

let rec handle_request t region page_idx ~request ~want_write ~has_copy =
  let page = region.rg_pages.(page_idx) in
  match page.state with
  | Idle ->
    execute_grant t page page_idx
      (if has_copy then Unlock { g_request = request }
       else Provide { g_request = request; g_write = want_write })
  | Readers rs ->
    if not want_write then begin
      if not (List.exists (same_port request) rs) then begin
        Rt.data_provided t.rt ~request ~offset:(page_idx * t.page_size)
          ~data:(Bytes.copy page.data) ~lock_value:Prot.write;
        page.state <- Readers (request :: rs)
      end
      else
        (* The kernel re-requested a page it holds (it dropped its copy
           without telling us): just provide again. *)
        Rt.data_provided t.rt ~request ~offset:(page_idx * t.page_size)
          ~data:(Bytes.copy page.data) ~lock_value:Prot.write
    end
    else begin
      let others = List.filter (fun r -> not (same_port request r)) rs in
      let self_has = has_copy && List.exists (same_port request) rs in
      let g =
        if self_has then Unlock { g_request = request }
        else Provide { g_request = request; g_write = true }
      in
      if others = [] then execute_grant t page page_idx g
      else start_transition t page page_idx others g
    end
  | Writer w ->
    if same_port w request then
      (* Already the writer. If it still holds the copy (an unlock that
         crossed with a request we answered as a grant), a lock change
         is what completes its fault; re-providing data would be
         ignored by a kernel that has the page. *)
      execute_grant t page page_idx
        (if has_copy then Unlock { g_request = request }
         else Provide { g_request = request; g_write = want_write })
    else
      start_transition t page page_idx [ w ]
        (Provide { g_request = request; g_write = want_write })
  | Transition tr ->
    Queue.add
      (if has_copy then Unlock { g_request = request }
       else Provide { g_request = request; g_write = want_write })
      tr.queued

and complete_transition t region page_idx tr =
  let page = region.rg_pages.(page_idx) in
  (* A grantee whose copy was revoked by this very transition no longer
     holds the page: an Unlock for it must become a fresh provide, or
     its kernel would wait forever for a lock change on nothing. *)
  let materialise = function
    | Unlock { g_request } when List.mem (Port.id g_request) tr.flushed ->
      Provide { g_request; g_write = true }
    | g -> g
  in
  match Queue.take_opt tr.queued with
  | None -> page.state <- Idle
  | Some g ->
    execute_grant t page page_idx (materialise g);
    (* Remaining queued grants re-enter against the new state. *)
    let rest = Queue.to_seq tr.queued |> List.of_seq in
    List.iter
      (fun g ->
        match g with
        | Provide { g_request; g_write } ->
          handle_request t region page_idx ~request:g_request ~want_write:g_write ~has_copy:false
        | Unlock { g_request } ->
          (* Its copy was flushed during the transition; it needs a
             fresh writable copy. *)
          handle_request t region page_idx ~request:g_request ~want_write:true ~has_copy:false)
      rest

(* --- the policy --------------------------------------------------------- *)

(* A data request means the kernel holds no copy: retire any stale
   bookkeeping for it first. *)
let retire_stale page ~request =
  match page.state with
  | Readers rs when List.exists (same_port request) rs ->
    page.state <-
      (match List.filter (fun r -> not (same_port request r)) rs with
      | [] -> Idle
      | rest -> Readers rest)
  | Writer w when same_port w request -> page.state <- Idle
  | Idle | Readers _ | Writer _ | Transition _ -> ()

let policy get =
  {
    Rt.default_policy with
    Rt.p_init =
      (fun _ o ~request ->
        let region = o.Rt.o_data in
        if not (List.exists (same_port request) region.rg_kernels) then
          region.rg_kernels <- request :: region.rg_kernels);
    p_read =
      (fun _ o ~request ~page:page_idx ~desired_access ->
        let t = get () in
        let region = o.Rt.o_data in
        if page_idx >= Array.length region.rg_pages then Rt.Defer
        else begin
          let page = region.rg_pages.(page_idx) in
          retire_stale page ~request;
          handle_request t region page_idx ~request
            ~want_write:(Prot.can_write desired_access) ~has_copy:false;
          Rt.Defer
        end);
    p_unlock =
      (fun _ o ~request ~page:page_idx ~desired_access ->
        let t = get () in
        let region = o.Rt.o_data in
        if page_idx < Array.length region.rg_pages then
          handle_request t region page_idx ~request
            ~want_write:(Prot.can_write desired_access) ~has_copy:true;
        Rt.Defer_unlock);
    p_write =
      (fun _ o ~page:page_idx ~data ->
        let region = o.Rt.o_data in
        if page_idx < Array.length region.rg_pages && Bytes.length data > 0 then begin
          let page = region.rg_pages.(page_idx) in
          let len = min (Bytes.length data) (Bytes.length page.data) in
          Bytes.blit data 0 page.data 0 len
        end);
    p_lock_completed =
      (fun _ o ~request ~offset ~length ->
        match request with
        | None -> ()
        | Some request ->
          let t = get () in
          let region = o.Rt.o_data in
          let rid = Port.id request in
          let first = offset / t.page_size in
          let last = (offset + length - 1) / t.page_size in
          for page_idx = first to min last (Array.length region.rg_pages - 1) do
            match region.rg_pages.(page_idx).state with
            | Transition tr ->
              tr.awaiting <- List.filter (fun id -> id <> rid) tr.awaiting;
              if tr.awaiting = [] then complete_transition t region page_idx tr
            | Idle | Readers _ | Writer _ -> ()
          done);
    p_death =
      (fun _ o port ->
        let t = get () in
        let region = o.Rt.o_data in
        let rid = Port.id port in
        if List.exists (same_port port) region.rg_kernels then begin
          region.rg_kernels <-
            List.filter (fun r -> not (same_port port r)) region.rg_kernels;
          Array.iteri
            (fun page_idx page ->
              match page.state with
              | Readers rs ->
                page.state <-
                  (match List.filter (fun r -> Port.id r <> rid) rs with
                  | [] -> Idle
                  | rest -> Readers rest)
              | Writer w when Port.id w = rid -> page.state <- Idle
              | Transition tr ->
                tr.awaiting <- List.filter (fun id -> id <> rid) tr.awaiting;
                if tr.awaiting = [] then complete_transition t region page_idx tr
              | Idle | Writer _ -> ())
            region.rg_pages
        end);
  }

let start kernel ?(name = "netmem-server") () =
  let srv_task = Task.create kernel ~name () in
  let t_ref = ref None in
  let get () = match !t_ref with Some t -> t | None -> assert false in
  let rt, srv = Rt.serve srv_task (policy get) in
  let t = { rt; srv; page_size = Rt.page_size rt; invalidations = 0; grants = 0 } in
  t_ref := Some t;
  t

let create_region t ~size =
  let memory_object = Mos.create_memory_object t.srv () in
  let n = (size + t.page_size - 1) / t.page_size in
  let region =
    {
      rg_pages = Array.init n (fun _ -> { data = Bytes.make t.page_size '\000'; state = Idle });
      rg_kernels = [];
    }
  in
  let o = Rt.register t.rt ~memory_object region in
  o.Rt.o_port

let write_initial t ~region ~offset data =
  let r = region_exn t region in
  let pos = ref 0 in
  while !pos < Bytes.length data do
    let off = offset + !pos in
    let page = r.rg_pages.(off / t.page_size) in
    let in_page = min (Bytes.length data - !pos) (t.page_size - (off mod t.page_size)) in
    Bytes.blit data !pos page.data (off mod t.page_size) in_page;
    pos := !pos + in_page
  done

let read_authoritative t ~region ~offset ~len =
  let r = region_exn t region in
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let off = offset + i in
    let page = r.rg_pages.(off / t.page_size) in
    Bytes.set out i (Bytes.get page.data (off mod t.page_size))
  done;
  out

type page_view = [ `Idle | `Readers of int | `Writer ]

let page_state t ~region ~page =
  let r = region_exn t region in
  match r.rg_pages.(page).state with
  | Idle -> `Idle
  | Readers rs -> `Readers (List.length rs)
  | Writer _ -> `Writer
  | Transition _ -> `Idle

let invalidations t = t.invalidations
let grants t = t.grants

