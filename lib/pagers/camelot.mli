(** A Camelot-style recoverable storage manager (§8.3).

    Servers keep permanent objects in virtual memory backed by this
    disk manager; write-ahead logging makes transactions permanent and
    failure-atomic. The §8.3 contract is enforced on the paging path:
    "when the disk manager receives a pager_flush_request from the
    kernel, it verifies that the proper log records have been written
    before writing the specified pages to disk" — here, every
    [pager_data_write] forces the log up to the page's last update LSN
    before the page may reach the data disk.

    Clients map recoverable segments straight into their address space
    (the Camelot benefits list: no buffer management, no private page
    replacement, cache sized by global load) and record each update
    with old/new values before performing it. *)

open Mach_kernel.Ktypes

type t
type tid = int

val start :
  kernel ->
  ?name:string ->
  log_disk:Mach_hw.Disk.t ->
  data_disk:Mach_hw.Disk.t ->
  format:bool ->
  unit ->
  t
(** Boot the disk manager. With [format:false], mounts existing state
    and runs crash recovery: committed transactions are redone onto the
    data disk, uncommitted ones undone. *)

val server_task : t -> task
val service_port : t -> Mach_ipc.Message.port

(** {2 Introspection} *)

val log_forces : t -> int
val wal_violations : t -> int
(** Pages that would have reached the data disk before their log
    records — must always be 0 (the §8.3 invariant). *)

val recovered_redo : t -> int
val recovered_undo : t -> int

val segment_object : t -> string -> size:int -> Mach_ipc.Message.port
(** The segment's memory-object port (creating the segment if needed) —
    conformance tests drive the pager protocol on it directly. *)

val runtime_stats : t -> Mach_vm.Pager_runtime.Stats.t
(** The shared per-pager counters (requests, pages served, …). *)

val segment_bytes : t -> string -> off:int -> len:int -> bytes
(** Direct (uncharged) view of the data disk for tests. *)

(** {2 Client operations (RPC to the disk manager)} *)

module Client : sig
  type error = [ `Server_error of string | `Ipc_failure | `Memory of Mach_vm.Access.error ]

  val pp_error : Format.formatter -> error -> unit

  val map_segment :
    task -> server:Mach_ipc.Message.port -> string -> size:int -> (int, error) result
  (** Create/open a recoverable segment and map it; returns the
      address. The mapping is shared with the manager (same memory
      object), so transactional undo is visible immediately. *)

  val begin_txn : task -> server:Mach_ipc.Message.port -> (tid, error) result

  val store :
    task ->
    server:Mach_ipc.Message.port ->
    tid ->
    segment:string ->
    base:int ->
    offset:int ->
    bytes ->
    (unit, error) result
  (** Transactional update: reads the old value from the mapping, logs
      (old, new) with the manager, then performs the in-memory write.
      [base] is the address [map_segment] returned. *)

  val commit : task -> server:Mach_ipc.Message.port -> tid -> (unit, error) result
  (** Forces the log through this transaction's commit record. *)

  val abort : task -> server:Mach_ipc.Message.port -> tid -> (unit, error) result
  (** The manager undoes the transaction's updates through its own
      mapping of the segments. *)
end
