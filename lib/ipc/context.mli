(** Shared state of one simulated IPC universe: the event engine, the
    inter-host network, the id allocator, the per-destination
    remote-delivery daemons, and (on chaos fabrics) the reliable
    channel layer that gives remote delivery exactly-once effects over
    a lossy wire. Every port and port space belongs to exactly one
    context, so runs are deterministic and two simulations never
    interfere. *)

type t

val create : Mach_sim.Engine.t -> Mach_hw.Net.t -> t
val engine : t -> Mach_sim.Engine.t
val net : t -> Mach_hw.Net.t
val fresh_id : t -> int

val deliver_to : t -> dst:int -> (unit -> unit) -> unit
(** Hand a delivery thunk to host [dst]'s delivery daemon (spawned
    lazily, exits when idle). Thunks run in arrival order and may block
    (e.g. on a full port queue); this call never blocks, so it is safe
    from network-completion callbacks. *)

val delivery_backlog : t -> dst:int -> int
(** Thunks queued for [dst]'s daemon (0 when no daemon is running). *)

(** {2 Reliable channels}

    Off by default: with [reliable] false, {!remote_deliver} is exactly
    the classic direct path ([Net.deliver] into {!deliver_to}) with
    identical message counts and timing. Turning it on routes every
    remote delivery through a per-(src,dst) sequenced channel:
    (epoch, seq) headers, receiver-side dedup + FIFO resequencing,
    cumulative acks, go-back-N retransmission under exponential backoff,
    and a watchdog that declares the channel down after [retry_budget]
    silent rounds so a partitioned peer surfaces as a clean send
    error instead of a hung thread. *)

val set_reliable : t -> bool -> unit
val reliable : t -> bool

val set_retry_budget : t -> int -> unit
(** Consecutive silent retransmit rounds tolerated before the channel
    is declared down (clamped to at least 1; default 10). *)

val remote_deliver :
  t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> (unit, [ `Unreachable ]) result
(** Deliver [thunk] on host [dst], paying the wire cost of [bytes].
    Never blocks. [Error `Unreachable] means the channel to [dst] has
    exhausted its retry budget and is down; it stays down until
    {!reset_link} or {!restart_host}. *)

val chan_down : t -> src:int -> dst:int -> bool

val reset_link : t -> int -> int -> unit
(** Revive both directions of a link: bump the epoch, clear in-flight
    state, clear the down flag. Wired to [Chaos.on_heal]. *)

(** {2 Port registry and host failure} *)

val register_port : t -> id:int -> home:(unit -> int) -> destroy:(unit -> unit) -> unit
val forget_port : t -> id:int -> unit

val crash_host : t -> host:int -> int
(** Kill a host: destroy every registered port homed there (running
    death hooks, which is how remote holders learn their proxies died)
    and reset every channel touching the host. Returns the number of
    ports destroyed. Death hooks may block, so call from a simulated
    thread, never from an [Engine.schedule] callback. *)

val restart_host : t -> host:int -> unit
(** Bring a crashed host's channels back: epoch bump + down-flag clear,
    so the first new contact resynchronizes both sides. *)

(** {2 Channel accounting} *)

val chan_stats_to_list : t -> (string * int) list
val reset_chan_stats : t -> unit
