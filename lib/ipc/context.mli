(** Shared state of one simulated IPC universe: the event engine, the
    inter-host network, the id allocator, and the per-destination
    remote-delivery daemons. Every port and port space belongs to
    exactly one context, so runs are deterministic and two simulations
    never interfere. *)

type t

val create : Mach_sim.Engine.t -> Mach_hw.Net.t -> t
val engine : t -> Mach_sim.Engine.t
val net : t -> Mach_hw.Net.t
val fresh_id : t -> int

val deliver_to : t -> dst:int -> (unit -> unit) -> unit
(** Hand a delivery thunk to host [dst]'s delivery daemon (spawned
    lazily, exits when idle). Thunks run in arrival order and may block
    (e.g. on a full port queue); this call never blocks, so it is safe
    from network-completion callbacks. *)

val delivery_backlog : t -> dst:int -> int
(** Thunks queued for [dst]'s daemon (0 when no daemon is running). *)
