module Engine = Mach_sim.Engine
module Mailbox = Mach_sim.Mailbox
module Net = Mach_hw.Net

(* Remote deliveries for one destination host drain through a single
   daemon thread; a burst of sends queues work instead of forking a
   thread per message. The mailbox bounds in-flight work; past that,
   thunks spill to [overflow] (plain FIFO, no extra threads). Once
   anything has spilled, new work keeps spilling until the daemon has
   drained the overflow, preserving arrival order. *)
type delivery = {
  dq : (unit -> unit) Mailbox.t;
  overflow : (unit -> unit) Queue.t;
}

(* --- reliable channels ---------------------------------------------------

   When [reliable] is on (chaos fabrics), every remote delivery rides a
   per-(src,dst) sequenced channel: packets carry (epoch, seq), the
   receiver holds out-of-order arrivals until the gap fills (FIFO
   resequencing), drops anything it has already seen (dedup), and acks
   cumulatively. The sender retransmits everything unacked (go-back-N)
   under exponential backoff; [retry_budget] consecutive silent rounds
   declare the channel down, after which sends fail fast until a
   heal/restart resets the link with a higher epoch. *)

let seq_header_bytes = 16
let ack_bytes = 16
let default_retry_budget = 10

type packet = {
  pk_seq : int;
  pk_bytes : int;  (* payload bytes, excluding the sequence header *)
  pk_thunk : unit -> unit;
}

type chan_tx = {
  tx_src : int;
  tx_dst : int;
  mutable tx_epoch : int;
  mutable tx_next : int;
  tx_unacked : (int, packet) Hashtbl.t;
  mutable tx_strikes : int;
  mutable tx_timer_gen : int;  (* bumping this orphans any armed timer *)
  mutable tx_down : bool;
}

type chan_rx = {
  mutable rx_epoch : int;
  mutable rx_next : int;
  rx_hold : (int, unit -> unit) Hashtbl.t;
}

type chan_stats = {
  mutable c_data_pkts : int;
  mutable c_acks : int;
  mutable c_retransmits : int;
  mutable c_dup_dropped : int;
  mutable c_resequenced : int;
  mutable c_aborts : int;
  mutable c_resets : int;
  mutable c_stale_epoch : int;
}

type t = {
  engine : Mach_sim.Engine.t;
  net : Net.t;
  mutable next_id : int;
  deliveries : (int, delivery) Hashtbl.t;
  mutable reliable : bool;
  mutable retry_budget : int;
  txs : (int * int, chan_tx) Hashtbl.t;
  rxs : (int * int, chan_rx) Hashtbl.t;
  cstats : chan_stats;
  ports : (int, (unit -> int) * (unit -> unit)) Hashtbl.t;
      (* port id -> (home getter, destroyer): lets a host crash find and
         kill every port homed there without knowing message types *)
}

let delivery_queue_bound = 256

let create engine net =
  {
    engine;
    net;
    next_id = 1;
    deliveries = Hashtbl.create 8;
    reliable = false;
    retry_budget = default_retry_budget;
    txs = Hashtbl.create 8;
    rxs = Hashtbl.create 8;
    cstats =
      {
        c_data_pkts = 0;
        c_acks = 0;
        c_retransmits = 0;
        c_dup_dropped = 0;
        c_resequenced = 0;
        c_aborts = 0;
        c_resets = 0;
        c_stale_epoch = 0;
      };
    ports = Hashtbl.create 64;
  }

let engine t = t.engine
let net t = t.net

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let spawn_daemon t ~dst d =
  Engine.spawn t.engine ~name:(Printf.sprintf "net-delivery-h%d" dst) (fun () ->
      let rec loop () =
        match Mailbox.try_recv d.dq with
        | Some thunk ->
          thunk ();
          loop ()
        | None ->
          if not (Queue.is_empty d.overflow) then begin
            let thunk = Queue.pop d.overflow in
            thunk ();
            loop ()
          end
          else
            (* Idle: exit so the engine can quiesce; the next delivery
               respawns us. No blocking point separates the emptiness
               check from the removal, so no thunk can slip in between. *)
            Hashtbl.remove t.deliveries dst
      in
      loop ())

let deliver_to t ~dst thunk =
  match Hashtbl.find_opt t.deliveries dst with
  | Some d ->
    if Queue.is_empty d.overflow && Mailbox.send_timeout d.dq thunk ~timeout:0.0 then ()
    else Queue.push thunk d.overflow
  | None ->
    let d = { dq = Mailbox.create ~capacity:delivery_queue_bound (); overflow = Queue.create () } in
    Hashtbl.replace t.deliveries dst d;
    ignore (Mailbox.send_timeout d.dq thunk ~timeout:0.0);
    spawn_daemon t ~dst d

let delivery_backlog t ~dst =
  match Hashtbl.find_opt t.deliveries dst with
  | None -> 0
  | Some d -> Mailbox.length d.dq + Queue.length d.overflow

(* --- channel plumbing ---------------------------------------------------- *)

let set_reliable t b = t.reliable <- b
let reliable t = t.reliable
let set_retry_budget t n = t.retry_budget <- max 1 n

let tx_chan t ~src ~dst =
  match Hashtbl.find_opt t.txs (src, dst) with
  | Some c -> c
  | None ->
    let c =
      {
        tx_src = src;
        tx_dst = dst;
        tx_epoch = 1;
        tx_next = 1;
        tx_unacked = Hashtbl.create 16;
        tx_strikes = 0;
        tx_timer_gen = 0;
        tx_down = false;
      }
    in
    Hashtbl.replace t.txs (src, dst) c;
    c

let rx_chan t ~src ~dst =
  match Hashtbl.find_opt t.rxs (src, dst) with
  | Some c -> c
  | None ->
    let c = { rx_epoch = 0; rx_next = 1; rx_hold = Hashtbl.create 16 } in
    Hashtbl.replace t.rxs (src, dst) c;
    c

(* Retransmission timeout: current link queueing both ways, plus a
   round trip with slack for the largest packet still in flight,
   doubled per silent round, capped. The backlog term matters: the
   wire serializes per link, so under sustained traffic an ack is
   delayed by every transmission queued ahead of it — a timeout blind
   to that reads congestion as loss and the retransmissions feed the
   very queue that is delaying the acks. *)
let rto t chan =
  let max_bytes =
    Hashtbl.fold (fun _ pk acc -> max acc pk.pk_bytes) chan.tx_unacked 0
  in
  let base =
    Net.backlog_us t.net ~src:chan.tx_src ~dst:chan.tx_dst
    +. Net.backlog_us t.net ~src:chan.tx_dst ~dst:chan.tx_src
    +. (4.0 *. Net.latency_us t.net)
    +. (2.0 *. Net.us_per_byte t.net *. float_of_int (max_bytes + seq_header_bytes))
    +. 500.0
  in
  let scale = float_of_int (1 lsl min chan.tx_strikes 4) in
  base *. scale

let rec handle_ack t ~src ~dst ~epoch ~cum =
  match Hashtbl.find_opt t.txs (src, dst) with
  | None -> ()
  | Some chan ->
    if epoch <> chan.tx_epoch then t.cstats.c_stale_epoch <- t.cstats.c_stale_epoch + 1
    else begin
      let progress = ref false in
      for seq = 1 to cum do
        if Hashtbl.mem chan.tx_unacked seq then begin
          Hashtbl.remove chan.tx_unacked seq;
          progress := true
        end
      done;
      if !progress then begin
        chan.tx_strikes <- 0;
        (* The watchdog measures silence since the peer's last progress,
           not time since the window opened: restart it for the packets
           still outstanding (their deadline was set for an older,
           shorter queue), or disarm it when the window drained. *)
        if Hashtbl.length chan.tx_unacked = 0 then
          chan.tx_timer_gen <- chan.tx_timer_gen + 1
        else arm_timer t chan
      end
    end

and rx_ingest t ~src ~dst ~epoch ~seq thunk =
  let chan = rx_chan t ~src ~dst in
  if epoch < chan.rx_epoch then t.cstats.c_stale_epoch <- t.cstats.c_stale_epoch + 1
  else begin
    if epoch > chan.rx_epoch then begin
      (* Peer reset the link (heal, restart): adopt the new epoch and
         forget everything buffered from the old one. *)
      if chan.rx_epoch > 0 then t.cstats.c_resets <- t.cstats.c_resets + 1;
      chan.rx_epoch <- epoch;
      chan.rx_next <- 1;
      Hashtbl.reset chan.rx_hold
    end;
    if seq < chan.rx_next || Hashtbl.mem chan.rx_hold seq then
      t.cstats.c_dup_dropped <- t.cstats.c_dup_dropped + 1
    else begin
      if seq <> chan.rx_next then t.cstats.c_resequenced <- t.cstats.c_resequenced + 1;
      Hashtbl.replace chan.rx_hold seq thunk;
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt chan.rx_hold chan.rx_next with
        | None -> continue := false
        | Some th ->
          Hashtbl.remove chan.rx_hold chan.rx_next;
          chan.rx_next <- chan.rx_next + 1;
          deliver_to t ~dst th
      done
    end;
    (* Always ack, even for duplicates: a lost ack is indistinguishable
       from a lost packet, and the re-ack is what stops the retransmit. *)
    t.cstats.c_acks <- t.cstats.c_acks + 1;
    let cum = chan.rx_next - 1 in
    Net.deliver t.net ~src:dst ~dst:src ~bytes:ack_bytes (fun () ->
        handle_ack t ~src ~dst ~epoch ~cum)
  end

and transmit t chan pk =
  let epoch = chan.tx_epoch in
  let src = chan.tx_src and dst = chan.tx_dst in
  Net.deliver t.net ~src ~dst ~bytes:(pk.pk_bytes + seq_header_bytes) (fun () ->
      rx_ingest t ~src ~dst ~epoch ~seq:pk.pk_seq pk.pk_thunk)

and arm_timer t chan =
  chan.tx_timer_gen <- chan.tx_timer_gen + 1;
  let gen = chan.tx_timer_gen in
  Engine.schedule t.engine
    ~at:(Engine.now t.engine +. rto t chan)
    (fun () ->
      if gen = chan.tx_timer_gen && (not chan.tx_down)
         && Hashtbl.length chan.tx_unacked > 0
      then begin
        chan.tx_strikes <- chan.tx_strikes + 1;
        if chan.tx_strikes > t.retry_budget then begin
          (* Watchdog: the peer has been silent through the whole retry
             budget — declare the channel down and shed its queue.
             Subsequent sends fail fast with [`Unreachable]. *)
          chan.tx_down <- true;
          Hashtbl.reset chan.tx_unacked;
          t.cstats.c_aborts <- t.cstats.c_aborts + 1
        end
        else begin
          let pending =
            Hashtbl.fold (fun _ pk acc -> pk :: acc) chan.tx_unacked []
            |> List.sort (fun a b -> compare a.pk_seq b.pk_seq)
          in
          List.iter
            (fun pk ->
              t.cstats.c_retransmits <- t.cstats.c_retransmits + 1;
              Net.note_retransmit t.net;
              transmit t chan pk)
            pending;
          arm_timer t chan
        end
      end)

let remote_deliver t ~src ~dst ~bytes thunk =
  if (not t.reliable) || src = dst then begin
    Net.deliver t.net ~src ~dst ~bytes (fun () -> deliver_to t ~dst thunk);
    Ok ()
  end
  else begin
    let chan = tx_chan t ~src ~dst in
    if chan.tx_down then Error `Unreachable
    else begin
      let pk = { pk_seq = chan.tx_next; pk_bytes = bytes; pk_thunk = thunk } in
      chan.tx_next <- chan.tx_next + 1;
      Hashtbl.replace chan.tx_unacked pk.pk_seq pk;
      t.cstats.c_data_pkts <- t.cstats.c_data_pkts + 1;
      transmit t chan pk;
      if Hashtbl.length chan.tx_unacked = 1 then arm_timer t chan;
      Ok ()
    end
  end

let chan_down t ~src ~dst =
  match Hashtbl.find_opt t.txs (src, dst) with Some c -> c.tx_down | None -> false

let reset_tx t chan =
  chan.tx_epoch <- chan.tx_epoch + 1;
  chan.tx_next <- 1;
  Hashtbl.reset chan.tx_unacked;
  chan.tx_strikes <- 0;
  chan.tx_timer_gen <- chan.tx_timer_gen + 1;
  chan.tx_down <- false;
  t.cstats.c_resets <- t.cstats.c_resets + 1

(* Heal semantics: a direction that survived the partition (watchdog
   never tripped) still holds its unacked packets — leave it alone and
   let the next retransmit round carry them across. Only a downed
   direction needs the epoch-bump reset. *)
let reset_link t a b =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.txs key with
      | Some chan when chan.tx_down -> reset_tx t chan
      | Some _ | None -> ())
    [ (a, b); (b, a) ]

(* --- port registry & host failure --------------------------------------- *)

let register_port t ~id ~home ~destroy = Hashtbl.replace t.ports id (home, destroy)
let forget_port t ~id = Hashtbl.remove t.ports id

let reset_host_chans t ~host =
  Hashtbl.iter (fun (src, dst) chan -> if src = host || dst = host then reset_tx t chan)
    t.txs;
  let stale =
    Hashtbl.fold (fun ((src, dst) as key) _ acc ->
        if src = host || dst = host then key :: acc else acc)
      t.rxs []
  in
  List.iter
    (fun key ->
      let c = Hashtbl.find t.rxs key in
      (* The crashed side lost its receive state; the surviving side
         will adopt the peer's next epoch on first contact. *)
      Hashtbl.reset c.rx_hold;
      Hashtbl.remove t.rxs key)
    stale

let crash_host t ~host =
  (* Snapshot first: destroying a port runs death hooks that may create
     or destroy further ports. May block (death hooks charge compute),
     so only call from a simulated thread. *)
  let victims =
    Hashtbl.fold (fun id (home, destroy) acc ->
        if home () = host then (id, destroy) :: acc else acc)
      t.ports []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (id, destroy) ->
      Hashtbl.remove t.ports id;
      destroy ())
    victims;
  reset_host_chans t ~host;
  List.length victims

let restart_host t ~host = reset_host_chans t ~host

(* --- accounting ---------------------------------------------------------- *)

let chan_stats_to_list t =
  let s = t.cstats in
  [
    ("data_pkts", s.c_data_pkts);
    ("acks", s.c_acks);
    ("retransmits", s.c_retransmits);
    ("dup_dropped", s.c_dup_dropped);
    ("resequenced", s.c_resequenced);
    ("aborts", s.c_aborts);
    ("resets", s.c_resets);
    ("stale_epoch", s.c_stale_epoch);
  ]

let reset_chan_stats t =
  let s = t.cstats in
  s.c_data_pkts <- 0;
  s.c_acks <- 0;
  s.c_retransmits <- 0;
  s.c_dup_dropped <- 0;
  s.c_resequenced <- 0;
  s.c_aborts <- 0;
  s.c_resets <- 0;
  s.c_stale_epoch <- 0
