module Engine = Mach_sim.Engine
module Mailbox = Mach_sim.Mailbox

(* Remote deliveries for one destination host drain through a single
   daemon thread; a burst of sends queues work instead of forking a
   thread per message. The mailbox bounds in-flight work; past that,
   thunks spill to [overflow] (plain FIFO, no extra threads). Once
   anything has spilled, new work keeps spilling until the daemon has
   drained the overflow, preserving arrival order. *)
type delivery = {
  dq : (unit -> unit) Mailbox.t;
  overflow : (unit -> unit) Queue.t;
}

type t = {
  engine : Mach_sim.Engine.t;
  net : Mach_hw.Net.t;
  mutable next_id : int;
  deliveries : (int, delivery) Hashtbl.t;
}

let delivery_queue_bound = 256

let create engine net = { engine; net; next_id = 1; deliveries = Hashtbl.create 8 }
let engine t = t.engine
let net t = t.net

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let spawn_daemon t ~dst d =
  Engine.spawn t.engine ~name:(Printf.sprintf "net-delivery-h%d" dst) (fun () ->
      let rec loop () =
        match Mailbox.try_recv d.dq with
        | Some thunk ->
          thunk ();
          loop ()
        | None ->
          if not (Queue.is_empty d.overflow) then begin
            let thunk = Queue.pop d.overflow in
            thunk ();
            loop ()
          end
          else
            (* Idle: exit so the engine can quiesce; the next delivery
               respawns us. No blocking point separates the emptiness
               check from the removal, so no thunk can slip in between. *)
            Hashtbl.remove t.deliveries dst
      in
      loop ())

let deliver_to t ~dst thunk =
  match Hashtbl.find_opt t.deliveries dst with
  | Some d ->
    if Queue.is_empty d.overflow && Mailbox.send_timeout d.dq thunk ~timeout:0.0 then ()
    else Queue.push thunk d.overflow
  | None ->
    let d = { dq = Mailbox.create ~capacity:delivery_queue_bound (); overflow = Queue.create () } in
    Hashtbl.replace t.deliveries dst d;
    ignore (Mailbox.send_timeout d.dq thunk ~timeout:0.0);
    spawn_daemon t ~dst d

let delivery_backlog t ~dst =
  match Hashtbl.find_opt t.deliveries dst with
  | None -> 0
  | Some d -> Mailbox.length d.dq + Queue.length d.overflow
