module Engine = Mach_sim.Engine
module Sched = Mach_sim.Sched
module Mailbox = Mach_sim.Mailbox
module Waitq = Mach_sim.Waitq
module Machine = Mach_hw.Machine
module Net = Mach_hw.Net

type ipc_stats = {
  mutable s_msgs_sent : int;
  mutable s_bytes_copied : int;
  mutable s_bytes_mapped : int;
  mutable s_copyins : int;
  mutable s_lazy_copyout_faults : int;
  mutable s_rpc_fastpath : int;
  mutable s_handoffs : int;
  mutable s_spurious_wakeups : int;
}

let fresh_ipc_stats () =
  {
    s_msgs_sent = 0;
    s_bytes_copied = 0;
    s_bytes_mapped = 0;
    s_copyins = 0;
    s_lazy_copyout_faults = 0;
    s_rpc_fastpath = 0;
    s_handoffs = 0;
    s_spurious_wakeups = 0;
  }

let reset_ipc_stats s =
  s.s_msgs_sent <- 0;
  s.s_bytes_copied <- 0;
  s.s_bytes_mapped <- 0;
  s.s_copyins <- 0;
  s.s_lazy_copyout_faults <- 0;
  s.s_rpc_fastpath <- 0;
  s.s_handoffs <- 0;
  s.s_spurious_wakeups <- 0

let ipc_stats_to_list s =
  [
    ("msgs_sent", s.s_msgs_sent);
    ("bytes_copied", s.s_bytes_copied);
    ("bytes_mapped", s.s_bytes_mapped);
    ("copyins", s.s_copyins);
    ("lazy_copyout_faults", s.s_lazy_copyout_faults);
    ("rpc_fastpath", s.s_rpc_fastpath);
    ("handoffs", s.s_handoffs);
    ("spurious_wakeups", s.s_spurious_wakeups);
  ]

type node = {
  node_host : int;
  node_params : Machine.params;
  node_page_size : int;
  node_stats : ipc_stats;
  mutable node_sched : Sched.t option;
  mutable node_handoff_enabled : bool;
  mutable node_trace : Mach_sim.Trace.t option;
}

(* Stamp an outgoing message with the sender's causal span (unless a
   layer above stamped it already) and mark the send; the receive side
   adopts the id, so one span threads a fault through its pager RPC. *)
let trace_send node msg ~local =
  match node.node_trace with
  | Some tr when Mach_sim.Trace.enabled tr ->
    let hdr = msg.Message.header in
    if hdr.Message.trace_span < 0 then hdr.Message.trace_span <- Mach_sim.Trace.current tr;
    Mach_sim.Trace.point tr
      ~span:hdr.Message.trace_span ~subsystem:"ipc"
      (if local then "send" else "send_remote")
  | Some _ | None -> ()

(* All IPC CPU costs contend for the host's processors when a scheduler
   is wired up; bare nodes (unit tests) keep the old un-contended
   behaviour. *)
let node_compute node us =
  if us > 0.0 then
    match node.node_sched with Some s -> Sched.compute s us | None -> Engine.sleep us

type send_error = Send_invalid_port | Send_timed_out
type recv_error = Recv_timed_out | Recv_invalid_port

let pages_of node bytes = (bytes + node.node_page_size - 1) / node.node_page_size

(* Small inline messages can hand off directly to a blocked receiver;
   past this size the normal queue path wins nothing by special-casing. *)
let fastpath_inline_bytes = 256

let send_cost_us node msg =
  let p = node.node_params in
  let copy_us_per_byte = p.Machine.page_copy_us /. float_of_int node.node_page_size in
  let inline = Message.inline_bytes msg in
  (* Only regions whose payload still travels with the message are
     mapped here; [Ool_copy] handles were charged at copyin and pay
     their map ops lazily at copyout/fault time. *)
  let carried_pages = pages_of node (Message.carried_mapped_bytes msg) in
  p.Machine.msg_overhead_us
  +. (float_of_int inline *. copy_us_per_byte)
  +. (float_of_int carried_pages *. p.Machine.map_op_us)

let is_fastpath_candidate msg =
  Message.mapped_bytes msg = 0
  && Message.inline_bytes msg <= fastpath_inline_bytes

let enqueue_local node ?timeout ~donate port msg =
  let stats = node.node_stats in
  let q = Port.queue port in
  (* RPC fast path: a receiver is already blocked on this port and the
     message is small and fully inline — hand it off directly and skip
     the arrival notification (nothing is left queued, so waking the
     receive-any machinery would only cause spurious rescans). The
     handoff mark makes the receive charge-free; when the send runs on
     the local scheduler the sender additionally donates its processor
     so the receiver enters computation without a run-queue round trip
     (remote deliveries never donate: the daemon's processor belongs to
     the destination host, not to the original sender). *)
  if Mailbox.waiters q > 0 && is_fastpath_candidate msg then begin
    if donate then begin
      let ticket =
        match node.node_sched with Some s -> Sched.donate s | None -> None
      in
      msg.Message.header.Message.handoff <- Some (Option.value ticket ~default:(-1))
    end;
    match Mailbox.send q msg with
    | () ->
      stats.s_rpc_fastpath <- stats.s_rpc_fastpath + 1;
      Ok ()
    | exception Mailbox.Closed -> Error Send_invalid_port
  end
  else
    match
      match timeout with
      | None ->
        Mailbox.send q msg;
        true
      | Some t -> Mailbox.send_timeout q msg ~timeout:t
    with
    | true ->
      Port.notify_arrival port;
      Ok ()
    | false -> Error Send_timed_out
    | exception Mailbox.Closed -> Error Send_invalid_port

let send node ?timeout msg =
  let dest = msg.Message.header.dest in
  if not (Port.alive dest) then Error Send_invalid_port
  else begin
    node_compute node (send_cost_us node msg);
    let stats = node.node_stats in
    stats.s_msgs_sent <- stats.s_msgs_sent + 1;
    stats.s_bytes_copied <- stats.s_bytes_copied + Message.inline_bytes msg;
    stats.s_bytes_mapped <- stats.s_bytes_mapped + Message.mapped_bytes msg;
    (* The port may have died while we were copying. *)
    if not (Port.alive dest) then Error Send_invalid_port
    else if Port.home dest = node.node_host then begin
      trace_send node msg ~local:true;
      enqueue_local node ?timeout ~donate:node.node_handoff_enabled dest msg
    end
    else begin
      trace_send node msg ~local:false;
      (* Remote destination: hand the message to the network; the
         sender does not wait for remote queueing (netmsg-server
         style). Only [wire_bytes] transit — copy-object pages stay
         home and are paged over on demand. Queue-full blocking
         happens in the destination host's delivery daemon. *)
      let ctx = Port.context dest in
      let dst = Port.home dest in
      let bytes = Message.wire_bytes msg in
      match
        Context.remote_deliver ctx ~src:node.node_host ~dst ~bytes (fun () ->
            if Port.alive dest then
              match enqueue_local node ~donate:false dest msg with Ok () | Error _ -> ())
      with
      | Ok () -> Ok ()
      | Error `Unreachable ->
        (* The reliable channel exhausted its retry budget: the peer is
           partitioned or dead. Surface it as a timeout, the same error
           a full queue produces. *)
        Error Send_timed_out
    end
  end

let insert_caps space msg =
  List.iter
    (fun { Message.cap_port; cap_right } -> ignore (Port_space.insert space cap_port cap_right))
    (Message.caps msg)

(* A normal receive pays a context switch (block + redispatch), through
   the scheduler when one is wired. A handoff receive pays nothing: the
   sender drove the wakeup and donated its processor — the receiver
   claims the reservation so its next compute burst starts on the
   donated CPU without touching a run queue. *)
let charge_receive node msg =
  (match node.node_trace with
  | Some tr when Mach_sim.Trace.enabled tr ->
    Mach_sim.Trace.point tr
      ~span:msg.Message.header.Message.trace_span ~subsystem:"ipc"
      (match msg.Message.header.Message.handoff with
      | Some _ -> "recv_handoff"
      | None -> "recv")
  | Some _ | None -> ());
  match msg.Message.header.Message.handoff with
  | Some ticket ->
    msg.Message.header.Message.handoff <- None;
    node.node_stats.s_handoffs <- node.node_stats.s_handoffs + 1;
    if ticket >= 0 then (
      match node.node_sched with
      | Some s -> Sched.claim_handoff s ~ticket ~name:(Engine.self_name ())
      | None -> ())
  | None -> node_compute node node.node_params.Machine.context_switch_us

let receive_one node space port ?timeout () =
  let result =
    match timeout with
    | None -> (
      match Mailbox.recv (Port.queue port) with
      | msg -> Ok msg
      | exception Mailbox.Closed -> Error Recv_invalid_port)
    | Some t -> (
      match Mailbox.recv_timeout (Port.queue port) ~timeout:t with
      | Some msg -> Ok msg
      | None -> if Port.alive port then Error Recv_timed_out else Error Recv_invalid_port
      | exception Mailbox.Closed -> Error Recv_invalid_port)
  in
  match result with
  | Ok msg ->
    charge_receive node msg;
    insert_caps space msg;
    Ok msg
  | Error e -> Error e

let receive_any node space ?timeout () =
  let engine = Context.engine (Port_space.context space) in
  let deadline = Option.map (fun t -> Engine.now engine +. t) timeout in
  (* O(1) receive: pop the oldest ready port off the FIFO the arrival
     hooks maintain — no scan of the enabled set. [after_wakeup] tracks
     whether this attempt follows a waitq wakeup so we can count
     wakeups that found nothing ready (targeted wakeups should make
     that count zero). *)
  let rec attempt ~after_wakeup =
    match Port_space.pop_ready space with
    | Some (name, port) -> (
      match Mailbox.try_recv (Port.queue port) with
      | Some msg ->
        (* More messages may be waiting behind this one. *)
        Port_space.requeue_ready space name;
        charge_receive node msg;
        insert_caps space msg;
        Ok msg
      | None | (exception Mailbox.Closed) ->
        (* pop_ready validated queued > 0 and nothing can run between
           that check and this dequeue, but stay defensive. *)
        attempt ~after_wakeup)
    | None ->
      if after_wakeup then begin
        let s = node.node_stats in
        s.s_spurious_wakeups <- s.s_spurious_wakeups + 1
      end;
      wait ()
  and wait () =
    match deadline with
    | None ->
      Waitq.wait (Port_space.activity space);
      attempt ~after_wakeup:true
    | Some d ->
      let remaining = d -. Engine.now engine in
      if remaining <= 0.0 then Error Recv_timed_out
      else if Waitq.wait_timeout (Port_space.activity space) ~timeout:remaining then
        attempt ~after_wakeup:true
      else Error Recv_timed_out
  in
  attempt ~after_wakeup:false

let receive node space ~from ?timeout () =
  match from with
  | `Any -> receive_any node space ?timeout ()
  | `Port name -> (
    if not (Port_space.has_receive space name) then Error Recv_invalid_port
    else
      match Port_space.lookup space name with
      | None -> Error Recv_invalid_port
      | Some port -> receive_one node space port ?timeout ())

let rpc node space msg ?send_timeout ?recv_timeout () =
  match msg.Message.header.reply with
  | None -> invalid_arg "Transport.rpc: message has no reply port"
  | Some reply_port -> (
    match Port_space.name_of space reply_port with
    | None -> invalid_arg "Transport.rpc: reply port not in caller's space"
    | Some reply_name -> (
      match send node ?timeout:send_timeout msg with
      | Error e -> Error (`Send e)
      | Ok () -> (
        match receive node space ~from:(`Port reply_name) ?timeout:recv_timeout () with
        | Ok reply -> Ok reply
        | Error e -> Error (`Recv e))))
