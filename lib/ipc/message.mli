(** Messages: "a fixed length header and a variable-size collection of
    typed data objects", which may include port capabilities and
    out-of-line memory (§3.2). *)

type copy_payload = ..
(** Contents of a kernel copy object. The VM layer extends this with its
    copy-map representation ([Vm_map.Vm_copy_handle]); the network path
    extends it here with {!Net_copy}. Extensibility keeps this module
    free of a dependency on the VM structures. *)

type t = { header : header; body : item list }

and header = {
  dest : port;
  reply : port option;
  msg_id : int;  (** operation identifier, like Mach's msgh_id *)
  mutable handoff : int option;
      (** set by the transport when the message was handed directly to a
          blocked receiver: the receive path skips its context-switch
          charge, and a non-negative value is a scheduler ticket for the
          donated processor ({!Mach_sim.Sched.claim_handoff}); [-1]
          marks a handoff with no processor reservation *)
  mutable trace_span : int;
      (** set by the transport when tracing: the sender's current
          {!Mach_sim.Trace} span id, so receivers can {!Mach_sim.Trace.adopt}
          it and causality crosses fibers and hosts; [-1] when unset *)
}

and item =
  | Data of bytes  (** inline typed data: moved by copying *)
  | Caps of cap list  (** port capabilities *)
  | Ool of ool  (** out-of-line memory region (payload carried) *)
  | Ool_region of ool_region
      (** out-of-line *address-space region* as named by the sender: the
          kernel resolves it into an {!Ool_copy} at send time
          ([vm_map_copyin]); unresolved regions are mapped eagerly at
          receive time (legacy path). *)
  | Ool_copy of copy_object
      (** a kernel-held copy object: the snapshot of a sender region
          taken at send time. The message carries only this handle — no
          bytes; the receiver maps it copy-on-write and pages materialize
          lazily through the fault path ([vm_map_copyout]). *)

and ool_region = { src_task : int; src_addr : int; region_size : int }

and copy_object = {
  cp_size : int;  (** bytes covered by the snapshot *)
  cp_payload : copy_payload;
}

and cap = { cap_port : port; cap_right : right }
and right = Send_right | Receive_right

and ool = {
  ool_data : bytes;
  transfer : transfer_mode;
}

and transfer_mode =
  | Copy_transfer  (** physical copy: cost scales with size *)
  | Map_transfer
      (** virtual (copy-on-write) transfer: constant mapping cost per
          page; this is the memory/communication duality applied to
          large messages *)

and port = t Port.t

type copy_payload += Net_copy of { nc_object : port }
      (** A copy object whose pages live on another host: [nc_object] is
          a memory-object port served netmem-style by the sending host;
          the receiver's kernel pages it on demand. *)

val copy_handle_bytes : int
(** Wire size of a copy-object handle (a port name plus a length). *)

val make : ?reply:port -> ?msg_id:int -> dest:port -> item list -> t

val inline_bytes : t -> int
(** Bytes that must be physically copied to transfer this message
    (inline data plus [Copy_transfer] out-of-line regions). *)

val mapped_bytes : t -> int
(** Bytes moved by mapping ([Map_transfer] regions, unresolved
    [Ool_region]s, and copy objects). *)

val carried_mapped_bytes : t -> int
(** Mapped bytes whose payload still travels with the message (legacy
    [Map_transfer] [Ool] items and unresolved [Ool_region]s) — the
    portion {!Transport.send_cost_us} must still charge map ops for.
    [Ool_copy] items are excluded: copyin/copyout charge their own. *)

val wire_bytes : t -> int
(** Bytes that cross the network for a remote send: inline data, carried
    out-of-line payloads, and a fixed {!copy_handle_bytes} per copy
    handle (the zero-copy win: the snapshot's pages do not travel). *)

val total_bytes : t -> int

val data_exn : t -> bytes
(** The first [Data] item; raises [Not_found] if none. *)

val caps : t -> cap list
(** All capabilities in body order. *)

val ool_payloads : t -> bytes list
val ool_regions : t -> ool_region list
val ool_copies : t -> copy_object list

val pp : Format.formatter -> t -> unit
