module Mailbox = Mach_sim.Mailbox

type 'msg t = {
  id : int;
  ctx : Context.t;
  mutable home : int;
  queue : 'msg Mailbox.t;
  mutable alive : bool;
  mutable death_hooks : (int * (unit -> unit)) list;
  mutable arrival_hooks : (int * (unit -> unit)) list;
  mutable next_hook : int;
}

let rec create ctx ~home ?(backlog = 32) () =
  let t =
    {
      id = Context.fresh_id ctx;
      ctx;
      home;
      queue = Mailbox.create ~capacity:backlog ();
      alive = true;
      death_hooks = [];
      arrival_hooks = [];
      next_hook = 0;
    }
  in
  (* Registered untyped so a host crash can find and destroy every port
     homed on the dead host without knowing message types. *)
  Context.register_port ctx ~id:t.id
    ~home:(fun () -> t.home)
    ~destroy:(fun () -> destroy t);
  t

and destroy t =
  if t.alive then begin
    t.alive <- false;
    Context.forget_port t.ctx ~id:t.id;
    let hooks = List.rev t.death_hooks in
    t.death_hooks <- [];
    (* Drop queued messages and wake blocked receivers/senders with the
       death (RCV_PORT_DIED semantics). *)
    Mailbox.close t.queue;
    List.iter (fun (_, f) -> f ()) hooks
  end

let id t = t.id
let context t = t.ctx
let home t = t.home
let set_home t host = t.home <- host
let alive t = t.alive
let backlog t = match Mailbox.capacity t.queue with Some c -> c | None -> max_int
let set_backlog t n = if t.alive then Mailbox.set_capacity t.queue (Some n)
let queued t = Mailbox.length t.queue
let queue t = t.queue

let on_death t f =
  let hook_id = t.next_hook in
  t.next_hook <- t.next_hook + 1;
  if t.alive then t.death_hooks <- (hook_id, f) :: t.death_hooks else f ();
  hook_id

let cancel_on_death t hook_id = t.death_hooks <- List.remove_assoc hook_id t.death_hooks

let on_arrival t f =
  let hook_id = t.next_hook in
  t.next_hook <- t.next_hook + 1;
  t.arrival_hooks <- (hook_id, f) :: t.arrival_hooks;
  hook_id

let cancel_on_arrival t hook_id = t.arrival_hooks <- List.remove_assoc hook_id t.arrival_hooks
let notify_arrival t = List.iter (fun (_, f) -> f ()) (List.rev t.arrival_hooks)
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp fmt t = Format.fprintf fmt "port#%d%s" t.id (if t.alive then "" else "(dead)")
